package chameleon_test

import (
	"math"
	"testing"

	"chameleon"
	"chameleon/internal/osmodel"
)

const testScale = 512

func testRun(t *testing.T, opts chameleon.Options, instr uint64) *chameleon.Result {
	t.Helper()
	sys, err := chameleon.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(instr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseOptions(t *testing.T, policy chameleon.Policy, wl string) chameleon.Options {
	t.Helper()
	prof, err := chameleon.Workload(wl)
	if err != nil {
		t.Fatal(err)
	}
	return chameleon.Options{
		Config:             chameleon.DefaultConfig(testScale),
		Policy:             policy,
		Workload:           prof.Scale(testScale),
		Seed:               9,
		WarmupInstructions: 1_000_000,
	}
}

func TestFacadeQuickstart(t *testing.T) {
	res := testRun(t, baseOptions(t, chameleon.PolicyChameleonOpt, "bwaves"), 200_000)
	if res.GeoMeanIPC <= 0 {
		t.Error("no progress")
	}
	if res.StackedHitRate <= 0 || res.StackedHitRate > 1 {
		t.Errorf("hit rate = %v", res.StackedHitRate)
	}
	if res.CacheModeFraction <= 0 {
		t.Error("Chameleon-Opt should have cache-mode groups with free memory present")
	}
}

// TestDeterminism: identical options produce bit-identical results.
func TestDeterminism(t *testing.T) {
	a := testRun(t, baseOptions(t, chameleon.PolicyChameleon, "mcf"), 100_000)
	b := testRun(t, baseOptions(t, chameleon.PolicyChameleon, "mcf"), 100_000)
	if a.GeoMeanIPC != b.GeoMeanIPC || a.Ctrl != b.Ctrl || a.Fast != b.Fast {
		t.Errorf("runs with identical seeds diverged: %v vs %v", a.GeoMeanIPC, b.GeoMeanIPC)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := testRun(t, baseOptions(t, chameleon.PolicyChameleon, "mcf"), 100_000)
	o := baseOptions(t, chameleon.PolicyChameleon, "mcf")
	o.Seed = 10
	b := testRun(t, o, 100_000)
	if a.Ctrl.LatencySum == b.Ctrl.LatencySum {
		t.Error("different seeds should perturb the run")
	}
}

// TestPaperOrdering is the headline shape check (Figure 18): on a
// memory-intensive workload, Chameleon-Opt >= Chameleon ~ PoM > the
// 24 GB flat baseline > the faulting 20 GB baseline.
func TestPaperOrdering(t *testing.T) {
	const wl = "bwaves"
	ipc := func(p chameleon.Policy, baselineGB uint64) float64 {
		o := baseOptions(t, p, wl)
		if baselineGB != 0 {
			o.BaselineBytes = baselineGB * chameleon.GB / testScale
		}
		return testRun(t, o, 200_000).GeoMeanIPC
	}
	flat20 := ipc(chameleon.PolicyFlat, 20)
	flat24 := ipc(chameleon.PolicyFlat, 24)
	pom := ipc(chameleon.PolicyPoM, 0)
	cham := ipc(chameleon.PolicyChameleon, 0)
	opt := ipc(chameleon.PolicyChameleonOpt, 0)
	t.Logf("flat20=%.3f flat24=%.3f pom=%.3f cham=%.3f opt=%.3f", flat20, flat24, pom, cham, opt)
	if flat20 >= flat24 {
		t.Errorf("capacity loss should hurt: flat20 %.3f >= flat24 %.3f", flat20, flat24)
	}
	if flat24 >= pom {
		t.Errorf("PoM should beat the flat baseline: %.3f >= %.3f", flat24, pom)
	}
	if pom > cham*1.03 {
		t.Errorf("Chameleon should be at least competitive with PoM: %.3f vs %.3f", pom, cham)
	}
	if cham > opt*1.05 {
		t.Errorf("Chameleon-Opt should not trail Chameleon: %.3f vs %.3f", cham, opt)
	}
}

// TestHitRateOrdering mirrors Figure 15's shape.
func TestHitRateOrdering(t *testing.T) {
	const wl = "leslie3d"
	hit := func(p chameleon.Policy) float64 {
		return testRun(t, baseOptions(t, p, wl), 200_000).StackedHitRate
	}
	alloy := hit(chameleon.PolicyAlloy)
	pom := hit(chameleon.PolicyPoM)
	opt := hit(chameleon.PolicyChameleonOpt)
	t.Logf("alloy=%.3f pom=%.3f opt=%.3f", alloy, pom, opt)
	if alloy >= pom {
		t.Errorf("2KB-segment PoM should out-hit the 64B Alloy cache: %.3f >= %.3f", alloy, pom)
	}
	if pom > opt*1.05 {
		t.Errorf("Chameleon-Opt hit rate should be at least PoM-like: %.3f vs %.3f", pom, opt)
	}
}

// TestCacheModeTracksFreeSpace mirrors Figure 16: with a footprint well
// under capacity most Chameleon-Opt groups serve as cache; near-full
// footprints leave few.
func TestCacheModeTracksFreeSpace(t *testing.T) {
	frac := func(footprintShare float64) float64 {
		o := baseOptions(t, chameleon.PolicyChameleonOpt, "bwaves")
		o.Workload.FootprintBytes = uint64(float64(o.Config.TotalCapacity()) * footprintShare / 12)
		return testRun(t, o, 50_000).CacheModeFraction
	}
	low, high := frac(0.5), frac(0.98)
	t.Logf("cache-mode at 50%% footprint: %.2f, at 98%%: %.2f", low, high)
	if low < 0.8 {
		t.Errorf("half-empty machine should cache almost everywhere, got %.2f", low)
	}
	if high > 0.2 {
		t.Errorf("nearly-full machine should run mostly in PoM mode, got %.2f", high)
	}
	if low <= high {
		t.Error("cache-mode share must shrink as memory fills")
	}
}

func TestAlloyPageFaultsOnHighFootprint(t *testing.T) {
	res := testRun(t, baseOptions(t, chameleon.PolicyAlloy, "cloverleaf"), 100_000)
	if res.OS.MajorFaults == 0 {
		t.Error("Alloy sacrifices capacity: a 23 GB footprint must page-fault")
	}
	opt := testRun(t, baseOptions(t, chameleon.PolicyChameleonOpt, "cloverleaf"), 100_000)
	if opt.OS.MajorFaults != 0 {
		t.Error("PoM capacity should avert page faults for a 23 GB footprint")
	}
}

func TestCAMEORuns(t *testing.T) {
	res := testRun(t, baseOptions(t, chameleon.PolicyCAMEO, "mcf"), 100_000)
	if res.Ctrl.Accesses == 0 {
		t.Fatal("no memory traffic")
	}
	if res.Ctrl.SwapBytes == 0 {
		t.Error("CAMEO should migrate lines on first touch")
	}
}

func TestAutoNUMAImprovesOnFirstTouch(t *testing.T) {
	ft := testRun(t, baseOptions(t, chameleon.PolicyNUMAFlat, "bwaves"), 200_000)
	o := baseOptions(t, chameleon.PolicyNUMAFlat, "bwaves")
	o.AutoNUMA = &chameleon.AutoNUMAConfig{EpochCycles: 1_000_000, Threshold: 0.9, ScanPages: 4096}
	an := testRun(t, o, 200_000)
	// Migrations race the allocation ramp and mostly land during the
	// warm-up epochs; the timeline records them (run-phase OS stats are
	// reset at the measurement boundary).
	migrations := 0
	for _, rec := range an.NUMATimeline {
		migrations += rec.Migrations
	}
	t.Logf("first-touch hit %.3f, autonuma hit %.3f (migrations %d)", ft.StackedHitRate, an.StackedHitRate, migrations)
	if migrations == 0 {
		t.Error("AutoNUMA migrated nothing")
	}
	if an.StackedHitRate <= ft.StackedHitRate {
		t.Error("AutoNUMA should raise the stacked hit rate over first-touch")
	}
	if len(an.NUMATimeline) == 0 {
		t.Error("timeline missing")
	}
}

func TestOptionValidation(t *testing.T) {
	// Flat policy without a capacity.
	o := baseOptions(t, chameleon.PolicyFlat, "bwaves")
	if _, err := chameleon.New(o); err == nil {
		t.Error("PolicyFlat without BaselineBytes should fail")
	}
	// AutoNUMA on a hardware-managed design.
	o = baseOptions(t, chameleon.PolicyPoM, "bwaves")
	o.AutoNUMA = &chameleon.AutoNUMAConfig{Threshold: 0.9}
	if _, err := chameleon.New(o); err == nil {
		t.Error("AutoNUMA outside NUMA-flat should fail")
	}
	// Too many copies.
	o = baseOptions(t, chameleon.PolicyPoM, "bwaves")
	o.Copies = 99
	if _, err := chameleon.New(o); err == nil {
		t.Error("more copies than cores should fail")
	}
	// Invalid config.
	o = baseOptions(t, chameleon.PolicyPoM, "bwaves")
	o.Config.CPU.Cores = 0
	if _, err := chameleon.New(o); err == nil {
		t.Error("invalid config should fail")
	}
	// Zero instruction budget.
	sys, err := chameleon.New(baseOptions(t, chameleon.PolicyPoM, "bwaves"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestWorkloadsListing(t *testing.T) {
	names := chameleon.Workloads()
	if len(names) != 14 {
		t.Fatalf("workloads = %d, want 14", len(names))
	}
	for _, n := range names {
		if _, err := chameleon.Workload(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := chameleon.Workload("unknown"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestTraceStreamFacade(t *testing.T) {
	prof, err := chameleon.Workload("stream")
	if err != nil {
		t.Fatal(err)
	}
	st, err := chameleon.NewTraceStream(prof.Scale(testScale), 5)
	if err != nil {
		t.Fatal(err)
	}
	r := st.Next()
	if r.Gap == 0 {
		t.Error("gap must be positive")
	}
}

func TestRatioConfigs(t *testing.T) {
	for _, ratio := range []int{3, 7} {
		cfg, err := chameleon.DefaultConfig(testScale).WithRatio(ratio)
		if err != nil {
			t.Fatal(err)
		}
		o := baseOptions(t, chameleon.PolicyChameleonOpt, "bwaves")
		o.Config = cfg
		res := testRun(t, o, 50_000)
		if res.Ctrl.Accesses == 0 {
			t.Errorf("ratio 1:%d produced no traffic", ratio)
		}
	}
}

// TestRatioCacheModeShape mirrors Figure 21: more ways per group means
// a higher chance of a free segment, so more cache-mode groups.
func TestRatioCacheModeShape(t *testing.T) {
	frac := func(ratio int) float64 {
		cfg, err := chameleon.DefaultConfig(testScale).WithRatio(ratio)
		if err != nil {
			t.Fatal(err)
		}
		o := baseOptions(t, chameleon.PolicyChameleonOpt, "bwaves")
		o.Config = cfg
		return testRun(t, o, 50_000).CacheModeFraction
	}
	r3, r7 := frac(3), frac(7)
	t.Logf("cache-mode share: 1:3 %.3f, 1:7 %.3f", r3, r7)
	if r3 >= r7 {
		t.Errorf("1:7 should have more cache-mode groups than 1:3 (%.3f vs %.3f)", r7, r3)
	}
}

func TestFlatAllocPolicyOverride(t *testing.T) {
	o := baseOptions(t, chameleon.PolicyNUMAFlat, "bwaves")
	seq := chameleon.AllocSequential
	o.Alloc = &seq
	res := testRun(t, o, 50_000)
	if res.Ctrl.Accesses == 0 {
		t.Fatal("no traffic")
	}
}

func TestResultConsistency(t *testing.T) {
	res := testRun(t, baseOptions(t, chameleon.PolicyPoM, "hpccg"), 100_000)
	if res.Ctrl.FastHits > res.Ctrl.Accesses {
		t.Error("more hits than accesses")
	}
	if math.IsNaN(res.AMAT) || res.AMAT < 0 {
		t.Errorf("AMAT = %v", res.AMAT)
	}
	for _, c := range res.Cores {
		if c.Instructions < 100_000 {
			t.Errorf("core ran %d instructions, want >= budget", c.Instructions)
		}
	}
	if res.CPUUtilization < 0 || res.CPUUtilization > 1 {
		t.Errorf("utilisation = %v", res.CPUUtilization)
	}
}

// Compile-time checks that facade aliases expose the intended types.
var (
	_ chameleon.AllocPolicy     = osmodel.AllocShuffled
	_ *chameleon.AutoNUMAConfig = &osmodel.AutoNUMAConfig{}
)

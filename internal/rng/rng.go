// Package rng provides a small, fast, deterministic pseudo-random
// number generator (xorshift64*) used throughout the simulator so that
// runs are reproducible across platforms and Go versions.
package rng

// RNG is a xorshift64* generator. The zero value is invalid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since the all-zero state is absorbing).
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle pseudo-randomly permutes the first n elements using the
// provided swap function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not produce the absorbing all-zero stream")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

// TestShuffleIsPermutation: shuffling any slice keeps exactly the same
// multiset of elements.
func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		xs := make([]int, size)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, size)
		for _, x := range xs {
			if x < 0 || x >= size || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nRange(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package memtrace implements a versioned, compact binary format for
// memory-reference traces, with a streaming Writer/Reader pair that is
// allocation-free in the steady state. A recorded trace turns any
// simulation run into a reproducible artifact: replayed through
// sim.Options.Sources it reproduces the original run bit for bit, and
// externally captured reference streams become first-class workloads
// next to the synthetic catalogue ("replay:<file>.ctrace").
//
// # Wire format
//
// A trace file is a header followed by CRC-framed record blocks and a
// mandatory footer:
//
//	File   := Header Block* Footer
//	Header := magic "CMTR" | uvarint version | str runName | str meta
//	          | uvarint cores | cores × (str workload, uvarint footprint)
//	          | uint32le CRC32-C of all preceding header bytes
//	Block  := uvarint core | uvarint count | uvarint payloadLen
//	          | payload | uint32le CRC32-C of the encoded block header
//	          + payload
//	Footer := a Block whose core field equals the header's core count;
//	          its payload is cores × uvarint per-core ref totals
//
// where str is uvarint length + bytes. A block payload is count
// references, each encoded as
//
//	uvarint(gap<<1 | write) , uvarint(zigzag(addrDelta))
//
// with addrDelta the signed difference from the previous reference's
// address in the same block (the block's first delta is taken from
// address 0), so every block decodes independently of its neighbours.
// All varints are canonical (minimal length); the CRC is computed over
// the canonical re-encoding, so a non-canonical file fails its CRC.
//
// Corruption anywhere — a flipped bit, a truncated tail, trailing
// garbage, a missing footer — is reported as a *FormatError naming the
// failing block and byte offset, never as silently wrong references.
package memtrace

import (
	"fmt"
	"hash/crc32"
)

// Magic opens every trace file.
const Magic = "CMTR"

// Version is the current format version. Readers reject files with a
// newer version; older versions are decoded as long as they remain
// representable (there are none yet).
const Version = 1

// Format sanity limits. They bound reader allocations so corrupt or
// adversarial length fields fail loudly instead of attempting a
// multi-gigabyte allocation.
const (
	maxNameLen    = 4096    // run/workload name bytes
	maxMetaLen    = 1 << 20 // free-form metadata bytes
	maxCores      = 1 << 14 // per-trace core streams
	maxBlockRefs  = 1 << 22 // references per block
	maxPayloadLen = 1 << 26 // block payload bytes
	crcLen        = 4       // bytes of the little-endian CRC32-C frame
)

// castagnoli is the CRC polynomial used for all framing (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CoreInfo describes one recorded per-core stream in the header.
type CoreInfo struct {
	// Workload names the profile the core ran when it was captured.
	Workload string
	// FootprintBytes is the core's virtual footprint, preserved so a
	// replay prefaults and phase-churns exactly like the recorded run.
	FootprintBytes uint64
}

// Header is the decoded trace file header.
type Header struct {
	// Version is the format version the file was written with.
	Version int
	// RunName names the run's workload (the Mix join for consolidated
	// runs, e.g. "bwaves+leslie3d").
	RunName string
	// Meta is free-form provenance (e.g. "policy=chameleon seed=42").
	// It does not influence replay.
	Meta string
	// Cores holds one entry per recorded core stream.
	Cores []CoreInfo
}

// FormatError describes a malformed or corrupt trace file. Offset is
// the byte position where decoding failed; Block is the zero-based
// index of the failing block, or -1 for header errors.
type FormatError struct {
	Offset int64
	Block  int
	Msg    string
}

func (e *FormatError) Error() string {
	if e.Block < 0 {
		return fmt.Sprintf("memtrace: header (offset %d): %s", e.Offset, e.Msg)
	}
	return fmt.Sprintf("memtrace: block %d (offset %d): %s", e.Block, e.Offset, e.Msg)
}

// formatErrf builds a *FormatError.
func formatErrf(off int64, block int, format string, args ...any) error {
	return &FormatError{Offset: off, Block: block, Msg: fmt.Sprintf(format, args...)}
}

// zigzag maps a signed delta onto an unsigned varint-friendly value
// (small magnitudes of either sign encode short).
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

package memtrace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"chameleon/internal/trace"
)

// FuzzReader throws arbitrary bytes at every decode surface — the
// streaming Reader, the replay loader, and the Stat pass. None may
// panic, over-read, or allocate proportionally to a corrupt length
// field; a valid prefix with a corrupt tail must fail with an error,
// never return garbage references silently.
func FuzzReader(f *testing.F) {
	// Seed corpus: valid traces of a few shapes, plus systematic
	// truncations and single-byte corruptions of one of them.
	shapes := [][][]trace.Ref{
		{genRefs(300, 1)},
		{genRefs(1000, 2), genRefs(10, 3), nil},
		{genRefs(5, 4), genRefs(5, 5)},
	}
	var base []byte
	for i, perCore := range shapes {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Meta = "fuzz"
		w.BlockRefs = 64
		if err := w.Begin("fuzz-run", testProfiles(len(perCore))); err != nil {
			f.Fatal(err)
		}
		for c, refs := range perCore {
			for _, r := range refs {
				w.Emit(c, r)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		if i == 0 {
			base = buf.Bytes()
		}
		f.Add(buf.Bytes())
	}
	for _, cut := range []int{1, 5, len(base) / 2, len(base) - 3} {
		f.Add(base[:len(base)-cut])
	}
	for _, off := range []int{0, 4, 6, 20, len(base) / 2, len(base) - 2} {
		mut := bytes.Clone(base)
		mut[off] ^= 0x41
		f.Add(mut)
	}
	// A handcrafted header with absurd length fields (must be rejected
	// by the sanity limits, not malloc'd).
	huge := []byte(Magic)
	huge = binary.AppendUvarint(huge, Version)
	huge = binary.AppendUvarint(huge, 1<<40) // runName length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err == nil {
			var refs []trace.Ref
			var n uint64
			for {
				_, rs, err := rd.Next(refs[:0])
				if err == io.EOF {
					break
				}
				if err != nil {
					n = 1 // decoded-with-error: fine, as long as it reported
					break
				}
				refs = rs
			}
			_ = n
		}
		if tr, err := Parse(data); err == nil {
			// A fully valid fuzz input: replay must work and agree with
			// the streaming decode's bookkeeping.
			if srcs, err := tr.Sources(); err == nil {
				for c, src := range srcs {
					want := tr.CoreRefs(c)
					for i := uint64(0); i < want; i++ {
						src.Next()
					}
				}
			}
		}
		_, _ = Stat(bytes.NewReader(data))
	})
}

package memtrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"chameleon/internal/trace"
)

// DefaultBlockRefs is how many references a Writer packs into one
// CRC-framed block before flushing it. Larger blocks amortise framing
// overhead; smaller blocks localise corruption.
const DefaultBlockRefs = 4096

// Writer streams references into the binary trace format. It
// implements trace.Sink, so attaching one to sim.Options.TraceSink
// records a run as it executes — at any sim.Options.Threads count: the
// parallel engine's sequencer calls Emit single-threaded in committed
// step order, so the recorded bytes are identical to a sequential
// capture (TestCaptureReplayDeterminismThreaded). After the initial
// blocks reach their steady-state capacity, Emit allocates nothing.
//
// Usage: NewWriter, optionally set Meta/BlockRefs, Begin (the sim calls
// this for you when used as a TraceSink), Emit references, Close.
// Errors are sticky: the first one is remembered and returned from
// Close (and Err), so the hot Emit path needs no error return.
type Writer struct {
	// Meta is free-form provenance recorded in the header (set before
	// Begin; e.g. "policy=chameleon seed=42").
	Meta string
	// BlockRefs overrides references per block (0 = DefaultBlockRefs;
	// capped to the format limit).
	BlockRefs int

	w      *bufio.Writer
	began  bool
	closed bool
	err    error

	cores  []coreEnc
	counts []uint64
	hdr    []byte       // scratch for block headers
	frame  [crcLen]byte // scratch for CRC trailers (a local would escape)
}

// coreEnc is one core's in-progress block.
type coreEnc struct {
	buf  []byte
	n    int
	last uint64 // previous address in this block (delta base)
}

// NewWriter wraps w. The caller owns w's lifetime; Close flushes the
// trace but does not close w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Begin writes the header: the run's workload name and one CoreInfo
// per per-core stream (profile name + footprint). It must be called
// exactly once before Emit. Implements trace.Sink.
func (w *Writer) Begin(runName string, cores []trace.Profile) error {
	if w.err != nil {
		return w.err
	}
	if w.began {
		return w.fail(fmt.Errorf("memtrace: Begin called twice"))
	}
	if len(cores) == 0 {
		return w.fail(fmt.Errorf("memtrace: trace needs at least one core stream"))
	}
	if len(cores) > maxCores {
		return w.fail(fmt.Errorf("memtrace: %d cores exceed the format limit %d", len(cores), maxCores))
	}
	if len(runName) > maxNameLen || len(w.Meta) > maxMetaLen {
		return w.fail(fmt.Errorf("memtrace: run name or metadata too long"))
	}
	if w.BlockRefs <= 0 {
		w.BlockRefs = DefaultBlockRefs
	}
	if w.BlockRefs > maxBlockRefs {
		w.BlockRefs = maxBlockRefs
	}
	hdr := make([]byte, 0, 64+len(runName)+len(w.Meta))
	hdr = append(hdr, Magic...)
	hdr = binary.AppendUvarint(hdr, Version)
	hdr = appendString(hdr, runName)
	hdr = appendString(hdr, w.Meta)
	hdr = binary.AppendUvarint(hdr, uint64(len(cores)))
	for _, p := range cores {
		if len(p.Name) > maxNameLen {
			return w.fail(fmt.Errorf("memtrace: workload name %q too long", p.Name))
		}
		hdr = appendString(hdr, p.Name)
		hdr = binary.AppendUvarint(hdr, p.FootprintBytes)
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	if _, err := w.w.Write(hdr); err != nil {
		return w.fail(err)
	}
	w.cores = make([]coreEnc, len(cores))
	w.counts = make([]uint64, len(cores))
	for i := range w.cores {
		// Pre-size for a full block: 2 varints of up to 10 bytes each
		// per ref is the worst case; typical refs take 3-6 bytes.
		w.cores[i].buf = make([]byte, 0, 8*w.BlockRefs)
	}
	w.began = true
	return nil
}

// Emit appends one reference to core's stream. Implements trace.Sink.
// Errors (unknown core, Begin not called, underlying write failures)
// latch into Err and surface from Close.
func (w *Writer) Emit(core int, r trace.Ref) {
	if w.err != nil {
		return
	}
	if !w.began {
		w.fail(fmt.Errorf("memtrace: Emit before Begin"))
		return
	}
	if core < 0 || core >= len(w.cores) {
		w.fail(fmt.Errorf("memtrace: Emit for core %d of a %d-core trace", core, len(w.cores)))
		return
	}
	c := &w.cores[core]
	gw := r.Gap << 1
	if r.Write {
		gw |= 1
	}
	c.buf = binary.AppendUvarint(c.buf, gw)
	c.buf = binary.AppendUvarint(c.buf, zigzag(int64(r.VAddr-c.last)))
	c.last = r.VAddr
	c.n++
	w.counts[core]++
	if c.n >= w.BlockRefs {
		w.flushCore(core)
	}
}

// flushCore frames core's pending block and hands it to the buffered
// writer, resetting the block state (the next block's delta base is
// address 0 again, keeping blocks self-contained).
func (w *Writer) flushCore(core int) {
	c := &w.cores[core]
	if c.n == 0 {
		return
	}
	w.writeBlock(uint64(core), uint64(c.n), c.buf)
	c.buf = c.buf[:0]
	c.n = 0
	c.last = 0
}

// writeBlock frames one block (header varints, payload, CRC over both).
func (w *Writer) writeBlock(core, count uint64, payload []byte) {
	if w.err != nil {
		return
	}
	w.hdr = w.hdr[:0]
	w.hdr = binary.AppendUvarint(w.hdr, core)
	w.hdr = binary.AppendUvarint(w.hdr, count)
	w.hdr = binary.AppendUvarint(w.hdr, uint64(len(payload)))
	crc := crc32.Checksum(w.hdr, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if _, err := w.w.Write(w.hdr); err != nil {
		w.fail(err)
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.fail(err)
		return
	}
	binary.LittleEndian.PutUint32(w.frame[:], crc)
	if _, err := w.w.Write(w.frame[:]); err != nil {
		w.fail(err)
	}
}

// Close flushes every pending block (in core order), writes the footer
// with the per-core totals, flushes the buffered writer, and returns
// the first error the Writer encountered. It does not close the
// underlying io.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err == nil && !w.began {
		w.fail(fmt.Errorf("memtrace: Close before Begin"))
	}
	if w.err == nil {
		for core := range w.cores {
			w.flushCore(core)
		}
		footer := make([]byte, 0, 10*len(w.counts))
		for _, n := range w.counts {
			footer = binary.AppendUvarint(footer, n)
		}
		w.writeBlock(uint64(len(w.cores)), uint64(len(w.cores)), footer)
	}
	if w.err == nil {
		if err := w.w.Flush(); err != nil {
			w.fail(err)
		}
	}
	return w.err
}

// Err returns the Writer's sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Counts returns the number of references emitted so far per core.
func (w *Writer) Counts() []uint64 {
	out := make([]uint64, len(w.counts))
	copy(out, w.counts)
	return out
}

// fail latches the Writer's first error.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

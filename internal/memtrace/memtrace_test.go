package memtrace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"chameleon/internal/trace"
)

// testProfiles builds n per-core profiles for headers.
func testProfiles(n int) []trace.Profile {
	out := make([]trace.Profile, n)
	for i := range out {
		out[i] = trace.Profile{Name: "wl", FootprintBytes: 1 << 20, RefPKI: 100}
	}
	return out
}

// genRefs produces a plausible reference stream: small gaps, mostly
// local address deltas with occasional far jumps.
func genRefs(n int, seed int64) []trace.Ref {
	rnd := rand.New(rand.NewSource(seed))
	refs := make([]trace.Ref, n)
	addr := uint64(1 << 20)
	for i := range refs {
		switch rnd.Intn(10) {
		case 0:
			addr = rnd.Uint64() % (1 << 30)
		case 1, 2:
			addr -= uint64(rnd.Intn(4096))
		default:
			addr += uint64(rnd.Intn(4096))
		}
		refs[i] = trace.Ref{
			Gap:   uint64(rnd.Intn(50) + 1),
			VAddr: addr &^ 63,
			Write: rnd.Intn(100) < 30,
		}
	}
	return refs
}

// record writes a trace of the given per-core streams.
func record(t *testing.T, runName string, perCore [][]trace.Ref, blockRefs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Meta = "test=1"
	w.BlockRefs = blockRefs
	if err := w.Begin(runName, testProfiles(len(perCore))); err != nil {
		t.Fatal(err)
	}
	// Interleave cores round-robin, as a simulation would.
	for i := 0; ; i++ {
		any := false
		for c, refs := range perCore {
			if i < len(refs) {
				w.Emit(c, refs[i])
				any = true
			}
		}
		if !any {
			break
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	perCore := [][]trace.Ref{genRefs(10_000, 1), genRefs(7_777, 2), genRefs(123, 3)}
	data := record(t, "run", perCore, 512)

	tr, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header().RunName != "run" || tr.Header().Meta != "test=1" || tr.NumCores() != 3 {
		t.Fatalf("header mismatch: %+v", tr.Header())
	}
	if got, want := tr.NumRefs(), uint64(10_000+7_777+123); got != want {
		t.Fatalf("NumRefs = %d, want %d", got, want)
	}
	srcs, err := tr.Sources()
	if err != nil {
		t.Fatal(err)
	}
	for c, refs := range perCore {
		for i, want := range refs {
			if got := srcs[c].Next(); got != want {
				t.Fatalf("core %d ref %d = %+v, want %+v", c, i, got, want)
			}
		}
		// Exhausted sources wrap to the beginning.
		if got := srcs[c].Next(); got != refs[0] {
			t.Fatalf("core %d did not wrap: got %+v, want %+v", c, got, refs[0])
		}
	}
}

func TestStatSummary(t *testing.T) {
	perCore := [][]trace.Ref{genRefs(5000, 4), genRefs(5000, 5)}
	data := record(t, "statrun", perCore, 1024)
	sum, err := Stat(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Refs != 10_000 {
		t.Errorf("Refs = %d, want 10000", sum.Refs)
	}
	var writes, instr, maxAddr uint64
	for _, refs := range perCore {
		for _, r := range refs {
			instr += r.Gap
			if r.Write {
				writes++
			}
			maxAddr = max(maxAddr, r.VAddr)
		}
	}
	if sum.Writes != writes || sum.Instructions != instr {
		t.Errorf("writes/instr = %d/%d, want %d/%d", sum.Writes, sum.Instructions, writes, instr)
	}
	if sum.TouchedBytes != maxAddr+64 {
		t.Errorf("TouchedBytes = %d, want %d", sum.TouchedBytes, maxAddr+64)
	}
	if wf := sum.WriteFraction(); wf <= 0 || wf >= 1 {
		t.Errorf("WriteFraction = %v out of range", wf)
	}
}

// corrupt decodes data and reports the error (nil if it decoded).
func decodeAll(data []byte) error {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var refs []trace.Ref
	for {
		_, rs, err := rd.Next(refs[:0])
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		refs = rs
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := record(t, "run", [][]trace.Ref{genRefs(4000, 7)}, 256)
	if err := decodeAll(data); err != nil {
		t.Fatalf("pristine file failed: %v", err)
	}

	t.Run("bit flip every region", func(t *testing.T) {
		// Flip one bit at a spread of offsets; every corruption must be
		// detected (CRC framing covers the whole file).
		for off := 0; off < len(data); off += len(data)/97 + 1 {
			mut := bytes.Clone(data)
			mut[off] ^= 0x10
			if err := decodeAll(mut); err == nil {
				t.Errorf("bit flip at offset %d went undetected", off)
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{1, len(data) / 3, len(data) - 1} {
			err := decodeAll(data[:len(data)-cut])
			if err == nil {
				t.Errorf("truncation by %d bytes went undetected", cut)
				continue
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Errorf("truncation error is %T, want *FormatError: %v", err, err)
			}
		}
	})

	t.Run("truncation at block boundary", func(t *testing.T) {
		// Cut exactly before the footer: every frame is intact, but the
		// footer is missing.
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var refs []trace.Ref
		var lastEnd int64
		for {
			_, rs, err := rd.Next(refs[:0])
			if err != nil {
				break
			}
			refs = rs
			b := rd.LastBlock()
			lastEnd = b.PayloadOff + int64(b.PayloadLen) + crcLen
		}
		err = decodeAll(data[:lastEnd])
		if err == nil {
			t.Fatal("missing footer went undetected")
		}
		if !strings.Contains(err.Error(), "footer") {
			t.Errorf("error %q does not mention the missing footer", err)
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		if err := decodeAll(append(bytes.Clone(data), 0xAA)); err == nil {
			t.Error("trailing garbage went undetected")
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		mut := bytes.Clone(data)
		mut[0] = 'X'
		err := decodeAll(mut)
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("bad magic error = %v", err)
		}
	})

	t.Run("future version", func(t *testing.T) {
		mut := bytes.Clone(data)
		mut[4] = 0x63 // version 99
		err := decodeAll(mut)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("future version error = %v", err)
		}
	})

	t.Run("error names the block", func(t *testing.T) {
		// Corrupt the second block's payload: the error must identify
		// block 1, not block 0 and not the file as a whole.
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var refs []trace.Ref
		if _, refs, err = rd.Next(refs[:0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err = rd.Next(refs[:0]); err != nil {
			t.Fatal(err)
		}
		b := rd.LastBlock()
		mut := bytes.Clone(data)
		mut[b.PayloadOff] ^= 0xFF
		err = decodeAll(mut)
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("corrupt block error is %T (%v), want *FormatError", err, err)
		}
		if fe.Block != b.Index {
			t.Errorf("error names block %d, want %d", fe.Block, b.Index)
		}
	})
}

func TestWriterErrors(t *testing.T) {
	t.Run("emit before begin", func(t *testing.T) {
		w := NewWriter(io.Discard)
		w.Emit(0, trace.Ref{Gap: 1})
		if err := w.Close(); err == nil {
			t.Error("Emit before Begin should latch an error")
		}
	})
	t.Run("unknown core", func(t *testing.T) {
		w := NewWriter(io.Discard)
		if err := w.Begin("r", testProfiles(2)); err != nil {
			t.Fatal(err)
		}
		w.Emit(2, trace.Ref{Gap: 1})
		if err := w.Close(); err == nil {
			t.Error("out-of-range core should latch an error")
		}
	})
	t.Run("zero cores", func(t *testing.T) {
		w := NewWriter(io.Discard)
		if err := w.Begin("r", nil); err == nil {
			t.Error("Begin with no cores should fail")
		}
	})
}

func TestEmptyCoreCannotReplay(t *testing.T) {
	// Core 1 records no references: loading succeeds (the file is
	// valid) but Sources refuses.
	data := record(t, "run", [][]trace.Ref{genRefs(100, 9), nil}, 64)
	tr, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Sources(); err == nil {
		t.Error("Sources should reject a core with no recorded references")
	}
}

func TestEncodeSteadyStateAllocs(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Begin("r", testProfiles(4)); err != nil {
		t.Fatal(err)
	}
	refs := genRefs(1<<15, 11)
	// Warm the per-core block buffers past their growth phase.
	for i, r := range refs {
		w.Emit(i&3, r)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i, r := range refs {
			w.Emit(i&3, r)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Emit allocates %.1f times per %d refs, want 0", allocs, len(refs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	data := record(t, "run", [][]trace.Ref{genRefs(1<<15, 12)}, DefaultBlockRefs)
	tr, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := tr.Sources()
	if err != nil {
		t.Fatal(err)
	}
	n := int(tr.NumRefs())
	// One full cycle warms the replay buffer to the largest block.
	for i := 0; i < n; i++ {
		srcs[0].Next()
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < n; i++ {
			srcs[0].Next()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state replay allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestWriterDeterministic: the same emission sequence must yield the
// same bytes — the record half of the byte-identical re-record check
// in the determinism gate.
func TestWriterDeterministic(t *testing.T) {
	perCore := [][]trace.Ref{genRefs(3000, 13), genRefs(3000, 14)}
	a := record(t, "run", perCore, 512)
	b := record(t, "run", perCore, 512)
	if !bytes.Equal(a, b) {
		t.Error("identical emissions produced different bytes")
	}
}

package memtrace_test

import (
	"bytes"
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/memtrace"
	"chameleon/internal/policy"
	"chameleon/internal/sim"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// gateOpts builds the shared simulation options of the determinism
// gate: warm-up, timeline sampling and allocation churn all on, so the
// replay must reproduce mode switches, ISA notifications and page
// faults — not just the measured reference stream.
func gateOpts(t *testing.T, policyName string, scale uint64) sim.Options {
	t.Helper()
	prof, err := workload.ByName("cloverleaf")
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{
		Config:                 config.Default(scale),
		Policy:                 sim.PolicyKind(policyName),
		Workload:               prof.Scale(scale),
		Seed:                   31,
		WarmupInstructions:     100_000,
		TimelineEpochCycles:    500_000,
		PhaseAllocBytes:        64 * config.KB,
		PhaseEveryInstructions: 40_000,
	}
	desc, err := policy.Lookup(policyName)
	if err != nil {
		t.Fatal(err)
	}
	for opts.Config.NumTiers() < desc.RequiredTiers() {
		opts.Config = opts.Config.WithNVMTier(32 * config.GB / scale)
	}
	if desc.RequiresBaseline {
		opts.BaselineBytes = 24 * config.GB / scale
	}
	return opts
}

// record runs the simulation described by opts with a CMTR writer
// attached and returns the result plus the recorded bytes.
func record(t *testing.T, opts sim.Options, instr uint64) (*sim.Result, []byte) {
	t.Helper()
	var rec bytes.Buffer
	w := memtrace.NewWriter(&rec)
	w.Meta = "gate"
	opts.TraceSink = w
	sys, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(instr)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return res, rec.Bytes()
}

// replaySources parses a recording and returns replay options derived
// from base: the recorded per-core streams and run profile.
func replaySources(t *testing.T, base sim.Options, rec []byte) sim.Options {
	t.Helper()
	tr, err := memtrace.Parse(rec)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := tr.Sources()
	if err != nil {
		t.Fatal(err)
	}
	base.Workload = tr.RunProfile()
	base.Sources = srcs
	return base
}

// normEngine clears the run-provenance fields for cross-engine result
// comparisons: a Threads=8 run legitimately reports Engine "parallel"
// while its Threads=1 twin reports "sequential".
func normEngine(r *sim.Result) *sim.Result {
	c := *r
	c.Engine, c.FallbackReason = "", ""
	return &c
}

// TestCaptureReplayDeterminism is the subsystem's headline gate: for
// EVERY registered policy, record a run, replay the recording under
// the same options, and require the replayed sim.Result to be
// DeepEqual to the original — same IPC, MPKI, per-level stats, device
// queues, OS fault counts and timeline (mirroring
// TestHierarchyEquivalence's strongest-statement structure). A second
// capture taken *during* the replay must also be byte-identical to the
// first, pinning the encoder's determinism end to end.
func TestCaptureReplayDeterminism(t *testing.T) {
	const scale = 512
	const instr = 50_000
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			orig, rec := record(t, gateOpts(t, name, scale), instr)

			// Replay, re-capturing as we go.
			ropts := replaySources(t, gateOpts(t, name, scale), rec)
			replayed, rerec := record(t, ropts, instr)

			if !reflect.DeepEqual(orig, replayed) {
				t.Errorf("replay diverged from the recorded run:\noriginal: %+v\nreplayed: %+v", orig, replayed)
			}
			if !bytes.Equal(rec, rerec) {
				t.Error("re-capture during replay is not byte-identical to the original recording")
			}
		})
	}
}

// TestCaptureReplayDeterminismThreaded extends the gate to the
// parallel engine: with the commit sequencer flushing per-core sink
// buffers in commit order, a Threads=8 capture must be byte-identical
// to the Threads=1 capture of the same run, and replaying the threaded
// recording — itself threaded, re-capturing as it goes — must
// reproduce the original result and bytes exactly. The allocation-churn
// phases of gateOpts are disabled here because they (deliberately)
// force the sequential engine; timeline sampling stays on so the
// threaded capture runs concurrently with sequencer-side sampling.
func TestCaptureReplayDeterminismThreaded(t *testing.T) {
	const scale = 512
	const instr = 50_000
	threadedOpts := func(t *testing.T, name string, threads int) sim.Options {
		opts := gateOpts(t, name, scale)
		opts.PhaseAllocBytes = 0
		opts.PhaseEveryInstructions = 0
		opts.Threads = threads
		return opts
	}
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			seqRes, seqRec := record(t, threadedOpts(t, name, 1), instr)
			parRes, parRec := record(t, threadedOpts(t, name, 8), instr)
			if parRes.Engine != sim.EngineParallel {
				t.Fatalf("threaded capture ran on %q engine (reason %q), want parallel",
					parRes.Engine, parRes.FallbackReason)
			}
			if !reflect.DeepEqual(normEngine(seqRes), normEngine(parRes)) {
				t.Error("threaded capture run diverged from the sequential run")
			}
			if !bytes.Equal(seqRec, parRec) {
				t.Error("threaded recording is not byte-identical to the sequential recording")
			}

			// Replay the threaded recording on the parallel engine,
			// re-capturing as we go.
			ropts := replaySources(t, threadedOpts(t, name, 8), parRec)
			replayed, rerec := record(t, ropts, instr)
			if !reflect.DeepEqual(normEngine(parRes), normEngine(replayed)) {
				t.Errorf("threaded replay diverged from the recorded run:\noriginal: %+v\nreplayed: %+v",
					parRes, replayed)
			}
			if !bytes.Equal(parRec, rerec) {
				t.Error("threaded re-capture during replay is not byte-identical to the original recording")
			}
		})
	}
}

// TestReplayHeaderCarriesRunIdentity: the recorded header preserves
// what a replayed Result needs — the run name and per-core workload
// names/footprints — including the "+"-joined mix naming.
func TestReplayHeaderCarriesRunIdentity(t *testing.T) {
	const scale = 512
	bwaves, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	leslie, err := workload.ByName("leslie3d")
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	w := memtrace.NewWriter(&rec)
	opts := sim.Options{
		Config:   config.Default(scale),
		Policy:   sim.PolicyChameleon,
		Workload: bwaves.Scale(scale),
		Mix:      []trace.Profile{bwaves.Scale(scale), leslie.Scale(scale)},
		Seed:     3,
	}
	opts.TraceSink = w
	sys, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := memtrace.Parse(rec.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header().RunName != "bwaves+leslie3d" {
		t.Errorf("recorded run name = %q, want the joined mix", tr.Header().RunName)
	}
	srcs, err := tr.Sources()
	if err != nil {
		t.Fatal(err)
	}
	ropts := sim.Options{
		Config:   config.Default(scale),
		Policy:   sim.PolicyChameleon,
		Workload: tr.RunProfile(),
		Sources:  srcs,
		Seed:     3,
	}
	rsys, err := sim.New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := rsys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, replayed) {
		t.Errorf("mix replay diverged:\noriginal: %+v\nreplayed: %+v", orig, replayed)
	}
}

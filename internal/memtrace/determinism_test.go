package memtrace_test

import (
	"bytes"
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/memtrace"
	"chameleon/internal/policy"
	"chameleon/internal/sim"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// gateOpts builds the shared simulation options of the determinism
// gate: warm-up, timeline sampling and allocation churn all on, so the
// replay must reproduce mode switches, ISA notifications and page
// faults — not just the measured reference stream.
func gateOpts(t *testing.T, policyName string, scale uint64) sim.Options {
	t.Helper()
	prof, err := workload.ByName("cloverleaf")
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{
		Config:                 config.Default(scale),
		Policy:                 sim.PolicyKind(policyName),
		Workload:               prof.Scale(scale),
		Seed:                   31,
		WarmupInstructions:     100_000,
		TimelineEpochCycles:    500_000,
		PhaseAllocBytes:        64 * config.KB,
		PhaseEveryInstructions: 40_000,
	}
	desc, err := policy.Lookup(policyName)
	if err != nil {
		t.Fatal(err)
	}
	for opts.Config.NumTiers() < desc.RequiredTiers() {
		opts.Config = opts.Config.WithNVMTier(32 * config.GB / scale)
	}
	if desc.RequiresBaseline {
		opts.BaselineBytes = 24 * config.GB / scale
	}
	return opts
}

// TestCaptureReplayDeterminism is the subsystem's headline gate: for
// EVERY registered policy, record a run, replay the recording under
// the same options, and require the replayed sim.Result to be
// DeepEqual to the original — same IPC, MPKI, per-level stats, device
// queues, OS fault counts and timeline (mirroring
// TestHierarchyEquivalence's strongest-statement structure). A second
// capture taken *during* the replay must also be byte-identical to the
// first, pinning the encoder's determinism end to end.
func TestCaptureReplayDeterminism(t *testing.T) {
	const scale = 512
	const instr = 50_000
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			// Record.
			var rec bytes.Buffer
			opts := gateOpts(t, name, scale)
			w := memtrace.NewWriter(&rec)
			w.Meta = "gate"
			opts.TraceSink = w
			sys, err := sim.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := sys.Run(instr)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Replay, re-capturing as we go.
			tr, err := memtrace.Parse(rec.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			srcs, err := tr.Sources()
			if err != nil {
				t.Fatal(err)
			}
			ropts := gateOpts(t, name, scale)
			ropts.Workload = tr.RunProfile()
			ropts.Sources = srcs
			var rerec bytes.Buffer
			w2 := memtrace.NewWriter(&rerec)
			w2.Meta = "gate"
			ropts.TraceSink = w2
			rsys, err := sim.New(ropts)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := rsys.Run(instr)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(orig, replayed) {
				t.Errorf("replay diverged from the recorded run:\noriginal: %+v\nreplayed: %+v", orig, replayed)
			}
			if !bytes.Equal(rec.Bytes(), rerec.Bytes()) {
				t.Error("re-capture during replay is not byte-identical to the original recording")
			}
		})
	}
}

// TestReplayHeaderCarriesRunIdentity: the recorded header preserves
// what a replayed Result needs — the run name and per-core workload
// names/footprints — including the "+"-joined mix naming.
func TestReplayHeaderCarriesRunIdentity(t *testing.T) {
	const scale = 512
	bwaves, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	leslie, err := workload.ByName("leslie3d")
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	w := memtrace.NewWriter(&rec)
	opts := sim.Options{
		Config:   config.Default(scale),
		Policy:   sim.PolicyChameleon,
		Workload: bwaves.Scale(scale),
		Mix:      []trace.Profile{bwaves.Scale(scale), leslie.Scale(scale)},
		Seed:     3,
	}
	opts.TraceSink = w
	sys, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := memtrace.Parse(rec.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header().RunName != "bwaves+leslie3d" {
		t.Errorf("recorded run name = %q, want the joined mix", tr.Header().RunName)
	}
	srcs, err := tr.Sources()
	if err != nil {
		t.Fatal(err)
	}
	ropts := sim.Options{
		Config:   config.Default(scale),
		Policy:   sim.PolicyChameleon,
		Workload: tr.RunProfile(),
		Sources:  srcs,
		Seed:     3,
	}
	rsys, err := sim.New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := rsys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, replayed) {
		t.Errorf("mix replay diverged:\noriginal: %+v\nreplayed: %+v", orig, replayed)
	}
}

package memtrace

import (
	"bytes"
	"io"
	"testing"

	"chameleon/internal/trace"
)

// benchRefs generates one core's worth of realistic references from
// the synthetic generator (the same distribution capture sees; the
// profile mirrors the catalogue's cloverleaf at scale 512, restated
// here because importing internal/workload would cycle).
func benchRefs(b *testing.B, n int) []trace.Ref {
	b.Helper()
	prof := trace.Profile{
		Name: "cloverleaf", FootprintBytes: 23 << 30 / 12 / 512,
		TargetLLCMPKI: 30.33, RefPKI: 130, StreamFrac: 0.18,
		HotFrac: 0.88, HotRegionFrac: 0.10, WriteFrac: 0.35, BurstLines: 20,
	}
	st, err := trace.NewStream(prof, 7)
	if err != nil {
		b.Fatal(err)
	}
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = st.Next()
	}
	return refs
}

// encodeAll writes refs round-robin over cores and returns the bytes.
func encodeAll(b *testing.B, refs []trace.Ref, cores int, w io.Writer) {
	b.Helper()
	enc := NewWriter(w)
	if err := enc.Begin("bench", testProfilesB(cores)); err != nil {
		b.Fatal(err)
	}
	for i, r := range refs {
		enc.Emit(i%cores, r)
	}
	if err := enc.Close(); err != nil {
		b.Fatal(err)
	}
}

// testProfilesB mirrors the test helper for benchmarks.
func testProfilesB(n int) []trace.Profile {
	out := make([]trace.Profile, n)
	for i := range out {
		out[i] = trace.Profile{Name: "wl", FootprintBytes: 1 << 20, RefPKI: 100}
	}
	return out
}

// BenchmarkTraceEncode measures encode throughput in encoded MB/s
// (SetBytes is the on-disk size one op produces).
func BenchmarkTraceEncode(b *testing.B) {
	const cores = 8
	refs := benchRefs(b, 1<<17)
	var sized bytes.Buffer
	encodeAll(b, refs, cores, &sized)
	b.SetBytes(int64(sized.Len()))
	b.ReportMetric(float64(sized.Len())/float64(len(refs)), "bytes/ref")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeAll(b, refs, cores, io.Discard)
	}
}

// BenchmarkTraceDecode measures the streaming Reader's full-file
// decode throughput in encoded MB/s.
func BenchmarkTraceDecode(b *testing.B) {
	const cores = 8
	refs := benchRefs(b, 1<<17)
	var buf bytes.Buffer
	encodeAll(b, refs, cores, &buf)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		var out []trace.Ref
		for {
			_, rs, err := rd.Next(out[:0])
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			out = rs
		}
	}
}

// BenchmarkTraceReplay measures the replay hot path — Trace source
// Next() in the steady state — in refs/s (SetBytes again reports
// encoded MB/s for comparability).
func BenchmarkTraceReplay(b *testing.B) {
	refs := benchRefs(b, 1<<17)
	var buf bytes.Buffer
	encodeAll(b, refs, 1, &buf)
	tr, err := Parse(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	srcs, err := tr.Sources()
	if err != nil {
		b.Fatal(err)
	}
	n := int(tr.NumRefs())
	for i := 0; i < n; i++ {
		srcs[0].Next() // warm the block buffer
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			srcs[0].Next()
		}
	}
}

package memtrace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"chameleon/internal/trace"
)

// Trace is a fully validated in-memory recording, ready to replay.
// Parse verifies every block's CRC and decodes every payload once up
// front, so a corrupt file fails loudly at load time and replay can
// run without error paths on the hot Next().
type Trace struct {
	hdr    Header
	data   []byte
	counts []uint64
	// perCore[i] lists core i's blocks in stream order.
	perCore [][]BlockInfo
	blocks  int
}

// Parse validates data as a complete trace file and indexes its blocks
// for replay. The Trace keeps a reference to data; do not mutate it.
func Parse(data []byte) (*Trace, error) {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	t := &Trace{
		hdr:     rd.Header(),
		data:    data,
		perCore: make([][]BlockInfo, len(rd.Header().Cores)),
	}
	var refs []trace.Ref
	for {
		core, rs, err := rd.Next(refs[:0])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		refs = rs // keep the grown buffer for the next block
		t.perCore[core] = append(t.perCore[core], rd.LastBlock())
	}
	t.counts = rd.Counts()
	t.blocks = rd.Blocks()
	return t, nil
}

// LoadFile reads and parses a trace file.
func LoadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Header returns the trace's decoded header.
func (t *Trace) Header() Header { return t.hdr }

// NumCores returns the number of recorded per-core streams.
func (t *Trace) NumCores() int { return len(t.hdr.Cores) }

// NumRefs returns the total recorded reference count.
func (t *Trace) NumRefs() uint64 {
	var n uint64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// CoreRefs returns core's recorded reference count.
func (t *Trace) CoreRefs(core int) uint64 { return t.counts[core] }

// Blocks returns the file's block count (including the footer).
func (t *Trace) Blocks() int { return t.blocks }

// Size returns the file size in bytes.
func (t *Trace) Size() int64 { return int64(len(t.data)) }

// SHA256 returns the hex content hash of the raw file bytes, used to
// key result caches on trace content rather than file path.
func (t *Trace) SHA256() string {
	sum := sha256.Sum256(t.data)
	return hex.EncodeToString(sum[:])
}

// RunProfile synthesizes the run-level workload profile for feeding
// sim.Options.Workload: the recorded run name with the largest per-core
// footprint (sizing capacity checks), and neutral generator knobs —
// replay never invokes the synthetic generator.
func (t *Trace) RunProfile() trace.Profile {
	var fp uint64
	for _, c := range t.hdr.Cores {
		fp = max(fp, c.FootprintBytes)
	}
	return replayProfile(t.hdr.RunName, fp)
}

// Sources builds one replay stream per recorded core, for
// sim.Options.Sources. Each call returns fresh, independent cursors.
// A core with no recorded references cannot replay (its first Next
// would have nothing to return), so such traces are rejected.
func (t *Trace) Sources() ([]trace.Source, error) {
	out := make([]trace.Source, len(t.hdr.Cores))
	for i := range out {
		if t.counts[i] == 0 {
			return nil, fmt.Errorf("memtrace: core %d recorded no references; cannot replay", i)
		}
		out[i] = &replaySource{
			t:    t,
			prof: replayProfile(t.hdr.Cores[i].Workload, t.hdr.Cores[i].FootprintBytes),
			bl:   t.perCore[i],
		}
	}
	return out, nil
}

// replayProfile wraps a recorded name and footprint in a profile that
// passes validation; the generator-only knobs are neutral.
func replayProfile(name string, footprint uint64) trace.Profile {
	return trace.Profile{Name: name, FootprintBytes: footprint, RefPKI: 100}
}

// replaySource feeds one core's recorded references back in order,
// decoding one block at a time into a reused buffer (allocation-free
// once the buffer reaches the largest block's size). When the
// recording is exhausted the cursor wraps to the beginning, so a
// replay may legally run longer than the capture; within the recorded
// length, replay reproduces the capture exactly.
type replaySource struct {
	t    *Trace
	prof trace.Profile
	bl   []BlockInfo
	next int // index of the next block to decode
	refs []trace.Ref
	pos  int
}

// Profile implements trace.Source.
func (s *replaySource) Profile() trace.Profile { return s.prof }

// Next implements trace.Source.
func (s *replaySource) Next() trace.Ref {
	if s.pos == len(s.refs) {
		s.advance()
	}
	r := s.refs[s.pos]
	s.pos++
	return r
}

// advance decodes the next block (wrapping at the end of the
// recording) into the reused buffer.
func (s *replaySource) advance() {
	if s.next == len(s.bl) {
		s.next = 0
	}
	b := s.bl[s.next]
	payload := s.t.data[b.PayloadOff : b.PayloadOff+int64(b.PayloadLen)]
	refs, err := decodePayload(payload, b.Count, s.refs[:0])
	if err != nil {
		// Parse decoded this exact payload successfully and data is
		// immutable, so this is unreachable short of memory corruption.
		panic(fmt.Sprintf("memtrace: replay of validated block %d failed: %v", b.Index, err))
	}
	s.refs = refs
	s.pos = 0
	s.next++
}

package memtrace

import (
	"io"

	"chameleon/internal/trace"
)

// CoreSummary aggregates one core's recorded stream.
type CoreSummary struct {
	Workload       string
	FootprintBytes uint64 // declared in the header
	Refs           uint64
	Writes         uint64
	Instructions   uint64 // sum of reference gaps
	MaxAddr        uint64 // highest referenced address
}

// Summary is the one-pass aggregate of a whole trace file.
type Summary struct {
	Header Header
	Blocks int
	Refs   uint64
	Writes uint64
	// Instructions is the total simulated instruction count the
	// references span (sum of gaps across all cores).
	Instructions uint64
	// TouchedBytes is the span of the densest core's referenced
	// addresses (max address + one cache line), a lower bound on the
	// recorded footprint.
	TouchedBytes uint64
	PerCore      []CoreSummary
}

// WriteFraction returns the share of references that are writes.
func (s Summary) WriteFraction() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Refs)
}

// Stat decodes the whole stream, verifying every CRC, and returns the
// aggregate summary. It is the engine behind `chameleon-trace info`
// and shares all validation with replay loading.
func Stat(r io.Reader) (Summary, error) {
	rd, err := NewReader(r)
	if err != nil {
		return Summary{}, err
	}
	sum := Summary{Header: rd.Header(), PerCore: make([]CoreSummary, len(rd.Header().Cores))}
	for i, c := range rd.Header().Cores {
		sum.PerCore[i].Workload = c.Workload
		sum.PerCore[i].FootprintBytes = c.FootprintBytes
	}
	var refs []trace.Ref
	for {
		core, rs, err := rd.Next(refs[:0])
		if err == io.EOF {
			break
		}
		if err != nil {
			return Summary{}, err
		}
		refs = rs
		cs := &sum.PerCore[core]
		for _, ref := range refs {
			cs.Refs++
			cs.Instructions += ref.Gap
			if ref.Write {
				cs.Writes++
			}
			if ref.VAddr > cs.MaxAddr {
				cs.MaxAddr = ref.VAddr
			}
		}
	}
	sum.Blocks = rd.Blocks()
	for i := range sum.PerCore {
		cs := sum.PerCore[i]
		sum.Refs += cs.Refs
		sum.Writes += cs.Writes
		sum.Instructions += cs.Instructions
		if cs.Refs > 0 {
			sum.TouchedBytes = max(sum.TouchedBytes, cs.MaxAddr+64)
		}
	}
	return sum, nil
}

package memtrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"chameleon/internal/trace"
)

// BlockInfo locates and sizes the most recently decoded block.
type BlockInfo struct {
	// Index is the zero-based position of the block in the file.
	Index int
	// Core is the stream the block belongs to.
	Core int
	// Count is the number of references in the block.
	Count int
	// PayloadOff and PayloadLen frame the block's payload bytes within
	// the file.
	PayloadOff int64
	PayloadLen int
}

// Reader streams a trace file block by block, verifying every CRC. It
// reuses the caller's reference buffer, so the steady-state decode loop
// allocates nothing. Any structural problem — bad magic, an
// unsupported version, a CRC mismatch, a truncated block, a missing
// footer, trailing garbage, counts that disagree with the footer — is
// returned as a *FormatError naming the failing block and offset.
type Reader struct {
	br  *bufio.Reader
	hdr Header
	off int64 // bytes consumed so far

	block      int // index of the next block
	counts     []uint64
	payload    []byte // reused payload buffer
	footerSeen bool
	last       BlockInfo
}

// NewReader parses and validates the header. The Reader buffers r;
// do not read from r while the Reader is in use.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReaderSize(r, 1<<16)}
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	rd.counts = make([]uint64, len(rd.hdr.Cores))
	return rd, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

// LastBlock describes the block most recently returned by Next.
func (r *Reader) LastBlock() BlockInfo { return r.last }

// readHeader decodes and CRC-checks the header.
func (r *Reader) readHeader() error {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil {
		return formatErrf(0, -1, "not a trace file: %v", err)
	}
	crc := crc32.Checksum(magic[:], castagnoli)
	r.off += int64(len(Magic))
	if string(magic[:]) != Magic {
		return formatErrf(0, -1, "bad magic %q (want %q)", magic, Magic)
	}
	ver, err := r.uvarint(&crc)
	if err != nil {
		return formatErrf(r.off, -1, "reading version: %v", err)
	}
	if ver == 0 || ver > Version {
		return formatErrf(r.off, -1, "unsupported version %d (this reader speaks <= %d)", ver, Version)
	}
	r.hdr.Version = int(ver)
	if r.hdr.RunName, err = r.str(&crc, maxNameLen); err != nil {
		return formatErrf(r.off, -1, "reading run name: %v", err)
	}
	if r.hdr.Meta, err = r.str(&crc, maxMetaLen); err != nil {
		return formatErrf(r.off, -1, "reading metadata: %v", err)
	}
	cores, err := r.uvarint(&crc)
	if err != nil {
		return formatErrf(r.off, -1, "reading core count: %v", err)
	}
	if cores == 0 || cores > maxCores {
		return formatErrf(r.off, -1, "implausible core count %d", cores)
	}
	r.hdr.Cores = make([]CoreInfo, cores)
	for i := range r.hdr.Cores {
		if r.hdr.Cores[i].Workload, err = r.str(&crc, maxNameLen); err != nil {
			return formatErrf(r.off, -1, "reading core %d workload: %v", i, err)
		}
		if r.hdr.Cores[i].FootprintBytes, err = r.uvarint(&crc); err != nil {
			return formatErrf(r.off, -1, "reading core %d footprint: %v", i, err)
		}
	}
	want, err := r.crcFrame()
	if err != nil {
		return formatErrf(r.off, -1, "reading header CRC: %v", err)
	}
	if crc != want {
		return formatErrf(r.off, -1, "header CRC mismatch (computed %08x, stored %08x)", crc, want)
	}
	return nil
}

// Next decodes the next record block, appending its references to
// refs[:len(refs)] and returning the grown slice (pass refs[:0] to
// reuse the buffer). After the footer has validated, Next returns
// io.EOF. Any other condition is a *FormatError.
func (r *Reader) Next(refs []trace.Ref) (core int, out []trace.Ref, err error) {
	if r.footerSeen {
		return 0, refs, io.EOF
	}
	blockOff := r.off
	crc := crc32.Checksum(nil, castagnoli)
	coreU, err := r.uvarint(&crc)
	if err != nil {
		if errors.Is(err, io.EOF) && r.off == blockOff {
			// Clean EOF at a block boundary, but no footer: the file was
			// truncated at a frame edge.
			return 0, refs, formatErrf(blockOff, r.block, "file ends without a footer (truncated?)")
		}
		return 0, refs, formatErrf(blockOff, r.block, "reading block core: %v", err)
	}
	count, err := r.uvarint(&crc)
	if err != nil {
		return 0, refs, formatErrf(blockOff, r.block, "reading block count: %v", err)
	}
	payloadLen, err := r.uvarint(&crc)
	if err != nil {
		return 0, refs, formatErrf(blockOff, r.block, "reading block length: %v", err)
	}
	isFooter := coreU == uint64(len(r.hdr.Cores))
	if !isFooter && coreU > uint64(len(r.hdr.Cores)) {
		return 0, refs, formatErrf(blockOff, r.block, "core %d out of range (header declares %d cores)", coreU, len(r.hdr.Cores))
	}
	if count > maxBlockRefs {
		return 0, refs, formatErrf(blockOff, r.block, "implausible block count %d", count)
	}
	if payloadLen > maxPayloadLen {
		return 0, refs, formatErrf(blockOff, r.block, "implausible block length %d", payloadLen)
	}
	if !isFooter && payloadLen < 2*count {
		// Each reference takes at least two varint bytes.
		return 0, refs, formatErrf(blockOff, r.block, "block length %d too small for %d references", payloadLen, count)
	}
	payloadOff := r.off
	if cap(r.payload) < int(payloadLen) {
		r.payload = make([]byte, payloadLen)
	}
	r.payload = r.payload[:payloadLen]
	if n, err := io.ReadFull(r.br, r.payload); err != nil {
		return 0, refs, formatErrf(blockOff, r.block, "block truncated after %d of %d payload bytes", n, payloadLen)
	}
	r.off += int64(payloadLen)
	crc = crc32.Update(crc, castagnoli, r.payload)
	want, err := r.crcFrame()
	if err != nil {
		return 0, refs, formatErrf(blockOff, r.block, "block truncated in its CRC frame")
	}
	if crc != want {
		return 0, refs, formatErrf(blockOff, r.block, "CRC mismatch (computed %08x, stored %08x)", crc, want)
	}

	if isFooter {
		if err := r.checkFooter(blockOff, count); err != nil {
			return 0, refs, err
		}
		r.footerSeen = true
		// The footer must be the last frame in the file.
		if _, err := r.br.ReadByte(); err == nil {
			return 0, refs, formatErrf(r.off, r.block, "trailing data after the footer")
		} else if !errors.Is(err, io.EOF) {
			return 0, refs, formatErrf(r.off, r.block, "reading past the footer: %v", err)
		}
		r.block++
		return 0, refs, io.EOF
	}

	out, err = decodePayload(r.payload, int(count), refs)
	if err != nil {
		return 0, refs, formatErrf(blockOff, r.block, "core %d payload: %v", coreU, err)
	}
	r.counts[coreU] += count
	r.last = BlockInfo{Index: r.block, Core: int(coreU), Count: int(count), PayloadOff: payloadOff, PayloadLen: int(payloadLen)}
	r.block++
	return int(coreU), out, nil
}

// checkFooter validates the footer payload against the references
// actually decoded.
func (r *Reader) checkFooter(blockOff int64, count uint64) error {
	if count != uint64(len(r.hdr.Cores)) {
		return formatErrf(blockOff, r.block, "footer declares %d cores, header %d", count, len(r.hdr.Cores))
	}
	pos := 0
	for i := range r.hdr.Cores {
		n, w := binary.Uvarint(r.payload[pos:])
		if w <= 0 {
			return formatErrf(blockOff, r.block, "footer count %d malformed", i)
		}
		pos += w
		if n != r.counts[i] {
			return formatErrf(blockOff, r.block, "core %d has %d references, footer promises %d (blocks missing?)", i, r.counts[i], n)
		}
	}
	if pos != len(r.payload) {
		return formatErrf(blockOff, r.block, "footer has %d trailing bytes", len(r.payload)-pos)
	}
	return nil
}

// Counts returns the per-core reference totals decoded so far.
func (r *Reader) Counts() []uint64 {
	out := make([]uint64, len(r.counts))
	copy(out, r.counts)
	return out
}

// Blocks returns how many blocks (including the footer) have decoded.
func (r *Reader) Blocks() int { return r.block }

// decodePayload decodes count references from a self-contained block
// payload, appending to refs.
func decodePayload(payload []byte, count int, refs []trace.Ref) ([]trace.Ref, error) {
	pos := 0
	var last uint64
	for i := 0; i < count; i++ {
		gw, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return refs, errorfRef(i, "gap varint malformed")
		}
		pos += n
		du, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return refs, errorfRef(i, "address delta varint malformed")
		}
		pos += n
		last += uint64(unzigzag(du))
		refs = append(refs, trace.Ref{Gap: gw >> 1, VAddr: last, Write: gw&1 == 1})
	}
	if pos != len(payload) {
		return refs, errorfRef(count, "%d trailing payload bytes", len(payload)-pos)
	}
	return refs, nil
}

// errorfRef prefixes a payload decode error with the failing ref index.
func errorfRef(i int, format string, args ...any) error {
	return fmt.Errorf("ref %d: %s", i, fmt.Sprintf(format, args...))
}

// uvarint reads a canonical uvarint, folding its bytes into crc.
func (r *Reader) uvarint(crc *uint32) (uint64, error) {
	var x uint64
	var s uint
	var buf [binary.MaxVarintLen64]byte
	for i := 0; ; i++ {
		if i == binary.MaxVarintLen64 {
			return 0, errors.New("varint overflows 64 bits")
		}
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		r.off++
		buf[i] = b
		if b < 0x80 {
			if i > 0 && b == 0 {
				return 0, errors.New("non-canonical varint")
			}
			x |= uint64(b) << s
			*crc = crc32.Update(*crc, castagnoli, buf[:i+1])
			return x, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, errors.New("varint overflows 64 bits")
		}
	}
}

// str reads a uvarint-length-prefixed string bounded by maxLen.
func (r *Reader) str(crc *uint32, maxLen int) (string, error) {
	n, err := r.uvarint(crc)
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) {
		return "", fmt.Errorf("length field %d exceeds the format limit %d", n, maxLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.br, b); err != nil {
		return "", err
	}
	r.off += int64(n)
	*crc = crc32.Update(*crc, castagnoli, b)
	return string(b), nil
}

// crcFrame reads the little-endian CRC32 trailer of a frame.
func (r *Reader) crcFrame() (uint32, error) {
	var b [crcLen]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		return 0, err
	}
	r.off += crcLen
	return binary.LittleEndian.Uint32(b[:]), nil
}

package experiments

import (
	"fmt"

	"chameleon/internal/config"
	"chameleon/internal/osmodel"
	"chameleon/internal/sim"
	"chameleon/internal/stats"
	"chameleon/internal/workload"
)

// Fig3 reproduces the free-memory-over-time experiment: the Table II
// workloads run back to back on a 24 GB (scaled) system, each one
// allocating its footprint in a ramp, holding it, then freeing it. The
// table is the sampled free-memory timeline (the paper samples every
// two minutes with numastat; we sample once per ramp/hold step).
func Fig3(o Options) (*stats.Table, error) {
	o = o.Defaults()
	cfg := o.Config()
	osm, err := osmodel.New(osmodel.Config{
		TotalBytes:      cfg.TotalCapacity(),
		PageBytes:       uint64(cfg.OS.PageBytes),
		PageFaultCycles: cfg.OS.PageFaultCycles,
		Alloc:           osmodel.AllocShuffled,
		Seed:            o.Seed,
	}, nil)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("sample", "workload", "phase", "free-MB(x scale)")
	sample := 0
	record := func(wl, phase string) {
		sample++
		mb := float64(osm.FreeBytes()) * float64(o.Scale) / float64(config.MB)
		t.AddRow(sample, wl, phase, mb)
	}
	const rampSteps = 6
	const holdSteps = 4
	for _, wl := range workload.Fig3Sequence() {
		prof, err := o.profile(wl)
		if err != nil {
			return nil, err
		}
		procs := make([]*osmodel.Process, workload.Copies)
		for i := range procs {
			procs[i] = osm.NewProcess()
		}
		record(wl, "start")
		for step := 1; step <= rampSteps; step++ {
			lo := prof.FootprintBytes * uint64(step-1) / rampSteps
			hi := prof.FootprintBytes * uint64(step) / rampSteps
			for _, p := range procs {
				osm.Map(p, lo, hi-lo, 0)
			}
			record(wl, "ramp")
		}
		for step := 0; step < holdSteps; step++ {
			record(wl, "run")
		}
		for _, p := range procs {
			osm.FreeAll(p, 0)
		}
		record(wl, "freed")
	}
	return t, nil
}

// CapacityPoints are the OS-visible capacities of the Figure 4/5 sweep
// in (unscaled) GB.
var CapacityPoints = []uint64{16, 18, 20, 22, 24, 26, 28}

// sweepWorkloads returns the capacity-study workload list restricted to
// the selected subset (falling back to the full Figure 4 set when the
// subset has no high-footprint members).
func sweepWorkloads(o Options) []string {
	want := map[string]bool{}
	for _, wl := range o.Workloads {
		want[wl] = true
	}
	var out []string
	for _, wl := range workload.HighFootprint() {
		if want[wl] {
			out = append(out, wl)
		}
	}
	if len(out) == 0 {
		return workload.HighFootprint()
	}
	return out
}

// capacitySweep runs the capacity-study workloads on flat systems of
// each capacity and returns the raw results[capacityGB][workload].
func capacitySweep(o Options) (map[uint64]map[string]*sim.Result, error) {
	o = o.Defaults()
	cfg := o.Config()
	out := map[uint64]map[string]*sim.Result{}
	for _, gb := range CapacityPoints {
		out[gb] = map[string]*sim.Result{}
		for _, wl := range sweepWorkloads(o) {
			prof, err := o.profile(wl)
			if err != nil {
				return nil, err
			}
			res, err := o.runOne(sim.Options{
				Config:        cfg,
				Policy:        sim.PolicyFlat,
				Workload:      prof,
				BaselineBytes: gb * config.GB / o.Scale,
			})
			if err != nil {
				return nil, fmt.Errorf("capacity %dGB/%s: %w", gb, wl, err)
			}
			out[gb][wl] = res
		}
	}
	return out, nil
}

// Fig4 reproduces the execution-time improvement over the 16 GB system
// as capacity grows (equation 1 of the paper; the paper's averages
// rise from 29.5 % at 18 GB to 75.4 % at 24 GB and saturate).
func Fig4(o Options) (*stats.Table, error) {
	sweep, err := capacitySweep(o)
	if err != nil {
		return nil, err
	}
	header := []string{"workload"}
	for _, gb := range CapacityPoints[1:] {
		header = append(header, fmt.Sprintf("%dGB-imp%%", gb))
	}
	t := stats.NewTable(header...)
	sums := make([]float64, len(CapacityPoints)-1)
	execTime := func(r *sim.Result) float64 {
		times := make([]float64, len(r.Cores))
		for i, c := range r.Cores {
			times[i] = float64(c.Cycles)
		}
		return stats.GeoMean(times)
	}
	wls := sweepWorkloads(o.Defaults())
	for _, wl := range wls {
		base := execTime(sweep[16][wl])
		row := []any{wl}
		for i, gb := range CapacityPoints[1:] {
			imp := (base - execTime(sweep[gb][wl])) / base * 100
			sums[i] += imp
			row = append(row, imp)
		}
		t.AddRow(row...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(wls)))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig5 reproduces page faults and CPU utilisation versus capacity:
// faults fall and utilisation rises towards 100 % as the footprint
// fits.
func Fig5(o Options) (*stats.Table, error) {
	sweep, err := capacitySweep(o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("workload", "capacity-GB", "major-faults", "cpu-util%")
	for _, wl := range sweepWorkloads(o.Defaults()) {
		for _, gb := range CapacityPoints {
			r := sweep[gb][wl]
			t.AddRow(wl, gb, r.OS.MajorFaults, r.CPUUtilization*100)
		}
	}
	return t, nil
}

package experiments

import (
	"context"

	"chameleon/internal/config"
	"chameleon/internal/dse"
	"chameleon/internal/policy"
	"chameleon/internal/sim"
	"chameleon/internal/workload"
)

// RunDSE executes a design-space sweep in-process, sharing the matrix
// runner's conventions: Options supply the per-cell instruction and
// warm-up budgets, bounded parallelism with the Parallelism × Threads
// oversubscription clamp, context cancellation through every cell, and
// joined per-cell errors. Options axes (Scale, Seed, Workloads,
// Policies, CacheLevels, MemoryTiers) seed the corresponding sweep
// axis when the spec leaves it empty, so existing experiment configs
// lift directly into sweeps.
func RunDSE(ctx context.Context, o Options, spec dse.Spec) (*dse.Result, error) {
	o = o.Defaults()
	if len(spec.Scales) == 0 {
		spec.Scales = []uint64{o.Scale}
	}
	if len(spec.Seeds) == 0 {
		spec.Seeds = []uint64{o.Seed}
	}
	if len(spec.Workloads) == 0 {
		spec.Workloads = o.Workloads
	}
	if len(spec.Policies) == 0 {
		for _, p := range o.Policies {
			spec.Policies = append(spec.Policies, string(p))
		}
	}
	if len(spec.CacheLevelVariants) == 0 && len(o.CacheLevels) > 0 {
		spec.CacheLevelVariants = [][]config.CacheLevelConfig{o.CacheLevels}
	}
	if len(spec.MemoryTierVariants) == 0 && len(o.MemoryTiers) > 0 {
		spec.MemoryTierVariants = [][]config.MemTierConfig{config.CloneTiers(o.MemoryTiers)}
	}
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}

	threads := effectiveThreads(o.Threads, o.Parallelism)
	ro := dse.RunOptions{
		Parallelism: o.Parallelism,
		Evaluate: func(ctx context.Context, c dse.Cell) (dse.Eval, error) {
			res, err := o.runCell(ctx, spec, c, threads)
			return dse.Eval{Result: res}, err
		},
	}
	if o.Progress != nil {
		ro.Progress = func(done, _, pruned, total int) { o.Progress(done+pruned, total) }
	}
	return spec.Run(ctx, ro)
}

// runCell simulates one sweep cell on its own scaled machine.
func (o Options) runCell(ctx context.Context, spec dse.Spec, c dse.Cell, threads int) (*sim.Result, error) {
	cfg := config.Default(c.Scale)
	if c.CacheVariant >= 0 {
		cfg.CacheLevels = spec.CacheLevelVariants[c.CacheVariant]
	}
	if c.TierVariant >= 0 {
		cfg.MemoryTiers = config.CloneTiers(spec.MemoryTierVariants[c.TierVariant])
	}
	if c.Ratio > 0 {
		var err error
		if cfg, err = cfg.WithRatio(c.Ratio); err != nil {
			return nil, err
		}
	}
	prof, err := workload.ByName(c.Workload)
	if err != nil {
		return nil, err
	}
	so := sim.Options{
		Config:             cfg,
		Policy:             sim.PolicyKind(c.Policy),
		Workload:           prof.Scale(c.Scale),
		Seed:               c.Seed,
		WarmupInstructions: o.Warmup,
		Threads:            threads,
	}
	desc, err := policy.Lookup(c.Policy)
	if err != nil {
		return nil, err
	}
	if desc.RequiresBaseline {
		so.BaselineBytes = 24 * config.GB / c.Scale
	}
	sys, err := sim.New(so)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(ctx, o.Instructions)
}

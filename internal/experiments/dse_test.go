package experiments

import (
	"context"
	"testing"

	"chameleon/internal/dse"
)

func TestRunDSE(t *testing.T) {
	o := Options{
		Scale:        1024,
		Instructions: 2_000,
		Warmup:       1,
		Seed:         3,
		Parallelism:  4,
	}
	spec := dse.Spec{
		Policies:  []string{"chameleon-opt", "flat"},
		Workloads: []string{"bwaves", "mcf"},
	}
	res, err := RunDSE(context.Background(), o, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCells != 4 || res.Evaluated != 4 {
		t.Fatalf("evaluated %d/%d cells, want 4/4", res.Evaluated, res.TotalCells)
	}
	if len(res.Front) == 0 || len(res.Front)+res.Dominated != len(res.Points) {
		t.Fatalf("front %d + dominated %d != points %d", len(res.Front), res.Dominated, len(res.Points))
	}
	// Options.Seed seeded the seed axis.
	for _, p := range res.Points {
		if p.Cell.Seed != 3 {
			t.Fatalf("cell %d ran seed %d, want the Options seed 3", p.Cell.Index, p.Cell.Seed)
		}
	}
	// Flat requires a baseline; a zero-capacity flat run would report
	// zero capacity and dominate on that axis spuriously.
	for i, o := range res.Objectives {
		if o.Key == dse.KeyTotalCapacity {
			for _, p := range res.Points {
				if p.Values[i] <= 0 {
					t.Fatalf("cell %d (%s) reports non-positive total capacity %v", p.Cell.Index, p.Cell.Policy, p.Values[i])
				}
			}
		}
	}
}

package experiments

import (
	"fmt"

	"chameleon/internal/config"
	"chameleon/internal/osmodel"
	"chameleon/internal/sim"
	"chameleon/internal/stats"
)

// Fig15 reproduces the stacked-DRAM hit-rate comparison (Alloy Cache,
// PoM, Chameleon, Chameleon-Opt). Paper averages: 62.4 %, 81 %,
// 84.6 %, 89.4 %.
func Fig15(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "alloy", "pom", "chameleon", "chameleon-opt")
	kinds := []sim.PolicyKind{sim.PolicyAlloy, sim.PolicyPoM, sim.PolicyChameleon, sim.PolicyChameleonOpt}
	sums := make([]float64, len(kinds))
	for _, wl := range m.Opts.Workloads {
		row := []any{wl}
		for i, k := range kinds {
			hr := m.Metric(k, wl, "stacked_hit_rate") * 100
			sums[i] += hr
			row = append(row, hr)
		}
		t.AddRow(row...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(m.Opts.Workloads)))
	}
	t.AddRow(avg...)
	return t
}

// Fig16 reproduces the cache-mode vs PoM-mode segment-group
// distribution for Chameleon and Chameleon-Opt. Paper averages: 9.2 %
// and 40.6 % of groups in cache mode.
func Fig16(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "chameleon-cache%", "chameleon-opt-cache%")
	var s1, s2 float64
	for _, wl := range m.Opts.Workloads {
		c := m.Metric(sim.PolicyChameleon, wl, "cache_mode_fraction") * 100
		o := m.Metric(sim.PolicyChameleonOpt, wl, "cache_mode_fraction") * 100
		s1 += c
		s2 += o
		t.AddRow(wl, c, o)
	}
	n := float64(len(m.Opts.Workloads))
	t.AddRow("Average", s1/n, s2/n)
	return t
}

// Fig17 reproduces segment swaps normalised to PoM. Paper averages:
// Chameleon 0.856, Chameleon-Opt 0.569.
func Fig17(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "pom", "chameleon", "chameleon-opt")
	var s1, s2 float64
	for _, wl := range m.Opts.Workloads {
		base := m.Metric(sim.PolicyPoM, wl, "ctrl.swaps")
		c := m.Metric(sim.PolicyChameleon, wl, "ctrl.swaps")
		o := m.Metric(sim.PolicyChameleonOpt, wl, "ctrl.swaps")
		nc, no := 1.0, 1.0
		if base > 0 {
			nc, no = c/base, o/base
		}
		s1 += nc
		s2 += no
		t.AddRow(wl, 1.0, nc, no)
	}
	n := float64(len(m.Opts.Workloads))
	t.AddRow("Average", 1.0, s1/n, s2/n)
	return t
}

// Fig18 reproduces the normalised-IPC comparison across the two flat
// baselines, Alloy, PoM, Chameleon and Chameleon-Opt (normalised to
// the 20 GB DDR3 baseline). Paper geomeans: 24 GB 1.356, PoM 1.852,
// Chameleon 1.968, Chameleon-Opt 2.063.
func Fig18(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "flat20", "flat24", "alloy", "pom", "chameleon", "chameleon-opt")
	kinds := []sim.PolicyKind{policyFlat24, sim.PolicyAlloy, sim.PolicyPoM, sim.PolicyChameleon, sim.PolicyChameleonOpt}
	geos := make([][]float64, len(kinds))
	for _, wl := range m.Opts.Workloads {
		base := m.Metric(sim.PolicyFlat, wl, "ipc_geomean")
		row := []any{wl, 1.0}
		for i, k := range kinds {
			v := m.Metric(k, wl, "ipc_geomean") / base
			geos[i] = append(geos[i], v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	avg := []any{"GeoMean", 1.0}
	for _, g := range geos {
		avg = append(avg, stats.GeoMean(g))
	}
	t.AddRow(avg...)
	return t
}

// Fig19 reproduces the average memory access latency (CPU cycles) for
// PoM, Chameleon and Chameleon-Opt.
func Fig19(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "pom", "chameleon", "chameleon-opt")
	kinds := []sim.PolicyKind{sim.PolicyPoM, sim.PolicyChameleon, sim.PolicyChameleonOpt}
	geos := make([][]float64, len(kinds))
	for _, wl := range m.Opts.Workloads {
		row := []any{wl}
		for i, k := range kinds {
			v := m.Metric(k, wl, "amat_cycles")
			geos[i] = append(geos[i], v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	avg := []any{"GeoMean"}
	for _, g := range geos {
		avg = append(avg, stats.GeoMean(g))
	}
	t.AddRow(avg...)
	return t
}

// Fig20 compares Chameleon against the OS-based placements (normalised
// to the 20 GB baseline): first-touch NUMA allocation and AutoNUMA at
// three thresholds. Paper: Chameleon +28.7 %/+19.1 % over
// first-touch/AutoNUMA, Chameleon-Opt +34.8 %/+24.9 %.
func Fig20(m *Matrix, auto map[float64]map[string]*sim.Result) *stats.Table {
	t := stats.NewTable("workload", "flat20", "flat24", "first-touch",
		"autonuma-70", "autonuma-80", "autonuma-90", "chameleon", "chameleon-opt")
	var geoCols [][]float64
	addGeo := func(col int, v float64) {
		for len(geoCols) <= col {
			geoCols = append(geoCols, nil)
		}
		geoCols[col] = append(geoCols[col], v)
	}
	for _, wl := range m.Opts.Workloads {
		base := m.Metric(sim.PolicyFlat, wl, "ipc_geomean")
		row := []any{wl, 1.0}
		col := 0
		for _, v := range []float64{
			m.Metric(policyFlat24, wl, "ipc_geomean") / base,
			m.Metric(sim.PolicyNUMAFlat, wl, "ipc_geomean") / base,
			auto[0.7][wl].GeoMeanIPC / base,
			auto[0.8][wl].GeoMeanIPC / base,
			auto[0.9][wl].GeoMeanIPC / base,
			m.Metric(sim.PolicyChameleon, wl, "ipc_geomean") / base,
			m.Metric(sim.PolicyChameleonOpt, wl, "ipc_geomean") / base,
		} {
			row = append(row, v)
			addGeo(col, v)
			col++
		}
		t.AddRow(row...)
	}
	avg := []any{"GeoMean", 1.0}
	for _, g := range geoCols {
		avg = append(avg, stats.GeoMean(g))
	}
	t.AddRow(avg...)
	return t
}

// Fig22 reproduces the Polymorphic Memory comparison (normalised IPC
// over the 20 GB baseline). Paper: Chameleon +10.5 % and Chameleon-Opt
// +15.8 % over Polymorphic Memory.
func Fig22(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "flat20", "flat24", "polymorphic", "chameleon", "chameleon-opt")
	kinds := []sim.PolicyKind{policyFlat24, sim.PolicyPolymorphic, sim.PolicyChameleon, sim.PolicyChameleonOpt}
	geos := make([][]float64, len(kinds))
	for _, wl := range m.Opts.Workloads {
		base := m.Metric(sim.PolicyFlat, wl, "ipc_geomean")
		row := []any{wl, 1.0}
		for i, k := range kinds {
			v := m.Metric(k, wl, "ipc_geomean") / base
			geos[i] = append(geos[i], v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	avg := []any{"GeoMean", 1.0}
	for _, g := range geos {
		avg = append(avg, stats.GeoMean(g))
	}
	t.AddRow(avg...)
	return t
}

// Fig2a reproduces the first-touch NUMA allocator's stacked-DRAM hit
// rate (paper average: 18.5 %).
func Fig2a(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "hit-rate%")
	sum := 0.0
	for _, wl := range m.Opts.Workloads {
		hr := m.Metric(sim.PolicyNUMAFlat, wl, "stacked_hit_rate") * 100
		sum += hr
		t.AddRow(wl, hr)
	}
	t.AddRow("Average", sum/float64(len(m.Opts.Workloads)))
	return t
}

// RunAutoNUMA produces the AutoNUMA results for Figures 2b/2c and 20:
// one NUMA-flat run per workload per threshold.
func RunAutoNUMA(o Options, thresholds []float64) (map[float64]map[string]*sim.Result, error) {
	o = o.Defaults()
	cfg := o.Config()
	out := map[float64]map[string]*sim.Result{}
	for _, th := range thresholds {
		out[th] = map[string]*sim.Result{}
		for _, wl := range o.Workloads {
			prof, err := o.profile(wl)
			if err != nil {
				return nil, err
			}
			// The paper's 10M-cycle scan epochs assume 500M-instruction
			// runs; scale the epoch so a run of this length spans a
			// comparable number of epochs.
			epoch := (o.Warmup + o.Instructions) / 8
			if epoch < 100_000 {
				epoch = 100_000
			}
			res, err := o.runOne(sim.Options{
				Config:   cfg,
				Policy:   sim.PolicyNUMAFlat,
				Workload: prof,
				AutoNUMA: &osmodel.AutoNUMAConfig{
					EpochCycles: epoch,
					Threshold:   th,
					ScanPages:   4096,
				},
			})
			if err != nil {
				return nil, fmt.Errorf("autonuma %.2f/%s: %w", th, wl, err)
			}
			out[th][wl] = res
		}
	}
	return out, nil
}

// Fig2b reproduces the AutoNUMA stacked-DRAM hit rates at the 70/80/90%
// thresholds (paper average ~64.4 %, rising with the threshold).
func Fig2b(o Options, auto map[float64]map[string]*sim.Result) *stats.Table {
	o = o.Defaults()
	t := stats.NewTable("workload", "thresh-70%", "thresh-80%", "thresh-90%")
	sums := make([]float64, 3)
	ths := []float64{0.7, 0.8, 0.9}
	for _, wl := range o.Workloads {
		row := []any{wl}
		for i, th := range ths {
			hr := auto[th][wl].StackedHitRate * 100
			sums[i] += hr
			row = append(row, hr)
		}
		t.AddRow(row...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(o.Workloads)))
	}
	t.AddRow(avg...)
	return t
}

// Fig2c reproduces the cloverleaf AutoNUMA timeline: migrated pages and
// cumulative hit rate per 10M-cycle epoch at the 90 % threshold.
func Fig2c(o Options) (*stats.Table, error) {
	o = o.Defaults()
	o.Workloads = []string{"cloverleaf"}
	auto, err := RunAutoNUMA(o, []float64{0.9})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("epoch", "migrations", "enomem", "hit-rate%")
	for _, rec := range auto[0.9]["cloverleaf"].NUMATimeline {
		t.AddRow(rec.Epoch, rec.Migrations, rec.Failed, rec.HitRate*100)
	}
	return t, nil
}

// Fig21 reproduces the mode-distribution sensitivity to the
// stacked:off-chip capacity ratio for Chameleon-Opt (paper: 33 % cache
// mode at 1:3, 40.6 % at 1:5, 48.7 % at 1:7).
func Fig21(o Options) (*stats.Table, error) {
	o = o.Defaults()
	t := stats.NewTable("workload", "1:3-cache%", "1:5-cache%", "1:7-cache%")
	sums := make([]float64, 3)
	ratios := []int{3, 5, 7}
	for _, wl := range o.Workloads {
		prof, err := o.profile(wl)
		if err != nil {
			return nil, err
		}
		row := []any{wl}
		for i, ratio := range ratios {
			cfg, err := o.Config().WithRatio(ratio)
			if err != nil {
				return nil, err
			}
			res, err := o.runOne(sim.Options{Config: cfg, Policy: sim.PolicyChameleonOpt, Workload: prof})
			if err != nil {
				return nil, fmt.Errorf("fig21 %d/%s: %w", ratio, wl, err)
			}
			frac := res.CacheModeFraction * 100
			sums[i] += frac
			row = append(row, frac)
		}
		t.AddRow(row...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(o.Workloads)))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig23 reproduces the sensitivity of normalised IPC to the capacity
// ratio (paper: at 1:3 Chameleon/Chameleon-Opt beat PoM by 5.9 %/7.6 %;
// at 1:7 by 8.1 %/12.4 %).
func Fig23(o Options) (*stats.Table, error) {
	o = o.Defaults()
	t := stats.NewTable("ratio", "workload", "flat20", "flat24", "pom", "chameleon", "chameleon-opt")
	for _, ratio := range []int{3, 7} {
		cfg, err := o.Config().WithRatio(ratio)
		if err != nil {
			return nil, err
		}
		kinds := []sim.PolicyKind{sim.PolicyPoM, sim.PolicyChameleon, sim.PolicyChameleonOpt}
		geos := make([][]float64, len(kinds)+1)
		for _, wl := range o.Workloads {
			prof, err := o.profile(wl)
			if err != nil {
				return nil, err
			}
			base, err := o.runOne(sim.Options{Config: cfg, Policy: sim.PolicyFlat, Workload: prof,
				BaselineBytes: 20 * config.GB / o.Scale})
			if err != nil {
				return nil, err
			}
			b24, err := o.runOne(sim.Options{Config: cfg, Policy: sim.PolicyFlat, Workload: prof,
				BaselineBytes: 24 * config.GB / o.Scale})
			if err != nil {
				return nil, err
			}
			row := []any{fmt.Sprintf("1:%d", ratio), wl, 1.0, b24.GeoMeanIPC / base.GeoMeanIPC}
			geos[0] = append(geos[0], b24.GeoMeanIPC/base.GeoMeanIPC)
			for i, k := range kinds {
				res, err := o.runOne(sim.Options{Config: cfg, Policy: k, Workload: prof})
				if err != nil {
					return nil, err
				}
				v := res.GeoMeanIPC / base.GeoMeanIPC
				geos[i+1] = append(geos[i+1], v)
				row = append(row, v)
			}
			t.AddRow(row...)
		}
		avg := []any{fmt.Sprintf("1:%d", ratio), "GeoMean", 1.0}
		for _, g := range geos {
			avg = append(avg, stats.GeoMean(g))
		}
		t.AddRow(avg...)
	}
	return t, nil
}

// Table1 renders the simulated configuration. The cache rows follow
// whatever hierarchy the options resolve to, not a fixed L1/L2/L3.
func Table1(o Options) *stats.Table {
	o = o.Defaults()
	c := o.Config()
	t := stats.NewTable("component", "configuration")
	t.AddRow("Cores", fmt.Sprintf("%d @ %.1f GHz, MLP %d", c.CPU.Cores, c.CPU.FreqHz/1e9, c.CPU.MaxMLP))
	for _, lv := range c.CacheLevels {
		share := "private"
		if lv.Shared {
			share = "shared"
		}
		t.AddRow(lv.Name, fmt.Sprintf("%d KB, %d-way, %d B lines, %d cycles, %s",
			lv.SizeBytes/config.KB, lv.Ways, lv.LineBytes, lv.LatencyCycles, share))
	}
	for i, tier := range c.MemoryTiers {
		label := fmt.Sprintf("Tier %d (%s)", i, tier.Name())
		switch tier.ResolvedKind() {
		case config.TierNVM:
			n := tier.NVM
			t.AddRow(label, fmt.Sprintf("%d MB NVM, %.0f/%.0f ns R/W, %.1f/%.1f GB/s R/W",
				n.CapacityBytes/config.MB, n.ReadLatencyNanos, n.WriteLatencyNanos,
				n.ReadBandwidth/1e9, n.WriteBandwidth/1e9))
		case config.TierCXL:
			x := tier.CXL
			t.AddRow(label, fmt.Sprintf("%d MB CXL, %.0f ns link, %.1f GB/s",
				x.CapacityBytes/config.MB, x.LinkLatencyNanos, x.LinkBandwidth/1e9))
		default:
			d := tier.DRAM
			t.AddRow(label, fmt.Sprintf("%d MB, %d ch, %d-bit @ %.1f GHz (%.1f GB/s)",
				d.CapacityBytes/config.MB, d.Channels, d.BusWidthBits, d.BusFreqHz/1e9, d.PeakBandwidth()/1e9))
		}
	}
	t.AddRow("Page-fault latency", fmt.Sprintf("%d cycles (SSD)", c.OS.PageFaultCycles))
	t.AddRow("Segment", fmt.Sprintf("%d B, swap threshold %d", c.MemSys.SegmentBytes, c.MemSys.SwapThreshold))
	t.AddRow("Scale divisor", fmt.Sprintf("%d", o.Scale))
	return t
}

// Table2 measures each workload's achieved LLC-MPKI and footprint in
// the simulator, against the Table II targets.
func Table2(m *Matrix) *stats.Table {
	t := stats.NewTable("workload", "target-MPKI", "measured-MPKI", "footprint-GB(x scale)")
	for _, wl := range m.Opts.Workloads {
		res := m.get(sim.PolicyFlat, wl)
		var mpki float64
		for _, c := range res.Cores {
			mpki += c.MPKI
		}
		mpki /= float64(len(res.Cores))
		prof, _ := m.Opts.profile(wl)
		fullGB := float64(prof.FootprintBytes*12) * float64(m.Opts.Scale) / float64(config.GB)
		target, _ := m.Opts.profile(wl)
		t.AddRow(wl, target.TargetLLCMPKI, mpki, fullGB)
	}
	return t
}

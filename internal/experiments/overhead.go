package experiments

import (
	"chameleon/internal/stats"
)

// OverheadParams parameterise the §VI-F analytic model of the
// ISA-Alloc/ISA-Free overhead: every allocation/reclamation may trigger
// one segment swap through the remapping hardware.
type OverheadParams struct {
	Swaps          float64 // ISA-triggered segment swaps over the run
	CyclesPerLine  float64 // observed per-64B-line swap latency (CPU cycles)
	SegmentBytes   float64
	LineBytes      float64
	CPUFreqHz      float64
	ElapsedSeconds float64
}

// PaperOverheadParams are the constants the paper states for the model:
// 242.8 M swaps over 53.8 h at 700 cycles/line on a 2.25 GHz Xeon.
// Note that the paper's stated inputs give 2417 s (1.25 %), while its
// printed result is 2071.89 s (1.06 %) — the printed result implies
// ~600 cycles per line. Both are "well under 2 %", which is the claim
// that matters; EXPERIMENTS.md records the discrepancy.
func PaperOverheadParams() OverheadParams {
	return OverheadParams{
		Swaps:          242.8e6,
		CyclesPerLine:  700,
		SegmentBytes:   2048,
		LineBytes:      64,
		CPUFreqHz:      2.25e9,
		ElapsedSeconds: 193_680,
	}
}

// OverheadSeconds returns the time spent swapping segments.
func (p OverheadParams) OverheadSeconds() float64 {
	linesPerSeg := p.SegmentBytes / p.LineBytes
	return p.Swaps * p.CyclesPerLine * linesPerSeg / p.CPUFreqHz
}

// OverheadPercent returns the swap time as a percentage of the
// end-to-end execution time.
func (p OverheadParams) OverheadPercent() float64 {
	return p.OverheadSeconds() / p.ElapsedSeconds * 100
}

// Overhead renders the §VI-F overhead analysis with the paper's stated
// constants, plus the 600-cycles/line variant implied by the paper's
// printed 2071.89 s / 1.06 % result.
func Overhead() *stats.Table {
	p := PaperOverheadParams()
	t := stats.NewTable("quantity", "value")
	t.AddRow("ISA-triggered swaps", p.Swaps)
	t.AddRow("cycles per 64B line (stated)", p.CyclesPerLine)
	t.AddRow("lines per segment", p.SegmentBytes/p.LineBytes)
	t.AddRow("swap time (s)", p.OverheadSeconds())
	t.AddRow("elapsed time (s)", p.ElapsedSeconds)
	t.AddRow("overhead (%)", p.OverheadPercent())
	implied := p
	implied.CyclesPerLine = 600
	t.AddRow("overhead (%) at 600 cyc/line (paper's printed figure)", implied.OverheadPercent())
	return t
}

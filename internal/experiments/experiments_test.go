package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// tiny returns options small enough for unit testing the drivers.
func tiny(workloads ...string) Options {
	if len(workloads) == 0 {
		workloads = []string{"bwaves"}
	}
	return Options{
		Scale:        512,
		Instructions: 50_000,
		Warmup:       500_000,
		Seed:         42,
		Workloads:    workloads,
	}.Defaults()
}

func TestDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Scale == 0 || o.Instructions == 0 || o.Warmup == 0 || o.Seed == 0 {
		t.Error("defaults not applied")
	}
	if len(o.Workloads) != 14 {
		t.Errorf("default workloads = %d, want all 14", len(o.Workloads))
	}
	if o.Parallelism <= 0 {
		t.Error("parallelism default missing")
	}
}

func TestMatrixAndMainFigures(t *testing.T) {
	o := tiny("bwaves")
	m, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	// Every policy has a result for every workload.
	for _, pk := range m.Policies {
		for _, wl := range o.Workloads {
			if m.Results[pk][wl] == nil {
				t.Fatalf("missing result %v/%s", pk, wl)
			}
		}
	}
	for name, table := range map[string]interface{ String() string }{
		"fig15":  Fig15(m),
		"fig16":  Fig16(m),
		"fig17":  Fig17(m),
		"fig18":  Fig18(m),
		"fig19":  Fig19(m),
		"fig22":  Fig22(m),
		"fig2a":  Fig2a(m),
		"table2": Table2(m),
	} {
		s := table.String()
		if !strings.Contains(s, "bwaves") {
			t.Errorf("%s missing workload row:\n%s", name, s)
		}
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	o := tiny("nope")
	if _, err := RunMatrix(o); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestFig3FreeMemoryVaries(t *testing.T) {
	o := tiny()
	tab, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 20 {
		t.Fatalf("timeline too short: %d lines", len(lines))
	}
	// Free memory must both shrink (ramp) and recover (free).
	var values []float64
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		var v float64
		if _, err := fmtSscan(f[len(f)-1], &v); err != nil {
			t.Fatalf("bad value %q", f[len(f)-1])
		}
		values = append(values, v)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV <= minV*1.5 {
		t.Errorf("free memory barely varied: min %.0f max %.0f", minV, maxV)
	}
	if last := values[len(values)-1]; last < maxV*0.9 {
		t.Errorf("memory not recovered after the last workload freed: %v of %v", last, maxV)
	}
}

func TestFig4ImprovementMonotoneIsh(t *testing.T) {
	o := tiny("GemsFDTD")
	o.Instructions = 30_000
	tab, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "GemsFDTD") {
		t.Fatalf("missing workload:\n%s", s)
	}
	// The average row's 24 GB improvement should exceed the 18 GB one.
	lines := strings.Split(strings.TrimSpace(tab.CSV()), "\n")
	last := strings.Split(lines[len(lines)-1], ",")
	var imp18, imp24 float64
	fmtSscan(last[1], &imp18)
	fmtSscan(last[4], &imp24)
	if imp24 <= imp18 {
		t.Errorf("24 GB improvement (%.1f%%) should exceed 18 GB (%.1f%%)", imp24, imp18)
	}
}

func TestFig5FaultsDropWithCapacity(t *testing.T) {
	o := tiny("GemsFDTD")
	o.Instructions = 30_000
	tab, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tab.CSV()), "\n")
	var f16, f24 float64
	for _, l := range lines[1:] {
		c := strings.Split(l, ",")
		if c[1] == "16" {
			fmtSscan(c[2], &f16)
		}
		if c[1] == "24" {
			fmtSscan(c[2], &f24)
		}
	}
	if f16 <= f24 {
		t.Errorf("16 GB faults (%v) should exceed 24 GB faults (%v)", f16, f24)
	}
}

func TestFig21RatioShape(t *testing.T) {
	o := tiny("bwaves")
	o.Instructions = 30_000
	tab, err := Fig21(o)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tab.CSV()), "\n")
	avg := strings.Split(lines[len(lines)-1], ",")
	var r3, r7 float64
	fmtSscan(avg[1], &r3)
	fmtSscan(avg[3], &r7)
	if r3 >= r7 {
		t.Errorf("1:7 cache-mode share (%.1f) should exceed 1:3 (%.1f)", r7, r3)
	}
}

func TestAutoNUMAAndFig2b(t *testing.T) {
	o := tiny("bwaves")
	auto, err := RunAutoNUMA(o, []float64{0.7, 0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	tab := Fig2b(o, auto)
	if !strings.Contains(tab.String(), "bwaves") {
		t.Error("fig2b missing workload")
	}
}

func TestOverheadMatchesPaper(t *testing.T) {
	// The paper's stated inputs (700 cycles/line) give 2417 s / 1.25 %;
	// its printed 2071.89 s / 1.06 % implies ~600 cycles/line. Check
	// both ends of that discrepancy.
	p := PaperOverheadParams()
	if s := p.OverheadSeconds(); math.Abs(s-2417.2) > 1 {
		t.Errorf("swap time = %.2f s, stated inputs give 2417.2 s", s)
	}
	if pct := p.OverheadPercent(); math.Abs(pct-1.248) > 0.01 {
		t.Errorf("overhead = %.3f%%, stated inputs give 1.248%%", pct)
	}
	implied := p
	implied.CyclesPerLine = 600
	if pct := implied.OverheadPercent(); math.Abs(pct-1.06) > 0.02 {
		t.Errorf("implied overhead = %.3f%%, paper prints 1.06%%", pct)
	}
	if !strings.Contains(Overhead().String(), "overhead") {
		t.Error("overhead table missing row")
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1(tiny()).String()
	for _, want := range []string{"Cores", "Tier 0 (stacked)", "Tier 1 (offchip)", "Page-fault"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 1 missing %q:\n%s", want, s)
		}
	}
}

// fmtSscan parses a float cell from a CSV row.
func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestNegativeParallelismDefaults(t *testing.T) {
	o := Options{Parallelism: -4}.Defaults()
	if o.Parallelism < 1 {
		t.Fatalf("negative parallelism not clamped: %d", o.Parallelism)
	}
}

func TestMatrixJoinsAllErrors(t *testing.T) {
	// Scale 3 is not a power of two, so every cell's sim.New fails on
	// config validation. All cells — not just the first — must be
	// reported.
	o := tiny("bwaves", "GemsFDTD")
	o.Scale = 3
	_, err := RunMatrix(o)
	if err == nil {
		t.Fatal("invalid scale should fail every cell")
	}
	msg := err.Error()
	for _, wl := range []string{"bwaves", "GemsFDTD"} {
		if !strings.Contains(msg, wl) {
			t.Errorf("joined error missing cell for %s:\n%s", wl, msg)
		}
	}
	if n := strings.Count(msg, "\n"); n < 3 {
		t.Errorf("expected many joined cell errors, got %d newline-separated:\n%s", n, msg)
	}
}

func TestMatrixContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := tiny("bwaves")
	if _, err := RunMatrixContext(ctx, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMatrixProgress(t *testing.T) {
	o := tiny("bwaves")
	o.Instructions = 10_000
	o.Warmup = 10_000
	var calls, lastDone, total int
	o.Progress = func(done, tot int) { calls++; lastDone = done; total = tot }
	if _, err := RunMatrix(o); err != nil {
		t.Fatal(err)
	}
	// 7 standard policies, with flat counted twice (20 and 24 GB).
	if total != 8 || calls != total || lastDone != total {
		t.Fatalf("progress calls=%d lastDone=%d total=%d, want 8/8/8", calls, lastDone, total)
	}
}

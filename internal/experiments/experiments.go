// Package experiments contains one driver per table and figure of the
// paper's evaluation (§III and §VI). Each driver returns a stats.Table
// whose rows mirror the corresponding figure; cmd/experiments renders
// them and EXPERIMENTS.md records paper-vs-measured values.
//
// The drivers run on a scaled-down machine (capacities and footprints
// divided by Options.Scale with all ratios preserved) so the full suite
// completes in minutes on a laptop. Scale 1 reproduces the paper's
// full-size 4 GB + 20 GB system.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"chameleon/internal/config"
	"chameleon/internal/sim"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// Options control the scale and length of every experiment.
type Options struct {
	// Scale divides DRAM capacities and workload footprints (power of
	// two). Default 256.
	Scale uint64
	// Instructions is the measured per-core instruction budget.
	// Default 500,000.
	Instructions uint64
	// Warmup is the per-core fast-forward budget that converges caches
	// and remapping state before measurement. Default 4,000,000.
	Warmup uint64
	// Seed makes every run deterministic. Default 42.
	Seed uint64
	// Workloads restricts the workload set (nil = all of Table II).
	Workloads []string
	// Policies restricts the policy set (nil = the paper's standard
	// evaluation designs). Any name registered with policy.Register is
	// valid; "flat" expands to the 20 GB and 24 GB DDR baselines.
	Policies []sim.PolicyKind
	// CacheLevels overrides the machine's cache hierarchy (nil = the
	// scaled Table I three-level stack). Every driver resolves its
	// levels from the resulting config, so a 2- or 4-level sweep needs
	// no further plumbing.
	CacheLevels []config.CacheLevelConfig
	// MemoryTiers overrides the machine's memory stack (nil = the
	// scaled Table I stacked + off-chip DRAM pair). Three-tier
	// sweeps — say stacked DRAM, off-chip DRAM, NVM — plug in here
	// and flow through every driver unchanged.
	MemoryTiers []config.MemTierConfig
	// Parallelism bounds concurrent simulations. Zero and negative
	// values default to GOMAXPROCS (a negative value would otherwise
	// panic constructing the semaphore channel).
	Parallelism int
	// Threads is the per-simulation worker-thread count handed to
	// sim.Options.Threads (0 or 1 = sequential). Results are identical
	// at any value; only wall-clock time changes — the parallel engine
	// now covers timeline sampling, trace capture and evicting
	// footprints, and each sim.Result reports the engine that ran it
	// in Result.Engine. The matrix clamps the count so Parallelism ×
	// Threads never oversubscribes GOMAXPROCS — cell-level parallelism
	// is the better lever while many cells are in flight, intra-run
	// threads soak up what remains.
	Threads int
	// Progress, when non-nil, is called after each matrix cell
	// finishes with the number of completed cells and the total.
	// Calls are serialized under the matrix lock.
	Progress func(done, total int) `json:"-"`
}

// Defaults fills in zero fields.
func (o Options) Defaults() Options {
	if o.Scale == 0 {
		o.Scale = 256
	}
	if o.Instructions == 0 {
		o.Instructions = 500_000
	}
	if o.Warmup == 0 {
		o.Warmup = 4_000_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Names()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Config resolves the machine configuration every driver simulates:
// the scaled Table I defaults with the Options' cache-hierarchy
// override applied.
func (o Options) Config() config.Config {
	cfg := config.Default(o.Scale)
	if len(o.CacheLevels) > 0 {
		cfg.CacheLevels = o.CacheLevels
	}
	if len(o.MemoryTiers) > 0 {
		cfg.MemoryTiers = config.CloneTiers(o.MemoryTiers)
	}
	return cfg
}

// profile fetches and scales a workload.
func (o Options) profile(name string) (trace.Profile, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return trace.Profile{}, err
	}
	return p.Scale(o.Scale), nil
}

// runOne builds and runs a single simulation.
func (o Options) runOne(opts sim.Options) (*sim.Result, error) {
	return o.runOneContext(context.Background(), opts)
}

// effectiveThreads clamps a per-simulation thread count so that
// `concurrent` simultaneous simulations never oversubscribe the
// machine: concurrent × result ≤ GOMAXPROCS (floored at 1 thread).
func effectiveThreads(threads, concurrent int) int {
	if threads <= 1 {
		return 1
	}
	if concurrent < 1 {
		concurrent = 1
	}
	if limit := runtime.GOMAXPROCS(0) / concurrent; threads > limit {
		threads = limit
	}
	return max(threads, 1)
}

// runOneContext builds and runs a single cancellable simulation.
func (o Options) runOneContext(ctx context.Context, opts sim.Options) (*sim.Result, error) {
	opts.Seed = o.Seed
	opts.WarmupInstructions = o.Warmup
	if opts.Threads == 0 {
		// Standalone drivers run one simulation at a time, so the whole
		// machine is available; matrix cells arrive with Threads already
		// clamped against their cell-level parallelism.
		opts.Threads = effectiveThreads(o.Threads, 1)
	}
	s, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx, o.Instructions)
}

// Matrix holds one result per (policy, workload) pair.
type Matrix struct {
	Opts     Options
	Policies []sim.PolicyKind
	// Results[policy][workload]
	Results map[sim.PolicyKind]map[string]*sim.Result
}

// standardPolicies is the set used by the main evaluation figures.
func standardPolicies() []sim.PolicyKind {
	return []sim.PolicyKind{
		sim.PolicyFlat, // run twice: 20 GB and 24 GB handled separately
		sim.PolicyNUMAFlat,
		sim.PolicyAlloy,
		sim.PolicyPoM,
		sim.PolicyPolymorphic,
		sim.PolicyChameleon,
		sim.PolicyChameleonOpt,
	}
}

// job names one simulation of the matrix.
type job struct {
	policy   sim.PolicyKind
	tag      string // result key qualifier for flat baselines
	workload string
	opts     sim.Options
}

// The 20 GB flat baseline is stored under PolicyFlat, the 24 GB one
// under policyFlat24 (a matrix-only key, not a registered design).
const policyFlat24 sim.PolicyKind = "flat-24"

// RunMatrix executes every policy on every selected workload, reusing
// one run across all the figures that need it (15-20 and 22).
func RunMatrix(o Options) (*Matrix, error) {
	return RunMatrixContext(context.Background(), o)
}

// RunMatrixContext is RunMatrix with cancellation: the context is
// passed down into every cell's simulation, so a deadline or cancel
// stops the whole sweep. Cells that fail do not abort their peers;
// every failure is reported, joined into one error.
func RunMatrixContext(ctx context.Context, o Options) (*Matrix, error) {
	o = o.Defaults()
	cfg := o.Config()

	pols := o.Policies
	if len(pols) == 0 {
		pols = standardPolicies()
	}
	// Clamp intra-run threads against cell-level parallelism: with
	// Parallelism cells in flight, each run may use at most
	// GOMAXPROCS / Parallelism workers before the matrix oversubscribes
	// the machine.
	simThreads := effectiveThreads(o.Threads, o.Parallelism)
	matrixPols := make([]sim.PolicyKind, 0, len(pols)+1)
	var jobs []job
	for _, name := range o.Workloads {
		prof, err := o.profile(name)
		if err != nil {
			return nil, err
		}
		for _, pk := range pols {
			so := sim.Options{Config: cfg, Policy: pk, Workload: prof, Threads: simThreads}
			switch pk {
			case sim.PolicyFlat:
				so20 := so
				so20.BaselineBytes = 20 * config.GB / o.Scale
				jobs = append(jobs, job{sim.PolicyFlat, "20", name, so20})
				so24 := so
				so24.BaselineBytes = 24 * config.GB / o.Scale
				jobs = append(jobs, job{policyFlat24, "24", name, so24})
			default:
				jobs = append(jobs, job{pk, "", name, so})
			}
		}
	}
	for _, pk := range pols {
		matrixPols = append(matrixPols, pk)
		if pk == sim.PolicyFlat {
			matrixPols = append(matrixPols, policyFlat24)
		}
	}

	m := &Matrix{Opts: o, Policies: matrixPols,
		Results: map[sim.PolicyKind]map[string]*sim.Result{}}
	var mu sync.Mutex
	var errs []error
	done := 0
	sem := make(chan struct{}, o.Parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		if ctx.Err() != nil {
			// Don't launch cells that would fail immediately; the
			// cancellation itself is reported below.
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := o.runOneContext(ctx, j.opts)
			mu.Lock()
			defer mu.Unlock()
			done++
			if err != nil {
				errs = append(errs, fmt.Errorf("%v/%s: %w", j.policy, j.workload, err))
			} else {
				if m.Results[j.policy] == nil {
					m.Results[j.policy] = map[string]*sim.Result{}
				}
				m.Results[j.policy][j.workload] = res
			}
			if o.Progress != nil {
				o.Progress(done, len(jobs))
			}
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return m, nil
}

// PolicyKey returns the stable wire name for a matrix policy column;
// the two flat baselines are distinguished by capacity.
func PolicyKey(pk sim.PolicyKind) string {
	if pk == sim.PolicyFlat {
		return "flat-20"
	}
	return pk.String()
}

// ByName re-keys the results by policy wire name, for JSON consumers
// that cannot use integer PolicyKind keys.
func (m *Matrix) ByName() map[string]map[string]*sim.Result {
	out := make(map[string]map[string]*sim.Result, len(m.Results))
	for pk, rows := range m.Results {
		inner := make(map[string]*sim.Result, len(rows))
		for wl, r := range rows {
			inner[wl] = r
		}
		out[PolicyKey(pk)] = inner
	}
	return out
}

// get fetches one result, with a descriptive panic on misuse (matrix
// access bugs are programming errors, not runtime conditions).
func (m *Matrix) get(p sim.PolicyKind, wl string) *sim.Result {
	r := m.Results[p][wl]
	if r == nil {
		panic(fmt.Sprintf("experiments: missing result for %v/%s", p, wl))
	}
	return r
}

// Metric fetches one scalar from a cell's unified stats snapshot (see
// sim.Result.Snapshot for the key namespace). An unknown key is a
// programming error in a figure emitter and panics.
func (m *Matrix) Metric(p sim.PolicyKind, wl, key string) float64 {
	snap := m.get(p, wl).Snapshot()
	v, ok := snap[key]
	if !ok {
		panic(fmt.Sprintf("experiments: no metric %q in %v/%s snapshot", key, p, wl))
	}
	return v
}

// Package dram models a DRAM device (stacked or off-chip) with
// cycle-granularity timing: channels, ranks, banks, row-buffer state,
// core timing constraints (tRCD/tCAS/tRP/tRAS), periodic refresh
// (tREFI/tRFC) and data-bus occupancy.
//
// The model is a next-free-time bookkeeping model rather than a full
// command scheduler: each access computes its start and completion
// cycle from the current bank/bus/refresh state and advances that
// state. This preserves the first-order behaviour the evaluation
// depends on — row-buffer locality, bank conflicts, bandwidth limits
// and the stacked/off-chip bandwidth ratio — at a small fraction of the
// cost of a full FR-FCFS scheduler.
//
// All externally visible times are in CPU cycles.
package dram

import (
	"fmt"
	"math"

	"chameleon/internal/config"
	"chameleon/internal/stats"
)

// Stats aggregates device activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // bank was precharged (empty row buffer)
	RowConflicts uint64 // wrong row open
	BytesMoved   uint64
	RefreshWaits uint64 // accesses delayed by an in-progress refresh
	BusWaits     uint64 // accesses delayed by data-bus contention
}

// Snapshot flattens the stats into the unified metric shape.
func (s Stats) Snapshot() stats.Snapshot {
	return stats.Snapshot{
		"reads":         float64(s.Reads),
		"writes":        float64(s.Writes),
		"row_hits":      float64(s.RowHits),
		"row_misses":    float64(s.RowMisses),
		"row_conflicts": float64(s.RowConflicts),
		"bytes_moved":   float64(s.BytesMoved),
		"refresh_waits": float64(s.RefreshWaits),
		"bus_waits":     float64(s.BusWaits),
	}
}

type bank struct {
	openRow      int64 // -1 = precharged
	nextReady    uint64
	lastActivate uint64
}

type rank struct {
	nextRefresh uint64 // CPU cycle at which the next refresh begins
}

type channel struct {
	busFree  uint64 // end of the latest contiguous bus reservation
	resStart uint64 // start of that reservation region
	banks    []bank
	ranks    []rank
}

// Device is one DRAM device instance.
type Device struct {
	cfg    config.DRAMConfig
	cpuHz  float64
	perBus float64 // CPU cycles per bus cycle

	tCAS, tRCD, tRP, tRAS uint64 // in CPU cycles
	tRFC, tREFI           uint64 // in CPU cycles

	bytesPerBusCycle float64
	bankCount        int // banks per channel (ranks * banksPerRank)

	chans []channel
	stats Stats
}

// New builds a device from its configuration and the CPU frequency used
// to express all times.
func New(cfg config.DRAMConfig, cpuHz float64) (*Device, error) {
	if cfg.Channels <= 0 || cfg.RanksPerChan <= 0 || cfg.BanksPerRank <= 0 {
		return nil, fmt.Errorf("dram: %s: geometry must be positive", cfg.Name)
	}
	if cfg.BusFreqHz <= 0 || cpuHz <= 0 {
		return nil, fmt.Errorf("dram: %s: frequencies must be positive", cfg.Name)
	}
	perBus := cpuHz / cfg.BusFreqHz
	d := &Device{
		cfg:              cfg,
		cpuHz:            cpuHz,
		perBus:           perBus,
		tCAS:             busToCPU(cfg.TCAS, perBus),
		tRCD:             busToCPU(cfg.TRCD, perBus),
		tRP:              busToCPU(cfg.TRP, perBus),
		tRAS:             busToCPU(cfg.TRAS, perBus),
		tRFC:             nanosToCPU(cfg.TRFCNanos, cpuHz),
		tREFI:            nanosToCPU(cfg.TREFINanos, cpuHz),
		bytesPerBusCycle: float64(cfg.BusWidthBits) / 8 * 2, // DDR
		bankCount:        cfg.RanksPerChan * cfg.BanksPerRank,
	}
	d.chans = make([]channel, cfg.Channels)
	for i := range d.chans {
		d.chans[i].banks = make([]bank, d.bankCount)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = -1
		}
		d.chans[i].ranks = make([]rank, cfg.RanksPerChan)
		for r := range d.chans[i].ranks {
			// Stagger initial refreshes across ranks.
			d.chans[i].ranks[r].nextRefresh = d.tREFI * uint64(r+1) / uint64(cfg.RanksPerChan+1)
		}
	}
	return d, nil
}

func busToCPU(busCycles int, perBus float64) uint64 {
	return uint64(math.Ceil(float64(busCycles) * perBus))
}

func nanosToCPU(ns float64, cpuHz float64) uint64 {
	return uint64(math.Ceil(ns * 1e-9 * cpuHz))
}

// Name returns the configured device name.
func (d *Device) Name() string { return d.cfg.Name }

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() uint64 { return d.cfg.CapacityBytes }

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// Snapshot implements stats.Source (Name is the device's config name).
func (d *Device) Snapshot() stats.Snapshot { return d.stats.Snapshot() }

// ResetStats clears the accumulated statistics (device timing state is
// preserved).
func (d *Device) ResetStats() { d.stats = Stats{} }

// BurstCycles returns the data-bus occupancy (in CPU cycles) of a
// transfer of the given size.
func (d *Device) BurstCycles(bytes int) uint64 {
	busCycles := float64(bytes) / d.bytesPerBusCycle
	return uint64(math.Ceil(busCycles * d.perBus))
}

// decode splits a device-local byte address into channel, bank and row.
// Channels interleave at cache-line (64 B) granularity to spread demand;
// rows interleave across banks within a channel.
func (d *Device) decode(local uint64) (ch, bk int, row int64) {
	line := local >> 6
	ch = int(line % uint64(len(d.chans)))
	perChan := line / uint64(len(d.chans))
	chanByte := perChan << 6
	rowGlobal := chanByte / uint64(d.cfg.RowBytes)
	bk = int(rowGlobal % uint64(d.bankCount))
	row = int64(rowGlobal / uint64(d.bankCount))
	return ch, bk, row
}

// refreshDelay advances the lazy refresh schedule for the rank owning
// bank bk and returns the earliest cycle >= t at which the bank can be
// used.
func (d *Device) refreshDelay(c *channel, bk int, t uint64) uint64 {
	r := &c.ranks[bk/d.cfg.BanksPerRank]
	// Catch the schedule up to t (refreshes that completed in the past).
	for r.nextRefresh+d.tRFC <= t {
		r.nextRefresh += d.tREFI
	}
	if t >= r.nextRefresh { // access lands inside the refresh window
		d.stats.RefreshWaits++
		t = r.nextRefresh + d.tRFC
		r.nextRefresh += d.tREFI
	}
	return t
}

// Access performs one transfer of size bytes at device-local address
// local, beginning no earlier than CPU cycle now. It returns the cycle
// at which the data transfer completes. Writes and reads share the same
// timing model; they are tracked separately in the statistics.
func (d *Device) Access(now uint64, local uint64, write bool, bytes int) (done uint64) {
	ch, bk, row := d.decode(local)
	c := &d.chans[ch]
	b := &c.banks[bk]

	t := max(now, b.nextReady)
	t = d.refreshDelay(c, bk, t)

	var dataAt uint64
	switch {
	case b.openRow == row:
		d.stats.RowHits++
		dataAt = t + d.tCAS
	case b.openRow < 0:
		d.stats.RowMisses++
		dataAt = t + d.tRCD + d.tCAS
		b.lastActivate = t
	default:
		d.stats.RowConflicts++
		// Precharge may not begin before tRAS expires.
		t = max(t, b.lastActivate+d.tRAS)
		dataAt = t + d.tRP + d.tRCD + d.tCAS
		b.lastActivate = t + d.tRP
	}
	b.openRow = row

	// The data bus is reserved in arrival order: an access whose bank
	// is not ready when its bus slot opens completes late, but does not
	// push the channel cursor to that future point (no ratcheting of
	// bus time by bank latency). An access that arrives with an earlier
	// timestamp than the current busy region backfills the idle bus
	// before it without reserving.
	burst := d.BurstCycles(bytes)
	var busStart uint64
	if now+burst <= c.resStart {
		busStart = now // backfill into the idle window before the region
	} else {
		busStart = max(now, c.busFree)
		if busStart > c.busFree {
			c.resStart = busStart // bus was idle: a new busy region starts
		}
		c.busFree = busStart + burst
	}
	if busStart > dataAt {
		d.stats.BusWaits++
	}
	done = max(dataAt, busStart) + burst
	b.nextReady = done

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.stats.BytesMoved += uint64(bytes)
	return done
}

// Stream transfers a contiguous region of length bytes starting at
// device-local address local as a sequence of line-sized accesses,
// returning the completion cycle of the last one. It is used for
// segment swaps and fills; the transfers consume bank and bus bandwidth
// exactly like demand accesses.
func (d *Device) Stream(now uint64, local uint64, write bool, bytes, lineBytes int) (done uint64) {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	done = now
	for off := 0; off < bytes; off += lineBytes {
		n := min(lineBytes, bytes-off)
		end := d.Access(now, local+uint64(off), write, n)
		if end > done {
			done = end
		}
	}
	return done
}

// PeakBandwidth returns the device's aggregate peak bandwidth in
// bytes per second.
func (d *Device) PeakBandwidth() float64 { return d.cfg.PeakBandwidth() }

// QueueDelay returns how far (in CPU cycles) the busiest channel's data
// bus is booked beyond the given cycle — a congestion signal used by
// controllers to schedule background transfers opportunistically.
func (d *Device) QueueDelay(now uint64) uint64 {
	var worst uint64
	for i := range d.chans {
		if bf := d.chans[i].busFree; bf > now && bf-now > worst {
			worst = bf - now
		}
	}
	return worst
}

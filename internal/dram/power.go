package dram

import "chameleon/internal/config"

// The energy model is a simplified DRAMPower-style accounting: each
// command class (activate+precharge pair, column read, column write,
// refresh) carries a fixed energy, and background power accrues with
// wall-clock time. It supports the paper's cost/power motivation for
// PoM architectures (§I) and lets experiments compare designs by DRAM
// energy as well as performance.

// PowerConfig holds per-operation energies (picojoules) and background
// power (milliwatts) for one device. Power profiles now live with the
// tier configuration so non-DRAM devices share the same accounting; the
// alias keeps this package's historical API intact.
type PowerConfig = config.PowerConfig

// DefaultStackedPower approximates an HBM-class stack: lower per-bit
// I/O energy (short TSV paths), higher background power (more banks).
func DefaultStackedPower() PowerConfig { return config.DefaultStackedPower() }

// DefaultOffChipPower approximates a DDR3 DIMM: higher per-bit I/O
// energy (board traces), lower background power.
func DefaultOffChipPower() PowerConfig { return config.DefaultOffChipPower() }

// EnergyReport breaks device energy into components (all nanojoules).
type EnergyReport struct {
	ActivateNJ   float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
	BackgroundNJ float64
}

// TotalNJ returns the summed energy.
func (e EnergyReport) TotalNJ() float64 {
	return e.ActivateNJ + e.ReadNJ + e.WriteNJ + e.RefreshNJ + e.BackgroundNJ
}

// AveragePowerMW returns the average power over the elapsed time.
func (e EnergyReport) AveragePowerMW(elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return 0
	}
	return e.TotalNJ() / elapsedSeconds / 1e6
}

// Energy computes the device's energy over elapsedCycles of CPU time
// from its accumulated statistics. Refresh energy is charged per
// elapsed tREFI interval per rank (refreshes happen whether or not an
// access observed them).
func (d *Device) Energy(cfg PowerConfig, elapsedCycles uint64) EnergyReport {
	st := d.stats
	activations := st.RowMisses + st.RowConflicts
	readBytes := float64(st.Reads) * avgBytes(st, true)
	writeBytes := float64(st.Writes) * avgBytes(st, false)
	seconds := float64(elapsedCycles) / d.cpuHz
	refreshes := 0.0
	if d.tREFI > 0 {
		ranks := float64(len(d.chans) * d.cfg.RanksPerChan)
		refreshes = float64(elapsedCycles) / float64(d.tREFI) * ranks
	}
	return EnergyReport{
		ActivateNJ:   float64(activations) * cfg.ActPrePJ / 1e3,
		ReadNJ:       readBytes * cfg.ReadPJPerByte / 1e3,
		WriteNJ:      writeBytes * cfg.WritePJPerByte / 1e3,
		RefreshNJ:    refreshes * cfg.RefreshPJ / 1e3,
		BackgroundNJ: cfg.BackgroundMW * seconds * 1e6,
	}
}

// avgBytes estimates the mean transfer size from the byte and access
// counters (reads and writes share the BytesMoved counter; transfers
// are near-uniform in size, so the shared mean is adequate).
func avgBytes(st Stats, read bool) float64 {
	total := st.Reads + st.Writes
	if total == 0 {
		return 0
	}
	return float64(st.BytesMoved) / float64(total)
}

// BusyFraction returns the fraction of elapsed time the device's data
// buses were transferring, an effective-bandwidth utilisation metric.
func (d *Device) BusyFraction(elapsedCycles uint64) float64 {
	if elapsedCycles == 0 {
		return 0
	}
	totalBytes := float64(d.stats.BytesMoved)
	seconds := float64(elapsedCycles) / d.cpuHz
	return totalBytes / (d.PeakBandwidth() * seconds)
}

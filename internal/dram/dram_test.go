package dram

import (
	"testing"
	"testing/quick"

	"chameleon/internal/config"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	cfg := config.Default(256)
	d, err := New(cfg.SlowDRAM(), cfg.CPU.FreqHz)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fastDevice(t *testing.T) *Device {
	t.Helper()
	cfg := config.Default(256)
	d, err := New(cfg.FastDRAM(), cfg.CPU.FreqHz)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRowHitFasterThanConflict(t *testing.T) {
	d := testDevice(t)
	base := uint64(1 << 20)
	// First access opens a row.
	d.Access(0, base, false, 64)
	now := uint64(100_000)
	hitDone := d.Access(now, base+128, false, 64) // same channel, same row
	hitLat := hitDone - now

	// Conflict: same bank, different row. Row size 8 KB over 2 channels
	// and 32 banks: addresses 8 KB*32 channels*banks apart share a bank.
	now = 200_000
	d.Access(now, base, false, 64)
	now = 300_000
	confDone := d.Access(now, base+uint64(8<<10)*32*2, false, 64)
	confLat := confDone - now
	if hitLat >= confLat {
		t.Errorf("row hit latency %d should be below conflict latency %d", hitLat, confLat)
	}
}

func TestStatsClassification(t *testing.T) {
	d := testDevice(t)
	d.Access(0, 0, false, 64)
	st := d.Stats()
	if st.RowMisses != 1 || st.Reads != 1 {
		t.Errorf("first access stats = %+v", st)
	}
	d.Access(10_000, 128, true, 64)
	st = d.Stats()
	if st.RowHits != 1 || st.Writes != 1 {
		t.Errorf("after row hit stats = %+v", st)
	}
	if st.BytesMoved != 128 {
		t.Errorf("bytes = %d", st.BytesMoved)
	}
}

// TestBandwidthRatio: the stacked device must stream roughly 4x the
// bytes of the off-chip device per unit time (Table I bus widths and
// frequencies).
func TestBandwidthRatio(t *testing.T) {
	cfg := config.Default(256)
	f, _ := New(cfg.FastDRAM(), cfg.CPU.FreqHz)
	s, _ := New(cfg.SlowDRAM(), cfg.CPU.FreqHz)
	fb := f.BurstCycles(64)
	sb := s.BurstCycles(64)
	ratio := float64(sb) / float64(fb)
	if ratio < 3 || ratio > 5 {
		t.Errorf("burst-cycle ratio = %v, want ~4", ratio)
	}
}

// TestStreamThroughput: a long sequential stream must achieve a decent
// fraction of peak bandwidth (row hits, pipelined bursts).
func TestStreamThroughput(t *testing.T) {
	d := testDevice(t)
	const total = 1 << 20 // 1 MB
	done := d.Stream(0, 0, false, total, 64)
	cfg := config.Default(256)
	seconds := float64(done) / cfg.CPU.FreqHz
	gbps := float64(total) / seconds / 1e9
	peak := d.PeakBandwidth() / 1e9
	if gbps < peak*0.5 {
		t.Errorf("streamed %0.1f GB/s, below half of peak %0.1f GB/s", gbps, peak)
	}
	if gbps > peak*1.01 {
		t.Errorf("streamed %0.1f GB/s exceeds peak %0.1f GB/s", gbps, peak)
	}
}

// TestRandomThroughputBelowStream: random traffic must be slower than
// streaming (row conflicts).
func TestRandomThroughputBelowStream(t *testing.T) {
	d := testDevice(t)
	streamDone := d.Stream(0, 0, false, 64*1024, 64)

	d2 := testDevice(t)
	rnd := uint64(12345)
	var now, last uint64
	for i := 0; i < 1024; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		last = d2.Access(now, rnd%d2.Capacity()&^63, false, 64)
		now = last
	}
	if last <= streamDone {
		t.Errorf("random chain (%d) should be slower than stream (%d)", last, streamDone)
	}
}

// TestNoRatchetFromFutureAccess: an access issued far in the future
// must not starve subsequent near-present accesses (the bus cursor is
// reserved in arrival order).
func TestNoRatchetFromFutureAccess(t *testing.T) {
	d := testDevice(t)
	d.Access(1_000_000, 0, false, 64) // a far-future access
	done := d.Access(100, 1<<16, false, 64)
	if done > 10_000 {
		t.Errorf("near-present access delayed to %d by a future access", done)
	}
}

// TestSteadyStateQueueBounded: offered load below capacity must keep
// the queue bounded over a long run.
func TestSteadyStateQueueBounded(t *testing.T) {
	d := testDevice(t)
	rnd := uint64(999)
	now := uint64(0)
	for i := 0; i < 200_000; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		d.Access(now, rnd%d.Capacity()&^63, false, 64)
		now += 40 // ~5.8 GB/s offered vs 25.6 GB/s peak
	}
	if q := d.QueueDelay(now); q > 5_000 {
		t.Errorf("queue delay %d grew without bound", q)
	}
}

func TestRefreshOccurs(t *testing.T) {
	d := testDevice(t)
	// Hammer one bank across several refresh intervals.
	now := uint64(0)
	for i := 0; i < 20_000; i++ {
		d.Access(now, 0, false, 64)
		now += 2_000
	}
	if d.Stats().RefreshWaits == 0 {
		t.Error("no refresh stalls over many tREFI windows")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		d := testDevice(t)
		var sum uint64
		rnd := uint64(5)
		now := uint64(0)
		for i := 0; i < 5000; i++ {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			sum += d.Access(now, rnd%d.Capacity()&^63, i%2 == 0, 64)
			now += 30
		}
		return sum
	}
	if run() != run() {
		t.Error("device timing is not deterministic")
	}
}

func TestNewErrors(t *testing.T) {
	cfg := config.Default(1).SlowDRAM()
	cfg.Channels = 0
	if _, err := New(cfg, 3.6e9); err == nil {
		t.Error("zero channels should fail")
	}
	cfg = config.Default(1).SlowDRAM()
	if _, err := New(cfg, 0); err == nil {
		t.Error("zero CPU frequency should fail")
	}
}

// TestMonotonicPerBankCompletion: repeated accesses to one bank at
// non-decreasing times complete in non-decreasing order.
func TestMonotonicPerBankCompletion(t *testing.T) {
	f := func(gaps []uint8) bool {
		d := fastDevice(t)
		now, prev := uint64(0), uint64(0)
		for _, g := range gaps {
			now += uint64(g)
			done := d.Access(now, 0, false, 64)
			if done < prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBurstCyclesScaleWithSize(t *testing.T) {
	d := testDevice(t)
	if d.BurstCycles(128) <= d.BurstCycles(64) {
		t.Error("larger transfers must occupy the bus longer")
	}
}

func TestStreamMovesAllBytes(t *testing.T) {
	d := testDevice(t)
	d.Stream(0, 0, true, 2048, 64)
	if d.Stats().BytesMoved != 2048 {
		t.Errorf("stream moved %d bytes, want 2048", d.Stats().BytesMoved)
	}
	if d.Stats().Writes != 32 {
		t.Errorf("stream issued %d writes, want 32", d.Stats().Writes)
	}
}

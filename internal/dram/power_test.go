package dram

import (
	"testing"

	"chameleon/internal/config"
)

func TestEnergyComponents(t *testing.T) {
	d := testDevice(t)
	// 100 random accesses (row conflicts -> activations) over ~1 ms.
	rnd := uint64(1)
	now := uint64(0)
	for i := 0; i < 100; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		d.Access(now, rnd%d.Capacity()&^63, i%2 == 0, 64)
		now += 36_000 // 10 us at 3.6 GHz
	}
	e := d.Energy(DefaultOffChipPower(), now)
	if e.ActivateNJ <= 0 {
		t.Error("activations consumed no energy")
	}
	if e.ReadNJ <= 0 || e.WriteNJ <= 0 {
		t.Errorf("transfer energy missing: %+v", e)
	}
	if e.RefreshNJ <= 0 {
		t.Error("refresh energy missing over many tREFI windows")
	}
	if e.BackgroundNJ <= 0 {
		t.Error("background energy missing")
	}
	if e.TotalNJ() <= e.BackgroundNJ {
		t.Error("total must exceed the background component")
	}
	if p := e.AveragePowerMW(float64(now) / 3.6e9); p <= 0 {
		t.Errorf("average power = %v", p)
	}
}

func TestEnergyScalesWithTraffic(t *testing.T) {
	light := testDevice(t)
	heavy := testDevice(t)
	now := uint64(0)
	for i := 0; i < 10; i++ {
		light.Access(now, uint64(i)<<13, false, 64)
		now += 1000
	}
	now = 0
	for i := 0; i < 1000; i++ {
		heavy.Access(now, uint64(i)<<13, false, 64)
		now += 1000
	}
	const window = 1_000_000
	el := light.Energy(DefaultOffChipPower(), window)
	eh := heavy.Energy(DefaultOffChipPower(), window)
	if eh.ReadNJ <= el.ReadNJ {
		t.Error("more traffic must cost more transfer energy")
	}
	if eh.BackgroundNJ != el.BackgroundNJ {
		t.Error("background energy must depend only on elapsed time")
	}
}

func TestIdleDeviceEnergyIsBackgroundAndRefresh(t *testing.T) {
	d := testDevice(t)
	e := d.Energy(DefaultOffChipPower(), 3_600_000) // 1 ms idle
	if e.ActivateNJ != 0 || e.ReadNJ != 0 || e.WriteNJ != 0 {
		t.Errorf("idle device charged for operations: %+v", e)
	}
	if e.BackgroundNJ <= 0 || e.RefreshNJ <= 0 {
		t.Errorf("idle device should still pay background+refresh: %+v", e)
	}
}

func TestStackedVsOffChipEnergyPerByte(t *testing.T) {
	// Streaming the same bytes must cost less I/O energy on the stacked
	// device (the premise behind HBM's efficiency).
	cfg := config.Default(256)
	f, _ := New(cfg.FastDRAM(), cfg.CPU.FreqHz)
	s, _ := New(cfg.SlowDRAM(), cfg.CPU.FreqHz)
	f.Stream(0, 0, false, 1<<16, 64)
	s.Stream(0, 0, false, 1<<16, 64)
	ef := f.Energy(DefaultStackedPower(), 1_000_000)
	es := s.Energy(DefaultOffChipPower(), 1_000_000)
	if ef.ReadNJ >= es.ReadNJ {
		t.Errorf("stacked read energy (%v nJ) should undercut off-chip (%v nJ)", ef.ReadNJ, es.ReadNJ)
	}
}

func TestBusyFraction(t *testing.T) {
	d := testDevice(t)
	if d.BusyFraction(1000) != 0 {
		t.Error("idle device should report zero utilisation")
	}
	done := d.Stream(0, 0, false, 1<<20, 64)
	u := d.BusyFraction(done)
	if u <= 0.4 || u > 1.01 {
		t.Errorf("saturating stream utilisation = %v, want near 1", u)
	}
}

func TestAveragePowerZeroWindow(t *testing.T) {
	var e EnergyReport
	if e.AveragePowerMW(0) != 0 {
		t.Error("zero window must not divide by zero")
	}
}

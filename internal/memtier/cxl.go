package memtier

import (
	"fmt"
	"math"

	"chameleon/internal/config"
	"chameleon/internal/stats"
)

// CXLStats aggregates CXL expander activity.
type CXLStats struct {
	Reads      uint64
	Writes     uint64
	BytesMoved uint64
	LinkWaits  uint64 // accesses that queued behind the serial link
}

// Snapshot flattens the stats into the unified metric shape.
func (s CXLStats) Snapshot() stats.Snapshot {
	return stats.Snapshot{
		"reads":       float64(s.Reads),
		"writes":      float64(s.Writes),
		"bytes_moved": float64(s.BytesMoved),
		"link_waits":  float64(s.LinkWaits),
	}
}

// CXL models a CXL-attached memory expander following the METICULOUS
// emulation parameters (arXiv 2309.06565): DRAM-class media reached
// across a serial link that adds a fixed round-trip latency and
// serialises transfers at the link bandwidth. Queuing happens at the
// link — a single next-free-time cursor — which is exactly the
// first-order bottleneck of real expanders.
//
// All externally visible times are in CPU cycles.
type CXL struct {
	cfg   config.CXLConfig
	cpuHz float64

	tLink    uint64  // link round-trip latency (cycles)
	tMedia   uint64  // device-side media latency (cycles)
	perByte  float64 // link cycles per byte
	linkFree uint64  // link next-free cycle
	stats    CXLStats
}

// mediaTREFISeconds is the refresh interval assumed for the expander's
// DRAM media when charging refresh energy (standard 7.8 µs tREFI).
const mediaTREFISeconds = 7.8e-6

// NewCXL builds a CXL far-memory device.
func NewCXL(cfg config.CXLConfig, cpuHz float64) (*CXL, error) {
	if cfg.CapacityBytes == 0 {
		return nil, fmt.Errorf("cxl %s: capacity must be positive", cfg.Name)
	}
	if cfg.LinkLatencyNanos <= 0 || cfg.LinkBandwidth <= 0 || cpuHz <= 0 {
		return nil, fmt.Errorf("cxl %s: link parameters and CPU frequency must be positive", cfg.Name)
	}
	if cfg.MediaLatencyNanos < 0 {
		return nil, fmt.Errorf("cxl %s: media latency must be non-negative", cfg.Name)
	}
	return &CXL{
		cfg:     cfg,
		cpuHz:   cpuHz,
		tLink:   uint64(math.Ceil(cfg.LinkLatencyNanos * 1e-9 * cpuHz)),
		tMedia:  uint64(math.Ceil(cfg.MediaLatencyNanos * 1e-9 * cpuHz)),
		perByte: cpuHz / cfg.LinkBandwidth,
	}, nil
}

// Name returns the configured device name.
func (d *CXL) Name() string { return d.cfg.Name }

// Capacity returns the device capacity in bytes.
func (d *CXL) Capacity() uint64 { return d.cfg.CapacityBytes }

// Stats returns the accumulated counters.
func (d *CXL) Stats() CXLStats { return d.stats }

// Snapshot flattens the device counters into the unified metric shape.
func (d *CXL) Snapshot() stats.Snapshot { return d.stats.Snapshot() }

// ResetStats clears the counters (end of warm-up).
func (d *CXL) ResetStats() { d.stats = CXLStats{} }

// Access performs one transfer across the link, returning its
// completion cycle: queue behind the link, serialise the payload, then
// pay the round trip and the media access.
func (d *CXL) Access(now uint64, local uint64, write bool, bytes int) uint64 {
	start := now
	if d.linkFree > start {
		start = d.linkFree
		d.stats.LinkWaits++
	}
	burst := uint64(math.Ceil(float64(bytes) * d.perByte))
	d.linkFree = start + burst
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.stats.BytesMoved += uint64(bytes)
	return start + burst + d.tLink + d.tMedia
}

// Stream transfers a contiguous region as line-sized accesses.
func (d *CXL) Stream(now uint64, local uint64, write bool, bytes, lineBytes int) (done uint64) {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	done = now
	for off := 0; off < bytes; off += lineBytes {
		n := min(lineBytes, bytes-off)
		if end := d.Access(now, local+uint64(off), write, n); end > done {
			done = end
		}
	}
	return done
}

// PeakBandwidth returns the per-direction link ceiling.
func (d *CXL) PeakBandwidth() float64 { return d.cfg.LinkBandwidth }

// BusyFraction returns the fraction of the elapsed time the link was
// serialising data.
func (d *CXL) BusyFraction(elapsedCycles uint64) float64 {
	if elapsedCycles == 0 {
		return 0
	}
	return float64(d.stats.BytesMoved) * d.perByte / float64(elapsedCycles)
}

// QueueDelay returns how far beyond now the link is already reserved.
func (d *CXL) QueueDelay(now uint64) uint64 {
	if d.linkFree > now {
		return d.linkFree - now
	}
	return 0
}

// Energy computes the expander's energy over the elapsed window.
// ActPrePJ is charged per access (media activate), refresh per assumed
// tREFI interval of the DRAM media, and the link PHY dominates the
// background term.
func (d *CXL) Energy(cfg config.PowerConfig, elapsedCycles uint64) EnergyReport {
	seconds := float64(elapsedCycles) / d.cpuHz
	readBytes, writeBytes := 0.0, 0.0
	if total := d.stats.Reads + d.stats.Writes; total > 0 {
		avg := float64(d.stats.BytesMoved) / float64(total)
		readBytes = float64(d.stats.Reads) * avg
		writeBytes = float64(d.stats.Writes) * avg
	}
	return EnergyReport{
		ActivateNJ:   float64(d.stats.Reads+d.stats.Writes) * cfg.ActPrePJ / 1e3,
		ReadNJ:       readBytes * cfg.ReadPJPerByte / 1e3,
		WriteNJ:      writeBytes * cfg.WritePJPerByte / 1e3,
		RefreshNJ:    seconds / mediaTREFISeconds * cfg.RefreshPJ / 1e3,
		BackgroundNJ: cfg.BackgroundMW * seconds * 1e6,
	}
}

// Package memtier turns the simulator's memory backend into an ordered
// stack of first-class tiers. Each tier wraps a device model — the
// existing cycle-accurate DRAM model, a byte-addressable NVM with
// asymmetric read/write timing and write-endurance accounting, or a
// CXL-attached far-memory expander with link latency/bandwidth and
// queuing — behind one Device interface that the OS model and placement
// policies schedule against. Devices account their own activity and
// energy so per-tier statistics survive any stack shape.
package memtier

import (
	"fmt"

	"chameleon/internal/config"
	"chameleon/internal/dram"
	"chameleon/internal/stats"
)

// EnergyReport re-exports the shared per-device energy breakdown.
type EnergyReport = dram.EnergyReport

// Device is one memory device in the tier stack. All times are in CPU
// cycles and all addresses are device-local (the caller subtracts the
// tier base). Implementations must keep Access and Stream free of heap
// allocations — they sit on the simulator's per-reference hot path.
type Device interface {
	Name() string
	Capacity() uint64
	// Access performs one transfer and returns its completion cycle.
	Access(now uint64, local uint64, write bool, bytes int) uint64
	// Stream transfers a contiguous region as line-sized accesses
	// (segment swaps and cache fills), returning the last completion.
	Stream(now uint64, local uint64, write bool, bytes, lineBytes int) uint64
	// PeakBandwidth returns the device's aggregate peak bandwidth in
	// bytes per second.
	PeakBandwidth() float64
	// BusyFraction returns the fraction of the elapsed time the
	// device's data path was transferring.
	BusyFraction(elapsedCycles uint64) float64
	// QueueDelay returns how far beyond now the device's data path is
	// already reserved — the backpressure signal migration engines use.
	QueueDelay(now uint64) uint64
	// Snapshot flattens the device counters into the unified metric
	// shape; ResetStats clears them (end of warm-up).
	Snapshot() stats.Snapshot
	ResetStats()
	// Energy computes the device's energy over the elapsed window from
	// its accumulated counters and the tier's power profile.
	Energy(cfg config.PowerConfig, elapsedCycles uint64) EnergyReport
}

// Tier is one level of the memory stack: a built device plus the
// configuration and resolved power profile it was built from.
type Tier struct {
	Cfg   config.MemTierConfig
	Kind  string // config.TierDRAM, TierNVM or TierCXL
	Index int    // position in the stack (0 = nearest)
	Dev   Device
	Power config.PowerConfig
}

// Name returns the tier's device name.
func (t *Tier) Name() string { return t.Dev.Name() }

// Capacity returns the tier's capacity in bytes.
func (t *Tier) Capacity() uint64 { return t.Dev.Capacity() }

// Energy reports the tier's energy over the elapsed window using its
// resolved power profile.
func (t *Tier) Energy(elapsedCycles uint64) EnergyReport {
	return t.Dev.Energy(t.Power, elapsedCycles)
}

// DRAM returns the underlying DRAM device, or nil for non-DRAM tiers.
// The sequential-engine fast paths and legacy result fields use it.
func (t *Tier) DRAM() *dram.Device {
	d, _ := t.Dev.(*dram.Device)
	return d
}

// Build constructs the device for one tier configuration. idx is the
// tier's position in the stack (it selects the default power profile
// for DRAM tiers).
func Build(tc config.MemTierConfig, idx int, cpuHz float64) (*Tier, error) {
	kind := tc.ResolvedKind()
	t := &Tier{Cfg: tc.Clone(), Kind: kind, Index: idx, Power: config.TierPowerFor(tc, idx)}
	var err error
	switch kind {
	case config.TierDRAM:
		t.Dev, err = dram.New(*tc.DRAM, cpuHz)
	case config.TierNVM:
		t.Dev, err = NewNVM(*tc.NVM, cpuHz)
	case config.TierCXL:
		t.Dev, err = NewCXL(*tc.CXL, cpuHz)
	default:
		err = fmt.Errorf("memtier: tier %d has unknown kind %q", idx, tc.Kind)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// BuildStack constructs every tier of a memory configuration in order.
func BuildStack(tcs []config.MemTierConfig, cpuHz float64) ([]*Tier, error) {
	tiers := make([]*Tier, len(tcs))
	for i, tc := range tcs {
		t, err := Build(tc, i, cpuHz)
		if err != nil {
			return nil, fmt.Errorf("memtier: tier %d (%s): %w", i, tc.Name(), err)
		}
		tiers[i] = t
	}
	return tiers, nil
}

package memtier

import (
	"testing"

	"chameleon/internal/config"
)

const testHz = 3.6e9

func testNVM(t testing.TB) *NVM {
	t.Helper()
	d, err := NewNVM(config.DefaultNVM(64*config.MB), testHz)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testCXL(t testing.TB) *CXL {
	t.Helper()
	d, err := NewCXL(config.DefaultCXL(64*config.MB), testHz)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestNVMAsymmetricLatency: a write must take longer than a read at the
// same address on an idle device — the defining property of the media.
func TestNVMAsymmetricLatency(t *testing.T) {
	d := testNVM(t)
	read := d.Access(0, 0, false, 64)
	d2 := testNVM(t)
	write := d2.Access(0, 0, true, 64)
	if write <= read {
		t.Errorf("write latency %d <= read latency %d cycles", write, read)
	}
	st := d2.Stats()
	if st.Writes != 1 || st.WriteBytes != 64 || st.Reads != 0 {
		t.Errorf("write stats = %+v", st)
	}
}

// TestNVMWearAccounting: repeated writes to one wear block accumulate,
// MaxWear tracks the hottest block, and the wear survives ResetStats
// while activity counters clear.
func TestNVMWearAccounting(t *testing.T) {
	d := testNVM(t)
	var now uint64
	for i := 0; i < 10; i++ {
		now = d.Access(now, 64, true, 64) // same 4 KB block every time
	}
	d.Access(now, 8*config.KB, true, 64) // a second block, once
	st := d.Stats()
	if st.MaxWear != 10 {
		t.Errorf("max wear = %d, want 10", st.MaxWear)
	}
	if st.WearWrites != 11 {
		t.Errorf("wear writes = %d, want 11", st.WearWrites)
	}
	if got := d.WearLevel(64); got != 10 {
		t.Errorf("WearLevel(64) = %d, want 10", got)
	}
	d.ResetStats()
	st = d.Stats()
	if st.Writes != 0 || st.WriteBytes != 0 {
		t.Errorf("activity counters survived reset: %+v", st)
	}
	if st.MaxWear != 10 || st.WearWrites != 11 {
		t.Errorf("wear state lost on reset: %+v", st)
	}
}

// TestNVMWornBlocks: a block crossing its endurance budget is counted
// exactly once.
func TestNVMWornBlocks(t *testing.T) {
	cfg := config.DefaultNVM(64 * config.KB)
	cfg.EnduranceWrites = 3
	d, err := NewNVM(cfg, testHz)
	if err != nil {
		t.Fatal(err)
	}
	var now uint64
	for i := 0; i < 5; i++ {
		now = d.Access(now, 0, true, 64)
	}
	if st := d.Stats(); st.WornBlocks != 1 {
		t.Errorf("worn blocks = %d, want 1", st.WornBlocks)
	}
}

// TestNVMBankQueuing: back-to-back accesses to the same bank serialise;
// the second waits for the first.
func TestNVMBankQueuing(t *testing.T) {
	d := testNVM(t)
	first := d.Access(0, 0, false, 64)
	second := d.Access(0, 0, false, 64)
	if second <= first {
		t.Errorf("same-bank access did not queue: first done %d, second %d", first, second)
	}
	if st := d.Stats(); st.BankWaits == 0 {
		t.Errorf("bank wait not counted: %+v", st)
	}
}

// TestCXLLinkQueuing: the link is the serialisation point — issuing a
// burst of accesses at the same cycle stacks them behind one another
// and counts the waits.
func TestCXLLinkQueuing(t *testing.T) {
	d := testCXL(t)
	first := d.Access(0, 0, false, 64)
	second := d.Access(0, 4*config.KB, false, 64)
	if second <= first {
		t.Errorf("link did not serialise: first done %d, second %d", first, second)
	}
	if st := d.Stats(); st.LinkWaits != 1 || st.Reads != 2 || st.BytesMoved != 128 {
		t.Errorf("link stats = %+v", st)
	}
	// An idle link adds no queue delay; a busy one reports its backlog.
	if q := d.QueueDelay(1 << 40); q != 0 {
		t.Errorf("idle QueueDelay = %d", q)
	}
	if q := d.QueueDelay(0); q == 0 {
		t.Error("busy QueueDelay = 0")
	}
}

// TestCXLLatencyFloor: an idle access pays link round-trip plus media
// latency on top of serialisation — it must dwarf a local DRAM-class
// access time.
func TestCXLLatencyFloor(t *testing.T) {
	d := testCXL(t)
	done := d.Access(0, 0, false, 64)
	// 200 ns link + 80 ns media at 3.6 GHz is >1000 cycles.
	if done < 1000 {
		t.Errorf("CXL access completed in %d cycles; link+media floor missing", done)
	}
}

// TestBuildStack constructs one tier of each kind and checks the
// devices, names and power profiles resolve per kind and position.
func TestBuildStack(t *testing.T) {
	cfg := config.Default(256).WithNVMTier(64 * config.MB).WithCXLTier(64 * config.MB)
	tiers, err := BuildStack(cfg.MemoryTiers, testHz)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 4 {
		t.Fatalf("built %d tiers, want 4", len(tiers))
	}
	wantKinds := []string{config.TierDRAM, config.TierDRAM, config.TierNVM, config.TierCXL}
	for i, tier := range tiers {
		if tier.Kind != wantKinds[i] {
			t.Errorf("tier %d kind = %q, want %q", i, tier.Kind, wantKinds[i])
		}
		if tier.Index != i || tier.Name() == "" || tier.Capacity() == 0 {
			t.Errorf("tier %d identity incomplete: %+v", i, tier)
		}
		if (tier.DRAM() != nil) != (wantKinds[i] == config.TierDRAM) {
			t.Errorf("tier %d DRAM() mismatch for kind %q", i, tier.Kind)
		}
	}
	// Positional power fallback: first DRAM tier stacked, second off-chip.
	if tiers[0].Power != config.DefaultStackedPower() || tiers[1].Power != config.DefaultOffChipPower() {
		t.Errorf("DRAM power fallback wrong: %+v / %+v", tiers[0].Power, tiers[1].Power)
	}
	if tiers[2].Power != config.DefaultNVMPower() || tiers[3].Power != config.DefaultCXLPower() {
		t.Errorf("device power fallback wrong: %+v / %+v", tiers[2].Power, tiers[3].Power)
	}
	// An explicit profile overrides the fallback.
	over := config.CloneTiers(cfg.MemoryTiers[:2])
	over[0].Power = &config.PowerConfig{BackgroundMW: 1}
	tiers, err = BuildStack(over, testHz)
	if err != nil {
		t.Fatal(err)
	}
	if tiers[0].Power.BackgroundMW != 1 {
		t.Errorf("explicit power profile ignored: %+v", tiers[0].Power)
	}
}

// TestAccessZeroAllocs pins the demand path: an Access on every device
// kind must not allocate.
func TestAccessZeroAllocs(t *testing.T) {
	cfg := config.Default(256).WithNVMTier(64 * config.MB).WithCXLTier(64 * config.MB)
	tiers, err := BuildStack(cfg.MemoryTiers, testHz)
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range tiers {
		dev, now := tier.Dev, uint64(0)
		local := uint64(0)
		if n := testing.AllocsPerRun(1000, func() {
			now = dev.Access(now, local, local%128 == 0, 64)
			local = (local + 8256) % tier.Capacity()
		}); n != 0 {
			t.Errorf("%s (%s): %v allocs/access, want 0", tier.Name(), tier.Kind, n)
		}
	}
}

// BenchmarkTierAccess measures the per-device demand-access cost; the
// 0 allocs/op report is the allocation-free guarantee in CI numbers.
func BenchmarkTierAccess(b *testing.B) {
	cfg := config.Default(256).WithNVMTier(64 * config.MB).WithCXLTier(64 * config.MB)
	tiers, err := BuildStack(cfg.MemoryTiers, testHz)
	if err != nil {
		b.Fatal(err)
	}
	for _, tier := range tiers {
		b.Run(tier.Kind+"/"+tier.Name(), func(b *testing.B) {
			dev, now := tier.Dev, uint64(0)
			local, capBytes := uint64(0), tier.Capacity()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				now = dev.Access(now, local, i&7 == 0, 64)
				local = (local + 8256) % capBytes
			}
		})
	}
}

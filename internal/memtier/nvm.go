package memtier

import (
	"fmt"
	"math"

	"chameleon/internal/config"
	"chameleon/internal/stats"
)

// NVMStats aggregates NVM device activity, including the endurance
// counters the wear model maintains.
type NVMStats struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
	BankWaits  uint64 // accesses delayed behind a busy bank
	BusWaits   uint64 // accesses delayed by channel contention
	WearWrites uint64 // writes charged against a wear block
	MaxWear    uint64 // highest per-block write count seen
	WornBlocks uint64 // blocks past their endurance budget
}

// Snapshot flattens the stats into the unified metric shape.
func (s NVMStats) Snapshot() stats.Snapshot {
	return stats.Snapshot{
		"reads":       float64(s.Reads),
		"writes":      float64(s.Writes),
		"read_bytes":  float64(s.ReadBytes),
		"write_bytes": float64(s.WriteBytes),
		"bytes_moved": float64(s.ReadBytes + s.WriteBytes),
		"bank_waits":  float64(s.BankWaits),
		"bus_waits":   float64(s.BusWaits),
		"wear_writes": float64(s.WearWrites),
		"max_wear":    float64(s.MaxWear),
		"worn_blocks": float64(s.WornBlocks),
	}
}

// NVM models a byte-addressable non-volatile memory device in the style
// of the NUMA hybrid-memory emulators (arXiv 1808.00064): a fixed media
// latency per access — asymmetric between reads and writes — plus
// separate sustained read/write bandwidth ceilings enforced by a shared
// channel cursor, and per-block write-endurance accounting. Like the
// DRAM model it is next-free-time bookkeeping, not a command scheduler.
//
// All externally visible times are in CPU cycles.
type NVM struct {
	cfg   config.NVMConfig
	cpuHz float64

	tRead     uint64  // media read latency (cycles)
	tWrite    uint64  // media write latency (cycles)
	readPerB  float64 // channel cycles per byte read
	writePerB float64 // channel cycles per byte written
	wearShift uint    // log2(WearBlockBytes)
	endurance uint64
	bankReady []uint64 // per-bank next-free cycle
	chanFree  uint64   // shared channel next-free cycle
	wear      []uint32 // per-block lifetime write counts (survive ResetStats)
	stats     NVMStats
}

// NewNVM builds an NVM device. Zero Banks, WearBlockBytes and
// EnduranceWrites take the DefaultNVM values.
func NewNVM(cfg config.NVMConfig, cpuHz float64) (*NVM, error) {
	if cfg.CapacityBytes == 0 {
		return nil, fmt.Errorf("nvm %s: capacity must be positive", cfg.Name)
	}
	if cfg.ReadLatencyNanos <= 0 || cfg.WriteLatencyNanos <= 0 ||
		cfg.ReadBandwidth <= 0 || cfg.WriteBandwidth <= 0 || cpuHz <= 0 {
		return nil, fmt.Errorf("nvm %s: latency, bandwidth and CPU frequency must be positive", cfg.Name)
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 16
	}
	if cfg.WearBlockBytes <= 0 {
		cfg.WearBlockBytes = 4 * config.KB
	}
	if cfg.WearBlockBytes&(cfg.WearBlockBytes-1) != 0 {
		return nil, fmt.Errorf("nvm %s: wear block size must be a power of two", cfg.Name)
	}
	if cfg.EnduranceWrites == 0 {
		cfg.EnduranceWrites = 100_000_000
	}
	blocks := (cfg.CapacityBytes + uint64(cfg.WearBlockBytes) - 1) / uint64(cfg.WearBlockBytes)
	return &NVM{
		cfg:       cfg,
		cpuHz:     cpuHz,
		tRead:     uint64(math.Ceil(cfg.ReadLatencyNanos * 1e-9 * cpuHz)),
		tWrite:    uint64(math.Ceil(cfg.WriteLatencyNanos * 1e-9 * cpuHz)),
		readPerB:  cpuHz / cfg.ReadBandwidth,
		writePerB: cpuHz / cfg.WriteBandwidth,
		wearShift: uint(math.Log2(float64(cfg.WearBlockBytes))),
		endurance: cfg.EnduranceWrites,
		bankReady: make([]uint64, cfg.Banks),
		wear:      make([]uint32, blocks),
	}, nil
}

// Name returns the configured device name.
func (d *NVM) Name() string { return d.cfg.Name }

// Capacity returns the device capacity in bytes.
func (d *NVM) Capacity() uint64 { return d.cfg.CapacityBytes }

// Stats returns the accumulated counters.
func (d *NVM) Stats() NVMStats { return d.stats }

// Snapshot flattens the device counters into the unified metric shape.
func (d *NVM) Snapshot() stats.Snapshot { return d.stats.Snapshot() }

// ResetStats clears the activity counters (end of warm-up) but keeps
// the endurance state: wear is physical damage, not a statistic, so the
// wear counters carry across the reset.
func (d *NVM) ResetStats() {
	wearWrites, maxWear, worn := d.stats.WearWrites, d.stats.MaxWear, d.stats.WornBlocks
	d.stats = NVMStats{WearWrites: wearWrites, MaxWear: maxWear, WornBlocks: worn}
}

// Access performs one transfer of bytes at device-local address local,
// returning its completion cycle.
func (d *NVM) Access(now uint64, local uint64, write bool, bytes int) uint64 {
	bank := int((local >> 6) % uint64(len(d.bankReady)))
	start := now
	if r := d.bankReady[bank]; r > start {
		start = r
		d.stats.BankWaits++
	}
	var lat, burst uint64
	if write {
		lat = d.tWrite
		burst = uint64(math.Ceil(float64(bytes) * d.writePerB))
		d.stats.Writes++
		d.stats.WriteBytes += uint64(bytes)
		d.recordWear(local, bytes)
	} else {
		lat = d.tRead
		burst = uint64(math.Ceil(float64(bytes) * d.readPerB))
		d.stats.Reads++
		d.stats.ReadBytes += uint64(bytes)
	}
	// The media access completes at start+lat; the result then needs the
	// shared channel for burst cycles.
	busStart := start + lat
	if d.chanFree > busStart {
		busStart = d.chanFree
		d.stats.BusWaits++
	}
	done := busStart + burst
	d.chanFree = done
	d.bankReady[bank] = done
	return done
}

// recordWear charges a write against every wear block it touches.
func (d *NVM) recordWear(local uint64, bytes int) {
	first := local >> d.wearShift
	last := (local + uint64(max(bytes, 1)) - 1) >> d.wearShift
	for b := first; b <= last && b < uint64(len(d.wear)); b++ {
		d.wear[b]++
		d.stats.WearWrites++
		if w := uint64(d.wear[b]); w > d.stats.MaxWear {
			d.stats.MaxWear = w
		}
		if uint64(d.wear[b]) == d.endurance {
			d.stats.WornBlocks++
		}
	}
}

// Stream transfers a contiguous region as line-sized accesses, exactly
// like demand accesses consume bank and channel bandwidth.
func (d *NVM) Stream(now uint64, local uint64, write bool, bytes, lineBytes int) (done uint64) {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	done = now
	for off := 0; off < bytes; off += lineBytes {
		n := min(lineBytes, bytes-off)
		if end := d.Access(now, local+uint64(off), write, n); end > done {
			done = end
		}
	}
	return done
}

// PeakBandwidth returns the larger of the sustained read and write
// ceilings (the device's best case).
func (d *NVM) PeakBandwidth() float64 {
	return math.Max(d.cfg.ReadBandwidth, d.cfg.WriteBandwidth)
}

// BusyFraction returns the fraction of the elapsed time the channel was
// transferring, weighting reads and writes by their own ceilings.
func (d *NVM) BusyFraction(elapsedCycles uint64) float64 {
	if elapsedCycles == 0 {
		return 0
	}
	busy := float64(d.stats.ReadBytes)*d.readPerB + float64(d.stats.WriteBytes)*d.writePerB
	return busy / float64(elapsedCycles)
}

// QueueDelay returns how far beyond now the shared channel is already
// reserved.
func (d *NVM) QueueDelay(now uint64) uint64 {
	if d.chanFree > now {
		return d.chanFree - now
	}
	return 0
}

// WearLevel returns the lifetime write count of the wear block holding
// device-local address local.
func (d *NVM) WearLevel(local uint64) uint64 {
	b := local >> d.wearShift
	if b >= uint64(len(d.wear)) {
		return 0
	}
	return uint64(d.wear[b])
}

// Energy computes the device's energy over the elapsed window. NVM has
// no refresh; ActPrePJ is charged once per access as the row/sense
// overhead.
func (d *NVM) Energy(cfg config.PowerConfig, elapsedCycles uint64) EnergyReport {
	seconds := float64(elapsedCycles) / d.cpuHz
	return EnergyReport{
		ActivateNJ:   float64(d.stats.Reads+d.stats.Writes) * cfg.ActPrePJ / 1e3,
		ReadNJ:       float64(d.stats.ReadBytes) * cfg.ReadPJPerByte / 1e3,
		WriteNJ:      float64(d.stats.WriteBytes) * cfg.WritePJPerByte / 1e3,
		BackgroundNJ: cfg.BackgroundMW * seconds * 1e6,
	}
}

// Package dse is the design-space-exploration service core: a
// declarative sweep specification over the simulator's pluggable axes
// (policy, workload, stacked ratio, capacity scale, seed, cache
// hierarchy, memory-tier stack), deterministic cross-product expansion
// into cells, a strict-dominance Pareto filter over configurable
// objectives, and a bounded concurrent runner with early pruning of
// dominated configurations.
//
// The package is evaluation-agnostic: Spec.Run asks a caller-supplied
// Evaluate callback for each cell's simulation result, so the same
// sweep machinery serves the in-process library driver
// (experiments.RunDSE), the chamd job type (which keys every cell into
// the server's content-addressed result cache), and tests (which fake
// the evaluator entirely). Grounded in "Enabling Design Space
// Exploration of DRAM Caches in Emerging Memory Systems" (arXiv
// 2303.13029) and the multi-objective performance/capacity/energy
// framing of arXiv 1810.12573.
package dse

import (
	"fmt"

	"chameleon/internal/config"
	"chameleon/internal/policy"
	"chameleon/internal/workload"
)

// Objective senses: whether larger or smaller values win.
const (
	SenseMax = "max"
	SenseMin = "min"
)

// Derived objective keys, computed from a result's unified stats
// snapshot by summing per-tier counters (so they track whatever memory
// stack a cell configures, two tiers or five).
const (
	// KeyTotalCapacity is the summed capacity of every memory tier
	// (stacked + off-chip + anything deeper), in bytes.
	KeyTotalCapacity = "total_capacity_bytes"
	// KeyTotalEnergy is the summed energy of every memory tier over the
	// run, in nanojoules.
	KeyTotalEnergy = "total_energy_nj"
)

// Objective names one optimisation axis: a key into the run's unified
// stats snapshot (sim.Result.Snapshot) or one of the derived Key*
// totals, plus the sense in which it is optimised.
type Objective struct {
	Key   string `json:"key"`
	Sense string `json:"sense"`
}

// DefaultObjectives is the paper-shaped front: performance up,
// provisioned memory capacity down, DRAM energy down.
func DefaultObjectives() []Objective {
	return []Objective{
		{Key: "ipc_geomean", Sense: SenseMax},
		{Key: KeyTotalCapacity, Sense: SenseMin},
		{Key: KeyTotalEnergy, Sense: SenseMin},
	}
}

// defaultPolicies is the sweep's policy axis when the spec names none:
// the paper's standard evaluation designs. Deliberately a fixed list
// rather than the live registry, so a spec's normalized form (and its
// content hash) does not depend on which extra designs happen to be
// registered in the submitting process.
func defaultPolicies() []string {
	return []string{"flat", "numa-flat", "alloy", "pom", "polymorphic", "chameleon", "chameleon-opt"}
}

// Spec is a declarative sweep: the cross product of every listed axis.
// Empty axes take defaults (all Table II workloads, the standard
// policy set, one default ratio/scale/seed, the configured default
// cache hierarchy and memory stack). CacheLevelVariants and
// MemoryTierVariants are list-valued axes: each entry is one complete
// hierarchy or tier stack the sweep substitutes for the default.
type Spec struct {
	Policies  []string `json:"policies,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	// Ratios sweeps the stacked:off-chip capacity ratio (3, 5, 7 in the
	// paper); 0 keeps the configured default split.
	Ratios []int `json:"ratios,omitempty"`
	// Scales sweeps the capacity-scale divisor (power of two; 1 is the
	// full-size machine).
	Scales []uint64 `json:"scales,omitempty"`
	// Seeds replicates every configuration across random seeds. Results
	// are threads-invariant, so seeds are the only replication axis.
	Seeds []uint64 `json:"seeds,omitempty"`
	// CacheLevelVariants lists complete cache hierarchies to sweep
	// (each ordered core-outward, see config.CacheLevelConfig).
	CacheLevelVariants [][]config.CacheLevelConfig `json:"cache_level_variants,omitempty"`
	// MemoryTierVariants lists complete memory stacks to sweep (each
	// ordered nearest-first, see config.MemTierConfig).
	MemoryTierVariants [][]config.MemTierConfig `json:"memory_tier_variants,omitempty"`

	// Objectives configure the Pareto front (default: IPC up, total
	// capacity down, total memory energy down).
	Objectives []Objective `json:"objectives,omitempty"`
	// PruneAfter enables the per-axis early-pruning heuristic: once an
	// axis value has accumulated PruneAfter evaluated cells, all of
	// them strictly dominated and none on the current front, remaining
	// cells carrying that value are skipped without simulation. 0
	// disables pruning (full enumeration). The heuristic is applied at
	// deterministic wave boundaries, so a sweep's outcome is identical
	// at any runner concurrency.
	PruneAfter int `json:"prune_after,omitempty"`
}

// Cell is one expanded configuration of a sweep. CacheVariant and
// TierVariant index the spec's variant lists; -1 selects the default
// hierarchy or memory stack.
type Cell struct {
	Index        int    `json:"index"`
	Policy       string `json:"policy"`
	Workload     string `json:"workload"`
	Ratio        int    `json:"ratio,omitempty"`
	Scale        uint64 `json:"scale"`
	Seed         uint64 `json:"seed"`
	CacheVariant int    `json:"cache_variant"`
	TierVariant  int    `json:"tier_variant"`
}

// Normalize fills defaults and validates every axis value. The
// returned spec is canonical: specs that normalize equal expand to the
// same cells (and, through the server, hash identically).
func (s Spec) Normalize() (Spec, error) {
	if len(s.Policies) == 0 {
		s.Policies = defaultPolicies()
	}
	for _, p := range s.Policies {
		if _, err := policy.Lookup(p); err != nil {
			return s, fmt.Errorf("dse: %w", err)
		}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = workload.Names()
	}
	for _, w := range s.Workloads {
		if workload.IsReplay(w) {
			return s, fmt.Errorf("dse: workload %q: trace replays cannot join a sweep (their footprint is fixed; record per-scale traces and submit sim jobs instead)", w)
		}
		if _, err := workload.ByName(w); err != nil {
			return s, fmt.Errorf("dse: %w", err)
		}
	}
	if len(s.Ratios) == 0 {
		s.Ratios = []int{0}
	}
	if len(s.Scales) == 0 {
		s.Scales = []uint64{256}
	}
	for _, sc := range s.Scales {
		if sc == 0 || sc&(sc-1) != 0 {
			return s, fmt.Errorf("dse: scale must be a power of two, got %d", sc)
		}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{42}
	}
	for _, sd := range s.Seeds {
		if sd == 0 {
			return s, fmt.Errorf("dse: seed 0 is reserved (the simulator treats it as unset)")
		}
	}
	// Variant lists are validated as complete overlays on an
	// otherwise-default machine, so errors can only concern the variant
	// itself. Ratios are checked against every tier variant (a ratio
	// re-splits the first two tiers' combined capacity).
	for i, cl := range s.CacheLevelVariants {
		if len(cl) == 0 {
			return s, fmt.Errorf("dse: cache_level_variants[%d] is empty (omit the axis to keep the default hierarchy)", i)
		}
		cfg := config.Default(s.Scales[0])
		cfg.CacheLevels = cl
		if err := cfg.Validate(); err != nil {
			return s, fmt.Errorf("dse: cache_level_variants[%d]: %w", i, err)
		}
	}
	for i, mt := range s.MemoryTierVariants {
		if len(mt) == 0 {
			return s, fmt.Errorf("dse: memory_tier_variants[%d] is empty (omit the axis to keep the default stack)", i)
		}
		cfg := config.Default(s.Scales[0])
		cfg.MemoryTiers = config.CloneTiers(mt)
		if err := cfg.Validate(); err != nil {
			return s, fmt.Errorf("dse: memory_tier_variants[%d]: %w", i, err)
		}
		for _, r := range s.Ratios {
			if r == 0 {
				continue
			}
			if _, err := cfg.WithRatio(r); err != nil {
				return s, fmt.Errorf("dse: ratio %d on memory_tier_variants[%d]: %w", r, i, err)
			}
		}
	}
	if len(s.MemoryTierVariants) == 0 {
		for _, r := range s.Ratios {
			if r == 0 {
				continue
			}
			if _, err := config.Default(s.Scales[0]).WithRatio(r); err != nil {
				return s, fmt.Errorf("dse: ratio %d: %w", r, err)
			}
		}
	}
	if len(s.Objectives) == 0 {
		s.Objectives = DefaultObjectives()
	}
	seen := map[string]bool{}
	for i, o := range s.Objectives {
		if o.Key == "" {
			return s, fmt.Errorf("dse: objectives[%d] has no key", i)
		}
		if o.Sense != SenseMax && o.Sense != SenseMin {
			return s, fmt.Errorf("dse: objectives[%d] (%s): sense must be %q or %q, got %q",
				i, o.Key, SenseMax, SenseMin, o.Sense)
		}
		if seen[o.Key] {
			return s, fmt.Errorf("dse: duplicate objective key %q", o.Key)
		}
		seen[o.Key] = true
	}
	if s.PruneAfter < 0 {
		return s, fmt.Errorf("dse: prune_after must be non-negative, got %d", s.PruneAfter)
	}
	return s, nil
}

// variantIndices returns the axis index list for a variant axis: [-1]
// (the default configuration) when no variants are listed, else one
// index per variant.
func variantIndices(n int) []int {
	if n == 0 {
		return []int{-1}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// tierCount returns the number of memory tiers cell combinations with
// tier variant tv configure (the default stack has two).
func (s Spec) tierCount(tv int) int {
	if tv < 0 {
		return 2
	}
	return len(s.MemoryTierVariants[tv])
}

// Expand enumerates the sweep's cells in a fixed, documented order:
// tier variant, then cache variant, then policy, workload, ratio,
// scale, seed (innermost). Combinations whose policy needs more memory
// tiers than the cell's stack provides are skipped — a sweep may mix
// two- and three-tier stacks with policies of either depth — so cell
// indices are dense over the valid combinations. Call on a normalized
// spec; Expand re-normalizes defensively and reports a sweep that
// expands to nothing.
func (s Spec) Expand() ([]Cell, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	tierIdx := variantIndices(len(s.MemoryTierVariants))
	cacheIdx := variantIndices(len(s.CacheLevelVariants))
	var cells []Cell
	for _, tv := range tierIdx {
		tiers := s.tierCount(tv)
		for _, cv := range cacheIdx {
			for _, pol := range s.Policies {
				desc, err := policy.Lookup(pol)
				if err != nil {
					return nil, fmt.Errorf("dse: %w", err)
				}
				if desc.RequiredTiers() > tiers {
					continue // policy needs a deeper stack than this variant
				}
				for _, wl := range s.Workloads {
					for _, r := range s.Ratios {
						for _, sc := range s.Scales {
							for _, sd := range s.Seeds {
								cells = append(cells, Cell{
									Index: len(cells), Policy: pol, Workload: wl,
									Ratio: r, Scale: sc, Seed: sd,
									CacheVariant: cv, TierVariant: tv,
								})
							}
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("dse: sweep expands to no runnable cells (every policy × tier-stack combination is incompatible)")
	}
	return cells, nil
}

// axisNames are the cell axes the pruning heuristic tracks.
var axisNames = []string{"policy", "workload", "ratio", "scale", "seed", "cache_variant", "tier_variant"}

// axisValue renders one axis of a cell as a comparable string.
func axisValue(c Cell, axis string) string {
	switch axis {
	case "policy":
		return c.Policy
	case "workload":
		return c.Workload
	case "ratio":
		return fmt.Sprintf("%d", c.Ratio)
	case "scale":
		return fmt.Sprintf("%d", c.Scale)
	case "seed":
		return fmt.Sprintf("%d", c.Seed)
	case "cache_variant":
		return fmt.Sprintf("%d", c.CacheVariant)
	case "tier_variant":
		return fmt.Sprintf("%d", c.TierVariant)
	}
	panic("dse: unknown axis " + axis)
}

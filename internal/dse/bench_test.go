package dse

import (
	"math/rand"
	"testing"
)

// TestDominatesAllocFree pins the dominance comparison at zero
// allocations — it sits inside an O(n²) filter and an O(n²)-per-wave
// pruning pass.
func TestDominatesAllocFree(t *testing.T) {
	objs := DefaultObjectives()
	a := []float64{2, 100, 5}
	b := []float64{1, 200, 9}
	allocs := testing.AllocsPerRun(1000, func() {
		if !Dominates(a, b, objs) {
			t.Fatal("a must dominate b")
		}
	})
	if allocs != 0 {
		t.Errorf("Dominates allocates %.1f per call, want 0", allocs)
	}
}

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(7))
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{
			Cell:   Cell{Index: i},
			Values: []float64{rng.Float64(), float64(rng.Intn(8)), float64(rng.Intn(8))},
		}
	}
	return points
}

func BenchmarkDominates(b *testing.B) {
	objs := DefaultObjectives()
	x := []float64{2, 100, 5}
	y := []float64{1, 200, 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dominates(x, y, objs)
	}
}

func BenchmarkFront(b *testing.B) {
	objs := DefaultObjectives()
	points := benchPoints(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Front(points, objs)
	}
}

func BenchmarkExpand(b *testing.B) {
	s := Spec{Seeds: []uint64{1, 2, 3, 4}} // 7 policies × 14 workloads × 4 seeds = 392 cells
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Expand(); err != nil {
			b.Fatal(err)
		}
	}
}

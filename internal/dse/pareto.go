package dse

import (
	"fmt"
	"math"
	"strings"

	"chameleon/internal/stats"
)

// Point is one evaluated cell: its objective vector (spec objective
// order) plus provenance — the content hash of the cell's normalized
// job spec and whether the result was served from the
// content-addressed cache instead of simulated.
type Point struct {
	Cell   Cell      `json:"cell"`
	Values []float64 `json:"values"`
	Hash   string    `json:"hash,omitempty"`
	Cached bool      `json:"cached,omitempty"`
}

// better reports whether v beats w under sense. NaNs never beat
// anything, so a cell missing an objective can only be dominated.
func better(v, w float64, sense string) bool {
	if sense == SenseMax {
		return v > w
	}
	return v < w
}

// Dominates reports strict Pareto dominance of vector a over b: a is
// at least as good on every objective and strictly better on at least
// one. Equal vectors dominate in neither direction. A NaN coordinate
// loses to any real value in either sense (a cell missing an objective
// can only be dominated, never dominate). The comparison is
// allocation-free (it sits inside an O(n²) filter).
func Dominates(a, b []float64, objs []Objective) bool {
	if len(a) != len(objs) || len(b) != len(objs) {
		return false
	}
	strict := false
	for i, o := range objs {
		an, bn := math.IsNaN(a[i]), math.IsNaN(b[i])
		switch {
		case an && bn:
			continue // equal in the "both missing" sense
		case an:
			return false // a is worse here
		case bn:
			strict = true // b is worse here
		case better(b[i], a[i], o.Sense):
			return false
		case better(a[i], b[i], o.Sense):
			strict = true
		}
	}
	return strict
}

// Front applies the strict-dominance Pareto filter: it returns the
// points no other point strictly dominates, in input order, plus the
// number of dominated points. With points ordered by cell index the
// front is fully deterministic.
func Front(points []Point, objs []Objective) (front []Point, dominated int) {
	for i, p := range points {
		dom := false
		for k, q := range points {
			if k != i && Dominates(q.Values, p.Values, objs) {
				dom = true
				break
			}
		}
		if dom {
			dominated++
		} else {
			front = append(front, p)
		}
	}
	return front, dominated
}

// Values extracts the objective vector from a run's unified stats
// snapshot. Plain keys index the snapshot directly; the derived
// KeyTotalCapacity / KeyTotalEnergy keys sum the per-tier
// "mem_<name>.capacity_bytes" / "mem_<name>.energy_nj" counters, so
// they follow whatever memory stack the cell configured. A missing
// key is an error naming it — a sweep must not silently optimise
// zeros.
func Values(snap stats.Snapshot, objs []Objective) ([]float64, error) {
	out := make([]float64, len(objs))
	for i, o := range objs {
		switch o.Key {
		case KeyTotalCapacity:
			out[i] = sumTierSuffix(snap, ".capacity_bytes")
		case KeyTotalEnergy:
			out[i] = sumTierSuffix(snap, ".energy_nj")
		default:
			v, ok := snap[o.Key]
			if !ok {
				return nil, fmt.Errorf("dse: objective key %q not present in the result snapshot", o.Key)
			}
			out[i] = v
		}
	}
	return out, nil
}

// sumTierSuffix sums every per-tier counter with the given suffix
// (tier namespaces are "mem_<name>").
func sumTierSuffix(snap stats.Snapshot, suffix string) float64 {
	var total float64
	for k, v := range snap {
		if strings.HasPrefix(k, "mem_") && strings.HasSuffix(k, suffix) {
			total += v
		}
	}
	return total
}

package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"chameleon/internal/sim"
)

// pruneWaveSize is the fixed cell count between pruning decisions.
// Decisions happen at wave boundaries on the full index-ordered result
// set, never on completion order — and the wave size is a constant,
// not the concurrency bound — so a pruned sweep's outcome is identical
// at any RunOptions.Parallelism.
const pruneWaveSize = 32

// Eval is one cell's evaluation: the simulation result plus
// provenance (the cell's content hash and whether it came from the
// result cache).
type Eval struct {
	Result *sim.Result
	Hash   string
	Cached bool
}

// RunOptions configure one sweep execution.
type RunOptions struct {
	// Parallelism bounds concurrently evaluating cells (default
	// GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after every cell resolves with
	// the running counts (done includes cached; pruned cells skip
	// evaluation entirely). Calls are serialized.
	Progress func(done, cached, pruned, total int)
	// Evaluate produces one cell's simulation result. It must be safe
	// for concurrent calls. Returning an error fails the sweep (all
	// errors of the failing wave are joined, like the matrix runner).
	Evaluate func(ctx context.Context, c Cell) (Eval, error)
}

// Result is a sweep's structured outcome: the Pareto front plus every
// evaluated point (with per-cell provenance hashes) and the sweep's
// accounting. Front and Points are in cell-index order, so the
// marshaled JSON is deterministic; FrontSignature strips the
// cache/hash provenance for byte-level front comparisons.
type Result struct {
	Objectives []Objective `json:"objectives"`
	TotalCells int         `json:"total_cells"`
	Evaluated  int         `json:"evaluated"`
	Cached     int         `json:"cached"`
	Pruned     int         `json:"pruned"`
	Dominated  int         `json:"dominated"`
	Front      []Point     `json:"front"`
	Points     []Point     `json:"points"`
}

// FrontSignature renders the front's design-space content — cells and
// objective vectors, without cache/hash provenance — as deterministic
// JSON. Two executions of the same sweep must agree on it byte for
// byte whatever their concurrency, per-cell thread count, or cache
// temperature; pruned execution agrees with full enumeration on
// sweeps where the heuristic only discards dominated regions.
func (r *Result) FrontSignature() string {
	type sig struct {
		Cell   Cell      `json:"cell"`
		Values []float64 `json:"values"`
	}
	sigs := make([]sig, len(r.Front))
	for i, p := range r.Front {
		sigs[i] = sig{Cell: p.Cell, Values: p.Values}
	}
	b, err := json.Marshal(sigs)
	if err != nil {
		// Plain data; Marshal cannot fail.
		panic(fmt.Sprintf("dse: marshal front signature: %v", err))
	}
	return string(b)
}

// Run expands the sweep and evaluates it with bounded concurrency.
// With Spec.PruneAfter set, cells run in fixed-size index-ordered
// waves and the per-axis pruning heuristic may condemn axis values
// between waves, skipping their remaining cells without simulation.
// The spec is normalized first; ctx cancellation aborts between waves
// and fails the sweep with the context error.
func (s Spec) Run(ctx context.Context, ro RunOptions) (*Result, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	cells, err := s.Expand()
	if err != nil {
		return nil, err
	}
	par := ro.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if ro.Evaluate == nil {
		return nil, errors.New("dse: RunOptions.Evaluate is required")
	}
	waveSize := len(cells)
	if s.PruneAfter > 0 {
		waveSize = pruneWaveSize
	}

	points := make([]*Point, len(cells)) // by cell index; nil = pruned
	res := &Result{Objectives: s.Objectives, TotalCells: len(cells)}
	var mu sync.Mutex // guards the progress counters
	done, cached, pruned := 0, 0, 0
	progress := func() {
		if ro.Progress != nil {
			ro.Progress(done, cached, pruned, len(cells))
		}
	}

	condemned := map[string]bool{} // "axis=value" pairs pruned out
	isPruned := func(c Cell) bool {
		for _, ax := range axisNames {
			if condemned[ax+"="+axisValue(c, ax)] {
				return true
			}
		}
		return false
	}

	sem := make(chan struct{}, par)
	next := 0
	for next < len(cells) {
		// Assemble the next wave in cell-index order, discarding cells a
		// previous wave's prune decision condemned.
		wave := make([]int, 0, waveSize)
		for next < len(cells) && len(wave) < waveSize {
			c := cells[next]
			if s.PruneAfter > 0 && isPruned(c) {
				mu.Lock()
				pruned++
				progress()
				mu.Unlock()
			} else {
				wave = append(wave, next)
			}
			next++
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dse: sweep canceled after %d of %d cells: %w", done, len(cells), err)
		}
		var wg sync.WaitGroup
		errc := make([]error, len(wave))
		for wi, ci := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(wi, ci int) {
				defer wg.Done()
				defer func() { <-sem }()
				ev, err := ro.Evaluate(ctx, cells[ci])
				if err != nil {
					errc[wi] = fmt.Errorf("%s/%s (cell %d): %w", cells[ci].Policy, cells[ci].Workload, ci, err)
					return
				}
				vals, err := Values(ev.Result.Snapshot(), s.Objectives)
				if err != nil {
					errc[wi] = fmt.Errorf("%s/%s (cell %d): %w", cells[ci].Policy, cells[ci].Workload, ci, err)
					return
				}
				points[ci] = &Point{Cell: cells[ci], Values: vals, Hash: ev.Hash, Cached: ev.Cached}
				mu.Lock()
				done++
				if ev.Cached {
					cached++
				}
				progress()
				mu.Unlock()
			}(wi, ci)
		}
		wg.Wait()
		if err := errors.Join(errc...); err != nil {
			return nil, err
		}
		if s.PruneAfter > 0 {
			s.updateCondemned(points, condemned)
		}
	}

	res.Evaluated, res.Cached, res.Pruned = done, cached, pruned
	for _, p := range points {
		if p != nil {
			res.Points = append(res.Points, *p)
		}
	}
	res.Front, res.Dominated = Front(res.Points, s.Objectives)
	return res, nil
}

// updateCondemned recomputes the per-axis pruning decision over every
// evaluated point so far: an axis value is condemned once it has at
// least PruneAfter evaluated cells, every one of them strictly
// dominated by some evaluated cell, and none on the running front.
// The computation reads the full index-ordered point set, never the
// completion order, so it is deterministic at any concurrency.
func (s Spec) updateCondemned(points []*Point, condemned map[string]bool) {
	eval := make([]Point, 0, len(points))
	for _, p := range points {
		if p != nil {
			eval = append(eval, *p)
		}
	}
	dominatedByAny := make([]bool, len(eval))
	for i := range eval {
		for k := range eval {
			if k != i && Dominates(eval[k].Values, eval[i].Values, s.Objectives) {
				dominatedByAny[i] = true
				break
			}
		}
	}
	type tally struct{ total, dominated int }
	counts := map[string]tally{}
	for i, p := range eval {
		for _, ax := range axisNames {
			key := ax + "=" + axisValue(p.Cell, ax)
			t := counts[key]
			t.total++
			if dominatedByAny[i] {
				t.dominated++
			}
			counts[key] = t
		}
	}
	for key, t := range counts {
		if t.total >= s.PruneAfter && t.dominated == t.total {
			condemned[key] = true
		}
	}
}

package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/sim"
	"chameleon/internal/stats"
)

// fakeResult synthesizes a sim.Result whose snapshot exposes the three
// default objectives with the given values (capacity and energy ride on
// a single fake tier).
func fakeResult(ipc, capacity, energy float64) *sim.Result {
	return &sim.Result{
		GeoMeanIPC: ipc,
		Tiers: []sim.TierResult{{
			Tier:          "hbm",
			CapacityBytes: uint64(capacity),
			EnergyNJ:      energy,
		}},
	}
}

// fakeEval wraps a value function into an Evaluate callback with
// deterministic per-cell provenance.
func fakeEval(vals func(c Cell) (ipc, capacity, energy float64)) func(context.Context, Cell) (Eval, error) {
	return func(_ context.Context, c Cell) (Eval, error) {
		i, cap_, e := vals(c)
		return Eval{
			Result: fakeResult(i, cap_, e),
			Hash:   fmt.Sprintf("h-%s-%s-%d", c.Policy, c.Workload, c.Seed),
			Cached: c.Seed%2 == 0,
		}, nil
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s, err := Spec{}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !reflect.DeepEqual(s.Policies, defaultPolicies()) {
		t.Errorf("default policies = %v", s.Policies)
	}
	if len(s.Workloads) != 14 {
		t.Errorf("default workloads = %d, want the 14 Table II profiles", len(s.Workloads))
	}
	if !reflect.DeepEqual(s.Ratios, []int{0}) || !reflect.DeepEqual(s.Scales, []uint64{256}) || !reflect.DeepEqual(s.Seeds, []uint64{42}) {
		t.Errorf("default ratios/scales/seeds = %v %v %v", s.Ratios, s.Scales, s.Seeds)
	}
	if !reflect.DeepEqual(s.Objectives, DefaultObjectives()) {
		t.Errorf("default objectives = %v", s.Objectives)
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown policy", Spec{Policies: []string{"no-such-policy"}}, "no-such-policy"},
		{"unknown workload", Spec{Workloads: []string{"no-such-workload"}}, "no-such-workload"},
		{"replay workload", Spec{Workloads: []string{"replay:/tmp/x.cmtr"}}, "trace replays"},
		{"non-power-of-two scale", Spec{Scales: []uint64{100}}, "power of two"},
		{"zero seed", Spec{Seeds: []uint64{0}}, "seed 0"},
		{"empty cache variant", Spec{CacheLevelVariants: [][]config.CacheLevelConfig{{}}}, "cache_level_variants[0]"},
		{"empty tier variant", Spec{MemoryTierVariants: [][]config.MemTierConfig{{}}}, "memory_tier_variants[0]"},
		{"bad objective sense", Spec{Objectives: []Objective{{Key: "ipc_geomean", Sense: "up"}}}, "sense"},
		{"empty objective key", Spec{Objectives: []Objective{{Sense: SenseMax}}}, "no key"},
		{"duplicate objective", Spec{Objectives: []Objective{{Key: "ipc_geomean", Sense: SenseMax}, {Key: "ipc_geomean", Sense: SenseMin}}}, "duplicate"},
		{"negative prune", Spec{PruneAfter: -1}, "prune_after"},
		{"bad ratio", Spec{Ratios: []int{-3}}, "ratio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Normalize = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestExpandDeterministicDenseAndTierSkip(t *testing.T) {
	twoTier := config.Default(256).MemoryTiers
	threeTier := config.Default(256).WithNVMTier(64 << 20).MemoryTiers
	s := Spec{
		Policies:           []string{"chameleon", "hwc"}, // hwc needs >= 3 tiers
		Workloads:          []string{"bwaves", "mcf"},
		Seeds:              []uint64{1, 2},
		MemoryTierVariants: [][]config.MemTierConfig{twoTier, threeTier},
	}
	cells, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// Two-tier variant skips hwc: 1×2×2 = 4 cells; three-tier runs both
	// policies: 2×2×2 = 8 cells.
	if len(cells) != 12 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d; indices must be dense", i, c.Index)
		}
		if c.TierVariant == 0 && c.Policy == "hwc" {
			t.Fatalf("cell %d runs hwc on the two-tier variant", i)
		}
	}
	again, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand again: %v", err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("Expand is not deterministic")
	}
}

func TestExpandEmptySweepError(t *testing.T) {
	twoTier := config.Default(256).MemoryTiers
	s := Spec{
		Policies:           []string{"hwc"},
		Workloads:          []string{"bwaves"},
		MemoryTierVariants: [][]config.MemTierConfig{twoTier},
	}
	if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "no runnable cells") {
		t.Errorf("Expand = %v, want empty-sweep error", err)
	}
}

func TestValues(t *testing.T) {
	snap := stats.Snapshot{
		"ipc_geomean":            1.5,
		"mem_hbm.capacity_bytes": 100,
		"mem_ddr.capacity_bytes": 300,
		"mem_hbm.energy_nj":      7,
		"mem_ddr.energy_nj":      11,
	}
	vals, err := Values(snap, DefaultObjectives())
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	if want := []float64{1.5, 400, 18}; !reflect.DeepEqual(vals, want) {
		t.Errorf("Values = %v, want %v", vals, want)
	}
	if _, err := Values(snap, []Objective{{Key: "no_such_key", Sense: SenseMax}}); err == nil || !strings.Contains(err.Error(), "no_such_key") {
		t.Errorf("missing key error = %v", err)
	}
}

func TestDominates(t *testing.T) {
	objs := []Objective{{Key: "a", Sense: SenseMax}, {Key: "b", Sense: SenseMin}}
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{2, 1}, []float64{1, 2}, true},           // better on both
		{[]float64{2, 2}, []float64{1, 2}, true},           // better on one, equal other
		{[]float64{1, 2}, []float64{1, 2}, false},          // equal
		{[]float64{2, 3}, []float64{1, 2}, false},          // trade-off
		{[]float64{1, 2}, []float64{2, 1}, false},          // worse
		{[]float64{2, 1}, []float64{1}, false},             // length mismatch
		{[]float64{2, 1}, []float64{math.NaN(), 2}, true},  // NaN is always dominated
		{[]float64{math.NaN(), 1}, []float64{1, 2}, false}, // NaN never dominates
	}
	for i, tc := range cases {
		if got := Dominates(tc.a, tc.b, objs); got != tc.want {
			t.Errorf("case %d: Dominates(%v, %v) = %v, want %v", i, tc.a, tc.b, got, tc.want)
		}
	}
}

// TestFrontProperty is the Pareto property test: over random point
// clouds, the front and dominated sets partition the input, no front
// point is dominated by any point, and every excluded point is
// dominated by some point.
func TestFrontProperty(t *testing.T) {
	objs := DefaultObjectives()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{
				Cell:   Cell{Index: i},
				Values: []float64{rng.Float64(), float64(rng.Intn(4)), float64(rng.Intn(4))},
			}
		}
		front, dominated := Front(points, objs)
		if len(front)+dominated != n {
			t.Fatalf("trial %d: front %d + dominated %d != %d points", trial, len(front), dominated, n)
		}
		onFront := map[int]bool{}
		for _, f := range front {
			onFront[f.Cell.Index] = true
			for _, p := range points {
				if Dominates(p.Values, f.Values, objs) {
					t.Fatalf("trial %d: front point %d is dominated by point %d", trial, f.Cell.Index, p.Cell.Index)
				}
			}
		}
		for _, p := range points {
			if onFront[p.Cell.Index] {
				continue
			}
			dom := false
			for _, q := range points {
				if Dominates(q.Values, p.Values, objs) {
					dom = true
					break
				}
			}
			if !dom {
				t.Fatalf("trial %d: point %d excluded from the front but dominated by nothing", trial, p.Cell.Index)
			}
		}
	}
}

// hashVals derives a deterministic pseudo-random objective vector from
// a cell's design axes (never its index), so every execution order and
// concurrency sees identical values.
func hashVals(c Cell) (float64, float64, float64) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%d/%d", c.Policy, c.Workload, c.Ratio, c.Scale, c.Seed)
	v := h.Sum64()
	return float64(v%1000) / 100, float64((v>>16)%8) * 1024, float64((v>>32)%16) * 10
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	s := Spec{
		Policies:   []string{"chameleon", "pom", "alloy"},
		Workloads:  []string{"bwaves", "mcf", "lbm"},
		Seeds:      []uint64{1, 2},
		PruneAfter: 2,
	}
	var want []byte
	for _, par := range []int{1, 3, 8} {
		res, err := s.Run(context.Background(), RunOptions{Parallelism: par, Evaluate: fakeEval(hashVals)})
		if err != nil {
			t.Fatalf("par %d: Run: %v", par, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if want == nil {
			want = b
			if res.TotalCells != 18 || res.Evaluated+res.Pruned != 18 {
				t.Fatalf("accounting: total %d evaluated %d pruned %d", res.TotalCells, res.Evaluated, res.Pruned)
			}
			if len(res.Front) == 0 {
				t.Fatal("empty front")
			}
		} else if string(b) != string(want) {
			t.Errorf("par %d: result JSON differs from par 1 (len %d vs %d)", par, len(b), len(want))
		}
	}
}

// TestRunPrunedMatchesUnprunedFront builds a sweep where one policy is
// strictly dominated everywhere and large enough (40 cells > one
// 32-cell wave) for the heuristic to actually skip cells, then checks
// pruning changes nothing about the front: byte-identical
// FrontSignature and DeepEqual front points vs full enumeration.
func TestRunPrunedMatchesUnprunedFront(t *testing.T) {
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	base := Spec{
		Policies:  []string{"chameleon", "pom"},
		Workloads: []string{"bwaves", "mcf"},
		Seeds:     seeds,
	}
	// chameleon trades IPC against capacity across seeds (all on the
	// front); pom is strictly worse on every objective everywhere.
	vals := func(c Cell) (float64, float64, float64) {
		if c.Policy == "chameleon" {
			return 2 + 0.01*float64(c.Seed), 1000 + float64(c.Seed), 50
		}
		return 1, 5000, 500
	}

	full := base
	res, err := full.Run(context.Background(), RunOptions{Parallelism: 4, Evaluate: fakeEval(vals)})
	if err != nil {
		t.Fatalf("unpruned Run: %v", err)
	}
	pruned := base
	pruned.PruneAfter = 2
	resP, err := pruned.Run(context.Background(), RunOptions{Parallelism: 4, Evaluate: fakeEval(vals)})
	if err != nil {
		t.Fatalf("pruned Run: %v", err)
	}

	if res.Pruned != 0 || resP.Pruned == 0 {
		t.Errorf("pruned counts: unpruned run %d, pruned run %d (want 0 and > 0)", res.Pruned, resP.Pruned)
	}
	if resP.Evaluated+resP.Pruned != resP.TotalCells {
		t.Errorf("pruned accounting: %d + %d != %d", resP.Evaluated, resP.Pruned, resP.TotalCells)
	}
	if got, want := resP.FrontSignature(), res.FrontSignature(); got != want {
		t.Errorf("front signatures differ:\npruned:   %s\nunpruned: %s", got, want)
	}
	if !reflect.DeepEqual(resP.Front, res.Front) {
		t.Error("pruning dropped or altered front points")
	}
	// Property (a) on the real runner output: nothing evaluated
	// dominates a front point.
	for _, f := range res.Front {
		for _, p := range res.Points {
			if Dominates(p.Values, f.Values, res.Objectives) {
				t.Fatalf("front point (cell %d) dominated by evaluated cell %d", f.Cell.Index, p.Cell.Index)
			}
		}
	}
	if len(res.Front) != 20 {
		t.Errorf("front has %d points, want the 20 chameleon cells", len(res.Front))
	}
}

func TestRunJoinsWaveErrors(t *testing.T) {
	s := Spec{
		Policies:  []string{"chameleon"},
		Workloads: []string{"bwaves", "mcf", "lbm"},
	}
	boom := errors.New("boom")
	eval := func(_ context.Context, c Cell) (Eval, error) {
		if c.Workload == "bwaves" || c.Workload == "lbm" {
			return Eval{}, boom
		}
		return Eval{Result: fakeResult(1, 1, 1)}, nil
	}
	_, err := s.Run(context.Background(), RunOptions{Parallelism: 4, Evaluate: eval})
	if err == nil || !strings.Contains(err.Error(), "bwaves") || !strings.Contains(err.Error(), "lbm") {
		t.Errorf("Run error = %v, want both failing cells joined", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("Run error does not wrap the cell error: %v", err)
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Spec{Policies: []string{"chameleon"}, Workloads: []string{"bwaves"}}
	_, err := s.Run(ctx, RunOptions{Evaluate: fakeEval(hashVals)})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestRunRequiresEvaluate(t *testing.T) {
	s := Spec{Policies: []string{"chameleon"}, Workloads: []string{"bwaves"}}
	if _, err := s.Run(context.Background(), RunOptions{}); err == nil || !strings.Contains(err.Error(), "Evaluate") {
		t.Errorf("Run without Evaluate = %v", err)
	}
}

func TestRunMissingObjectiveKey(t *testing.T) {
	s := Spec{
		Policies:   []string{"chameleon"},
		Workloads:  []string{"bwaves"},
		Objectives: []Objective{{Key: "nonexistent_counter", Sense: SenseMax}},
	}
	_, err := s.Run(context.Background(), RunOptions{Evaluate: fakeEval(hashVals)})
	if err == nil || !strings.Contains(err.Error(), "nonexistent_counter") {
		t.Errorf("Run = %v, want missing-key error", err)
	}
}

func TestRunProgressCounts(t *testing.T) {
	s := Spec{Policies: []string{"chameleon"}, Workloads: []string{"bwaves", "mcf"}, Seeds: []uint64{1, 2}}
	var last [4]int
	res, err := s.Run(context.Background(), RunOptions{
		Parallelism: 2,
		Evaluate:    fakeEval(hashVals),
		Progress:    func(done, cached, pruned, total int) { last = [4]int{done, cached, pruned, total} },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := [4]int{4, res.Cached, 0, 4}; last != want {
		t.Errorf("final progress = %v, want %v", last, want)
	}
	// fakeEval marks even seeds cached: seeds 1,2 over 2 workloads.
	if res.Cached != 2 {
		t.Errorf("cached = %d, want 2", res.Cached)
	}
}

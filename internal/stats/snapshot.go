package stats

import "sort"

// Snapshot is the unified flat view of a subsystem's metrics: metric
// name to scalar value. Every statistics-bearing component (caches,
// DRAM devices, the OS model, memory-system controllers, and whole
// simulation results) can flatten itself into this one shape, so
// consumers — the server's expvar surface, the experiment figure
// emitters, the CLI's counter dump — need a single code path instead of
// one per bespoke stats struct.
//
// Keys are lower_snake_case; nested subsystems are namespaced with a
// dot prefix (e.g. "ctrl.swaps", "dram_fast.row_hits").
type Snapshot map[string]float64

// Source is implemented by anything that can report its metrics as a
// Snapshot.
type Source interface {
	// Name identifies the source (e.g. a cache level, a device, or a
	// policy/workload pair).
	Name() string
	// Snapshot returns the current metric values. The returned map is
	// owned by the caller.
	Snapshot() Snapshot
}

// Keys returns the metric names in sorted order, for deterministic
// rendering.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge copies src into s, prefixing every key with "prefix." (or
// verbatim for an empty prefix), and returns s for chaining.
func (s Snapshot) Merge(prefix string, src Snapshot) Snapshot {
	for k, v := range src {
		if prefix != "" {
			k = prefix + "." + k
		}
		s[k] = v
	}
	return s
}

// Add accumulates src into s (missing keys start at zero), prefixing
// like Merge. Used by long-running consumers that aggregate snapshots
// across many runs.
func (s Snapshot) Add(prefix string, src Snapshot) Snapshot {
	for k, v := range src {
		if prefix != "" {
			k = prefix + "." + k
		}
		s[k] += v
	}
	return s
}

// Package stats provides the small metric helpers the experiment
// drivers share: geometric means, normalisation, and fixed-width table
// and CSV rendering for reproducing the paper's figures as text.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs, ignoring non-positive
// entries (they would be undefined in log space). It returns 0 for an
// empty or all-non-positive input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalize returns xs[i]/base for every element. A zero base yields
// zeros rather than Inf.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Improvement returns the percentage improvement of b over a:
// (b-a)/a * 100.
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

// Table renders rows as an aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; each cell is formatted with %v, floats with
// four significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; callers
// must not put commas in cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

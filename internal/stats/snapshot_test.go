package stats

import (
	"reflect"
	"testing"
)

type fakeSource struct {
	name string
	snap Snapshot
}

func (f fakeSource) Name() string       { return f.name }
func (f fakeSource) Snapshot() Snapshot { return f.snap }

func TestSnapshotKeysSorted(t *testing.T) {
	s := Snapshot{"z": 1, "a": 2, "m": 3}
	if got, want := s.Keys(), []string{"a", "m", "z"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys() = %v, want %v", got, want)
	}
}

func TestSnapshotMergePrefixes(t *testing.T) {
	s := Snapshot{"top": 1}
	s.Merge("ctrl", Snapshot{"swaps": 4, "hits": 2})
	s.Merge("", Snapshot{"bare": 9})
	want := Snapshot{"top": 1, "ctrl.swaps": 4, "ctrl.hits": 2, "bare": 9}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("after Merge: %v, want %v", s, want)
	}
}

func TestSnapshotAddAccumulates(t *testing.T) {
	s := Snapshot{}
	src := fakeSource{"run", Snapshot{"cycles": 10, "hits": 1}}
	s.Add("sim", src.Snapshot())
	s.Add("sim", src.Snapshot())
	if s["sim.cycles"] != 20 || s["sim.hits"] != 2 {
		t.Errorf("Add did not accumulate: %v", s)
	}
	var _ Source = src // fakeSource must satisfy the interface
}

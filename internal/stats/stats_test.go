package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("GeoMean of non-positives = %v", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{4, 0}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(4,0) = %v", g)
	}
}

// TestGeoMeanBounds: the geometric mean of positive numbers lies
// between the min and max.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4}, 2)
	if out[0] != 1 || out[1] != 2 {
		t.Errorf("Normalize = %v", out)
	}
	if out := Normalize([]float64{1}, 0); out[0] != 0 {
		t.Error("zero base should give zeros, not Inf")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 111.6); math.Abs(got-11.6) > 1e-9 {
		t.Errorf("Improvement = %v", got)
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("workload", "ipc")
	tb.AddRow("bwaves", 1.2345678)
	tb.AddRow("mcf", 3)
	s := tb.String()
	if !strings.Contains(s, "workload") || !strings.Contains(s, "bwaves") {
		t.Errorf("table missing content:\n%s", s)
	}
	if !strings.Contains(s, "1.235") {
		t.Errorf("float not rounded to 4 significant digits:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "workload,ipc\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("csv line count = %d", lines)
	}
}

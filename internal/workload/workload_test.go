package workload

import (
	"testing"

	"chameleon/internal/config"
)

// tableII is the paper's Table II: LLC-MPKI and memory footprint in GB
// for the 12-copy rate-mode workload.
var tableII = map[string]struct {
	mpki float64
	mf   float64
}{
	"bwaves": {12.91, 21.86}, "lbm": {29.55, 19.17},
	"cactusADM": {2.03, 20.12}, "leslie3d": {12.18, 21.65},
	"mcf": {59.804, 19.65}, "GemsFDTD": {20.783, 22.56},
	"SP": {0.87, 21.72}, "cloverleaf": {30.33, 23.01},
	"comd": {0.71, 23.18}, "miniAMR": {1.44, 22.40},
	"hpccg": {7.81, 22.15}, "miniFE": {0.48, 22.55},
	"miniGhost": {0.19, 20.68}, "stream": {35.77, 21.66},
}

func TestAllTableIIWorkloadsPresent(t *testing.T) {
	if len(Profiles()) != len(tableII) {
		t.Fatalf("%d profiles, want %d", len(Profiles()), len(tableII))
	}
	for name, want := range tableII {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if p.TargetLLCMPKI != want.mpki {
			t.Errorf("%s MPKI = %v, want %v", name, p.TargetLLCMPKI, want.mpki)
		}
		total := float64(p.FootprintBytes*Copies) / float64(config.GB)
		if total < want.mf*0.999 || total > want.mf*1.001 {
			t.Errorf("%s footprint = %.2f GB, want %.2f GB", name, total, want.mf)
		}
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if err := p.Scale(256).Validate(); err != nil {
			t.Errorf("%s scaled: %v", p.Name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestHighFootprintSubset(t *testing.T) {
	hf := HighFootprint()
	if len(hf) != 12 {
		t.Fatalf("capacity-study workloads = %d, want 12", len(hf))
	}
	for _, n := range hf {
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestFig3SequenceCoversAll(t *testing.T) {
	seq := Fig3Sequence()
	if len(seq) != len(Profiles()) {
		t.Errorf("sequence covers %d workloads, want all %d", len(seq), len(Profiles()))
	}
	seen := map[string]bool{}
	for _, n := range seq {
		if seen[n] {
			t.Errorf("%s appears twice", n)
		}
		seen[n] = true
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestTotalFootprint(t *testing.T) {
	p, _ := ByName("bwaves")
	full := TotalFootprint(p, 1)
	scaled := TotalFootprint(p, 64)
	if full/scaled < 63 || full/scaled > 65 {
		t.Errorf("scaling off: %d vs %d", full, scaled)
	}
}

// TestFootprintsExceedTwentyGB: the premise of the paper's capacity
// study — every high-footprint workload overflows a 20 GB system but
// fits in 24 GB.
func TestFootprintsExceedTwentyGB(t *testing.T) {
	for _, name := range HighFootprint() {
		p, _ := ByName(name)
		total := p.FootprintBytes * Copies
		if total <= 19*config.GB {
			t.Errorf("%s footprint %.1f GB does not stress a 20 GB system", name, float64(total)/float64(config.GB))
		}
		if total >= 24*config.GB {
			t.Errorf("%s footprint %.1f GB does not fit the 24 GB system", name, float64(total)/float64(config.GB))
		}
	}
}

package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/memtrace"
	"chameleon/internal/trace"
)

// tableII is the paper's Table II: LLC-MPKI and memory footprint in GB
// for the 12-copy rate-mode workload.
var tableII = map[string]struct {
	mpki float64
	mf   float64
}{
	"bwaves": {12.91, 21.86}, "lbm": {29.55, 19.17},
	"cactusADM": {2.03, 20.12}, "leslie3d": {12.18, 21.65},
	"mcf": {59.804, 19.65}, "GemsFDTD": {20.783, 22.56},
	"SP": {0.87, 21.72}, "cloverleaf": {30.33, 23.01},
	"comd": {0.71, 23.18}, "miniAMR": {1.44, 22.40},
	"hpccg": {7.81, 22.15}, "miniFE": {0.48, 22.55},
	"miniGhost": {0.19, 20.68}, "stream": {35.77, 21.66},
}

func TestAllTableIIWorkloadsPresent(t *testing.T) {
	if len(Profiles()) != len(tableII) {
		t.Fatalf("%d profiles, want %d", len(Profiles()), len(tableII))
	}
	for name, want := range tableII {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if p.TargetLLCMPKI != want.mpki {
			t.Errorf("%s MPKI = %v, want %v", name, p.TargetLLCMPKI, want.mpki)
		}
		total := float64(p.FootprintBytes*Copies) / float64(config.GB)
		if total < want.mf*0.999 || total > want.mf*1.001 {
			t.Errorf("%s footprint = %.2f GB, want %.2f GB", name, total, want.mf)
		}
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if err := p.Scale(256).Validate(); err != nil {
			t.Errorf("%s scaled: %v", p.Name, err)
		}
	}
}

// TestByNameUnknown: an unknown workload error lists the full
// catalogue and mentions the replay form, mirroring how the policy
// registry reports unknown designs.
func TestByNameUnknown(t *testing.T) {
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("unknown workload should fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nope"`) {
		t.Errorf("error %q does not name the offending workload", msg)
	}
	for _, n := range Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("error %q does not list catalogue entry %q", msg, n)
		}
	}
	if !strings.Contains(msg, ReplayPrefix) {
		t.Errorf("error %q does not mention the %s form", msg, ReplayPrefix)
	}
}

// TestResolveReplayErrors: malformed replay: names fail with errors
// that still list the available catalogue.
func TestResolveReplayErrors(t *testing.T) {
	for _, name := range []string{"replay:", "replay:/no/such/file.ctrace"} {
		_, err := Resolve(name)
		if err == nil {
			t.Errorf("Resolve(%q) should fail", name)
			continue
		}
		for _, n := range Names() {
			if !strings.Contains(err.Error(), n) {
				t.Errorf("Resolve(%q) error %q does not list catalogue entry %q", name, err, n)
				break
			}
		}
	}
	// A corrupt file reports the memtrace format diagnosis.
	path := filepath.Join(t.TempDir(), "bad.ctrace")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(ReplayPrefix + path); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("Resolve of a corrupt file = %v, want a bad-magic format error", err)
	}
}

// TestResolveRoundTrip: catalogue names and replay: paths resolve
// through the one entry point.
func TestResolveRoundTrip(t *testing.T) {
	r, err := Resolve("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != nil || r.Profile.Name != "bwaves" {
		t.Errorf("synthetic resolve = {%q, trace %v}", r.Profile.Name, r.Trace != nil)
	}

	var buf bytes.Buffer
	w := memtrace.NewWriter(&buf)
	prof := trace.Profile{Name: "captured", FootprintBytes: 1 << 20, RefPKI: 100}
	if err := w.Begin("captured", []trace.Profile{prof}); err != nil {
		t.Fatal(err)
	}
	w.Emit(0, trace.Ref{Gap: 1, VAddr: 64})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ctrace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err := Resolve(ReplayPrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Trace == nil || rr.Profile.Name != "captured" {
		t.Errorf("replay resolve = {%q, trace %v}, want the recorded run", rr.Profile.Name, rr.Trace != nil)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestHighFootprintSubset(t *testing.T) {
	hf := HighFootprint()
	if len(hf) != 12 {
		t.Fatalf("capacity-study workloads = %d, want 12", len(hf))
	}
	for _, n := range hf {
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestFig3SequenceCoversAll(t *testing.T) {
	seq := Fig3Sequence()
	if len(seq) != len(Profiles()) {
		t.Errorf("sequence covers %d workloads, want all %d", len(seq), len(Profiles()))
	}
	seen := map[string]bool{}
	for _, n := range seq {
		if seen[n] {
			t.Errorf("%s appears twice", n)
		}
		seen[n] = true
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestTotalFootprint(t *testing.T) {
	p, _ := ByName("bwaves")
	full := TotalFootprint(p, 1)
	scaled := TotalFootprint(p, 64)
	if full/scaled < 63 || full/scaled > 65 {
		t.Errorf("scaling off: %d vs %d", full, scaled)
	}
}

// TestFootprintsExceedTwentyGB: the premise of the paper's capacity
// study — every high-footprint workload overflows a 20 GB system but
// fits in 24 GB.
func TestFootprintsExceedTwentyGB(t *testing.T) {
	for _, name := range HighFootprint() {
		p, _ := ByName(name)
		total := p.FootprintBytes * Copies
		if total <= 19*config.GB {
			t.Errorf("%s footprint %.1f GB does not stress a 20 GB system", name, float64(total)/float64(config.GB))
		}
		if total >= 24*config.GB {
			t.Errorf("%s footprint %.1f GB does not fit the 24 GB system", name, float64(total)/float64(config.GB))
		}
	}
}

// Package workload defines the synthetic application profiles standing
// in for the paper's SPEC2006 / NAS / Mantevo / stream workloads. Each
// profile is calibrated to Table II of the paper (LLC-MPKI and total
// memory footprint of the 12-copy rate-mode workload); the locality
// knobs are chosen per application class (streaming, pointer-chasing,
// stencil, compute-bound).
package workload

import (
	"fmt"
	"sort"
	"strings"

	"chameleon/internal/config"
	"chameleon/internal/memtrace"
	"chameleon/internal/trace"
)

// Copies is the paper's rate mode: 12 copies of the same application,
// one per core.
const Copies = 12

// gb converts a Table II footprint (in GB, for all 12 copies) to the
// per-process footprint in bytes.
func gb(total float64) uint64 {
	return uint64(total * float64(config.GB) / Copies)
}

// profiles lists Table II. TargetLLCMPKI and FootprintBytes come
// straight from the table; RefPKI/locality are per-class calibrations.
var profiles = []trace.Profile{
	{Name: "bwaves", FootprintBytes: gb(21.86), TargetLLCMPKI: 12.91, RefPKI: 120, StreamFrac: 0.15, HotFrac: 0.90, HotRegionFrac: 0.09, WriteFrac: 0.30, BurstLines: 20},
	{Name: "cactusADM", FootprintBytes: gb(20.12), TargetLLCMPKI: 2.03, RefPKI: 120, StreamFrac: 0.12, HotFrac: 0.90, HotRegionFrac: 0.10, WriteFrac: 0.32, BurstLines: 16},
	{Name: "cloverleaf", FootprintBytes: gb(23.01), TargetLLCMPKI: 30.33, RefPKI: 130, StreamFrac: 0.18, HotFrac: 0.88, HotRegionFrac: 0.10, WriteFrac: 0.35, BurstLines: 20},
	{Name: "comd", FootprintBytes: gb(23.18), TargetLLCMPKI: 0.71, RefPKI: 110, StreamFrac: 0.10, HotFrac: 0.90, HotRegionFrac: 0.08, WriteFrac: 0.25, BurstLines: 12},
	{Name: "GemsFDTD", FootprintBytes: gb(22.56), TargetLLCMPKI: 20.783, RefPKI: 130, StreamFrac: 0.18, HotFrac: 0.90, HotRegionFrac: 0.09, WriteFrac: 0.33, BurstLines: 20},
	{Name: "hpccg", FootprintBytes: gb(22.15), TargetLLCMPKI: 7.81, RefPKI: 120, StreamFrac: 0.15, HotFrac: 0.90, HotRegionFrac: 0.09, WriteFrac: 0.28, BurstLines: 16},
	{Name: "lbm", FootprintBytes: gb(19.17), TargetLLCMPKI: 29.55, RefPKI: 140, StreamFrac: 0.30, HotFrac: 0.88, HotRegionFrac: 0.08, WriteFrac: 0.45, BurstLines: 24},
	{Name: "leslie3d", FootprintBytes: gb(21.65), TargetLLCMPKI: 12.18, RefPKI: 120, StreamFrac: 0.18, HotFrac: 0.90, HotRegionFrac: 0.09, WriteFrac: 0.32, BurstLines: 20},
	{Name: "mcf", FootprintBytes: gb(19.65), TargetLLCMPKI: 59.804, RefPKI: 150, StreamFrac: 0.03, HotFrac: 0.75, HotRegionFrac: 0.15, WriteFrac: 0.25, BurstLines: 3},
	{Name: "miniAMR", FootprintBytes: gb(22.40), TargetLLCMPKI: 1.44, RefPKI: 110, StreamFrac: 0.12, HotFrac: 0.90, HotRegionFrac: 0.09, WriteFrac: 0.30, BurstLines: 14},
	{Name: "miniFE", FootprintBytes: gb(22.55), TargetLLCMPKI: 0.48, RefPKI: 110, StreamFrac: 0.12, HotFrac: 0.90, HotRegionFrac: 0.08, WriteFrac: 0.28, BurstLines: 14},
	{Name: "miniGhost", FootprintBytes: gb(20.68), TargetLLCMPKI: 0.19, RefPKI: 100, StreamFrac: 0.12, HotFrac: 0.90, HotRegionFrac: 0.08, WriteFrac: 0.28, BurstLines: 12},
	{Name: "SP", FootprintBytes: gb(21.72), TargetLLCMPKI: 0.87, RefPKI: 110, StreamFrac: 0.15, HotFrac: 0.90, HotRegionFrac: 0.09, WriteFrac: 0.30, BurstLines: 14},
	{Name: "stream", FootprintBytes: gb(21.66), TargetLLCMPKI: 35.77, RefPKI: 140, StreamFrac: 0.60, HotFrac: 0.85, HotRegionFrac: 0.05, WriteFrac: 0.40, BurstLines: 28},
}

// Names returns all workload names in the paper's x-axis order
// (alphabetical).
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// Profiles returns every Table II profile.
func Profiles() []trace.Profile {
	out := make([]trace.Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ByName fetches one synthetic profile. Unknown names report the full
// catalogue, mirroring how the policy registry reports unknown designs.
func ByName(name string) (trace.Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return trace.Profile{}, fmt.Errorf("workload: unknown profile %q (available: %s; or %s<file>.ctrace to replay a recorded trace)",
		name, strings.Join(Names(), ", "), ReplayPrefix)
}

// ReplayPrefix marks a workload name as a recorded-trace replay:
// "replay:<path>" resolves the file at <path> instead of the synthetic
// catalogue.
const ReplayPrefix = "replay:"

// IsReplay reports whether name selects a trace replay.
func IsReplay(name string) bool { return strings.HasPrefix(name, ReplayPrefix) }

// Resolved is a workload name resolved against the catalogue: either a
// synthetic Table II profile or a recorded trace ready to replay.
type Resolved struct {
	// Profile is the run-level profile: the synthetic profile at full
	// footprint (callers scale it to their machine), or for a replay
	// the trace's synthesized run profile (already concrete — never
	// scale a replay).
	Profile trace.Profile
	// Trace is non-nil for replay workloads; its Sources() feed
	// sim.Options.Sources.
	Trace *memtrace.Trace
}

// Resolve looks up a workload by name, accepting both catalogue names
// and "replay:<path>" trace recordings. Errors always list the
// available catalogue names.
func Resolve(name string) (Resolved, error) {
	if path, ok := strings.CutPrefix(name, ReplayPrefix); ok {
		if path == "" {
			return Resolved{}, fmt.Errorf("workload: %q names no trace file (want %s<file>.ctrace; available synthetic profiles: %s)",
				name, ReplayPrefix, strings.Join(Names(), ", "))
		}
		t, err := memtrace.LoadFile(path)
		if err != nil {
			return Resolved{}, fmt.Errorf("workload: replay %w (available synthetic profiles: %s)",
				err, strings.Join(Names(), ", "))
		}
		return Resolved{Profile: t.RunProfile(), Trace: t}, nil
	}
	p, err := ByName(name)
	if err != nil {
		return Resolved{}, err
	}
	return Resolved{Profile: p}, nil
}

// HighFootprint returns the 12 workloads used in the capacity studies
// (Figures 4 and 5), in the paper's x-axis order.
func HighFootprint() []string {
	return []string{
		"bwaves", "leslie3d", "GemsFDTD", "lbm", "mcf", "hpccg",
		"SP", "stream", "cloverleaf", "comd", "miniFE", "cactusADM",
	}
}

// Fig3Sequence returns the order in which workloads run back-to-back
// in the Figure 3 free-memory-over-time experiment.
func Fig3Sequence() []string {
	return []string{
		"bwaves", "leslie3d", "GemsFDTD", "lbm", "mcf", "hpccg",
		"SP", "stream", "cloverleaf", "comd", "miniFE", "cactusADM",
		"miniAMR", "miniGhost",
	}
}

// TotalFootprint returns the footprint of a rate-mode workload (all
// copies), optionally scaled.
func TotalFootprint(p trace.Profile, scale uint64) uint64 {
	return p.Scale(scale).FootprintBytes * Copies
}

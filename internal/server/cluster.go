package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"chameleon/internal/cluster"
)

// replication is how many ring nodes hold each result: the owner plus
// one replica, so any single node death keeps every cached result
// reachable.
const replication = 2

// peerCallTimeout bounds one peer HTTP round-trip (status polls,
// cache lookups, claims). Forwards share it: a forward that cannot
// reach the owner quickly falls back to running locally.
const peerCallTimeout = 5 * time.Second

// --- routing: forward a submit to the ring owner ----------------------

// forward proxies a normalized submission to the first reachable
// owner and returns a local mirror job tracking the remote execution.
// ok=false means no owner was reachable and the caller should run the
// job locally.
func (s *Server) forward(norm JobSpec, hash string, now time.Time, owners []cluster.Node) (*Job, bool) {
	self := s.selfID()
	for _, owner := range owners {
		if owner.ID == self || !s.cl.Alive(owner.ID) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		var remote JobStatus
		err := cluster.DoJSONHeader(ctx, s.cl.HTTPClient(), http.MethodPost,
			owner.Addr+"/v1/jobs", map[string]string{cluster.ForwardedHeader: self}, norm, &remote)
		cancel()
		if err != nil {
			s.cl.Membership().MarkFailed(owner.ID)
			continue
		}
		s.metrics.JobsForwarded.Add(1)
		j := s.store.NewJob(norm, now)
		if !j.markRemote(owner.ID, owner.Addr, remote.ID, now) {
			return j, true // raced terminal; nothing else to do
		}
		if remote.State.Terminal() {
			// The owner served it from cache (or failed fast): resolve
			// the mirror immediately so the caller gets a finished job.
			s.resolveRemote(j, remote)
		}
		return j, true
	}
	return nil, false
}

// resolveRemote applies a terminal remote status to a local mirror,
// fetching result bytes for done jobs. A failed fetch leaves the
// mirror in StateRemote for the next poll.
func (s *Server) resolveRemote(j *Job, st JobStatus) {
	now := time.Now()
	switch st.State {
	case StateDone:
		_, addr, rid := j.remoteRef()
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		b, ok, err := cluster.GetBytes(ctx, s.cl.HTTPClient(), addr+"/v1/jobs/"+rid+"/result")
		cancel()
		if err != nil || !ok {
			return
		}
		s.cache.Put(j.Hash, b)
		if j.finishFromPeer(StateDone, b, "", st.Cached, now) {
			s.metrics.JobsRemoteDone.Add(1)
		}
	case StateFailed, StateCanceled:
		j.finishFromPeer(st.State, nil, st.Error, false, now)
	}
}

// pollRemotes refreshes every remote mirror from its owner: progress
// while running, result bytes once done. Unreachable owners are
// reported to the failure detector; the mirror stays remote until the
// owner is declared dead (then sweepDead re-enqueues it locally).
func (s *Server) pollRemotes() {
	for _, j := range s.store.Snapshot() {
		if j.State() != StateRemote {
			continue
		}
		node, addr, rid := j.remoteRef()
		if node == "" {
			continue
		}
		if !s.cl.Alive(node) {
			s.reenqueueLocal(j)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		var st JobStatus
		err := cluster.DoJSON(ctx, s.cl.HTTPClient(), http.MethodGet, addr+"/v1/jobs/"+rid, nil, &st)
		cancel()
		if err != nil {
			s.cl.Membership().MarkFailed(node)
			continue
		}
		if st.State.Terminal() {
			s.resolveRemote(j, st)
		} else {
			j.setProgress(st.Progress)
		}
	}
}

// sweepDead re-enqueues work stranded on dead nodes: remote mirrors
// whose owner died, and claimed jobs whose thief died. Exactly-once
// still holds — revertToQueued only fires from remote/claimed, and a
// late completion report for a re-run job lands on a terminal (or
// re-owned) job and is dropped.
func (s *Server) sweepDead() {
	if s.cl == nil {
		return
	}
	for _, j := range s.store.Snapshot() {
		switch j.State() {
		case StateRemote, StateClaimed:
			node, _, _ := j.remoteRef()
			if node != "" && !s.cl.Alive(node) {
				s.reenqueueLocal(j)
			}
		}
	}
}

// reenqueueLocal returns a job stranded on a dead node to the local
// worker pool.
func (s *Server) reenqueueLocal(j *Job) {
	if !j.revertToQueued(time.Now()) {
		return
	}
	if err := s.pool.Submit(j); err != nil {
		if j.finish(StateFailed, nil, fmt.Errorf("re-enqueue after node death: %w", err), time.Now()) {
			s.metrics.JobsFailed.Add(1)
		}
		return
	}
	s.metrics.JobsQueued.Add(1)
	s.metrics.JobsReenqueued.Add(1)
}

// cancelRemote best-effort propagates a mirror cancellation to the
// owner so the remote execution stops burning a worker.
func (s *Server) cancelRemote(addr, rid string) {
	ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
	defer cancel()
	_ = cluster.DoJSON(ctx, s.cl.HTTPClient(), http.MethodDelete, addr+"/v1/jobs/"+rid, nil, nil)
}

// --- cluster-wide result cache ----------------------------------------

// peerCacheGet consults the ring owner and replica (excluding self)
// for hash before simulating locally.
func (s *Server) peerCacheGet(hash string, owners []cluster.Node) ([]byte, bool) {
	self := s.selfID()
	for _, o := range owners {
		if o.ID == self || !s.cl.Alive(o.ID) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		b, ok, err := cluster.GetBytes(ctx, s.cl.HTTPClient(), o.Addr+cluster.CachePath+hash)
		cancel()
		if err != nil {
			s.cl.Membership().MarkFailed(o.ID)
			continue
		}
		if ok {
			return b, true
		}
	}
	return nil, false
}

// writeBackResult pushes freshly computed result bytes to the ring
// owner and replica (excluding self). Best effort: the result is
// already served locally; replication only widens the cache.
func (s *Server) writeBackResult(hash string, b []byte) {
	self := s.selfID()
	for _, o := range s.cl.Owners(hash, replication) {
		if o.ID == self || !s.cl.Alive(o.ID) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		err := cluster.PutBytes(ctx, s.cl.HTTPClient(), o.Addr+cluster.CachePath+hash, b)
		cancel()
		if err != nil {
			s.cl.Membership().MarkFailed(o.ID)
		}
	}
}

// --- work stealing ----------------------------------------------------

// stealableJob is one queued job offered to idle peers.
type stealableJob struct {
	ID   string  `json:"id"`
	Hash string  `json:"hash"`
	Spec JobSpec `json:"spec"`
}

type claimRequest struct {
	ID   string `json:"id"`
	By   string `json:"by"`
	Addr string `json:"addr"`
}

type claimResponse struct {
	OK   bool    `json:"ok"`
	Spec JobSpec `json:"spec,omitempty"`
}

type completeRequest struct {
	ID      string          `json:"id"`
	By      string          `json:"by"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	Requeue bool            `json:"requeue,omitempty"`
}

// idleCapacity returns how many more jobs this node could run right
// now without queueing.
func (s *Server) idleCapacity() int {
	free := int64(s.opts.Workers) - s.metrics.JobsRunning.Value() - s.metrics.JobsQueued.Value()
	if free < 0 {
		return 0
	}
	return int(free)
}

// stealOnce scans peers for queued work when this node is idle,
// claims jobs one at a time (the claim is CAS-guarded in the owner's
// jobstore, so a job runs exactly once cluster-wide), runs them
// locally, and reports results back to the owner.
func (s *Server) stealOnce() {
	if s.cl == nil || s.draining.Load() {
		return
	}
	budget := s.idleCapacity()
	if budget <= 0 {
		return
	}
	self := s.cl.Self()
	for _, peer := range s.cl.Members() {
		if budget <= 0 {
			return
		}
		if peer.ID == self.ID || !s.cl.Alive(peer.ID) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		var queued []stealableJob
		err := cluster.DoJSON(ctx, s.cl.HTTPClient(), http.MethodGet, peer.Addr+cluster.QueuePath, nil, &queued)
		cancel()
		if err != nil {
			s.cl.Membership().MarkFailed(peer.ID)
			continue
		}
		for _, sj := range queued {
			if budget <= 0 {
				return
			}
			if s.stealJob(peer, sj) {
				budget--
			}
		}
	}
}

// stealJob claims one queued job from a peer and runs it locally.
func (s *Server) stealJob(peer cluster.Node, sj stealableJob) bool {
	ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
	defer cancel()
	var cr claimResponse
	err := cluster.DoJSON(ctx, s.cl.HTTPClient(), http.MethodPost, peer.Addr+cluster.ClaimPath,
		claimRequest{ID: sj.ID, By: s.selfID(), Addr: s.cl.Self().Addr}, &cr)
	if err != nil || !cr.OK {
		return false
	}
	norm, err := cr.Spec.Normalize()
	if err != nil {
		// The spec ran Normalize on the owner already; a failure here
		// means an incompatible peer. Give the job back.
		s.reportComplete(originRef{NodeID: peer.ID, Addr: peer.Addr, ID: sj.ID},
			completeRequest{ID: sj.ID, By: s.selfID(), Requeue: true})
		return false
	}
	s.metrics.JobsStolen.Add(1)
	now := time.Now()
	j := s.store.NewJob(norm, now)
	j.setNode(s.selfID())
	j.setOrigin(peer.ID, peer.Addr, sj.ID)
	if err := s.pool.Submit(j); err != nil {
		j.finish(StateFailed, nil, err, time.Now())
		// We cannot run it after all; let the owner re-queue it.
		s.reportComplete(originRef{NodeID: peer.ID, Addr: peer.Addr, ID: sj.ID},
			completeRequest{ID: sj.ID, By: s.selfID(), Requeue: true})
		return false
	}
	s.metrics.JobsQueued.Add(1)
	return true
}

// reportToOrigin posts a stolen job's outcome back to the victim
// node, if this job was stolen. Called from runJob on every outcome.
func (s *Server) reportToOrigin(j *Job, result []byte, runErr error) {
	og, ok := j.Origin()
	if !ok {
		return
	}
	req := completeRequest{ID: og.ID, By: s.selfID(), Result: result}
	if runErr != nil {
		req.Error = runErr.Error()
	}
	go s.reportComplete(og, req)
}

// reportComplete delivers one completion report with retries; the
// owner's dead-thief sweep covers the case where every attempt fails.
func (s *Server) reportComplete(og originRef, req completeRequest) {
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), peerCallTimeout)
		err := cluster.DoJSON(ctx, s.cl.HTTPClient(), http.MethodPost, og.Addr+cluster.CompletePath, req, nil)
		cancel()
		if err == nil {
			return
		}
		var pe *cluster.PeerError
		if errors.As(err, &pe) {
			return // the owner saw the report and rejected it (job gone/terminal)
		}
		select {
		case <-s.stop:
			return
		case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
		}
	}
	s.cl.Membership().MarkFailed(og.NodeID)
}

// --- background loops and diagnostics ---------------------------------

// startClusterLoops runs the mirror-poll/death-sweep loop and the
// work-stealing loop until Shutdown.
func (s *Server) startClusterLoops() {
	s.loopWG.Add(2)
	go func() {
		defer s.loopWG.Done()
		t := time.NewTicker(s.opts.RemotePoll)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.pollRemotes()
				s.sweepDead()
			}
		}
	}()
	go func() {
		defer s.loopWG.Done()
		t := time.NewTicker(s.opts.StealInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.stealOnce()
			}
		}
	}()
}

// clusterInfo renders the live cluster summary for /debug/vars.
func (s *Server) clusterInfo() any {
	self := s.cl.Self()
	members := s.cl.Members()
	alive := 0
	states := make(map[string]string, len(members))
	for _, m := range members {
		states[m.ID] = string(m.State)
		if m.State == cluster.StateAlive {
			alive++
		}
	}
	return map[string]any{
		"node_id":       self.ID,
		"addr":          self.Addr,
		"incarnation":   self.Incarnation,
		"members_total": len(members),
		"members_alive": alive,
		"members":       states,
		"ring_nodes":    s.cl.Ring().Nodes(),
	}
}

// --- peer-protocol HTTP handlers --------------------------------------

// registerClusterRoutes adds the peer protocol to the API mux.
func (s *Server) registerClusterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST "+cluster.GossipPath, s.handleGossip)
	mux.HandleFunc("GET "+cluster.MembersPath, s.handleMembers)
	mux.HandleFunc("GET "+cluster.CachePath+"{hash}", s.handleCacheGet)
	mux.HandleFunc("PUT "+cluster.CachePath+"{hash}", s.handleCachePut)
	mux.HandleFunc("GET "+cluster.QueuePath, s.handleQueue)
	mux.HandleFunc("POST "+cluster.ClaimPath, s.handleClaim)
	mux.HandleFunc("POST "+cluster.CompletePath, s.handleComplete)
}

func (s *Server) handleGossip(w http.ResponseWriter, r *http.Request) {
	var d cluster.Digest
	if err := cluster.ReadJSON(w, r, &d, 1<<20); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cluster.WriteJSON(w, http.StatusOK, s.cl.HandleGossip(d))
}

func (s *Server) handleMembers(w http.ResponseWriter, _ *http.Request) {
	cluster.WriteJSON(w, http.StatusOK, struct {
		Self    cluster.Node   `json:"self"`
		Members []cluster.Node `json:"members"`
		Ring    []string       `json:"ring"`
	}{s.cl.Self(), s.cl.Members(), s.cl.Ring().Nodes()})
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	b, ok := s.cache.Get(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("not cached"))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	body, err := readAllLimited(w, r, 64<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.cache.Put(hash, body)
	s.metrics.PeerCacheFills.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQueue(w http.ResponseWriter, _ *http.Request) {
	var out []stealableJob
	if !s.draining.Load() {
		for _, j := range s.store.Snapshot() {
			// Trace replays read a node-local file; they cannot move.
			if j.State() == StateQueued && j.Spec.TracePath == "" {
				out = append(out, stealableJob{ID: j.ID, Hash: j.Hash, Spec: j.Spec})
			}
		}
	}
	cluster.WriteJSON(w, http.StatusOK, out)
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := cluster.ReadJSON(w, r, &req, 1<<20); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, ok := s.store.Get(req.ID)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job "+req.ID))
		return
	}
	if req.By == "" || j.Spec.TracePath != "" || !j.tryClaim(req.By, req.Addr, time.Now()) {
		cluster.WriteJSON(w, http.StatusOK, claimResponse{OK: false})
		return
	}
	s.metrics.JobsStolenAway.Add(1)
	cluster.WriteJSON(w, http.StatusOK, claimResponse{OK: true, Spec: j.Spec})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := cluster.ReadJSON(w, r, &req, 64<<20); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, ok := s.store.Get(req.ID)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job "+req.ID))
		return
	}
	now := time.Now()
	switch {
	case req.Requeue:
		s.reenqueueLocal(j)
	case req.Error != "":
		if j.finishFromPeer(StateFailed, nil, req.Error, false, now) {
			s.metrics.JobsFailed.Add(1)
		}
	default:
		s.cache.Put(j.Hash, req.Result)
		if j.finishFromPeer(StateDone, req.Result, "", false, now) {
			s.metrics.JobsRemoteDone.Add(1)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// readAllLimited reads a bounded request body.
func readAllLimited(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, max))
}

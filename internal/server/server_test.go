package server

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"chameleon/internal/config"
	"chameleon/internal/sim"
)

// fastSpec is a sim job small enough for unit tests (~tens of ms).
func fastSpec(seed uint64) JobSpec {
	return JobSpec{
		Kind: KindSim, Policy: "chameleon-opt", Workload: "bwaves",
		Scale: 1024, Instructions: 5_000, Warmup: 1, Seed: seed,
		TimelineEpochCycles: 10_000,
	}
}

// slowSpec is a sim job that runs long enough to be canceled mid-run.
func slowSpec(seed uint64) JobSpec {
	s := fastSpec(seed)
	s.Instructions = 1 << 40
	return s
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s not terminal after %s (state %s)", j.ID, timeout, j.Status().State)
	}
	return j.Status()
}

func TestSubmitResultMatchesDirectRun(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	j, err := s.Submit(fastSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	body, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	// The same spec run directly must agree exactly: the simulator is
	// deterministic in its options and seed.
	o, err := j.Spec.SimOptions()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Run(j.Spec.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	if got.GeoMeanIPC != want.GeoMeanIPC || got.MaxCycles != want.MaxCycles ||
		got.StackedHitRate != want.StackedHitRate {
		t.Fatalf("served result diverged: got IPC %v cycles %d hit %v, want IPC %v cycles %d hit %v",
			got.GeoMeanIPC, got.MaxCycles, got.StackedHitRate,
			want.GeoMeanIPC, want.MaxCycles, want.StackedHitRate)
	}
}

// TestJobsParallelByDefault: a sim job with timeline sampling — which
// every chamd job attaches — runs on the parallel engine, both when the
// spec asks for threads explicitly and when it leaves the count unset
// (server default 2), and its result is DeepEqual to the same spec run
// sequentially, up to the Engine provenance fields.
func TestJobsParallelByDefault(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})

	// The sequential reference: the same spec run directly at Threads=1.
	spec, err := fastSpec(11).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	o, err := spec.SimOptions()
	if err != nil {
		t.Fatal(err)
	}
	o.Threads = 1
	sys, err := sim.New(o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Run(spec.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	if want.Engine != sim.EngineSequential {
		t.Fatalf("reference run engine = %q, want sequential", want.Engine)
	}

	for _, threads := range []int{0, 8} {
		spec := fastSpec(11)
		spec.Threads = threads
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, j, 30*time.Second)
		if st.State != StateDone {
			t.Fatalf("threads=%d: state = %s (err %q), want done", threads, st.State, st.Error)
		}
		body, err := j.Result()
		if err != nil {
			t.Fatal(err)
		}
		var got sim.Result
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Engine != sim.EngineParallel || got.FallbackReason != "" {
			t.Fatalf("threads=%d: served engine %q/%q, want parallel", threads, got.Engine, got.FallbackReason)
		}
		got.Engine, got.FallbackReason = "", ""
		w := *want
		w.Engine, w.FallbackReason = "", ""
		wb, err := json.Marshal(&w)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(&got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Errorf("threads=%d: served result diverged from the sequential run:\nseq: %s\npar: %s", threads, wb, gb)
		}
	}
	if v := s.Metrics().Vars().Get("sim_parallel_fallback_total"); v == nil {
		t.Error("sim_parallel_fallback_total missing from the expvar document")
	}
}

func TestDuplicateSubmitHitsCache(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	j1, err := s.Submit(fastSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1, 30*time.Second)
	r1, err := j1.Result()
	if err != nil {
		t.Fatal(err)
	}

	j2, err := s.Submit(fastSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status() // terminal immediately, no queue involved
	if st.State != StateDone || !st.Cached {
		t.Fatalf("duplicate submit: state=%s cached=%v, want done/true", st.State, st.Cached)
	}
	r2, _ := j2.Result()
	if string(r1) != string(r2) {
		t.Fatal("cached result differs from original")
	}
	if s.Metrics().CacheHits.Value() != 1 {
		t.Fatalf("cache hits = %d, want 1", s.Metrics().CacheHits.Value())
	}
	// A different seed is a different content address.
	j3, err := s.Submit(fastSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if j3.Status().Cached {
		t.Fatal("different seed must not hit the cache")
	}
}

// TestThreadsExcludedFromHash: the parallel engine is bit-deterministic,
// so the thread count is pure scheduling — two submissions differing
// only in threads must share one content hash and one cache entry.
func TestThreadsExcludedFromHash(t *testing.T) {
	one := fastSpec(6)
	one.Threads = 1
	eight := fastSpec(6)
	eight.Threads = 8
	n1, err := one.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	n8, err := eight.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n1.Hash() != n8.Hash() {
		t.Fatalf("threads changed the content hash: %s vs %s", n1.Hash(), n8.Hash())
	}

	if _, err := (JobSpec{Kind: KindSim, Policy: "flat", Workload: "bwaves", Threads: -1}).Normalize(); err == nil {
		t.Fatal("negative threads must be rejected")
	}

	s := newTestServer(t, Options{Workers: 1})
	j1, err := s.Submit(one)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1, 30*time.Second)
	r1, err := j1.Result()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(eight)
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if st.State != StateDone || !st.Cached {
		t.Fatalf("threads=8 resubmission: state=%s cached=%v, want done from cache", st.State, st.Cached)
	}
	r2, _ := j2.Result()
	if string(r1) != string(r2) {
		t.Fatal("cached result differs across thread counts")
	}
}

func TestManyJobsFewWorkers(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, QueueDepth: 64})
	const n = 10
	jobs := make([]*Job, n)
	for i := range jobs {
		j, err := s.Submit(fastSpec(uint64(100 + i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if st := waitTerminal(t, j, 60*time.Second); st.State != StateDone {
			t.Fatalf("job %d: state %s (err %q)", i, st.State, st.Error)
		}
	}
	m := s.Metrics()
	if m.JobsDone.Value() != n {
		t.Fatalf("jobs_done = %d, want %d", m.JobsDone.Value(), n)
	}
	if m.JobsQueued.Value() != 0 || m.JobsRunning.Value() != 0 {
		t.Fatalf("gauges not drained: queued=%d running=%d",
			m.JobsQueued.Value(), m.JobsRunning.Value())
	}
}

func TestCancelMidRun(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	j, err := s.Submit(slowSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to actually start.
	deadline := time.Now().Add(10 * time.Second)
	for j.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", j.Status().State)
		}
		time.Sleep(time.Millisecond)
	}
	if ok, err := s.Cancel(j.ID); err != nil || !ok {
		t.Fatalf("cancel: ok=%v err=%v", ok, err)
	}
	st := waitTerminal(t, j, 10*time.Second)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("canceled job must not serve a result")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	blocker, err := s.Submit(slowSpec(7)) // occupies the only worker
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(fastSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Cancel(queued.ID); err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	st := waitTerminal(t, queued, 5*time.Second)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if ok, _ := s.Cancel(blocker.ID); !ok {
		t.Fatal("cancel running blocker failed")
	}
	waitTerminal(t, blocker, 10*time.Second)
}

func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	spec := slowSpec(9)
	spec.TimeoutMS = 50
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 10*time.Second)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed (deadline)", st.State)
	}
	if st.Error == "" {
		t.Fatal("deadline failure should carry an error")
	}
}

func TestShutdownDrains(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	running, err := s.Submit(fastSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	queued := make([]*Job, 3)
	for i := range queued {
		if queued[i], err = s.Submit(slowSpec(uint64(20 + i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The in-flight (or first-dequeued) job ran to completion or was
	// at least terminal; queued slow jobs were canceled, not run.
	if st := running.Status(); !st.State.Terminal() {
		t.Fatalf("first job not terminal after shutdown: %s", st.State)
	}
	for i, j := range queued {
		st := j.Status()
		if !st.State.Terminal() {
			t.Fatalf("queued job %d not terminal after shutdown: %s", i, st.State)
		}
	}
	if _, err := s.Submit(fastSpec(30)); err == nil {
		t.Fatal("submit after shutdown should fail")
	}
}

func TestSpecValidation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	for name, spec := range map[string]JobSpec{
		"no policy":        {Kind: KindSim, Workload: "bwaves"},
		"bad policy":       {Policy: "nope", Workload: "bwaves"},
		"no workload":      {Policy: "pom"},
		"bad workload":     {Policy: "pom", Workload: "nope"},
		"bad kind":         {Kind: "exotic"},
		"bad scale":        {Policy: "pom", Workload: "bwaves", Scale: 3},
		"negative timeout": {Policy: "pom", Workload: "bwaves", TimeoutMS: -1},
		"bad cache levels": {Policy: "pom", Workload: "bwaves", CacheLevels: []config.CacheLevelConfig{
			{Name: "L1", SizeBytes: 32 * config.KB, Ways: 4, LineBytes: 48, LatencyCycles: 4}}},
		"shrinking cache latency": {Policy: "pom", Workload: "bwaves", CacheLevels: []config.CacheLevelConfig{
			{Name: "L1", SizeBytes: 32 * config.KB, Ways: 4, LineBytes: 64, LatencyCycles: 4},
			{Name: "LLC", SizeBytes: 1 * config.MB, Ways: 16, LineBytes: 64, LatencyCycles: 2, Shared: true}}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestCacheLevelsJob: a spec carrying an explicit hierarchy runs behind
// that stack — the result reports the custom levels — and the hierarchy
// is part of the job's content address.
func TestCacheLevelsJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	spec := fastSpec(7)
	spec.CacheLevels = []config.CacheLevelConfig{
		{Name: "L1", SizeBytes: 16 * config.KB, Ways: 2, LineBytes: 64, LatencyCycles: 4},
		{Name: "LLC", SizeBytes: 256 * config.KB, Ways: 8, LineBytes: 64, LatencyCycles: 30, Shared: true},
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	body, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Levels) != 2 || got.Levels[0].Level != "L1" || got.Levels[1].Level != "LLC" {
		t.Fatalf("result levels = %+v, want the submitted 2-level stack", got.Levels)
	}
	def, err := fastSpec(7).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if def.Hash() == norm.Hash() {
		t.Fatal("cache hierarchy must change the job's content address")
	}
}

func TestHashCanonicalization(t *testing.T) {
	// Explicit defaults and omitted fields are the same job.
	a, err := JobSpec{Policy: "pom", Workload: "bwaves"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Kind: KindSim, Policy: "pom", Workload: "bwaves",
		Scale: 256, Instructions: 500_000, Warmup: 4_000_000, Seed: 42,
		TimelineEpochCycles: 1_000_000}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("defaulted and explicit specs should share a hash")
	}
	// Scheduling-only knobs don't change identity.
	c := a
	c.TimeoutMS = 9999
	if a.Hash() != c.Hash() {
		t.Fatal("timeout must not change the content address")
	}
	// Result-affecting knobs do.
	d := a
	d.Seed = 43
	if a.Hash() == d.Hash() {
		t.Fatal("seed must change the content address")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.CacheHits.Add(3)
	m.CacheMisses.Add(1)
	if r := m.CacheHitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", r)
	}
	m.ObserveQueueWait(5 * time.Millisecond)
	m.ObserveQueueWait(2 * time.Second)
	snap := m.queueWaitSnapshot()
	if snap["count"] != 2 || snap["le_10"] != 1 || snap["le_10000"] != 1 {
		t.Fatalf("histogram snapshot wrong: %v", snap)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(m.Vars().String()), &decoded); err != nil {
		t.Fatalf("expvar map is not valid JSON: %v", err)
	}
	for _, key := range []string{"jobs_done", "cache_hit_rate", "queue_wait_ms", "sim_cycles_per_sec"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("metrics missing %s: %v", key, decoded)
		}
	}
}

func TestMatrixJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix job is comparatively heavy")
	}
	s := newTestServer(t, Options{Workers: 1})
	j, err := s.Submit(JobSpec{
		Kind: KindMatrix, Workloads: []string{"bwaves"},
		Scale: 1024, Instructions: 10_000, Warmup: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 120*time.Second)
	if st.State != StateDone {
		t.Fatalf("matrix job: state %s (err %q)", st.State, st.Error)
	}
	if st.Progress.TotalCells != 8 || st.Progress.DoneCells != 8 {
		t.Fatalf("matrix progress = %+v, want 8/8 cells", st.Progress)
	}
	body, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var payload matrixPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"flat-20", "flat-24", "chameleon-opt", "pom"} {
		if payload.Results[policy]["bwaves"] == nil {
			t.Errorf("matrix payload missing %s/bwaves (have %d policies)", policy, len(payload.Results))
		}
	}
}

func TestProgressFromTimelineEpochs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	spec := fastSpec(12)
	spec.Instructions = 60_000
	spec.TimelineEpochCycles = 5_000
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if st.Progress.Epochs == 0 || st.Progress.Cycle == 0 {
		t.Fatalf("no progress recorded from timeline epochs: %+v", st.Progress)
	}
	var res sim.Result
	body, _ := j.Result()
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if st.Progress.Epochs != len(res.Timeline) {
		t.Fatalf("progress epochs %d != timeline points %d", st.Progress.Epochs, len(res.Timeline))
	}
}

func TestStoreListOrder(t *testing.T) {
	st := NewStore()
	spec, err := JobSpec{Policy: "pom", Workload: "bwaves"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, st.NewJob(spec, time.Now()).ID)
	}
	list := st.List()
	if len(list) != 5 {
		t.Fatalf("list = %d jobs, want 5", len(list))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Fatalf("list out of submission order: %v", list)
		}
	}
	if _, ok := st.Get("nope"); ok {
		t.Fatal("unknown ID should miss")
	}
	if _, ok := st.Get(ids[2]); !ok {
		t.Fatal("known ID should hit")
	}
}

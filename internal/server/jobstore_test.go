package server

import (
	"sync"
	"testing"
	"time"
)

// TestJobCancelRaces races Cancel against every competing lifecycle
// transition — local start, peer claim, remote completion — under the
// race detector. The invariants are the ones the cluster relies on
// for exactly-once execution: at most one "executor" transition wins,
// the done channel closes exactly once (a double close panics), and
// the job lands in a coherent terminal-or-queued state.
func TestJobCancelRaces(t *testing.T) {
	now := time.Now()
	cases := []struct {
		name string
		// prep runs before the race (e.g. move the job out of queued).
		prep func(j *Job)
		// rival runs concurrently with Cancel; returns whether it "won"
		// (took ownership of / completed the job).
		rival func(j *Job) bool
		// allowedStates the job may end in after both sides return.
		allowed map[JobState]bool
	}{
		{
			name:    "queued: worker start vs cancel",
			rival:   func(j *Job) bool { return j.tryStart(now, func() {}) },
			allowed: map[JobState]bool{StateRunning: true, StateCanceled: true},
		},
		{
			name:    "queued: peer claim vs cancel",
			rival:   func(j *Job) bool { return j.tryClaim("thief", "http://x", now) },
			allowed: map[JobState]bool{StateClaimed: true, StateCanceled: true},
		},
		{
			name:    "queued: forward vs cancel",
			rival:   func(j *Job) bool { return j.markRemote("owner", "http://x", "rid", now) },
			allowed: map[JobState]bool{StateRemote: true, StateCanceled: true},
		},
		{
			name:    "running: completion vs cancel",
			prep:    func(j *Job) { j.tryStart(now, func() {}) },
			rival:   func(j *Job) bool { return j.finish(StateDone, []byte("{}"), nil, now) },
			allowed: map[JobState]bool{StateDone: true, StateCanceled: true},
		},
		{
			name:    "remote: peer completion vs cancel",
			prep:    func(j *Job) { j.markRemote("owner", "http://x", "rid", now) },
			rival:   func(j *Job) bool { return j.finishFromPeer(StateDone, []byte("{}"), "", true, now) },
			allowed: map[JobState]bool{StateDone: true, StateCanceled: true},
		},
		{
			name:    "claimed: thief completion vs cancel",
			prep:    func(j *Job) { j.tryClaim("thief", "http://x", now) },
			rival:   func(j *Job) bool { return j.finishFromPeer(StateFailed, nil, "boom", false, now) },
			allowed: map[JobState]bool{StateFailed: true, StateCanceled: true},
		},
		{
			name: "remote: dead-node revert vs cancel",
			prep: func(j *Job) { j.markRemote("owner", "http://x", "rid", now) },
			// revert then (sequentially) cancel can both succeed; the job
			// must never end half-reverted.
			rival:   func(j *Job) bool { return j.revertToQueued(now) },
			allowed: map[JobState]bool{StateQueued: true, StateCanceled: true},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for iter := 0; iter < 200; iter++ {
				j := newJob("j1", fastSpec(uint64(iter)), now)
				if tc.prep != nil {
					tc.prep(j)
				}
				var rivalWon, cancelWon bool
				var wg sync.WaitGroup
				wg.Add(2)
				go func() { defer wg.Done(); rivalWon = tc.rival(j) }()
				go func() { defer wg.Done(); cancelWon = j.Cancel(now) }()
				wg.Wait()

				st := j.State()
				if !tc.allowed[st] {
					t.Fatalf("iter %d: state %s not in allowed set (rival=%v cancel=%v)",
						iter, st, rivalWon, cancelWon)
				}
				// A canceled-while-waiting job must reject both executors:
				// once terminal, neither start nor claim may succeed.
				if st == StateCanceled && (j.tryStart(now, func() {}) || j.tryClaim("late", "", now)) {
					t.Fatalf("iter %d: terminal job accepted a late executor", iter)
				}
			}
		})
	}
}

// TestJobStartClaimExclusive races the local worker against a remote
// thief for the same queued job: exactly one may win.
func TestJobStartClaimExclusive(t *testing.T) {
	now := time.Now()
	for iter := 0; iter < 500; iter++ {
		j := newJob("j1", fastSpec(1), now)
		var started, claimed bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); started = j.tryStart(now, func() {}) }()
		go func() { defer wg.Done(); claimed = j.tryClaim("thief", "", now) }()
		wg.Wait()
		if started == claimed {
			t.Fatalf("iter %d: started=%v claimed=%v, want exactly one winner",
				iter, started, claimed)
		}
	}
}

// TestStoreIDPrefix pins the cluster-unique job ID scheme: every store
// counts from 1, so clustered stores must namespace their IDs.
func TestStoreIDPrefix(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.SetIDPrefix("node-a-")
	b.SetIDPrefix("node-b-")
	now := time.Now()
	ja, jb := a.NewJob(fastSpec(1), now), b.NewJob(fastSpec(1), now)
	if ja.ID == jb.ID {
		t.Fatalf("job IDs collide across stores: %s", ja.ID)
	}
	if ja.ID != "node-a-j00000001" {
		t.Fatalf("ID = %q, want node-a-j00000001", ja.ID)
	}
}

// TestJobRevertClearsExecutionState verifies a dead-node revert
// produces a clean re-runnable job.
func TestJobRevertClearsExecutionState(t *testing.T) {
	now := time.Now()
	j := newJob("j1", fastSpec(1), now)
	if !j.markRemote("owner", "http://x", "rid", now) {
		t.Fatal("markRemote failed")
	}
	j.setProgress(Progress{Epochs: 7})
	if !j.revertToQueued(now) {
		t.Fatal("revertToQueued failed")
	}
	st := j.Status()
	if st.State != StateQueued || st.Node != "" || st.RemoteID != "" ||
		st.StartedAt != nil || st.Progress.Epochs != 0 {
		t.Fatalf("revert left residue: %+v", st)
	}
	// And the job is startable again, exactly once.
	if !j.tryStart(now, func() {}) {
		t.Fatal("reverted job must be startable")
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/sim"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states. Queued jobs wait for a worker; running jobs
// own one; done/failed/canceled are terminal. Two states exist only
// on clustered servers: remote jobs were forwarded to the ring owner
// and mirror its progress here; claimed jobs were stolen off our
// queue by an idle peer and will be completed (or reverted) from
// there.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateRemote   JobState = "remote"
	StateClaimed  JobState = "claimed"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is the live view of a running job, fed by timeline epochs
// (sim jobs) or completed cells (matrix jobs).
type Progress struct {
	// Sim jobs: the latest timeline sample.
	Epochs            int     `json:"epochs,omitempty"`
	Cycle             uint64  `json:"cycle,omitempty"`
	StackedHitRate    float64 `json:"stacked_hit_rate,omitempty"`
	CacheModeFraction float64 `json:"cache_mode_fraction,omitempty"`
	// Matrix and DSE jobs: completed cells out of the total.
	DoneCells  int `json:"done_cells,omitempty"`
	TotalCells int `json:"total_cells,omitempty"`
	// DSE jobs only: cells served from the content-addressed cache and
	// cells skipped by dominance pruning (both subsets of the total;
	// cached cells also count as done).
	CachedCells int `json:"cached_cells,omitempty"`
	PrunedCells int `json:"pruned_cells,omitempty"`
}

// JobStatus is the wire-format snapshot of a job. Node names the
// cluster node executing (or that executed) the job; for remote
// mirrors, NodeAddr and RemoteID let a cluster-aware client poll the
// executing node directly instead of through the forwarding proxy.
type JobStatus struct {
	ID          string     `json:"id"`
	Hash        string     `json:"hash"`
	State       JobState   `json:"state"`
	Cached      bool       `json:"cached,omitempty"`
	Node        string     `json:"node,omitempty"`
	NodeAddr    string     `json:"node_addr,omitempty"`
	RemoteID    string     `json:"remote_id,omitempty"`
	Spec        JobSpec    `json:"spec"`
	Progress    Progress   `json:"progress,omitempty"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Job is one unit of work owned by the server. All mutable fields are
// guarded by mu; Done is closed exactly once when the job reaches a
// terminal state.
type Job struct {
	ID   string
	Hash string
	Spec JobSpec // normalized

	mu          sync.Mutex
	state       JobState
	cached      bool
	progress    Progress
	result      []byte // JSON, set in StateDone
	err         string
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	cancel      context.CancelFunc

	// Cluster bookkeeping. node labels the executing node; for remote
	// mirrors nodeAddr/remoteID reference the owner's job, and origin
	// (on a thief's copy of a stolen job) names the victim job to
	// report completion back to.
	node     string
	nodeAddr string
	remoteID string
	origin   *originRef

	done chan struct{}
}

// originRef names the victim-side job a stolen job must report back
// to: the owner node, its base URL, and the job ID in its store.
type originRef struct {
	NodeID string
	Addr   string
	ID     string
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	return &Job{
		ID: id, Hash: spec.Hash(), Spec: spec,
		state: StateQueued, submittedAt: now,
		done: make(chan struct{}),
	}
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Hash: j.Hash, State: j.state, Cached: j.cached,
		Node: j.node, NodeAddr: j.nodeAddr, RemoteID: j.remoteID,
		Spec: j.Spec, Progress: j.progress, Error: j.err,
		SubmittedAt: j.submittedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	return st
}

// Result returns the job's result JSON, or an error describing why it
// is not available.
func (j *Job) Result() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, fmt.Errorf("job %s failed: %s", j.ID, j.err)
	case StateCanceled:
		return nil, fmt.Errorf("job %s was canceled", j.ID)
	default:
		return nil, fmt.Errorf("job %s is %s; result not ready", j.ID, j.state)
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// tryStart transitions queued → running; it fails if the job was
// canceled while waiting in the queue. The cancel func tears down the
// job's run context.
func (j *Job) tryStart(now time.Time, cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.startedAt = now
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state. It is a no-op if the job
// is already terminal (e.g. canceled racing completion).
func (j *Job) finish(state JobState, result []byte, err error, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = result
	if err != nil {
		j.err = err.Error()
	}
	j.finishedAt = now
	j.cancel = nil
	close(j.done)
	return true
}

// Cancel cancels a queued or running job. Queued (and remote /
// claimed) jobs go terminal immediately; running jobs get their
// context canceled and go terminal when the simulation loop notices.
// It reports whether the call had any effect.
func (j *Job) Cancel(now time.Time) bool {
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateRemote, StateClaimed:
		prev := j.state
		j.state = StateCanceled
		j.err = "canceled while " + string(prev)
		j.finishedAt = now
		close(j.done)
		j.mu.Unlock()
		return true
	}
	if j.state == StateRunning && j.cancel != nil {
		cancel := j.cancel
		j.cancel = nil
		j.mu.Unlock()
		cancel()
		return true
	}
	j.mu.Unlock()
	return false
}

// setSimProgress records a timeline sample.
func (j *Job) setSimProgress(p sim.TimelinePoint) {
	j.mu.Lock()
	j.progress.Epochs++
	j.progress.Cycle = p.Cycle
	j.progress.StackedHitRate = p.StackedHitRate
	j.progress.CacheModeFraction = p.CacheModeFraction
	j.mu.Unlock()
}

// resetProgress clears the job's progress snapshot, e.g. before the
// server reruns a collided parallel simulation sequentially.
func (j *Job) resetProgress() {
	j.mu.Lock()
	j.progress = Progress{}
	j.mu.Unlock()
}

// setMatrixProgress records completed matrix cells.
func (j *Job) setMatrixProgress(done, total int) {
	j.mu.Lock()
	j.progress.DoneCells = done
	j.progress.TotalCells = total
	j.mu.Unlock()
}

// setDSEProgress records a sweep's live cell accounting.
func (j *Job) setDSEProgress(done, cached, pruned, total int) {
	j.mu.Lock()
	j.progress.DoneCells = done
	j.progress.CachedCells = cached
	j.progress.PrunedCells = pruned
	j.progress.TotalCells = total
	j.mu.Unlock()
}

// markCached fills a freshly submitted job from a cache hit: it is
// born terminal.
func (j *Job) markCached(result []byte, now time.Time) {
	j.mu.Lock()
	j.cached = true
	j.state = StateDone
	j.result = result
	j.finishedAt = now
	close(j.done)
	j.mu.Unlock()
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setNode labels the job with the executing cluster node.
func (j *Job) setNode(id string) {
	if id == "" {
		return
	}
	j.mu.Lock()
	j.node = id
	j.mu.Unlock()
}

// markRemote turns a freshly queued job into a mirror of remoteID
// executing on the named owner node. Fails if the job already left
// the queued state (e.g. canceled during the forward round-trip).
func (j *Job) markRemote(nodeID, addr, remoteID string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRemote
	j.node, j.nodeAddr, j.remoteID = nodeID, addr, remoteID
	j.startedAt = now
	return true
}

// remoteRef returns the mirror's owner reference (valid while the
// job is in StateRemote).
func (j *Job) remoteRef() (nodeID, addr, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.node, j.nodeAddr, j.remoteID
}

// tryClaim is the CAS guard that makes work stealing exactly-once: it
// transitions queued → claimed for thief `by`, and fails for any
// other current state — a second thief, the local worker (tryStart),
// and a canceling client race on the same mutex, so exactly one
// party ever runs the job.
func (j *Job) tryClaim(by, addr string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateClaimed
	j.node, j.nodeAddr = by, addr
	j.startedAt = now
	return true
}

// revertToQueued returns a remote or claimed job to the local queue
// after its executing node died. The caller must re-submit it to the
// worker pool on success.
func (j *Job) revertToQueued(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRemote && j.state != StateClaimed {
		return false
	}
	j.state = StateQueued
	j.node, j.nodeAddr, j.remoteID = "", "", ""
	j.startedAt = time.Time{}
	j.progress = Progress{}
	return true
}

// finishFromPeer moves a remote or claimed job to a terminal state on
// behalf of the node that executed it. No-op if already terminal.
func (j *Job) finishFromPeer(state JobState, result []byte, errstr string, cached bool, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = result
	j.err = errstr
	j.cached = cached
	j.finishedAt = now
	j.cancel = nil
	close(j.done)
	return true
}

// setOrigin records, on a thief's local copy of a stolen job, the
// victim job to report completion back to. Set once before the job
// enters the pool.
func (j *Job) setOrigin(nodeID, addr, id string) {
	j.mu.Lock()
	j.origin = &originRef{NodeID: nodeID, Addr: addr, ID: id}
	j.mu.Unlock()
}

// Origin returns the stolen job's victim reference, if any.
func (j *Job) Origin() (originRef, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.origin == nil {
		return originRef{}, false
	}
	return *j.origin, true
}

// setProgress overwrites the progress snapshot (remote mirrors).
func (j *Job) setProgress(p Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

// Store is the in-memory job registry.
type Store struct {
	mu     sync.Mutex
	prefix string // cluster: node-scoped ID prefix, "" standalone
	jobs   map[string]*Job
	ids    []string // submission order, for listing
	seq    atomic.Uint64
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{jobs: make(map[string]*Job)}
}

// SetIDPrefix namespaces job IDs (e.g. "node1-"). Every store counts
// from 1, so clustered nodes must prefix or IDs collide across the
// cluster. Call before the first NewJob.
func (s *Store) SetIDPrefix(p string) {
	s.mu.Lock()
	s.prefix = p
	s.mu.Unlock()
}

// NewJob registers a new queued job for the spec.
func (s *Store) NewJob(spec JobSpec, now time.Time) *Job {
	s.mu.Lock()
	id := fmt.Sprintf("%sj%08x", s.prefix, s.seq.Add(1))
	j := newJob(id, spec, now)
	s.jobs[id] = j
	s.ids = append(s.ids, id)
	s.mu.Unlock()
	return j
}

// Snapshot returns every job in submission order (live pointers, for
// cluster sweeps).
func (s *Store) Snapshot() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, s.jobs[id])
	}
	return out
}

// Get looks a job up by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List snapshots every job's status in submission order.
func (s *Store) List() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.ids))
	for _, id := range s.ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// marshalResult encodes a result payload deterministically.
func marshalResult(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("server: encode result: %w", err)
	}
	return b, nil
}

// Package server turns the chameleon simulator into a long-running
// simulation-as-a-service subsystem: an HTTP JSON API over a bounded
// worker pool with a FIFO job queue, per-job deadlines and context
// cancellation, a content-addressed result cache, and an expvar-based
// metrics surface. cmd/chamd is the binary that serves it.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/cluster"
	"chameleon/internal/experiments"
	"chameleon/internal/sim"
)

// Options configure a Server.
type Options struct {
	// Workers is the number of concurrent simulations (default
	// GOMAXPROCS; simulations are CPU-bound).
	Workers int
	// QueueDepth bounds the FIFO queue of jobs waiting for a worker
	// (default 256). A full queue rejects submissions with 503.
	QueueDepth int
	// DefaultTimeout bounds a job's run time when the spec sets none
	// (default 10 minutes).
	DefaultTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache
	// (default 1024 results).
	CacheEntries int
	// CacheBytes bounds the result cache's total payload size
	// (default 256 MiB; < 0 disables the byte bound).
	CacheBytes int64

	// Cluster attaches the server to a chamd cluster (nil =
	// standalone). The server registers the peer protocol on its
	// Handler, routes submissions over the cluster's consistent-hash
	// ring, fills its result cache from peers, and steals queued work
	// from loaded nodes when idle. The caller owns the cluster's
	// gossip lifecycle (Start/Stop).
	Cluster *cluster.Cluster
	// RemotePoll is the refresh period for forwarded-job mirrors and
	// dead-node sweeps (default 200ms).
	RemotePoll time.Duration
	// StealInterval is the work-stealing scan period (default 500ms).
	StealInterval time.Duration
	// ClusterManual disables the background cluster loops; tests
	// drive pollRemotes/sweepDead/stealOnce directly so membership
	// and routing transitions happen at deterministic points.
	ClusterManual bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Minute
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.RemotePoll <= 0 {
		o.RemotePoll = 200 * time.Millisecond
	}
	if o.StealInterval <= 0 {
		o.StealInterval = 500 * time.Millisecond
	}
	return o
}

// Server owns the job store, queue, cache and metrics. Create with
// New, expose over HTTP via Handler, stop with Shutdown.
type Server struct {
	opts    Options
	store   *Store
	cache   *resultCache
	metrics *Metrics
	pool    *pool
	cl      *cluster.Cluster // nil = standalone

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
	loopWG   sync.WaitGroup
}

// New builds and starts a server: its worker pool is live on return.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		store:   NewStore(),
		cache:   newResultCache(opts.CacheEntries, opts.CacheBytes),
		metrics: NewMetrics(),
		cl:      opts.Cluster,
		stop:    make(chan struct{}),
	}
	s.metrics.SetCacheStats(s.cache.Stats)
	if s.cl != nil {
		s.store.SetIDPrefix(s.cl.Self().ID + "-")
		s.metrics.SetClusterInfo(s.clusterInfo)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.pool = newPool(opts.Workers, opts.QueueDepth, s.runJob)
	if s.cl != nil {
		// Ring changes (a node died, a node joined) immediately sweep
		// for work that must move; the background loops catch the rest.
		s.cl.SetOnChange(func() {
			if !s.draining.Load() {
				s.sweepDead()
			}
		})
		if !opts.ClusterManual {
			s.startClusterLoops()
		}
	}
	return s
}

// clustered reports whether this server is part of a cluster.
func (s *Server) clustered() bool { return s.cl != nil }

// selfID returns the local cluster node ID ("" standalone).
func (s *Server) selfID() string {
	if s.cl == nil {
		return ""
	}
	return s.cl.Self().ID
}

// Metrics exposes the server's counters (also served on /debug/vars).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Submit validates, deduplicates and enqueues a job. A cache hit
// returns a job that is already done (Cached=true) without touching
// the queue. On a clustered server a submission whose content hash is
// owned by another node is transparently forwarded there (single
// hop), and a local cache miss consults the ring owner and one
// replica before simulating. Errors: spec validation, ErrQueueFull,
// ErrDraining.
func (s *Server) Submit(spec JobSpec) (*Job, error) { return s.submit(spec, "") }

// submit implements Submit. forwardedFrom carries the loop-guard
// header of a peer-forwarded request ("" = direct client submit);
// forwarded submissions are always served locally.
func (s *Server) submit(spec JobSpec, forwardedFrom string) (*Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.metrics.JobsSubmitted.Add(1)
	now := time.Now()
	hash := norm.Hash()
	if res, ok := s.cache.Get(hash); ok {
		s.metrics.CacheHits.Add(1)
		j := s.store.NewJob(norm, now)
		j.setNode(s.selfID())
		j.markCached(res, now)
		return j, nil
	}
	s.metrics.CacheMisses.Add(1)
	if s.clustered() {
		owners := s.cl.Owners(hash, replication)
		selfOwned := false
		for _, o := range owners {
			if o.ID == s.selfID() {
				selfOwned = true
			}
		}
		// Route to the ring owner — single hop only (the loop guard
		// stops forward chains), and trace replays never leave the node
		// holding the trace file.
		if !selfOwned && forwardedFrom == "" && norm.TracePath == "" {
			if j, ok := s.forward(norm, hash, now, owners); ok {
				return j, nil
			}
			// Owner unreachable: serve locally — a dead owner costs the
			// cluster capacity, never a job.
		}
		if b, ok := s.peerCacheGet(hash, owners); ok {
			s.metrics.PeerCacheHits.Add(1)
			s.cache.Put(hash, b)
			j := s.store.NewJob(norm, now)
			j.setNode(s.selfID())
			j.markCached(b, now)
			return j, nil
		}
	}
	j := s.store.NewJob(norm, now)
	j.setNode(s.selfID())
	if err := s.pool.Submit(j); err != nil {
		j.finish(StateFailed, nil, err, time.Now())
		s.metrics.JobsFailed.Add(1)
		return nil, err
	}
	s.metrics.JobsQueued.Add(1)
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) { return s.store.Get(id) }

// Jobs lists every job's status in submission order.
func (s *Server) Jobs() []JobStatus { return s.store.List() }

// Cancel cancels a queued or running job by ID.
func (s *Server) Cancel(id string) (bool, error) {
	j, ok := s.store.Get(id)
	if !ok {
		return false, fmt.Errorf("unknown job %q", id)
	}
	return j.Cancel(time.Now()), nil
}

// Shutdown stops intake and drains: queued jobs are canceled, running
// jobs are given until ctx's deadline to finish, then their run
// contexts are cut. Always waits for every worker (and any cluster
// loop) to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.loopWG.Wait()
	s.pool.Close()
	done := make(chan struct{})
	go func() { s.pool.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// runJob executes one dequeued job on a worker goroutine.
func (s *Server) runJob(j *Job) {
	now := time.Now()
	s.metrics.JobsQueued.Add(-1)
	if s.draining.Load() {
		// Drain mode: queued jobs are canceled, not started.
		if j.Cancel(now) {
			s.metrics.JobsCanceled.Add(1)
		}
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, j.Spec.Timeout(s.opts.DefaultTimeout))
	defer cancel()
	if !j.tryStart(now, cancel) {
		if j.State() == StateClaimed {
			// Stolen off our queue while waiting: the thief owns it now
			// and reports its completion via the peer protocol.
			return
		}
		// Canceled while waiting in the queue.
		s.metrics.JobsCanceled.Add(1)
		return
	}
	s.metrics.ObserveQueueWait(now.Sub(j.Status().SubmittedAt))
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	var payload any
	var err error
	switch j.Spec.Kind {
	case KindSim:
		payload, err = s.runSim(ctx, j)
	case KindMatrix:
		payload, err = s.runMatrix(ctx, j)
	case KindDSE:
		payload, err = s.runDSE(ctx, j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.Spec.Kind)
	}
	fin := time.Now()
	if err != nil {
		state := StateFailed
		if errors.Is(err, context.Canceled) {
			state = StateCanceled
		}
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("deadline exceeded after %s: %w",
				j.Spec.Timeout(s.opts.DefaultTimeout), err)
		}
		if j.finish(state, nil, err, fin) {
			if state == StateCanceled {
				s.metrics.JobsCanceled.Add(1)
			} else {
				s.metrics.JobsFailed.Add(1)
			}
		}
		s.reportToOrigin(j, nil, err)
		return
	}
	b, err := marshalResult(payload)
	if err != nil {
		if j.finish(StateFailed, nil, err, fin) {
			s.metrics.JobsFailed.Add(1)
		}
		s.reportToOrigin(j, nil, err)
		return
	}
	s.cache.Put(j.Hash, b)
	if j.finish(StateDone, b, nil, fin) {
		s.metrics.JobsDone.Add(1)
	}
	if s.clustered() {
		// Replicate to the ring owner and replica so a node death
		// loses capacity, not results.
		go s.writeBackResult(j.Hash, b)
	}
	s.reportToOrigin(j, b, nil)
}

// simThreads resolves a job's per-simulation thread count. Jobs are
// parallel by default: an unspecified count (0) becomes 2, since the
// parallel engine now covers timeline sampling, trace capture and
// evicting footprints, and its batched step loop beats the sequential
// engine even on a single CPU (see BENCH_parallel.json). An explicit
// 1 still requests the sequential engine. Larger requests are clamped
// against the worker pool — with Workers jobs potentially running at
// once, each may use about GOMAXPROCS/Workers threads before the pool
// oversubscribes the host — but never below 2, so the algorithmic
// speedup survives a crowded pool.
func (s *Server) simThreads(requested int) int {
	if requested == 0 {
		requested = 2
	}
	if requested <= 1 {
		return 1
	}
	limit := max(runtime.GOMAXPROCS(0)/s.opts.Workers, 2)
	return min(requested, limit)
}

// runSim executes a single-simulation job.
func (s *Server) runSim(ctx context.Context, j *Job) (any, error) {
	o, err := j.Spec.SimOptions()
	if err != nil {
		return nil, err
	}
	o.Threads = s.simThreads(o.Threads)
	s.metrics.SimThreadsEffective.Set(int64(o.Threads))
	o.Progress = j.setSimProgress
	sys, err := sim.New(o)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunContext(ctx, j.Spec.Instructions)
	if errors.Is(err, sim.ErrRunAheadCollision) {
		// A committed eviction reclaimed a frame a run-ahead step had
		// already translated against. The sim library won't replay on
		// its own because our Progress callback already fired; the
		// progress gauge is ours to reset, so rebuild and rerun
		// sequentially — the result is the bit-exact sequential answer.
		j.resetProgress()
		o.Threads = 1
		if sys, err = sim.New(o); err != nil {
			return nil, err
		}
		if res, err = sys.RunContext(ctx, j.Spec.Instructions); err == nil {
			res.Engine = sim.EngineSequential
			res.FallbackReason = sim.FallbackEvictionCollision
		}
	}
	if err != nil {
		return nil, err
	}
	if res.FallbackReason != "" {
		s.metrics.ParallelFallbacks.Add(res.FallbackReason, 1)
	}
	s.metrics.SimCycles.Add(int64(res.MaxCycles))
	s.metrics.ObserveSim(res)
	return res, nil
}

// matrixPayload is the wire shape of a matrix job's result.
type matrixPayload struct {
	// Results[policy][workload], policies keyed by wire name.
	Results map[string]map[string]*sim.Result `json:"results"`
}

// runMatrix executes a full evaluation-matrix job.
func (s *Server) runMatrix(ctx context.Context, j *Job) (any, error) {
	o := j.Spec.MatrixOptions()
	o.Progress = j.setMatrixProgress
	m, err := experiments.RunMatrixContext(ctx, o)
	if err != nil {
		return nil, err
	}
	for _, rows := range m.Results {
		for _, r := range rows {
			s.metrics.SimCycles.Add(int64(r.MaxCycles))
			s.metrics.ObserveSim(r)
		}
	}
	return matrixPayload{Results: m.ByName()}, nil
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"chameleon/internal/cluster"
	"chameleon/internal/policy"
	"chameleon/internal/workload"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs          submit a job (JobSpec body) -> JobStatus
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status with live progress
//	GET    /v1/jobs/{id}/result  result JSON of a done job
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/workloads     Table II workload catalogue
//	GET    /v1/policies      registered policy designs + descriptor flags
//	GET    /healthz          liveness
//	GET    /debug/vars       expvar metrics
//
// /v1/workloads and /v1/policies together enumerate the valid axis
// values for sim, matrix, and dse specs, so clients can build sweeps
// without guessing names.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", s.metrics)
	if s.cl != nil {
		s.registerClusterRoutes(mux)
	}
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// maxSubmitBytes bounds a submission body. DSE sweeps carry explicit
// cache-hierarchy and memory-tier variant lists, so the limit is well
// above the 1 MiB that sufficed for sim/matrix specs; an oversized
// body gets an explicit 413, not a bare decode failure.
const maxSubmitBytes = 8 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes; split the sweep or drop redundant variants", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.submit(spec, r.Header.Get(cluster.ForwardedHeader))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.Jobs()})
}

// job resolves the {id} path value, writing a 404 on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b, err := j.Result()
	if err != nil {
		code := http.StatusConflict // not ready yet
		if st := j.Status().State; st == StateFailed || st == StateCanceled {
			code = http.StatusGone
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	wasRemote := j.State() == StateRemote
	_, raddr, rid := j.remoteRef()
	canceled := j.Cancel(time.Now())
	if canceled && wasRemote && s.clustered() && raddr != "" && rid != "" {
		// Best effort: stop the remote execution too.
		go s.cancelRemote(raddr, rid)
	}
	writeJSON(w, http.StatusOK, struct {
		ID       string   `json:"id"`
		Canceled bool     `json:"canceled"`
		State    JobState `json:"state"`
	}{j.ID, canceled, j.Status().State})
}

// WorkloadInfo describes one Table II workload on the wire.
type WorkloadInfo struct {
	Name           string  `json:"name"`
	FootprintBytes uint64  `json:"footprint_bytes"`
	TargetLLCMPKI  float64 `json:"target_llc_mpki"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	names := workload.Names()
	infos := make([]WorkloadInfo, 0, len(names))
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			continue // listed names always resolve
		}
		infos = append(infos, WorkloadInfo{
			Name:           p.Name,
			FootprintBytes: p.FootprintBytes,
			TargetLLCMPKI:  p.TargetLLCMPKI,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Workloads []WorkloadInfo `json:"workloads"`
	}{infos})
}

// PolicyInfo describes one registered policy design on the wire:
// its name plus the descriptor flags a client needs to build valid
// specs (minimum memory-tier depth, ISA support, baseline capacity).
type PolicyInfo struct {
	Name             string `json:"name"`
	RequiredTiers    int    `json:"required_tiers"`
	NeedsISA         bool   `json:"needs_isa,omitempty"`
	RequiresBaseline bool   `json:"requires_baseline,omitempty"`
	OSManaged        bool   `json:"os_managed,omitempty"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	names := policy.Names()
	infos := make([]PolicyInfo, 0, len(names))
	for _, n := range names {
		desc, err := policy.Lookup(n)
		if err != nil {
			continue // listed names always resolve
		}
		infos = append(infos, PolicyInfo{
			Name:             n,
			RequiredTiers:    desc.RequiredTiers(),
			NeedsISA:         desc.NeedsISA,
			RequiresBaseline: desc.RequiresBaseline,
			OSManaged:        desc.OSManaged,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Policies []PolicyInfo `json:"policies"`
	}{infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{status})
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chameleon/internal/dse"
)

// fastDSESpec is a small real sweep (2 policies × 2 workloads × 2
// seeds = 8 cells) sized to simulate in well under a second per cell.
func fastDSESpec() JobSpec {
	return JobSpec{
		Kind:         KindDSE,
		Scale:        1024,
		Instructions: 2_000,
		Warmup:       1,
		DSE: &dse.Spec{
			Policies:  []string{"chameleon-opt", "alloy"},
			Workloads: []string{"bwaves", "mcf"},
			Seeds:     []uint64{3, 4},
		},
	}
}

func runDSEJob(t *testing.T, s *Server, spec JobSpec) (*Job, *dse.Result) {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	b, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var res dse.Result
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("decode dse result: %v", err)
	}
	return j, &res
}

func TestDSEJobEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	j, res := runDSEJob(t, s, fastDSESpec())

	if res.TotalCells != 8 || res.Evaluated != 8 || res.Pruned != 0 {
		t.Fatalf("accounting: total %d evaluated %d pruned %d", res.TotalCells, res.Evaluated, res.Pruned)
	}
	if len(res.Front) == 0 || len(res.Front)+res.Dominated != len(res.Points) {
		t.Fatalf("front %d + dominated %d != points %d", len(res.Front), res.Dominated, len(res.Points))
	}
	for _, p := range res.Points {
		if p.Hash == "" {
			t.Fatalf("cell %d has no provenance hash", p.Cell.Index)
		}
		// Property: no front member is dominated by any evaluated cell.
		for _, f := range res.Front {
			if dse.Dominates(p.Values, f.Values, res.Objectives) {
				t.Fatalf("front cell %d dominated by cell %d", f.Cell.Index, p.Cell.Index)
			}
		}
	}
	st := j.Status()
	if st.Progress.DoneCells != 8 || st.Progress.TotalCells != 8 {
		t.Errorf("final progress = %+v, want 8/8 cells", st.Progress)
	}
	if got := s.Metrics().DSECellsSimulated.Value(); got != 8 {
		t.Errorf("dse_cells_simulated = %d, want 8", got)
	}
}

// TestDSERepeatSubmissionServedFromCache covers both cache layers: an
// identical resubmission is a whole-job cache hit, and a resubmission
// with different objectives (different sweep hash, same cell hashes)
// serves 100% ≥ 95% of cells from the content-addressed cache.
func TestDSERepeatSubmissionServedFromCache(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	_, first := runDSEJob(t, s, fastDSESpec())
	if first.Cached != 0 {
		t.Fatalf("first run served %d cells from cache, want 0", first.Cached)
	}

	j2, err := s.Submit(fastDSESpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2, 10*time.Second); !st.Cached {
		t.Fatalf("identical resubmission not a whole-job cache hit (state %s)", st.State)
	}

	changed := fastDSESpec()
	changed.DSE.Objectives = []dse.Objective{
		{Key: "ipc_geomean", Sense: dse.SenseMax},
		{Key: "amat_cycles", Sense: dse.SenseMin},
	}
	_, third := runDSEJob(t, s, changed)
	if third.Cached < third.TotalCells*95/100 || third.Cached != third.TotalCells {
		t.Fatalf("changed-objective resweep served %d/%d cells from cache, want all (≥95%% required)",
			third.Cached, third.TotalCells)
	}
	if sim := s.Metrics().DSECellsSimulated.Value(); sim != 8 {
		t.Errorf("dse_cells_simulated = %d after resweep, want 8 (no recomputation)", sim)
	}
}

// TestDSEFrontDeterministicAcrossThreads runs the same sweep on two
// separate servers (separate caches — Threads is excluded from cell
// hashes, so one server would serve the second run from cache) with
// different per-cell thread counts and different runner parallelism,
// requiring byte-identical front JSON.
func TestDSEFrontDeterministicAcrossThreads(t *testing.T) {
	spec1 := fastDSESpec()
	spec1.Threads = 1
	spec1.Parallelism = 1
	s1 := newTestServer(t, Options{Workers: 1})
	_, r1 := runDSEJob(t, s1, spec1)

	spec2 := fastDSESpec()
	spec2.Threads = 4
	spec2.Parallelism = 4
	s2 := newTestServer(t, Options{Workers: 1})
	_, r2 := runDSEJob(t, s2, spec2)

	if sig1, sig2 := r1.FrontSignature(), r2.FrontSignature(); sig1 != sig2 {
		t.Errorf("front differs across thread counts:\n1 thread:  %s\n4 threads: %s", sig1, sig2)
	}
}

func TestDSESpecNormalization(t *testing.T) {
	t.Run("requires sweep spec", func(t *testing.T) {
		if _, err := (JobSpec{Kind: KindDSE}).Normalize(); err == nil || !strings.Contains(err.Error(), "dse sweep spec") {
			t.Errorf("Normalize = %v", err)
		}
	})
	t.Run("scale and seed seed the axes", func(t *testing.T) {
		a, err := (JobSpec{Kind: KindDSE, Scale: 512, Seed: 7, DSE: &dse.Spec{}}).Normalize()
		if err != nil {
			t.Fatal(err)
		}
		b, err := (JobSpec{Kind: KindDSE, DSE: &dse.Spec{Scales: []uint64{512}, Seeds: []uint64{7}}}).Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash() != b.Hash() {
			t.Error("top-level scale/seed spelling hashes differently from the axis spelling")
		}
	})
	t.Run("sim spec clears dse", func(t *testing.T) {
		sp := fastSpec(1)
		sp.DSE = &dse.Spec{}
		n, err := sp.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if n.DSE != nil {
			t.Error("sim normalization kept the dse field")
		}
	})
	t.Run("cell cap", func(t *testing.T) {
		seeds := make([]uint64, 200)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		sp := JobSpec{Kind: KindDSE, DSE: &dse.Spec{Seeds: seeds}} // 7×14×200 = 19600 cells
		if _, err := sp.Normalize(); err == nil || !strings.Contains(err.Error(), "cap") {
			t.Errorf("Normalize = %v, want cell-cap error", err)
		}
	})
}

// dseOwnerNode returns the node owning hash, so tests can submit a
// sweep where it will run (avoiding the remote-mirror machinery).
func dseOwnerNode(t *testing.T, nodes []*clusterNode, hash string) *clusterNode {
	t.Helper()
	owners := nodes[0].cl.Ring().Owners(hash, replication)
	if len(owners) == 0 {
		t.Fatal("empty ring")
	}
	for _, nd := range nodes {
		if nd.id == owners[0] {
			return nd
		}
	}
	t.Fatalf("owner %s not in the test cluster", owners[0])
	return nil
}

// TestClusterDSEShardsCellsAndReusesCache is the cluster acceptance
// test: a sweep's cells route through the ring (total simulation work
// equals the cell count, wherever cells ran), and a second sweep over
// the same cells — submitted to a different hash owner with different
// objectives — is served entirely from the cluster-wide cell cache.
func TestClusterDSEShardsCellsAndReusesCache(t *testing.T) {
	clock := newFakeClock()
	nodes := newServerCluster(t, 3, clock, nil)
	converge(t, nodes)

	// Total simulation work across the cluster: cells simulated inline
	// by a sweep runner plus jobs completed through a pool — remote
	// cells run on their owner as plain sim jobs — minus the sweep jobs
	// themselves (dseJobs counts completed sweeps).
	sumWork := func(dseJobs int64) int64 {
		var n int64
		for _, nd := range nodes {
			n += nd.s.Metrics().DSECellsSimulated.Value()
		}
		return n + sumJobsDone(nodes) - dseJobs
	}

	spec := fastDSESpec()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	first := dseOwnerNode(t, nodes, norm.Hash())
	j, res := runDSEJob(t, first.s, spec)
	_ = j
	if res.Evaluated != 8 || res.Cached != 0 {
		t.Fatalf("first sweep: evaluated %d cached %d, want 8/0", res.Evaluated, res.Cached)
	}
	if got := sumWork(1); got != 8 {
		t.Fatalf("cluster simulated %d cells for an 8-cell sweep, want exactly 8", got)
	}
	t.Logf("first sweep on %s: %d cells simulated remotely", first.id,
		first.s.Metrics().DSECellsRemote.Value())

	changed := fastDSESpec()
	changed.DSE.Objectives = []dse.Objective{
		{Key: "ipc_geomean", Sense: dse.SenseMax},
		{Key: "amat_cycles", Sense: dse.SenseMin},
	}
	norm2, err := changed.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	second := dseOwnerNode(t, nodes, norm2.Hash())
	_, res2 := runDSEJob(t, second.s, changed)
	if res2.Cached != res2.TotalCells {
		t.Fatalf("resweep on %s served %d/%d cells from the cluster cache, want all",
			second.id, res2.Cached, res2.TotalCells)
	}
	if got := sumWork(2); got != 8 {
		t.Fatalf("cluster simulated %d cells after the resweep, want still 8", got)
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	c := NewClient(srv.URL)
	infos, err := c.Policies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyInfo{}
	for _, pi := range infos {
		byName[pi.Name] = pi
	}
	if pi, ok := byName["hwc"]; !ok || pi.RequiredTiers < 3 {
		t.Errorf("hwc descriptor = %+v (listed %v), want required_tiers >= 3", pi, ok)
	}
	if pi, ok := byName["flat"]; !ok || !pi.RequiresBaseline {
		t.Errorf("flat descriptor = %+v (listed %v), want requires_baseline", pi, ok)
	}
	if pi, ok := byName["chameleon"]; !ok || pi.RequiredTiers != 2 || pi.RequiresBaseline {
		t.Errorf("chameleon descriptor = %+v (listed %v)", pi, ok)
	}
}

// TestSubmitBodyLimit checks both sides of the raised submission
// limit: a multi-megabyte DSE spec decodes fine, and an oversized body
// gets a structured 413, not a bare decode error.
func TestSubmitBodyLimit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A body that tops the old 1 MiB limit: whitespace inside the JSON
	// object, so the decoder must read through all of it. A tiny sweep
	// keeps the accepted job cheap.
	small := fastDSESpec()
	small.DSE.Policies = []string{"chameleon-opt"}
	small.DSE.Workloads = []string{"bwaves"}
	small.DSE.Seeds = []uint64{3}
	b, err := json.Marshal(small)
	if err != nil {
		t.Fatal(err)
	}
	pad := bytes.Repeat([]byte(" "), 2<<20)
	body := append(append(b[:len(b)-1:len(b)-1], pad...), '}')
	resp := post(body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("2 MiB spec rejected with %d, want 202", resp.StatusCode)
	}

	resp2 := post(bytes.Repeat([]byte(" "), maxSubmitBytes+1))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got %d, want 413", resp2.StatusCode)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp2.Body).Decode(&apiErr); err != nil || !strings.Contains(apiErr.Error, "exceeds") {
		t.Fatalf("413 body = %+v (decode err %v), want structured JSON error", apiErr, err)
	}
}

package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0)
	c.Put("a", []byte("ra"))
	c.Put("b", []byte("rb"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("rc")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, ok := c.Get("a"); !ok || string(got) != "ra" {
		t.Fatalf("a = %q, %v", got, ok)
	}
	if got, ok := c.Get("c"); !ok || string(got) != "rc" {
		t.Fatalf("c = %q, %v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(4, 0)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if got, _ := c.Get("k"); string(got) != "v2" {
		t.Fatalf("got %q, want v2", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if b := c.Bytes(); b != 2 {
		t.Fatalf("bytes = %d, want 2 after in-place update", b)
	}
}

// TestCacheGetReturnsCopy is the regression test for the aliasing bug:
// Get used to hand out the cache's internal slice, so a caller mutating
// its "own" result corrupted every subsequent hit for the same hash.
func TestCacheGetReturnsCopy(t *testing.T) {
	c := newResultCache(4, 0)
	orig := []byte(`{"v":1}`)
	c.Put("k", orig)

	got1, ok := c.Get("k")
	if !ok {
		t.Fatal("k missing")
	}
	for i := range got1 {
		got1[i] = 'X' // caller scribbles on its copy
	}
	orig[0] = 'Y' // and the Put input is mutated after the fact

	got2, ok := c.Get("k")
	if !ok {
		t.Fatal("k missing on second get")
	}
	if !bytes.Equal(got2, []byte(`{"v":1}`)) {
		t.Fatalf("cached value corrupted by caller mutation: %q", got2)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := newResultCache(100, 10) // entries effectively unbounded; 10 bytes max
	c.Put("a", []byte("aaaa"))   // 4
	c.Put("b", []byte("bbbb"))   // 8
	c.Put("c", []byte("cccc"))   // 12 -> evict LRU "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should survive")
	}
	entries, bts := c.Stats()
	if entries != 2 || bts != 8 {
		t.Fatalf("stats = (%d, %d), want (2, 8)", entries, bts)
	}

	// A single oversized result is still admitted, alone.
	c.Put("huge", make([]byte, 64))
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry should be admitted")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("len = %d, want oversized entry to evict everything else", n)
	}
}

func TestCacheNegativeByteBoundUnlimited(t *testing.T) {
	c := newResultCache(3, -1)
	c.Put("a", make([]byte, 1<<16))
	c.Put("b", make([]byte, 1<<16))
	c.Put("c", make([]byte, 1<<16))
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3 (byte bound disabled)", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("corrupt value for %s: %q", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
}

package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("ra"))
	c.Put("b", []byte("rb"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("rc")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, ok := c.Get("a"); !ok || string(got) != "ra" {
		t.Fatalf("a = %q, %v", got, ok)
	}
	if got, ok := c.Get("c"); !ok || string(got) != "rc" {
		t.Fatalf("c = %q, %v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(4)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if got, _ := c.Get("k"); string(got) != "v2" {
		t.Fatalf("got %q, want v2", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("corrupt value for %s: %q", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"chameleon/internal/sim"
)

// Client is a minimal Go client for a chamd server.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a chamd base URL (e.g. "http://localhost:8080").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// do runs one request and decodes the JSON response (or API error).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e apiError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (%d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job and returns its initial status (which is already
// terminal on a cache hit).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state (every poll
// interval; 0 defaults to 100ms) or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Result decodes a done job's result into out (for sim jobs, a
// *sim.Result).
func (c *Client) Result(ctx context.Context, id string, out any) error {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, out)
}

// SimResult fetches a done sim job's result.
func (c *Client) SimResult(ctx context.Context, id string) (*sim.Result, error) {
	var r sim.Result
	if err := c.Result(ctx, id, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Workloads lists the server's workload catalogue.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var resp struct {
		Workloads []WorkloadInfo `json:"workloads"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &resp)
	return resp.Workloads, err
}

// Healthy reports whether the server answers /healthz with "ok".
func (c *Client) Healthy(ctx context.Context) bool {
	var resp struct {
		Status string `json:"status"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return false
	}
	return resp.Status == "ok"
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"chameleon/internal/cluster"
	"chameleon/internal/dse"
	"chameleon/internal/sim"
)

// RetryPolicy controls how the client reacts to 503 responses (queue
// full / draining): exponential backoff with jitter, honoring the
// server's Retry-After header as a floor.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt (default 3).
	Max int
	// Base is the first backoff delay (default 100ms); attempt n waits
	// Base * 2^n plus up to 50% jitter.
	Base time.Duration
	// Cap bounds any single delay (default 2s).
	Cap time.Duration
	// Disabled turns retries off: the first 503 is returned to the
	// caller immediately.
	Disabled bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max <= 0 {
		p.Max = 3
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	return p
}

// delay computes the backoff before retry attempt n (0-based),
// honoring retryAfter (from the server's Retry-After header) as a
// floor and Cap as a ceiling.
func (p RetryPolicy) delay(n int, retryAfter time.Duration) time.Duration {
	d := p.Base << n
	if d > p.Cap {
		d = p.Cap
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1)) // up to +50% jitter
	if retryAfter > d {
		d = retryAfter
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// jobRoute remembers which cluster node actually executes a forwarded
// job so later polls go there directly instead of re-proxying.
type jobRoute struct {
	addr string // executing node's base URL
	id   string // job ID in that node's store
}

// Client is a minimal Go client for a chamd server. It is cluster
// aware: when a submission is forwarded to another node, the client
// follows the returned node_addr/remote_id and polls the executing
// node directly, falling back to the original server if that node
// disappears.
type Client struct {
	base string
	http *http.Client

	// Retry configures 503 backoff. Zero value = defaults; set
	// Disabled to fail fast.
	Retry RetryPolicy

	mu     sync.Mutex
	routes map[string]jobRoute // local job ID -> executing node
}

// NewClient targets a chamd base URL (e.g. "http://localhost:8080").
func NewClient(base string) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		http:   &http.Client{},
		routes: make(map[string]jobRoute),
	}
}

// statusError carries an API error plus enough context to retry.
type statusError struct {
	code       int
	retryAfter time.Duration
	err        error
}

func (e *statusError) Error() string { return e.err.Error() }

// doOnce runs one request against an absolute URL.
func (c *Client) doOnce(ctx context.Context, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var apiErr error
		var e apiError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr = fmt.Errorf("%s %s: %s (%d)", method, url, e.Error, resp.StatusCode)
		} else {
			apiErr = fmt.Errorf("%s %s: HTTP %d", method, url, resp.StatusCode)
		}
		var ra time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		return &statusError{code: resp.StatusCode, retryAfter: ra, err: apiErr}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// do runs a request against the client's base server, retrying 503s
// (a full queue is transient by design) per the retry policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	pol := c.Retry.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, c.base+path, in, out)
		se, ok := err.(*statusError)
		if !ok || se.code != http.StatusServiceUnavailable ||
			pol.Disabled || attempt >= pol.Max {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(pol.delay(attempt, se.retryAfter)):
		}
	}
}

// setRoute records (or clears, for empty addr) a job's executing node.
func (c *Client) setRoute(id string, r jobRoute) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.addr == "" {
		delete(c.routes, id)
		return
	}
	c.routes[id] = r
}

func (c *Client) route(id string) (jobRoute, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.routes[id]
	return r, ok
}

// noteRoute learns the executing node from a returned status.
func (c *Client) noteRoute(st JobStatus) {
	if st.NodeAddr == "" || st.RemoteID == "" {
		return
	}
	if strings.TrimRight(st.NodeAddr, "/") == c.base {
		return
	}
	c.setRoute(st.ID, jobRoute{addr: strings.TrimRight(st.NodeAddr, "/"), id: st.RemoteID})
}

// Submit posts a job and returns its initial status (which is already
// terminal on a cache hit). If the cluster forwarded the job to
// another node, later Status/Wait/Result calls follow it there.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	if err == nil {
		c.noteRoute(st)
	}
	return st, err
}

// Status fetches a job's current status, polling the executing node
// directly for forwarded jobs (the forwarding server's local ID is
// restored in the response). If the executing node is unreachable the
// route is dropped and the original server answers from its mirror.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	if r, ok := c.route(id); ok {
		var st JobStatus
		if err := c.doOnce(ctx, http.MethodGet, r.addr+"/v1/jobs/"+r.id, nil, &st); err == nil {
			st.ID = id // present the caller's handle, not the remote one
			return st, nil
		}
		c.setRoute(id, jobRoute{}) // node gone: fall back to the proxy
	}
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	if err == nil {
		c.noteRoute(st)
	}
	return st, err
}

// Wait polls until the job reaches a terminal state (every poll
// interval; 0 defaults to 100ms) or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Result decodes a done job's result into out (for sim jobs, a
// *sim.Result), fetching from the executing node when known.
func (c *Client) Result(ctx context.Context, id string, out any) error {
	if r, ok := c.route(id); ok {
		if err := c.doOnce(ctx, http.MethodGet, r.addr+"/v1/jobs/"+r.id+"/result", nil, out); err == nil {
			return nil
		}
		c.setRoute(id, jobRoute{})
	}
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, out)
}

// SimResult fetches a done sim job's result.
func (c *Client) SimResult(ctx context.Context, id string) (*sim.Result, error) {
	var r sim.Result
	if err := c.Result(ctx, id, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Cancel cancels a queued or running job, on the executing node when
// known (the forwarding server's mirror then converges via its poll).
func (c *Client) Cancel(ctx context.Context, id string) error {
	if r, ok := c.route(id); ok {
		if err := c.doOnce(ctx, http.MethodDelete, r.addr+"/v1/jobs/"+r.id, nil, nil); err == nil {
			return nil
		}
		c.setRoute(id, jobRoute{})
	}
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// DSEResult fetches and decodes a done DSE job's sweep result.
func (c *Client) DSEResult(ctx context.Context, id string) (*dse.Result, error) {
	var r dse.Result
	if err := c.Result(ctx, id, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Workloads lists the server's workload catalogue.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var resp struct {
		Workloads []WorkloadInfo `json:"workloads"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &resp)
	return resp.Workloads, err
}

// Policies lists the server's registered policy designs with their
// descriptor flags.
func (c *Client) Policies(ctx context.Context) ([]PolicyInfo, error) {
	var resp struct {
		Policies []PolicyInfo `json:"policies"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/policies", nil, &resp)
	return resp.Policies, err
}

// ClusterMembers reports the server's cluster view (empty error with
// zero members on standalone servers means the endpoint is absent).
func (c *Client) ClusterMembers(ctx context.Context) ([]cluster.Node, error) {
	var resp struct {
		Members []cluster.Node `json:"members"`
	}
	err := c.do(ctx, http.MethodGet, cluster.MembersPath, nil, &resp)
	return resp.Members, err
}

// Healthy reports whether the server answers /healthz with "ok".
func (c *Client) Healthy(ctx context.Context) bool {
	var resp struct {
		Status string `json:"status"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return false
	}
	return resp.Status == "ok"
}

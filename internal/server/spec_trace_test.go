package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chameleon/internal/memtrace"
	"chameleon/internal/sim"
)

// recordTrace captures fastSpec's run into a trace file and returns
// the path plus the original result.
func recordTrace(t *testing.T, dir string, seed uint64) (string, *sim.Result) {
	t.Helper()
	spec, err := fastSpec(seed).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	o, err := spec.SimOptions()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ctrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := memtrace.NewWriter(f)
	o.TraceSink = w
	sys, err := sim.New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(spec.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, res
}

// traceSpec is fastSpec retargeted at a recorded trace.
func traceSpec(path string, seed uint64) JobSpec {
	s := fastSpec(seed)
	s.Workload = ""
	s.TracePath = path
	return s
}

func TestTraceSpecNormalize(t *testing.T) {
	path, _ := recordTrace(t, t.TempDir(), 3)

	viaPath, err := traceSpec(path, 3).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if viaPath.TraceSHA256 == "" {
		t.Error("Normalize left TraceSHA256 empty")
	}

	// The "replay:<path>" workload spelling normalizes into the same
	// spec — and therefore the same cache hash.
	viaName := fastSpec(3)
	viaName.Workload = "replay:" + path
	n, err := viaName.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.TracePath != path || n.Workload != "" {
		t.Errorf("replay: workload normalized to TracePath=%q Workload=%q", n.TracePath, n.Workload)
	}
	if n.Hash() != viaPath.Hash() {
		t.Error("replay: workload and trace_path hash differently")
	}

	// Same content at a different path: same hash (cache keys on
	// content), despite the differing TracePath.
	dir2 := t.TempDir()
	copyPath := filepath.Join(dir2, "copy.ctrace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	viaCopy, err := traceSpec(copyPath, 3).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if viaCopy.Hash() != viaPath.Hash() {
		t.Error("identical trace content at a different path missed the cache hash")
	}
}

func TestTraceSpecRejects(t *testing.T) {
	dir := t.TempDir()
	path, _ := recordTrace(t, dir, 3)

	both := traceSpec(path, 3)
	both.Workload = "bwaves"
	if _, err := both.Normalize(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("workload+trace_path error = %v, want mutually exclusive", err)
	}

	missing := traceSpec(filepath.Join(dir, "nope.ctrace"), 3)
	if _, err := missing.Normalize(); err == nil {
		t.Error("missing trace file accepted")
	}

	// A corrupt file must be rejected at submission, naming the block.
	bad := append([]byte(nil), mustRead(t, path)...)
	bad[len(bad)/2] ^= 0x40
	badPath := filepath.Join(dir, "bad.ctrace")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := traceSpec(badPath, 3).Normalize(); err == nil || !strings.Contains(err.Error(), "block") {
		t.Errorf("corrupt trace error = %v, want a block-naming *FormatError", err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTraceJobReproducesRecordedRun is the server leg of the
// determinism gate: a job replaying a recorded run returns the same
// headline results as the run that produced the recording.
func TestTraceJobReproducesRecordedRun(t *testing.T) {
	path, want := recordTrace(t, t.TempDir(), 3)
	s := newTestServer(t, Options{Workers: 1})
	j, err := s.Submit(traceSpec(path, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	body, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.GeoMeanIPC != want.GeoMeanIPC || got.MaxCycles != want.MaxCycles ||
		got.StackedHitRate != want.StackedHitRate || got.Workload != want.Workload {
		t.Fatalf("replayed job diverged: got IPC %v cycles %d hit %v wl %q, want IPC %v cycles %d hit %v wl %q",
			got.GeoMeanIPC, got.MaxCycles, got.StackedHitRate, got.Workload,
			want.GeoMeanIPC, want.MaxCycles, want.StackedHitRate, want.Workload)
	}
}

// TestTraceJobDetectsFileChange: a trace edited between submission and
// execution must fail, not serve a result under the stale cache key.
func TestTraceJobDetectsFileChange(t *testing.T) {
	path, _ := recordTrace(t, t.TempDir(), 3)
	spec, err := traceSpec(path, 3).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Re-record with a different seed: still a valid trace, different
	// content.
	spec2, err := fastSpec(4).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	o, err := spec2.SimOptions()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := memtrace.NewWriter(f)
	o.TraceSink = w
	sys, err := sim.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(spec2.Instructions); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := spec.SimOptions(); err == nil || !strings.Contains(err.Error(), "changed since submission") {
		t.Errorf("SimOptions on a changed trace = %v, want changed-since-submission error", err)
	}
}

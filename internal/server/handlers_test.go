package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := newTestServer(t, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, NewClient(ts.URL)
}

func TestHTTPEndToEnd(t *testing.T) {
	_, _, c := newHTTPServer(t, Options{Workers: 2})
	ctx := context.Background()

	if !c.Healthy(ctx) {
		t.Fatal("healthz not ok")
	}
	wls, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != 14 {
		t.Fatalf("workloads = %d, want 14", len(wls))
	}
	for _, w := range wls {
		if w.Name == "" || w.FootprintBytes == 0 {
			t.Fatalf("bad workload entry: %+v", w)
		}
	}

	st, err := c.Submit(ctx, fastSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Hash == "" {
		t.Fatalf("submit status incomplete: %+v", st)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("state = %s (err %q)", fin.State, fin.Error)
	}
	res, err := c.SimResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeoMeanIPC <= 0 || res.Policy == "" {
		t.Fatalf("implausible result: %+v", res)
	}

	// Duplicate submit over HTTP is a cache hit, terminal on arrival.
	st2, err := c.Submit(ctx, fastSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("duplicate: state=%s cached=%v", st2.State, st2.Cached)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, _, c := newHTTPServer(t, Options{Workers: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, slowSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is running, then DELETE it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never started: %s", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", fin.State)
	}
	// The result of a canceled job is gone.
	var out any
	if err := c.Result(ctx, st.ID, &out); err == nil || !strings.Contains(err.Error(), "410") {
		t.Fatalf("want HTTP 410 for canceled result, got %v", err)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts, c := newHTTPServer(t, Options{Workers: 1})
	ctx := context.Background()

	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d, want 400", resp.StatusCode)
	}

	// Unknown fields → 400 (catches typo'd specs instead of silently
	// running defaults).
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"policy":"pom","workload":"bwaves","instrs":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	// Invalid spec → 400.
	if _, err := c.Submit(ctx, JobSpec{Policy: "nope", Workload: "bwaves"}); err == nil {
		t.Fatal("bad policy should fail")
	}

	// Unknown job → 404 on status, result and cancel.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
	if err := c.Cancel(ctx, "nope"); err == nil {
		t.Fatal("cancel of unknown job should fail")
	}

	// Result of a still-queued/running job → 409.
	st, err := c.Submit(ctx, slowSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	var out any
	if err := c.Result(ctx, st.ID, &out); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409 for unfinished result, got %v", err)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPListAndMetrics(t *testing.T) {
	_, ts, c := newHTTPServer(t, Options{Workers: 2})
	ctx := context.Background()
	st, err := c.Submit(ctx, fastSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), st.ID) {
		t.Fatalf("job list missing %s: %s", st.ID, buf[:n])
	}

	mresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	n, _ = mresp.Body.Read(buf)
	body := string(buf[:n])
	for _, key := range []string{"jobs_submitted", "jobs_done", "cache_hit_rate", "queue_wait_ms", "sim_cycles_total"} {
		if !strings.Contains(body, key) {
			t.Errorf("/debug/vars missing %s:\n%s", key, body)
		}
	}

	// The queue-full path surfaces as 503 + Retry-After. Disable the
	// client's backoff: this test wants the raw first response.
	s2, _, c2 := newHTTPServer(t, Options{Workers: 1, QueueDepth: 1})
	c2.Retry.Disabled = true
	if _, err := c2.Submit(ctx, slowSpec(44)); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to own the first job, so the single queue
	// slot is provably free for the second.
	deadline := time.Now().Add(10 * time.Second)
	for s2.Metrics().JobsRunning.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c2.Submit(ctx, slowSpec(45)); err != nil { // queue slot
		t.Fatal(err)
	}
	_, err = c2.Submit(ctx, slowSpec(46))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want 503 when queue full, got %v", err)
	}
	// Drain quickly for cleanup.
	for _, j := range s2.Jobs() {
		_, _ = s2.Cancel(j.ID)
	}
}

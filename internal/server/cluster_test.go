package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"chameleon/internal/cluster"
	"chameleon/internal/sim"
)

// fakeClock drives suspicion/eviction deterministically: gossip and
// HTTP run for real, but failure-detection time only moves when the
// test advances it.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

const testSuspicion = 100 * time.Millisecond

// clusterNode is one in-process chamd node: real HTTP (httptest), real
// worker pool, manual cluster loops.
type clusterNode struct {
	id   string
	s    *Server
	cl   *cluster.Cluster
	srv  *httptest.Server
	addr string
}

// newServerCluster builds n nodes, each seeded with node 0, with the
// background cluster loops disabled (tests call pollRemotes /
// sweepDead / stealOnce / GossipOnce / Tick at deterministic points).
func newServerCluster(t *testing.T, n int, clock *fakeClock, workers func(i int) int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		srv := httptest.NewUnstartedServer(nil)
		nodes[i] = &clusterNode{
			id:   fmt.Sprintf("node-%c", 'a'+i),
			srv:  srv,
			addr: "http://" + srv.Listener.Addr().String(),
		}
	}
	for i, nd := range nodes {
		var seeds []string
		if i > 0 {
			seeds = []string{nodes[0].addr}
		}
		nd.cl = cluster.New(cluster.Config{
			NodeID:           nd.id,
			Addr:             nd.addr,
			Peers:            seeds,
			SuspicionTimeout: testSuspicion,
			EvictTimeout:     time.Hour, // dead nodes stay visible to assertions
			Client:           &http.Client{Timeout: 2 * time.Second},
			Now:              clock.Now,
		})
		w := 2
		if workers != nil {
			w = workers(i)
		}
		nd.s = New(Options{Workers: w, Cluster: nd.cl, ClusterManual: true})
		nd.srv.Config.Handler = nd.s.Handler()
		nd.srv.Start()
		nd := nd
		t.Cleanup(func() {
			nd.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_ = nd.s.Shutdown(ctx)
		})
	}
	return nodes
}

// converge gossips until every node agrees on an n-node ring.
func converge(t *testing.T, nodes []*clusterNode) {
	t.Helper()
	ctx := context.Background()
	for round := 0; round < 200; round++ {
		for _, nd := range nodes {
			_ = nd.cl.GossipOnce(ctx)
		}
		agreed := true
		for _, nd := range nodes {
			if nd.cl.Ring().Len() != len(nodes) {
				agreed = false
			}
		}
		if agreed {
			return
		}
	}
	for _, nd := range nodes {
		t.Logf("%s ring: %v", nd.id, nd.cl.Ring().Nodes())
	}
	t.Fatal("cluster did not converge")
}

// findSpec searches seeds for a spec whose ring owners satisfy pred.
func findSpec(t *testing.T, cl *cluster.Cluster, base func(uint64) JobSpec, pred func(owners []string) bool) JobSpec {
	t.Helper()
	for seed := uint64(1); seed < 4096; seed++ {
		spec := base(seed)
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if pred(cl.Ring().Owners(norm.Hash(), replication)) {
			return spec
		}
	}
	t.Fatal("no seed satisfies the ownership predicate")
	return JobSpec{}
}

// driveUntilTerminal pumps a node's remote-mirror poll until j ends.
func driveUntilTerminal(t *testing.T, nd *clusterNode, j *Job, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		nd.s.pollRemotes()
		nd.s.sweepDead()
		if j.State().Terminal() {
			return j.Status()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after %s (state %s)", j.ID, timeout, j.State())
	return JobStatus{}
}

func sumJobsDone(nodes []*clusterNode) int64 {
	var n int64
	for _, nd := range nodes {
		n += nd.s.Metrics().JobsDone.Value()
	}
	return n
}

// TestClusterExactlyOnceWithPeerCache is acceptance test (a): the same
// spec submitted to two different nodes simulates exactly once — the
// second submission is served from the cluster cache with Cached=true.
func TestClusterExactlyOnceWithPeerCache(t *testing.T) {
	clock := newFakeClock()
	nodes := newServerCluster(t, 3, clock, nil)
	converge(t, nodes)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Owned by a (replica c), so both b and c must route to a.
	spec := findSpec(t, a.cl, fastSpec, func(owners []string) bool {
		return len(owners) == 2 && owners[0] == a.id && owners[1] == c.id
	})

	// Submit via non-owner b: forwarded to a, mirrored locally.
	jb, err := b.s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.s.Metrics().JobsForwarded.Value(); got != 1 {
		t.Fatalf("b forwarded %d jobs, want 1", got)
	}
	st := driveUntilTerminal(t, b, jb, 30*time.Second)
	if st.State != StateDone || st.Node != a.id {
		t.Fatalf("mirror = %s on %q (err %q), want done on %s", st.State, st.Node, st.Error, a.id)
	}
	if st.Cached {
		t.Fatal("first execution must not be served from cache")
	}

	// Same spec via the other non-owner c: a answers from its cache, the
	// forward resolves synchronously, and nothing simulates again.
	jc, err := c.s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = driveUntilTerminal(t, c, jc, 10*time.Second)
	if st.State != StateDone || !st.Cached {
		t.Fatalf("second submission: state=%s cached=%v, want done from cache", st.State, st.Cached)
	}
	if n := sumJobsDone(nodes); n != 1 {
		t.Fatalf("cluster simulated %d times, want exactly 1", n)
	}

	// Both results decode to the same simulation output.
	var r1, r2 sim.Result
	b1, _ := jb.Result()
	b2, _ := jc.Result()
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.MaxCycles != r2.MaxCycles {
		t.Fatalf("results diverge: %d vs %d cycles", r1.MaxCycles, r2.MaxCycles)
	}

	// Job IDs are namespaced per node.
	if jb.ID == jc.ID {
		t.Fatalf("job IDs collide across nodes: %s", jb.ID)
	}
}

// TestClusterNodeDeathReenqueues is acceptance test (b): killing a
// node makes the ring reconverge within the suspicion timeout, and
// jobs it owned complete on the survivors.
func TestClusterNodeDeathReenqueues(t *testing.T) {
	clock := newFakeClock()
	// Node c gets one worker so a slow job can wedge its queue.
	nodes := newServerCluster(t, 3, clock, func(i int) int {
		if i == 2 {
			return 1
		}
		return 2
	})
	converge(t, nodes)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Wedge c's single worker with a never-ending job c owns itself.
	wedge := findSpec(t, c.cl, slowSpec, func(owners []string) bool {
		return owners[0] == c.id || owners[1] == c.id
	})
	if _, err := c.s.Submit(wedge); err != nil {
		t.Fatal(err)
	}

	// Forward a fast job from a to c; it queues behind the wedge.
	spec := findSpec(t, a.cl, fastSpec, func(owners []string) bool {
		return len(owners) == 2 && owners[0] == c.id && owners[1] == b.id
	})
	ja, err := a.s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ja.State() != StateRemote {
		t.Fatalf("job state = %s, want remote mirror", ja.State())
	}

	// Kill c mid-queue: the forwarded job is still waiting for a worker.
	c.srv.CloseClientConnections()
	c.srv.Close()

	// Survivors gossip: exchanges with c fail and mark it suspect.
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = a.cl.GossipOnce(ctx)
		_ = b.cl.GossipOnce(ctx)
		an, aok := a.cl.Membership().Lookup(c.id)
		bn, bok := b.cl.Membership().Lookup(c.id)
		if aok && bok && an.State != cluster.StateAlive && bn.State != cluster.StateAlive {
			break
		}
	}

	// Advance past the suspicion timeout: suspect becomes dead and the
	// ring reconverges to the two survivors.
	clock.Advance(testSuspicion + time.Millisecond)
	a.cl.Tick(clock.Now())
	b.cl.Tick(clock.Now())
	_ = a.cl.GossipOnce(ctx)
	_ = b.cl.GossipOnce(ctx)
	for _, nd := range []*clusterNode{a, b} {
		ring := nd.cl.Ring().Nodes()
		if len(ring) != 2 {
			t.Fatalf("%s ring = %v, want the 2 survivors", nd.id, ring)
		}
		for _, id := range ring {
			if id == c.id {
				t.Fatalf("%s ring still contains dead node: %v", nd.id, ring)
			}
		}
	}

	// a's sweep notices the dead owner and re-runs the job locally.
	st := driveUntilTerminal(t, a, ja, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("re-enqueued job = %s (err %q), want done", st.State, st.Error)
	}
	if got := a.s.Metrics().JobsReenqueued.Value(); got != 1 {
		t.Fatalf("jobs_reenqueued = %d, want 1", got)
	}
	if _, err := ja.Result(); err != nil {
		t.Fatalf("result unavailable after failover: %v", err)
	}
}

// TestClusterWorkStealing: an idle node claims queued work from a
// loaded peer, runs it, and reports the result back; the claim CAS
// means the job runs exactly once.
func TestClusterWorkStealing(t *testing.T) {
	clock := newFakeClock()
	// Node a has a single worker; b and c are idle helpers.
	nodes := newServerCluster(t, 3, clock, func(i int) int {
		if i == 0 {
			return 1
		}
		return 2
	})
	converge(t, nodes)
	a, b := nodes[0], nodes[1]

	// Wedge a's worker, then queue a fast job a owns (no forwarding).
	wedge := findSpec(t, a.cl, slowSpec, func(owners []string) bool {
		return owners[0] == a.id || owners[1] == a.id
	})
	if _, err := a.s.Submit(wedge); err != nil {
		t.Fatal(err)
	}
	spec := findSpec(t, a.cl, fastSpec, func(owners []string) bool {
		return owners[0] == a.id || owners[1] == a.id
	})
	jq, err := a.s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if jq.State() != StateQueued {
		t.Fatalf("job state = %s, want queued behind the wedge", jq.State())
	}

	// Idle b scans for work and claims it.
	b.s.stealOnce()
	if got := b.s.Metrics().JobsStolen.Value(); got != 1 {
		t.Fatalf("b stole %d jobs, want 1", got)
	}
	if got := a.s.Metrics().JobsStolenAway.Value(); got != 1 {
		t.Fatalf("a lost %d jobs to thieves, want 1", got)
	}

	// The victim's job completes via b's completion report.
	st := waitTerminal(t, jq, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("stolen job = %s (err %q), want done", st.State, st.Error)
	}
	if st.Node != b.id {
		t.Fatalf("stolen job executed on %q, want %s", st.Node, b.id)
	}
	// A second scan finds nothing left to steal.
	b.s.stealOnce()
	if got := b.s.Metrics().JobsStolen.Value(); got != 1 {
		t.Fatalf("second scan stole more work: %d", got)
	}
}

// TestClusterForwardLoopGuard: a submit carrying the forwarded header
// is always served locally, even by a non-owner — forwarding is single
// hop by construction.
func TestClusterForwardLoopGuard(t *testing.T) {
	clock := newFakeClock()
	nodes := newServerCluster(t, 3, clock, nil)
	converge(t, nodes)
	a, b := nodes[0], nodes[1]

	// b does not own this spec; an unmarked submit would forward it.
	spec := findSpec(t, b.cl, fastSpec, func(owners []string) bool {
		return len(owners) == 2 && owners[0] != b.id && owners[1] != b.id
	})
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest(http.MethodPost, b.addr+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, a.id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State == StateRemote {
		t.Fatal("forwarded submit was forwarded again: loop guard failed")
	}
	if st.Node != b.id {
		t.Fatalf("forwarded submit ran on %q, want %s", st.Node, b.id)
	}
	if got := b.s.Metrics().JobsForwarded.Value(); got != 0 {
		t.Fatalf("b forwarded %d jobs, want 0", got)
	}
}

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"chameleon/internal/config"
	"chameleon/internal/dse"
	"chameleon/internal/experiments"
	"chameleon/internal/memtrace"
	"chameleon/internal/policy"
	"chameleon/internal/sim"
	"chameleon/internal/workload"
)

// Job kinds.
const (
	KindSim    = "sim"    // one simulation (policy × workload)
	KindMatrix = "matrix" // the full evaluation matrix (experiments.RunMatrix)
	KindDSE    = "dse"    // a design-space sweep with Pareto-front extraction (internal/dse)
)

// maxDSECells bounds a single DSE job's expansion so one submission
// cannot enqueue an unbounded amount of simulation.
const maxDSECells = 16384

// JobSpec is the wire-format description of one job. Zero fields take
// the library defaults (Scale 256, 500k instructions, 4M warm-up,
// seed 42). The canonical hash of a normalized spec keys the result
// cache, so two submissions that normalize identically share one
// simulation.
type JobSpec struct {
	// Kind is "sim" (default) or "matrix".
	Kind string `json:"kind,omitempty"`

	// Sim fields (Kind == "sim").
	Policy   string `json:"policy,omitempty"`
	Workload string `json:"workload,omitempty"`
	// TracePath replays a server-side binary trace recording
	// (internal/memtrace, see cmd/chameleon-trace) instead of a
	// synthetic workload; mutually exclusive with Workload. A
	// "replay:<path>" Workload normalizes into this field. The file is
	// fully validated at submission and its content hash recorded in
	// TraceSHA256, so the result cache keys on what the trace says, not
	// where it lives.
	TracePath string `json:"trace_path,omitempty"`
	// TraceSHA256 is the hex content hash of the trace file, filled by
	// Normalize (client-supplied values are overwritten). It is part of
	// the cache hash — TracePath is not — so renaming a trace file
	// still hits the cache and editing one misses it.
	TraceSHA256 string `json:"trace_sha256,omitempty"`
	// BaselineGB is the flat baseline's unscaled capacity (policy
	// "flat" only; default 24).
	BaselineGB uint64 `json:"baseline_gb,omitempty"`
	// Ratio overrides the stacked:off-chip capacity ratio (3, 5, 7).
	Ratio int `json:"ratio,omitempty"`
	// TimelineEpochCycles sets the progress-sampling epoch in
	// simulated cycles (default 1,000,000).
	TimelineEpochCycles uint64 `json:"timeline_epoch_cycles,omitempty"`

	// Matrix fields (Kind == "matrix").
	Workloads []string `json:"workloads,omitempty"`
	// Policies restricts the matrix's policy set (default: the paper's
	// standard evaluation designs). Each name must be registered.
	Policies    []string `json:"policies,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`

	// DSE fields (Kind == "dse"): the declarative sweep. Shared
	// parameters below still apply per cell (Instructions, Warmup,
	// Threads); the sweep's own axes supersede Policy/Workload/Ratio,
	// and a top-level Scale or Seed seeds the corresponding axis when
	// the sweep leaves it empty. Every expanded cell is normalized into
	// a KindSim spec whose hash keys the shared result cache, so repeat
	// sweeps — and sweeps overlapping earlier sim jobs — are served from
	// cache.
	DSE *dse.Spec `json:"dse,omitempty"`

	// Shared simulation parameters.
	Scale        uint64 `json:"scale,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"` // 0 = default 4M; use 1 to disable
	Seed         uint64 `json:"seed,omitempty"`
	// Threads is the per-simulation worker-thread count handed to
	// sim.Options.Threads (0 = server default of 2, 1 = sequential).
	// The parallel engine is bit-deterministic, so Threads changes
	// wall-clock time only — it is validated here but excluded from the
	// cache hash, and two submissions differing only in threads share
	// one cache entry. The server clamps the effective value against
	// its worker pool and GOMAXPROCS (see the sim_threads_effective
	// metric).
	Threads int `json:"threads,omitempty"`
	// CacheLevels replaces the default three-level cache hierarchy with
	// an explicit stack (ordered from the core outward; see
	// config.CacheLevelConfig). Empty keeps the scaled default.
	CacheLevels []config.CacheLevelConfig `json:"cache_levels,omitempty"`
	// MemoryTiers replaces the default stacked + off-chip DRAM pair
	// with an explicit memory stack (ordered nearest first; see
	// config.MemTierConfig — DRAM, NVM or CXL per tier). Empty keeps
	// the scaled default, so pre-tier specs hash and run unchanged.
	MemoryTiers []config.MemTierConfig `json:"memory_tiers,omitempty"`

	// TimeoutMS bounds the job's run time once started (wall clock).
	// 0 takes the server default. Excluded from the cache hash: the
	// deadline does not change the result, only whether one arrives.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Normalize fills defaults and validates the spec. The returned spec
// is canonical: specs that normalize equal produce equal hashes.
func (s JobSpec) Normalize() (JobSpec, error) {
	if s.Kind == "" {
		s.Kind = KindSim
	}
	if s.Scale == 0 {
		s.Scale = 256
	}
	if s.Scale&(s.Scale-1) != 0 {
		return s, fmt.Errorf("scale must be a power of two, got %d", s.Scale)
	}
	if s.Instructions == 0 {
		s.Instructions = 500_000
	}
	if s.Warmup == 0 {
		s.Warmup = 4_000_000
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.TimeoutMS < 0 {
		return s, fmt.Errorf("timeout_ms must be non-negative, got %d", s.TimeoutMS)
	}
	if s.Threads < 0 {
		return s, fmt.Errorf("threads must be non-negative, got %d", s.Threads)
	}
	if len(s.CacheLevels) > 0 {
		// Reject malformed hierarchies at submission, not inside a
		// worker: overlay the stack on an otherwise-valid config so
		// Validate's findings can only concern the cache levels.
		cfg := config.Default(s.Scale)
		cfg.CacheLevels = s.CacheLevels
		if err := cfg.Validate(); err != nil {
			return s, fmt.Errorf("cache_levels: %w", err)
		}
	}
	if len(s.MemoryTiers) > 0 {
		cfg := config.Default(s.Scale)
		cfg.MemoryTiers = config.CloneTiers(s.MemoryTiers)
		if err := cfg.Validate(); err != nil {
			return s, fmt.Errorf("memory_tiers: %w", err)
		}
	}
	switch s.Kind {
	case KindSim:
		if s.Policy == "" {
			return s, fmt.Errorf("sim job requires a policy (one of %s)", policyNames())
		}
		desc, err := policy.Lookup(s.Policy)
		if err != nil {
			return s, fmt.Errorf("unknown policy %q (one of %s)", s.Policy, policyNames())
		}
		if tiers := max(len(s.MemoryTiers), 2); desc.RequiredTiers() > tiers {
			return s, fmt.Errorf("policy %q needs %d memory tiers, spec has %d",
				s.Policy, desc.RequiredTiers(), tiers)
		}
		if path, ok := strings.CutPrefix(s.Workload, workload.ReplayPrefix); ok {
			// Both spellings of a replay normalize identically, so they
			// share one cache entry.
			if s.TracePath != "" && s.TracePath != path {
				return s, fmt.Errorf("workload %q and trace_path %q name different traces", s.Workload, s.TracePath)
			}
			s.TracePath, s.Workload = path, ""
		}
		switch {
		case s.TracePath != "":
			if s.Workload != "" {
				return s, fmt.Errorf("workload and trace_path are mutually exclusive")
			}
			tr, err := memtrace.LoadFile(s.TracePath)
			if err != nil {
				return s, fmt.Errorf("trace_path: %w", err)
			}
			s.TraceSHA256 = tr.SHA256()
		case s.Workload == "":
			return s, fmt.Errorf("sim job requires a workload (see GET /v1/workloads) or a trace_path")
		default:
			if _, err := workload.ByName(s.Workload); err != nil {
				return s, err
			}
			s.TraceSHA256 = ""
		}
		if desc.RequiresBaseline {
			if s.BaselineGB == 0 {
				s.BaselineGB = 24
			}
		} else {
			s.BaselineGB = 0
		}
		if s.TimelineEpochCycles == 0 {
			s.TimelineEpochCycles = 1_000_000
		}
		s.Workloads = nil
		s.Policies = nil
		s.Parallelism = 0
		s.DSE = nil
	case KindMatrix:
		if len(s.Workloads) == 0 {
			s.Workloads = workload.Names()
		}
		for _, w := range s.Workloads {
			if _, err := workload.ByName(w); err != nil {
				return s, err
			}
		}
		for _, p := range s.Policies {
			if _, err := policy.Lookup(p); err != nil {
				return s, fmt.Errorf("unknown policy %q (one of %s)", p, policyNames())
			}
		}
		// Parallelism shapes scheduling, not results; it is kept in
		// the spec (a caller may bound a job's CPU use) but clamped.
		if s.Parallelism < 0 {
			s.Parallelism = 0
		}
		s.Policy, s.Workload, s.BaselineGB, s.Ratio, s.TimelineEpochCycles = "", "", 0, 0, 0
		s.TracePath, s.TraceSHA256 = "", ""
		s.DSE = nil
	case KindDSE:
		if s.DSE == nil {
			return s, fmt.Errorf("dse job requires a dse sweep spec (see README \"Asking design questions\")")
		}
		// A top-level Scale/Seed seeds the matching sweep axis, then both
		// reset to their defaults: the sweep's axes are the only canonical
		// spelling, so {scale: 512} and {dse: {scales: [512]}} hash equal.
		d := *s.DSE
		if len(d.Scales) == 0 {
			d.Scales = []uint64{s.Scale}
		}
		if len(d.Seeds) == 0 {
			d.Seeds = []uint64{s.Seed}
		}
		// Likewise a top-level hierarchy or tier stack becomes a
		// single-variant axis.
		if len(d.CacheLevelVariants) == 0 && len(s.CacheLevels) > 0 {
			d.CacheLevelVariants = [][]config.CacheLevelConfig{s.CacheLevels}
		}
		if len(d.MemoryTierVariants) == 0 && len(s.MemoryTiers) > 0 {
			d.MemoryTierVariants = [][]config.MemTierConfig{config.CloneTiers(s.MemoryTiers)}
		}
		d, err := d.Normalize()
		if err != nil {
			return s, err
		}
		cells, err := d.Expand()
		if err != nil {
			return s, err
		}
		if len(cells) > maxDSECells {
			return s, fmt.Errorf("dse sweep expands to %d cells, above the per-job cap of %d (split the sweep)", len(cells), maxDSECells)
		}
		s.DSE = &d
		s.Scale, s.Seed = 256, 42
		if s.Parallelism < 0 {
			s.Parallelism = 0
		}
		s.Policy, s.Workload, s.BaselineGB, s.Ratio, s.TimelineEpochCycles = "", "", 0, 0, 0
		s.TracePath, s.TraceSHA256 = "", ""
		s.Workloads, s.Policies = nil, nil
		s.CacheLevels, s.MemoryTiers = nil, nil
	default:
		return s, fmt.Errorf("unknown job kind %q (sim, matrix or dse)", s.Kind)
	}
	return s, nil
}

// Hash returns the canonical content address of the spec: a SHA-256
// over the normalized spec minus scheduling-only fields. Two jobs with
// equal hashes are guaranteed to produce identical results (the
// simulator is deterministic in its options and seed).
func (s JobSpec) Hash() string {
	s.TimeoutMS = 0
	s.Parallelism = 0
	// The parallel engine is bit-deterministic (TestParallelEquivalence),
	// so the thread count is pure scheduling: submissions differing only
	// in threads must share one cache entry.
	s.Threads = 0
	// A replay job is identified by the trace's content (TraceSHA256),
	// not its filename: moving a recording keeps the cache warm.
	s.TracePath = ""
	b, err := json.Marshal(s) // struct marshal: fixed field order, canonical
	if err != nil {
		// JobSpec contains only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("server: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SimOptions converts a normalized sim spec into simulator options.
func (s JobSpec) SimOptions() (sim.Options, error) {
	cfg := config.Default(s.Scale)
	if len(s.CacheLevels) > 0 {
		cfg.CacheLevels = s.CacheLevels
	}
	if len(s.MemoryTiers) > 0 {
		cfg.MemoryTiers = config.CloneTiers(s.MemoryTiers)
	}
	if s.Ratio > 0 {
		var err error
		if cfg, err = cfg.WithRatio(s.Ratio); err != nil {
			return sim.Options{}, err
		}
	}
	o := sim.Options{
		Config:              cfg,
		Policy:              sim.PolicyKind(s.Policy),
		Seed:                s.Seed,
		WarmupInstructions:  s.Warmup,
		TimelineEpochCycles: s.TimelineEpochCycles,
		Threads:             s.Threads,
	}
	if s.TracePath != "" {
		tr, err := memtrace.LoadFile(s.TracePath)
		if err != nil {
			return sim.Options{}, fmt.Errorf("trace_path: %w", err)
		}
		// The cache entry is keyed on the content seen at submission; a
		// file that changed in between must not run under the old key.
		if got := tr.SHA256(); got != s.TraceSHA256 {
			return sim.Options{}, fmt.Errorf("trace_path: %s changed since submission (content hash %.12s, submitted %.12s)",
				s.TracePath, got, s.TraceSHA256)
		}
		srcs, err := tr.Sources()
		if err != nil {
			return sim.Options{}, err
		}
		// Replay footprints are already concrete; Scale does not apply.
		o.Workload = tr.RunProfile()
		o.Sources = srcs
	} else {
		prof, err := workload.ByName(s.Workload)
		if err != nil {
			return sim.Options{}, err
		}
		o.Workload = prof.Scale(s.Scale)
	}
	if s.BaselineGB > 0 {
		o.BaselineBytes = s.BaselineGB * config.GB / s.Scale
	}
	return o, nil
}

// MatrixOptions converts a normalized matrix spec into experiment
// options.
func (s JobSpec) MatrixOptions() experiments.Options {
	o := experiments.Options{
		Scale:        s.Scale,
		Instructions: s.Instructions,
		Warmup:       s.Warmup,
		Seed:         s.Seed,
		Workloads:    s.Workloads,
		Parallelism:  s.Parallelism,
		Threads:      s.Threads,
		CacheLevels:  s.CacheLevels,
		MemoryTiers:  s.MemoryTiers,
	}
	for _, p := range s.Policies {
		o.Policies = append(o.Policies, sim.PolicyKind(p))
	}
	return o
}

// Timeout returns the job's wall-clock budget, clamped to fallback
// when unset.
func (s JobSpec) Timeout(fallback time.Duration) time.Duration {
	if s.TimeoutMS <= 0 {
		return fallback
	}
	return time.Duration(s.TimeoutMS) * time.Millisecond
}

// policyNames lists the accepted policy names for error messages.
func policyNames() string {
	return strings.Join(policy.Names(), ", ")
}

package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded, content-addressed LRU cache of completed
// job results, keyed by JobSpec.Hash. The simulator is deterministic,
// so a hash hit can be returned without re-running anything.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	hash   string
	result []byte
}

// newResultCache builds a cache bounded to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the cached result bytes for hash, if present, and marks
// the entry recently used.
func (c *resultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result, evicting the least recently used entry when
// over capacity.
func (c *resultCache) Put(hash string, result []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		el.Value.(*cacheEntry).result = result
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, result: result})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).hash)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded, content-addressed LRU cache of completed
// job results, keyed by JobSpec.Hash. The simulator is deterministic,
// so a hash hit can be returned without re-running anything. The
// cache is bounded twice over: by entry count and by total payload
// bytes — a few thousand large matrix results must not exhaust the
// process even when the entry cap alone would admit them.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64 // <= 0: no byte bound
	bytes      int64
	entries    map[string]*list.Element
	order      *list.List // front = most recently used
}

type cacheEntry struct {
	hash   string
	result []byte
}

// newResultCache builds a cache bounded to maxEntries results (min 1)
// and maxBytes total payload (<= 0 disables the byte bound). A single
// result larger than maxBytes is still admitted — the bound then
// holds it alone.
func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[string]*list.Element),
		order:      list.New(),
	}
}

// Get returns a copy of the cached result bytes for hash, if present,
// and marks the entry recently used. Callers own the returned slice:
// handing out the internal buffer would let one caller's mutation
// corrupt every later hit (and, with peer fill, other nodes).
func (c *resultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return append([]byte(nil), el.Value.(*cacheEntry).result...), true
}

// Put stores a copy of result, evicting least recently used entries
// while either bound is exceeded.
func (c *resultCache) Put(hash string, result []byte) {
	result = append([]byte(nil), result...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(result)) - int64(len(e.result))
		e.result = result
		c.order.MoveToFront(el)
	} else {
		c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, result: result})
		c.bytes += int64(len(result))
	}
	for c.order.Len() > 1 &&
		(c.order.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		last := c.order.Back()
		c.order.Remove(last)
		e := last.Value.(*cacheEntry)
		c.bytes -= int64(len(e.result))
		delete(c.entries, e.hash)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the total cached payload size.
func (c *resultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns entry count and payload bytes in one lock.
func (c *resultCache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}

package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/config"
	"chameleon/internal/experiments"
	"chameleon/internal/policy"
	"chameleon/internal/sim"
	"chameleon/internal/workload"
)

// registerToy registers a minimal custom design exactly the way client
// code would: one Register call, no edits to sim, server or either CLI.
// It is a flat system that statically splits the OS-visible space
// across both devices.
var registerToy = sync.OnceFunc(func() {
	policy.Register("toy", policy.Descriptor{
		Build: func(bc policy.BuildContext) (policy.Controller, error) {
			return policy.NewFlat("toy", bc.Fast, bc.Slow,
				bc.Config.TierCapacity(0), bc.Config.TotalCapacity()), nil
		},
	})
})

// TestToyPolicyEndToEnd is the registry's acceptance test: a design
// registered by test code alone must run through the simulator, the
// experiments matrix and a server job, purely by name.
func TestToyPolicyEndToEnd(t *testing.T) {
	registerToy()
	const scale = 1024

	// Direct simulation.
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.Options{
		Config:   config.Default(scale),
		Policy:   "toy",
		Workload: prof.Scale(scale),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "toy" {
		t.Fatalf("result policy = %q, want toy", res.Policy)
	}
	if res.Snapshot()["ctrl.accesses"] == 0 {
		t.Fatal("toy controller saw no traffic")
	}

	// Experiments matrix restricted to the toy design.
	m, err := experiments.RunMatrix(experiments.Options{
		Scale:        scale,
		Instructions: 5_000,
		Warmup:       1,
		Workloads:    []string{"bwaves"},
		Policies:     []sim.PolicyKind{"toy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Results["toy"]["bwaves"] == nil {
		t.Fatalf("matrix missing toy/bwaves cell: %+v", m.Results)
	}
	if v := m.Metric("toy", "bwaves", "ipc_geomean"); v <= 0 {
		t.Fatalf("toy matrix IPC = %v, want > 0", v)
	}

	// Server job, by wire name.
	s := newTestServer(t, Options{Workers: 1})
	j, err := s.Submit(JobSpec{
		Kind: KindSim, Policy: "toy", Workload: "bwaves",
		Scale: scale, Instructions: 5_000, Warmup: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("toy job state = %s (err %q), want done", st.State, st.Error)
	}
	body, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Policy != "toy" {
		t.Fatalf("served policy = %q, want toy", got.Policy)
	}
}

// TestUnknownPolicy400EchoesValidSet: the API's rejection of an unknown
// policy must list the registered names, so clients can self-correct.
func TestUnknownPolicy400EchoesValidSet(t *testing.T) {
	registerToy()
	_, ts, _ := newHTTPServer(t, Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"policy":"no-such-design","workload":"bwaves"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range append(policy.Names(), "no-such-design") {
		if !strings.Contains(string(b), want) {
			t.Errorf("400 body %q does not mention %q", b, want)
		}
	}

	// Matrix jobs validate their policy list the same way.
	srv := newTestServer(t, Options{Workers: 1})
	if _, err := srv.Submit(JobSpec{Kind: KindMatrix, Policies: []string{"no-such-design"}}); err == nil ||
		!strings.Contains(err.Error(), "toy") {
		t.Fatalf("matrix submit error %v must reject and list registered names", err)
	}
}

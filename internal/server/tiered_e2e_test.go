package server

import (
	"encoding/json"
	"testing"
	"time"

	"chameleon/internal/config"
	"chameleon/internal/experiments"
	"chameleon/internal/sim"
	"chameleon/internal/workload"
)

// threeTierConfig builds the acceptance stack: a small stacked DRAM, a
// small off-chip DRAM and a large NVM tier, sized so the workload's
// footprint spills well past both DRAM tiers and the cold tier sees
// real traffic (and real write wear).
func threeTierConfig(scale uint64) config.Config {
	cfg := config.Default(scale).WithNVMTier(32 * config.GB / scale)
	cfg.MemoryTiers[0].SetCapacity(2 * config.GB / scale)
	cfg.MemoryTiers[1].SetCapacity(8 * config.GB / scale)
	return cfg
}

// TestThreeTierEndToEnd is the N-tier refactor's acceptance gate: a
// stacked DRAM + off-chip DRAM + NVM machine runs the three-tier hwc
// policy through the simulator, the experiments matrix and a server
// job, reporting per-tier occupancy/energy stats and nonzero NVM
// endurance counters at every surface.
func TestThreeTierEndToEnd(t *testing.T) {
	const scale = 1024
	cfg := threeTierConfig(scale)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	// Direct simulation.
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.Options{
		Config:             cfg,
		Policy:             "hwc",
		Workload:           prof.Scale(scale),
		Seed:               7,
		WarmupInstructions: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 3 {
		t.Fatalf("result has %d tiers, want 3", len(res.Tiers))
	}
	wantKinds := []string{config.TierDRAM, config.TierDRAM, config.TierNVM}
	for i, tier := range res.Tiers {
		if tier.Kind != wantKinds[i] {
			t.Errorf("tier %d kind = %q, want %q", i, tier.Kind, wantKinds[i])
		}
		if tier.CapacityBytes == 0 || tier.Occupancy <= 0 || tier.EnergyNJ <= 0 {
			t.Errorf("tier %d stats incomplete: %+v", i, tier)
		}
	}
	nvm := res.Tiers[2]
	if nvm.Device["wear_writes"] <= 0 || nvm.Device["max_wear"] <= 0 {
		t.Fatalf("NVM endurance counters zero: %+v", nvm.Device)
	}
	if nvm.DemandAccesses == 0 {
		t.Error("NVM tier saw no demand accesses")
	}
	snap := res.Snapshot()
	for _, key := range []string{"mem_stacked.reads", "mem_offchip.reads", "mem_nvm.wear_writes", "mem_nvm.occupancy", "mem_nvm.energy_nj"} {
		if snap[key] <= 0 {
			t.Errorf("snapshot %s = %v, want > 0", key, snap[key])
		}
	}

	// Experiments matrix with the tier stack as an option.
	m, err := experiments.RunMatrix(experiments.Options{
		Scale:        scale,
		Instructions: 50_000,
		Warmup:       100_000,
		Workloads:    []string{"bwaves"},
		Policies:     []sim.PolicyKind{"hwc"},
		MemoryTiers:  cfg.MemoryTiers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Results["hwc"]["bwaves"] == nil {
		t.Fatalf("matrix missing hwc/bwaves cell: %+v", m.Results)
	}
	if v := m.Metric("hwc", "bwaves", "mem_nvm.wear_writes"); v <= 0 {
		t.Fatalf("matrix NVM wear = %v, want > 0", v)
	}

	// Server job carrying the stack over the wire.
	s := newTestServer(t, Options{Workers: 1})
	j, err := s.Submit(JobSpec{
		Kind: KindSim, Policy: "hwc", Workload: "bwaves",
		Scale: scale, Instructions: 100_000, Warmup: 200_000, Seed: 7,
		MemoryTiers: cfg.MemoryTiers,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("hwc job state = %s (err %q), want done", st.State, st.Error)
	}
	body, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Tiers) != 3 || got.Tiers[2].Device["wear_writes"] <= 0 {
		t.Fatalf("served result lost tier stats: %+v", got.Tiers)
	}
}

// TestTierSpecValidation: malformed stacks and under-tiered policies
// are rejected at submission, not inside a worker.
func TestTierSpecValidation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	// hwc on the default two-tier machine.
	if _, err := s.Submit(JobSpec{
		Kind: KindSim, Policy: "hwc", Workload: "bwaves", Scale: 1024,
	}); err == nil {
		t.Error("under-tiered hwc spec accepted")
	}
	// A stack with an invalid tier.
	bad := config.Default(1024).MemoryTiers
	bad[0].Kind = "sram"
	if _, err := s.Submit(JobSpec{
		Kind: KindSim, Policy: "chameleon", Workload: "bwaves", Scale: 1024,
		MemoryTiers: bad,
	}); err == nil {
		t.Error("invalid tier stack accepted")
	}
}

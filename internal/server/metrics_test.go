package server

import (
	"encoding/json"
	"strings"
	"testing"

	"chameleon/internal/stats"
)

// fakeSimSource exports deliberately unsorted metric names.
type fakeSimSource struct{}

func (fakeSimSource) Name() string { return "fake" }
func (fakeSimSource) Snapshot() stats.Snapshot {
	return stats.Snapshot{"z_last": 1, "a_first": 2, "mid.dle": 3}
}

// TestExpvarSimAggregateKeysSorted pins the rendering order of the
// "sim" expvar aggregate: the JSON document lists metric keys sorted,
// so run-to-run diffs of /debug/vars (and golden files built from it)
// are stable. chameleon-sim -counters gets the same guarantee from
// stats.Snapshot.Keys (see TestSnapshotKeysSorted).
func TestExpvarSimAggregateKeysSorted(t *testing.T) {
	m := NewMetrics()
	m.ObserveSim(fakeSimSource{})
	m.ObserveSim(fakeSimSource{})

	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(m.Vars().String()), &doc); err != nil {
		t.Fatalf("expvar map is not valid JSON: %v", err)
	}
	raw, ok := doc["sim"]
	if !ok {
		t.Fatal(`expvar map has no "sim" entry`)
	}
	keys := jsonKeyOrder(t, raw)
	want := []string{"a_first", "mid.dle", "runs", "z_last"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Errorf("sim aggregate key order = %v, want sorted %v", keys, want)
	}

	var sim map[string]float64
	if err := json.Unmarshal(raw, &sim); err != nil {
		t.Fatal(err)
	}
	if sim["runs"] != 2 || sim["z_last"] != 2 || sim["a_first"] != 4 {
		t.Errorf("sim aggregate = %v, want two accumulated observations", sim)
	}
}

// jsonKeyOrder returns the top-level object keys in document order.
func jsonKeyOrder(t *testing.T, raw []byte) []string {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		t.Fatalf("sim entry is not a JSON object: %v %v", tok, err)
	}
	var keys []string
	for dec.More() {
		k, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k.(string))
		var v any
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

package server

import (
	"errors"
	"sync"
)

// Queue errors surfaced to submitters.
var (
	// ErrQueueFull means the bounded FIFO queue is at capacity;
	// clients should back off and retry (HTTP 503).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining means the server is shutting down and no longer
	// accepts work.
	ErrDraining = errors.New("server: shutting down, not accepting jobs")
)

// pool is a bounded FIFO job queue drained by a fixed set of worker
// goroutines. Submission never blocks: a full queue is an error the
// API can convert into back-pressure.
type pool struct {
	jobs chan *Job
	run  func(*Job)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// newPool starts workers goroutines draining a queue of depth slots.
func newPool(workers, depth int, run func(*Job)) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &pool{jobs: make(chan *Job, depth), run: run}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				p.run(j)
			}
		}()
	}
	return p
}

// Submit enqueues a job FIFO, failing fast when draining or full.
func (p *pool) Submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops intake. Workers keep draining whatever is already
// queued; Wait blocks until they exit.
func (p *pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
}

// Wait blocks until every worker has exited (Close must be called
// first or Wait blocks forever).
func (p *pool) Wait() { p.wg.Wait() }

package server

import (
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"time"

	"chameleon/internal/stats"
)

// queueWaitBuckets are the upper bounds (milliseconds) of the queue
// wait histogram; the final bucket is unbounded.
var queueWaitBuckets = []int64{1, 10, 100, 1_000, 10_000}

// Metrics aggregates the server's counters. All fields are
// expvar-native so the whole struct publishes as one expvar.Map on
// /debug/vars, but nothing is registered in the process-global expvar
// registry (tests run many servers in one process); cmd/chamd calls
// PublishExpvar once to expose the serving instance globally.
type Metrics struct {
	JobsSubmitted expvar.Int // total POST /v1/jobs accepted
	JobsQueued    expvar.Int // gauge: currently waiting for a worker
	JobsRunning   expvar.Int // gauge: currently executing
	JobsDone      expvar.Int // total simulated to completion locally
	JobsFailed    expvar.Int // total failed (error or deadline)
	JobsCanceled  expvar.Int // total canceled (queued or mid-run)
	CacheHits     expvar.Int
	CacheMisses   expvar.Int
	SimCycles     expvar.Int // simulated cycles completed, all jobs
	// SimThreadsEffective is a gauge of the per-simulation thread count
	// the most recent sim job ran with, after the server clamped the
	// spec's request against the worker pool and GOMAXPROCS.
	SimThreadsEffective expvar.Int
	// ParallelFallbacks counts sim jobs the parallel engine declined,
	// keyed by sim.Result.FallbackReason (e.g. "alloc-phases",
	// "autonuma", "eviction-collision"). A healthy fleet keeps this
	// near zero; growth pinpoints which feature is serializing jobs.
	ParallelFallbacks expvar.Map

	// DSE sweep counters: cells actually simulated locally, cells
	// served from the content-addressed cache (local or peer), cells
	// skipped by dominance pruning, and cells executed on a ring peer.
	DSECellsSimulated expvar.Int
	DSECellsCached    expvar.Int
	DSECellsPruned    expvar.Int
	DSECellsRemote    expvar.Int

	// Cluster counters (zero on standalone servers).
	JobsForwarded  expvar.Int // submits proxied to the ring owner
	JobsRemoteDone expvar.Int // local jobs completed by a peer's execution
	JobsStolen     expvar.Int // queued jobs this node claimed from peers
	JobsStolenAway expvar.Int // queued jobs peers claimed from this node
	JobsReenqueued expvar.Int // jobs re-queued locally after a node died
	PeerCacheHits  expvar.Int // local misses served from a peer's cache
	PeerCacheFills expvar.Int // peer-pushed results accepted into the cache

	queueWait struct {
		sync.Mutex
		counts  [6]int64 // one per bucket + overflow
		totalMS int64
		samples int64
	}

	// sim accumulates the unified stats.Snapshot of every completed
	// simulation (see sim.Result.Snapshot), exposed as the "sim" expvar
	// entry.
	sim struct {
		sync.Mutex
		totals stats.Snapshot
		runs   int64
	}

	start time.Time
	once  sync.Once
	vars  *expvar.Map

	// cacheStats / clusterInfo are optional live views wired by the
	// server before the first Vars call.
	cacheStats  func() (entries int, bytes int64)
	clusterInfo func() any
}

// SetCacheStats wires the result cache's live size into the expvar
// document (cache_entries / cache_bytes). Call before the first Vars.
func (m *Metrics) SetCacheStats(fn func() (entries int, bytes int64)) { m.cacheStats = fn }

// SetClusterInfo wires a live cluster summary into the expvar
// document's "cluster" key. Call before the first Vars.
func (m *Metrics) SetClusterInfo(fn func() any) { m.clusterInfo = fn }

// NewMetrics returns a zeroed metrics set anchored at now.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	m.ParallelFallbacks.Init()
	return m
}

// ObserveQueueWait records one job's time-to-first-worker.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	ms := d.Milliseconds()
	q := &m.queueWait
	q.Lock()
	defer q.Unlock()
	i := 0
	for ; i < len(queueWaitBuckets); i++ {
		if ms <= queueWaitBuckets[i] {
			break
		}
	}
	q.counts[i]++
	q.totalMS += ms
	q.samples++
}

// ObserveSim accumulates one completed simulation's unified snapshot
// into the server-lifetime totals. Any stats.Source works — the server
// does not know (or care) which counters a design exports.
func (m *Metrics) ObserveSim(src stats.Source) {
	snap := src.Snapshot()
	s := &m.sim
	s.Lock()
	defer s.Unlock()
	if s.totals == nil {
		s.totals = stats.Snapshot{}
	}
	s.totals.Add("", snap)
	s.runs++
}

// simSnapshot renders the accumulated simulation counters.
func (m *Metrics) simSnapshot() map[string]float64 {
	s := &m.sim
	s.Lock()
	defer s.Unlock()
	out := make(stats.Snapshot, len(s.totals)+1)
	out.Add("", s.totals)
	out["runs"] = float64(s.runs)
	return out
}

// CacheHitRate returns hits / (hits + misses), or 0 before the first
// lookup.
func (m *Metrics) CacheHitRate() float64 {
	h, ms := m.CacheHits.Value(), m.CacheMisses.Value()
	if h+ms == 0 {
		return 0
	}
	return float64(h) / float64(h+ms)
}

// CyclesPerSecond returns simulated cycles completed per wall-clock
// second since the server started.
func (m *Metrics) CyclesPerSecond() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.SimCycles.Value()) / el
}

// Vars assembles (once) the expvar.Map view of the metrics.
func (m *Metrics) Vars() *expvar.Map {
	m.once.Do(func() {
		mp := new(expvar.Map).Init()
		mp.Set("jobs_submitted", &m.JobsSubmitted)
		mp.Set("jobs_queued", &m.JobsQueued)
		mp.Set("jobs_running", &m.JobsRunning)
		mp.Set("jobs_done", &m.JobsDone)
		mp.Set("jobs_failed", &m.JobsFailed)
		mp.Set("jobs_canceled", &m.JobsCanceled)
		mp.Set("jobs_forwarded", &m.JobsForwarded)
		mp.Set("jobs_remote_done", &m.JobsRemoteDone)
		mp.Set("jobs_stolen", &m.JobsStolen)
		mp.Set("jobs_stolen_away", &m.JobsStolenAway)
		mp.Set("jobs_reenqueued", &m.JobsReenqueued)
		mp.Set("cache_hits", &m.CacheHits)
		mp.Set("cache_misses", &m.CacheMisses)
		mp.Set("cache_hit_rate", expvar.Func(func() any { return m.CacheHitRate() }))
		mp.Set("peer_cache_hits", &m.PeerCacheHits)
		mp.Set("peer_cache_fills", &m.PeerCacheFills)
		if m.cacheStats != nil {
			mp.Set("cache_entries", expvar.Func(func() any { e, _ := m.cacheStats(); return e }))
			mp.Set("cache_bytes", expvar.Func(func() any { _, b := m.cacheStats(); return b }))
		}
		if m.clusterInfo != nil {
			mp.Set("cluster", expvar.Func(m.clusterInfo))
		}
		mp.Set("dse_cells_simulated", &m.DSECellsSimulated)
		mp.Set("dse_cells_cached", &m.DSECellsCached)
		mp.Set("dse_cells_pruned", &m.DSECellsPruned)
		mp.Set("dse_cells_remote", &m.DSECellsRemote)
		mp.Set("sim_threads_effective", &m.SimThreadsEffective)
		mp.Set("sim_parallel_fallback_total", &m.ParallelFallbacks)
		mp.Set("sim_cycles_total", &m.SimCycles)
		mp.Set("sim_cycles_per_sec", expvar.Func(func() any { return m.CyclesPerSecond() }))
		mp.Set("uptime_seconds", expvar.Func(func() any {
			return time.Since(m.start).Seconds()
		}))
		mp.Set("queue_wait_ms", expvar.Func(func() any { return m.queueWaitSnapshot() }))
		mp.Set("sim", expvar.Func(func() any { return m.simSnapshot() }))
		m.vars = mp
	})
	return m.vars
}

// queueWaitSnapshot renders the histogram as a JSON-friendly map.
func (m *Metrics) queueWaitSnapshot() map[string]int64 {
	q := &m.queueWait
	q.Lock()
	defer q.Unlock()
	out := make(map[string]int64, len(q.counts)+2)
	for i, b := range queueWaitBuckets {
		out[fmt.Sprintf("le_%d", b)] = q.counts[i]
	}
	out["inf"] = q.counts[len(queueWaitBuckets)]
	out["count"] = q.samples
	out["sum_ms"] = q.totalMS
	return out
}

// ServeHTTP serves the metrics as a /debug/vars-style JSON document.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"chamd\": %s}\n", m.Vars().String())
}

var publishOnce sync.Once

// PublishExpvar registers the metrics in the process-global expvar
// registry under "chamd". Safe to call once per process; later calls
// (or calls for other Metrics instances) are no-ops, because expvar
// panics on duplicate names.
func (m *Metrics) PublishExpvar() {
	publishOnce.Do(func() { expvar.Publish("chamd", m.Vars()) })
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"chameleon/internal/cluster"
	"chameleon/internal/config"
	"chameleon/internal/dse"
	"chameleon/internal/sim"
)

// Status-poll pacing for a sweep cell executing on a ring peer: start
// fast so short cells return promptly, then back off exponentially to
// the cap so long cells don't drown a large sweep in idle HTTP chatter
// (a 10 s cell costs ~13 polls instead of ~66 at a fixed 150 ms).
const (
	dseRemotePollStart = 150 * time.Millisecond
	dseRemotePollCap   = time.Second
)

// runDSE executes a design-space sweep job. Every expanded cell
// normalizes into a KindSim spec whose content hash keys the shared
// result cache, so cells are served (in order of preference) from the
// local cache, a ring peer's cache, a ring peer's worker pool (the
// cell's hash owner — a cluster shards the sweep), or an inline local
// simulation. Cells run inside this job's worker slot, never through
// the local pool, so a sweep cannot deadlock the pool that runs it.
func (s *Server) runDSE(ctx context.Context, j *Job) (any, error) {
	par := j.Spec.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	res, err := j.Spec.DSE.Run(ctx, dse.RunOptions{
		Parallelism: par,
		Progress:    j.setDSEProgress,
		Evaluate: func(ctx context.Context, c dse.Cell) (dse.Eval, error) {
			return s.evalDSECell(ctx, j.Spec, c)
		},
	})
	if err != nil {
		return nil, err
	}
	s.metrics.DSECellsPruned.Add(int64(res.Pruned))
	return res, nil
}

// cellSpec normalizes one sweep cell into the KindSim spec that keys
// the content-addressed result cache. Shared simulation parameters
// (instructions, warm-up, threads) come from the parent job; the
// cell's variant indices select concrete hierarchy / tier overlays
// from the sweep spec.
func cellSpec(parent JobSpec, c dse.Cell) (JobSpec, error) {
	cs := JobSpec{
		Kind:         KindSim,
		Policy:       c.Policy,
		Workload:     c.Workload,
		Ratio:        c.Ratio,
		Scale:        c.Scale,
		Seed:         c.Seed,
		Instructions: parent.Instructions,
		Warmup:       parent.Warmup,
		Threads:      parent.Threads,
	}
	if c.CacheVariant >= 0 {
		cs.CacheLevels = parent.DSE.CacheLevelVariants[c.CacheVariant]
	}
	if c.TierVariant >= 0 {
		cs.MemoryTiers = config.CloneTiers(parent.DSE.MemoryTierVariants[c.TierVariant])
	}
	return cs.Normalize()
}

// decodeEval turns cached result bytes back into an evaluation.
func decodeEval(b []byte, hash string, cached bool) (dse.Eval, error) {
	var r sim.Result
	if err := json.Unmarshal(b, &r); err != nil {
		return dse.Eval{}, fmt.Errorf("decode cached cell result %.12s: %w", hash, err)
	}
	return dse.Eval{Result: &r, Hash: hash, Cached: cached}, nil
}

// evalDSECell resolves one sweep cell: local cache, then peer cache,
// then execution on the cell's ring owner, then an inline local
// simulation (also the fallback whenever a peer path fails — a dead
// peer costs the sweep capacity, never a cell).
func (s *Server) evalDSECell(ctx context.Context, parent JobSpec, c dse.Cell) (dse.Eval, error) {
	cs, err := cellSpec(parent, c)
	if err != nil {
		return dse.Eval{}, err
	}
	hash := cs.Hash()
	if b, ok := s.cache.Get(hash); ok {
		s.metrics.DSECellsCached.Add(1)
		return decodeEval(b, hash, true)
	}
	if s.clustered() {
		owners := s.cl.Owners(hash, replication)
		selfOwned := false
		for _, o := range owners {
			if o.ID == s.selfID() {
				selfOwned = true
			}
		}
		if b, ok := s.peerCacheGet(hash, owners); ok {
			s.metrics.PeerCacheHits.Add(1)
			s.metrics.DSECellsCached.Add(1)
			s.cache.Put(hash, b)
			return decodeEval(b, hash, true)
		}
		if !selfOwned {
			if b, ok := s.runCellRemote(ctx, cs, owners); ok {
				s.metrics.DSECellsRemote.Add(1)
				s.cache.Put(hash, b)
				return decodeEval(b, hash, false)
			}
		}
	}

	o, err := cs.SimOptions()
	if err != nil {
		return dse.Eval{}, err
	}
	o.Threads = s.simThreads(o.Threads)
	sys, err := sim.New(o)
	if err != nil {
		return dse.Eval{}, err
	}
	res, err := sys.RunContext(ctx, cs.Instructions)
	if err != nil {
		return dse.Eval{}, err
	}
	s.metrics.SimCycles.Add(int64(res.MaxCycles))
	s.metrics.ObserveSim(res)
	s.metrics.DSECellsSimulated.Add(1)
	b, err := marshalResult(res)
	if err != nil {
		return dse.Eval{}, err
	}
	s.cache.Put(hash, b)
	if s.clustered() {
		go s.writeBackResult(hash, b)
	}
	return dse.Eval{Result: res, Hash: hash}, nil
}

// runCellRemote submits a cell's sim spec to its first reachable ring
// owner (with the forwarded loop guard, so the owner runs it locally
// and may offer it to work stealing), polls to a terminal state, and
// fetches the result bytes. ok=false on any failure: the caller
// simulates the cell locally instead.
func (s *Server) runCellRemote(ctx context.Context, cs JobSpec, owners []cluster.Node) ([]byte, bool) {
	self := s.selfID()
	for _, o := range owners {
		if o.ID == self || !s.cl.Alive(o.ID) {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, peerCallTimeout)
		var st JobStatus
		err := cluster.DoJSONHeader(cctx, s.cl.HTTPClient(), http.MethodPost,
			o.Addr+"/v1/jobs", map[string]string{cluster.ForwardedHeader: self}, cs, &st)
		cancel()
		if err != nil {
			s.cl.Membership().MarkFailed(o.ID)
			continue
		}
		poll := dseRemotePollStart
		for !st.State.Terminal() {
			select {
			case <-ctx.Done():
				s.cancelRemote(o.Addr, st.ID)
				return nil, false
			case <-time.After(poll):
			}
			poll = min(2*poll, dseRemotePollCap)
			cctx, cancel := context.WithTimeout(ctx, peerCallTimeout)
			perr := cluster.DoJSON(cctx, s.cl.HTTPClient(), http.MethodGet, o.Addr+"/v1/jobs/"+st.ID, nil, &st)
			cancel()
			if perr != nil {
				s.cl.Membership().MarkFailed(o.ID)
				return nil, false
			}
		}
		if st.State != StateDone {
			return nil, false
		}
		cctx, cancel = context.WithTimeout(ctx, peerCallTimeout)
		b, ok, err := cluster.GetBytes(cctx, s.cl.HTTPClient(), o.Addr+"/v1/jobs/"+st.ID+"/result")
		cancel()
		if err != nil || !ok {
			return nil, false
		}
		return b, true
	}
	return nil, false
}

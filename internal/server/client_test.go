package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flaky503 serves n 503s before handing requests to next.
func flaky503(n int64, retryAfter string, next http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeError(w, http.StatusServiceUnavailable, ErrQueueFull)
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func acceptedStatus(st JobStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusAccepted, st)
	})
}

func fastRetry() RetryPolicy {
	return RetryPolicy{Max: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond}
}

func TestClientRetriesOn503(t *testing.T) {
	h, calls := flaky503(2, "", acceptedStatus(JobStatus{ID: "j1", State: StateQueued}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry()
	st, err := c.Submit(context.Background(), fastSpec(1))
	if err != nil {
		t.Fatalf("submit should succeed after retries: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("status = %+v", st)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 rejected + 1 accepted)", n)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	h, calls := flaky503(1000, "", nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry()
	_, err := c.Submit(context.Background(), fastSpec(1))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want terminal 503 error, got %v", err)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("server saw %d calls, want 4 (1 + Max=3 retries)", n)
	}
}

func TestClientRetryDisabled(t *testing.T) {
	h, calls := flaky503(1000, "", nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry.Disabled = true
	_, err := c.Submit(context.Background(), fastSpec(1))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want immediate 503, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries)", n)
	}
}

func TestClientRetryCanceledContext(t *testing.T) {
	h, _ := flaky503(1000, "30", nil) // huge Retry-After: the wait must abort
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{Max: 3, Base: time.Millisecond, Cap: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, fastSpec(1))
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ignored context cancellation")
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: 2 * time.Second}.withDefaults()
	for i := 0; i < 50; i++ {
		// Exponential base with <= 50% jitter.
		if d := p.delay(0, 0); d < 100*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("delay(0) = %s, want [100ms, 150ms]", d)
		}
		// Retry-After is a floor.
		if d := p.delay(0, 800*time.Millisecond); d < 800*time.Millisecond {
			t.Fatalf("delay with Retry-After=800ms = %s, want >= 800ms", d)
		}
		// ... but Cap always wins.
		if d := p.delay(10, time.Hour); d > 2*time.Second {
			t.Fatalf("delay = %s, want <= cap", d)
		}
	}
}

// TestClientFollowsForwardedJob verifies the cluster-aware redirect: a
// submit answered with node_addr/remote_id makes the client poll the
// executing node directly, presenting the original job ID; when that
// node dies the client falls back to the forwarding server.
func TestClientFollowsForwardedJob(t *testing.T) {
	// "Executing" node B: serves the remote job's live status.
	var bCalls atomic.Int64
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bCalls.Add(1)
		if r.URL.Path != "/v1/jobs/b-j1" {
			t.Errorf("node B got unexpected path %s", r.URL.Path)
		}
		writeJSON(w, http.StatusOK, JobStatus{ID: "b-j1", State: StateDone})
	}))
	defer b.Close()

	// Forwarding node A: returns a remote mirror pointing at B.
	var aStatusCalls atomic.Int64
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			writeJSON(w, http.StatusAccepted, JobStatus{
				ID: "a-j1", State: StateRemote,
				Node: "node-b", NodeAddr: b.URL, RemoteID: "b-j1",
			})
		default:
			aStatusCalls.Add(1)
			writeJSON(w, http.StatusOK, JobStatus{ID: "a-j1", State: StateDone})
		}
	}))
	defer a.Close()

	c := NewClient(a.URL)
	st, err := c.Submit(context.Background(), fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRemote {
		t.Fatalf("state = %s, want remote", st.State)
	}

	st, err = c.Status(context.Background(), "a-j1")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "a-j1" || st.State != StateDone {
		t.Fatalf("status = %+v, want local ID with remote state", st)
	}
	if bCalls.Load() != 1 || aStatusCalls.Load() != 0 {
		t.Fatalf("calls: B=%d A=%d, want the poll to hit B directly", bCalls.Load(), aStatusCalls.Load())
	}

	// Node B dies: the client drops the route and asks A's mirror.
	b.Close()
	st, err = c.Status(context.Background(), "a-j1")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "a-j1" || st.State != StateDone {
		t.Fatalf("fallback status = %+v", st)
	}
	if aStatusCalls.Load() != 1 {
		t.Fatalf("A saw %d status calls, want 1 after fallback", aStatusCalls.Load())
	}
}

package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testJob builds an unregistered job for pool-level tests.
func testJob(t *testing.T, seed uint64) *Job {
	t.Helper()
	spec, err := JobSpec{Policy: "pom", Workload: "bwaves", Seed: seed}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return newJob("t1", spec, time.Now())
}

func TestPoolRunsEverythingWithFewWorkers(t *testing.T) {
	var ran atomic.Int64
	var mu sync.Mutex
	seen := map[string]bool{}
	p := newPool(2, 64, func(j *Job) {
		ran.Add(1)
		mu.Lock()
		seen[j.ID] = true
		mu.Unlock()
	})
	const n = 32 // far more jobs than workers
	for i := 0; i < n; i++ {
		spec, _ := JobSpec{Policy: "pom", Workload: "bwaves", Seed: uint64(i + 1)}.Normalize()
		j := newJob(fmt.Sprintf("job-%d", i), spec, time.Now())
		if err := p.Submit(j); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	p.Wait()
	if ran.Load() != n {
		t.Fatalf("ran %d jobs, want %d", ran.Load(), n)
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct jobs, want %d", len(seen), n)
	}
}

func TestPoolQueueFull(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	p := newPool(1, 1, func(*Job) {
		started <- struct{}{}
		<-block
	})
	if err := p.Submit(testJob(t, 1)); err != nil { // taken by the worker
		t.Fatal(err)
	}
	<-started
	if err := p.Submit(testJob(t, 2)); err != nil { // fills the queue slot
		t.Fatal(err)
	}
	if err := p.Submit(testJob(t, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(block)
	p.Close()
	p.Wait()
}

func TestPoolRejectsAfterClose(t *testing.T) {
	p := newPool(1, 4, func(*Job) {})
	p.Close()
	if err := p.Submit(testJob(t, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
	p.Wait()
}

func TestPoolFIFOOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	p := newPool(1, 16, func(j *Job) {
		<-release
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
	})
	ids := []string{"first", "second", "third", "fourth"}
	for _, id := range ids {
		j := testJob(t, 9)
		j.ID = id
		if err := p.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	p.Close()
	p.Wait()
	for i, id := range ids {
		if order[i] != id {
			t.Fatalf("order = %v, want %v", order, ids)
		}
	}
}

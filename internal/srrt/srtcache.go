package srrt

// MetaCache models the small on-die cache of SRRT entries. The full
// table lives in stacked DRAM (as in Sim et al. [25]); a lookup that
// misses this cache costs one extra stacked-DRAM access to fetch the
// group's metadata. The cache is direct-mapped on the group ID.
type MetaCache struct {
	tags    []uint32
	valid   []bool
	mask    uint32
	hits    uint64
	misses  uint64
	enabled bool
}

// NewMetaCache builds a meta cache with the given number of entries
// (rounded down to a power of two). entries == 0 disables the model:
// every lookup hits, costing nothing, which corresponds to an
// idealised SRAM table.
func NewMetaCache(entries int) *MetaCache {
	if entries <= 0 {
		return &MetaCache{}
	}
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &MetaCache{
		tags:    make([]uint32, n),
		valid:   make([]bool, n),
		mask:    uint32(n - 1),
		enabled: true,
	}
}

// Enabled reports whether misses are being modelled.
func (m *MetaCache) Enabled() bool { return m.enabled }

// Lookup touches the cache for group g and reports whether the entry
// was resident. On a miss the entry is installed.
func (m *MetaCache) Lookup(g uint32) (hit bool) {
	if !m.enabled {
		m.hits++
		return true
	}
	i := g & m.mask
	if m.valid[i] && m.tags[i] == g {
		m.hits++
		return true
	}
	m.misses++
	m.valid[i] = true
	m.tags[i] = g
	return false
}

// Stats returns hit and miss counts.
func (m *MetaCache) Stats() (hits, misses uint64) { return m.hits, m.misses }

// HitRate returns hits/(hits+misses), 1 when idle.
func (m *MetaCache) HitRate() float64 {
	t := m.hits + m.misses
	if t == 0 {
		return 1
	}
	return float64(m.hits) / float64(t)
}

package srrt

import (
	"testing"
	"testing/quick"

	"chameleon/internal/addr"
	"chameleon/internal/rng"
)

func testTable(t *testing.T, ratio int) *Table {
	t.Helper()
	seg := uint64(2048)
	sp, err := addr.NewSpace(8*seg, uint64(ratio)*8*seg, seg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestIdentityAtBoot(t *testing.T) {
	tb := testTable(t, 5)
	for g := addr.Group(0); uint32(g) < tb.Groups(); g++ {
		for w := 0; w < tb.Ways(); w++ {
			if got := tb.SlotOf(g, addr.Way(w)); got != addr.Way(w) {
				t.Fatalf("group %d way %d at slot %d, want identity", g, w, got)
			}
		}
		if tb.ModeOf(g) != ModePoM {
			t.Fatalf("group %d not in PoM mode at boot", g)
		}
		if tb.AllAllocated(g) {
			t.Fatalf("group %d allocated at boot", g)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTooManyWaysRejected(t *testing.T) {
	seg := uint64(2048)
	sp, err := addr.NewSpace(8*seg, 8*8*seg, seg) // ratio 8 -> 9 ways
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sp); err == nil {
		t.Error("9-way group should be rejected")
	}
}

func TestSwapSlots(t *testing.T) {
	tb := testTable(t, 5)
	tb.SwapSlots(3, 0, 2)
	if tb.SlotOf(3, 0) != 2 || tb.SlotOf(3, 2) != 0 {
		t.Error("swap did not exchange residents")
	}
	if tb.ResidentAt(3, 0) != 2 || tb.ResidentAt(3, 2) != 0 {
		t.Error("ResidentAt inconsistent after swap")
	}
	// Other groups untouched.
	if tb.SlotOf(4, 0) != 0 {
		t.Error("swap leaked into another group")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapPermutationProperty: any sequence of swaps keeps each group a
// permutation (validated by CheckInvariants).
func TestSwapPermutationProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		tb := testTable(t, 7) // 8 ways
		r := rng.New(seed)
		for i := 0; i < int(n); i++ {
			g := addr.Group(r.Intn(int(tb.Groups())))
			a := addr.Way(r.Intn(tb.Ways()))
			b := addr.Way(r.Intn(tb.Ways()))
			tb.SwapSlots(g, a, b)
		}
		return tb.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestABV(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(1)
	if tb.Allocated(g, 2) {
		t.Error("way 2 allocated at boot")
	}
	tb.SetAllocated(g, 2, true)
	if !tb.Allocated(g, 2) {
		t.Error("SetAllocated(true) did not stick")
	}
	if tb.AllAllocated(g) {
		t.Error("one bit should not be all")
	}
	for w := 0; w < tb.Ways(); w++ {
		tb.SetAllocated(g, addr.Way(w), true)
	}
	if !tb.AllAllocated(g) {
		t.Error("all ways allocated but AllAllocated is false")
	}
	if _, ok := tb.FreeWay(g, 0xF); ok {
		t.Error("FreeWay found a way in a full group")
	}
	tb.SetAllocated(g, 4, false)
	w, ok := tb.FreeWay(g, 0xF)
	if !ok || w != 4 {
		t.Errorf("FreeWay = (%d,%v), want (4,true)", w, ok)
	}
	if _, ok := tb.FreeWay(g, 4); ok {
		t.Error("FreeWay must honour skip")
	}
}

func TestModeTransitions(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(0)
	tb.SetMode(g, ModeCache)
	if tb.ModeOf(g) != ModeCache {
		t.Error("mode not switched to cache")
	}
	tb.FillCache(g, 3)
	tb.MarkCacheDirty(g)
	// Switching back to PoM drops the cache tag and dirty bit.
	tb.SetMode(g, ModePoM)
	if _, _, valid := tb.CacheTag(g); valid {
		t.Error("cache tag survived PoM transition")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheTagLifecycle(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(2)
	tb.SetMode(g, ModeCache)
	if _, _, valid := tb.CacheTag(g); valid {
		t.Error("cache tag valid before fill")
	}
	tb.FillCache(g, 4)
	way, dirty, valid := tb.CacheTag(g)
	if !valid || way != 4 || dirty {
		t.Errorf("CacheTag = (%d,%v,%v)", way, dirty, valid)
	}
	loc := tb.Lookup(g, 4)
	if !loc.CacheHit || loc.Slot != 0 {
		t.Errorf("Lookup cached way = %+v", loc)
	}
	// Other ways are not cache hits.
	if loc := tb.Lookup(g, 3); loc.CacheHit {
		t.Error("uncached way reported as cache hit")
	}
	tb.MarkCacheDirty(g)
	if _, dirty, _ := tb.CacheTag(g); !dirty {
		t.Error("dirty bit not set")
	}
	tb.InvalidateCache(g)
	if _, _, valid := tb.CacheTag(g); valid {
		t.Error("invalidate did not clear the tag")
	}
}

func TestLookupFollowsPermutation(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(7)
	tb.SwapSlots(g, 0, 3)
	if loc := tb.Lookup(g, 3); loc.Slot != 0 || loc.CacheHit {
		t.Errorf("way 3 should reside in slot 0: %+v", loc)
	}
	if loc := tb.Lookup(g, 0); loc.Slot != 3 {
		t.Errorf("way 0 should reside in slot 3: %+v", loc)
	}
}

// TestCountAccessMEA exercises the competing-counter semantics.
func TestCountAccessMEA(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(0)
	const threshold = 4
	// Three accesses by way 2: below threshold.
	for i := 0; i < 3; i++ {
		if tb.CountAccess(g, 2, threshold) {
			t.Fatal("threshold reported early")
		}
	}
	// A competing access by way 3 decrements, does not trigger.
	if tb.CountAccess(g, 3, threshold) {
		t.Fatal("competitor triggered")
	}
	// Two more by way 2 reach the threshold (3-1+2=4).
	tb.CountAccess(g, 2, threshold)
	if !tb.CountAccess(g, 2, threshold) {
		t.Fatal("threshold not reached")
	}
	tb.ResetCounter(g)
	if tb.CountAccess(g, 2, threshold) {
		t.Fatal("counter not reset")
	}
}

func TestCounterCandidateTakeover(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(1)
	tb.CountAccess(g, 1, 10)
	// Decrement to zero: candidate slot frees up.
	tb.CountAccess(g, 2, 10)
	// Now way 3 becomes the candidate and counts from 1.
	for i := 0; i < 9; i++ {
		if tb.CountAccess(g, 3, 10) {
			if i < 8 {
				t.Fatalf("triggered after %d accesses", i+2)
			}
		}
	}
}

func TestCacheModeGroups(t *testing.T) {
	tb := testTable(t, 5)
	if tb.CacheModeGroups() != 0 {
		t.Error("no groups should be in cache mode at boot")
	}
	tb.SetMode(2, ModeCache)
	tb.SetMode(5, ModeCache)
	if tb.CacheModeGroups() != 2 {
		t.Errorf("CacheModeGroups = %d, want 2", tb.CacheModeGroups())
	}
}

func TestInvariantViolationsDetected(t *testing.T) {
	tb := testTable(t, 5)
	// Cache mode with an allocated slot-0 resident.
	tb.SetAllocated(0, 0, true)
	tb.SetMode(0, ModeCache)
	if err := tb.CheckInvariants(); err == nil {
		t.Error("allocated slot-0 resident in cache mode not caught")
	}
}

func TestInvariantCacheTagInPoM(t *testing.T) {
	tb := testTable(t, 5)
	tb.SetMode(1, ModeCache)
	tb.FillCache(1, 2)
	// Force the flag combination by hand through the public API is not
	// possible (SetMode clears the tag), which is itself the guarantee.
	tb.SetMode(1, ModePoM)
	if err := tb.CheckInvariants(); err != nil {
		t.Errorf("legal state flagged: %v", err)
	}
}

func TestMetaCache(t *testing.T) {
	m := NewMetaCache(4)
	if !m.Enabled() {
		t.Fatal("cache should be enabled")
	}
	if m.Lookup(1) {
		t.Error("cold lookup hit")
	}
	if !m.Lookup(1) {
		t.Error("warm lookup missed")
	}
	// Direct-mapped conflict: 1 and 5 share index in a 4-entry cache.
	m.Lookup(5)
	if m.Lookup(1) {
		t.Error("conflicting entry not evicted")
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = (%d,%d)", hits, misses)
	}
}

func TestMetaCacheDisabled(t *testing.T) {
	m := NewMetaCache(0)
	if m.Enabled() {
		t.Fatal("zero entries must disable the model")
	}
	for i := uint32(0); i < 100; i++ {
		if !m.Lookup(i) {
			t.Fatal("disabled cache must always hit")
		}
	}
	if m.HitRate() != 1 {
		t.Errorf("hit rate = %v", m.HitRate())
	}
}

func TestMetaCacheRoundsToPowerOfTwo(t *testing.T) {
	m := NewMetaCache(100) // rounds to 64
	if len(m.tags) != 64 {
		t.Errorf("entries = %d, want 64", len(m.tags))
	}
}

// TestCounterSaturationProperty: the shared counter must never
// overflow its 8-bit storage regardless of the access pattern.
func TestCounterSaturationProperty(t *testing.T) {
	tb := testTable(t, 5)
	g := addr.Group(0)
	for i := 0; i < 1000; i++ {
		tb.CountAccess(g, 2, 1<<30) // threshold never reached
	}
	// Not observable directly; verify behaviour: a single competing
	// access must still decrement without wrapping.
	if tb.CountAccess(g, 3, 1<<30) {
		t.Fatal("competitor must not trigger")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFillCacheLookupProperty: after filling any off-chip way, exactly
// that way cache-hits and every other way resolves to its slot.
func TestFillCacheLookupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tb := testTable(t, 5)
		r := rng.New(seed)
		g := addr.Group(r.Intn(int(tb.Groups())))
		tb.SetMode(g, ModeCache)
		way := addr.Way(r.Intn(tb.Ways()-1) + 1) // off-chip way
		tb.FillCache(g, way)
		for w := 0; w < tb.Ways(); w++ {
			loc := tb.Lookup(g, addr.Way(w))
			if addr.Way(w) == way {
				if !loc.CacheHit || loc.Slot != 0 {
					return false
				}
			} else if loc.CacheHit {
				return false
			}
		}
		return tb.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	if ModePoM.String() != "pom" || ModeCache.String() != "cache" {
		t.Error("mode strings wrong")
	}
}

// Package srrt implements the Segment-Restricted Remapping Table used
// by PoM-style heterogeneous memory controllers (Sim et al. [25]) and
// its Chameleon augmentation (Figure 7 of the paper): per segment group
// it tracks the remapping permutation (tag bits), the shared MEA-style
// swap counter, the Alloc Bit Vector (ABV), the mode bit (PoM vs cache)
// and the dirty bit for the cached segment.
//
// Within a group, segments are identified by their home way: way 0 is
// the group's stacked-DRAM segment, ways 1..R are its off-chip
// segments. The table stores, for each physical slot, which logical way
// currently resides there ("perm"). In PoM mode perm is a permutation
// of the group's ways. In cache mode perm remains the authoritative
// residency map and a separate cache tag records which off-chip way is
// duplicated in the stacked slot (slot 0).
package srrt

import (
	"fmt"

	"chameleon/internal/addr"
)

// Mode is a segment group's operating mode.
type Mode uint8

// Segment-group operating modes.
const (
	ModePoM Mode = iota
	ModeCache
)

func (m Mode) String() string {
	if m == ModeCache {
		return "cache"
	}
	return "pom"
}

const (
	flagCacheMode = 1 << iota
	flagDirty
	flagCacheValid
)

// noCandidate marks an idle MEA counter.
const noCandidate = 0xFF

// entry is the packed per-group SRRT state (8 bytes per group).
type entry struct {
	perm      uint32 // 4 bits per slot: logical way resident in that slot
	abv       uint8  // bit w set = logical way w is OS-allocated
	counter   uint8  // shared competing counter (MEA)
	candidate uint8  // logical way the counter currently tracks
	flags     uint8
	cacheWay  uint8 // logical way duplicated in slot 0 when cacheValid
}

func (e *entry) slotOf(way addr.Way) addr.Way {
	for s := 0; s < 8; s++ {
		if addr.Way(e.perm>>(4*s)&0xF) == way {
			return addr.Way(s)
		}
	}
	panic("srrt: way not found in permutation")
}

func (e *entry) residentAt(slot addr.Way) addr.Way {
	return addr.Way(e.perm >> (4 * slot) & 0xF)
}

func (e *entry) setResident(slot, way addr.Way) {
	shift := 4 * uint32(slot)
	e.perm = e.perm&^(0xF<<shift) | uint32(way)<<shift
}

// Table is the full SRRT for an address space.
type Table struct {
	space   *addr.Space
	ways    int
	entries []entry
}

// New builds an identity-mapped table for the given address space. All
// groups start in PoM mode with empty ABVs (nothing allocated), which
// is the paper's post-boot state.
func New(space *addr.Space) (*Table, error) {
	w := space.Ways()
	if w > 8 {
		return nil, fmt.Errorf("srrt: at most 8 ways per group supported, got %d", w)
	}
	t := &Table{space: space, ways: w, entries: make([]entry, space.Groups())}
	var ident uint32
	for s := 0; s < w; s++ {
		ident |= uint32(s) << (4 * s)
	}
	for i := range t.entries {
		t.entries[i] = entry{perm: ident, candidate: noCandidate}
	}
	return t, nil
}

// Space returns the address space the table was built for.
func (t *Table) Space() *addr.Space { return t.space }

// Ways returns the number of segments per group.
func (t *Table) Ways() int { return t.ways }

// Groups returns the number of segment groups.
func (t *Table) Groups() uint32 { return uint32(len(t.entries)) }

// --- residency and lookup ---------------------------------------------

// Location describes where an access to a logical segment is serviced.
type Location struct {
	Slot     addr.Way // physical slot within the group
	CacheHit bool     // serviced from the slot-0 cache copy
}

// Lookup resolves the physical slot that services an access to the
// given logical way of group g. In cache mode a valid cache copy in
// slot 0 takes precedence over the authoritative off-chip copy.
func (t *Table) Lookup(g addr.Group, way addr.Way) Location {
	e := &t.entries[g]
	if e.flags&flagCacheValid != 0 && addr.Way(e.cacheWay) == way {
		return Location{Slot: 0, CacheHit: true}
	}
	return Location{Slot: e.slotOf(way)}
}

// SlotOf returns the slot where the logical way's authoritative copy
// resides.
func (t *Table) SlotOf(g addr.Group, way addr.Way) addr.Way {
	return t.entries[g].slotOf(way)
}

// ResidentAt returns the logical way whose authoritative copy resides
// in the given slot.
func (t *Table) ResidentAt(g addr.Group, slot addr.Way) addr.Way {
	return t.entries[g].residentAt(slot)
}

// SwapSlots exchanges the residents of two physical slots (the caller
// models the corresponding data movement).
func (t *Table) SwapSlots(g addr.Group, a, b addr.Way) {
	e := &t.entries[g]
	wa, wb := e.residentAt(a), e.residentAt(b)
	e.setResident(a, wb)
	e.setResident(b, wa)
}

// --- mode / ABV / dirty -------------------------------------------------

// ModeOf returns the group's operating mode.
func (t *Table) ModeOf(g addr.Group) Mode {
	if t.entries[g].flags&flagCacheMode != 0 {
		return ModeCache
	}
	return ModePoM
}

// SetMode switches the group's mode bit. Switching to PoM mode drops
// the cache tag (the caller must have written back dirty data first).
func (t *Table) SetMode(g addr.Group, m Mode) {
	e := &t.entries[g]
	if m == ModeCache {
		e.flags |= flagCacheMode
	} else {
		e.flags &^= flagCacheMode | flagCacheValid | flagDirty
	}
}

// Allocated reports the ABV bit of a logical way.
func (t *Table) Allocated(g addr.Group, way addr.Way) bool {
	return t.entries[g].abv&(1<<way) != 0
}

// SetAllocated updates the ABV bit of a logical way.
func (t *Table) SetAllocated(g addr.Group, way addr.Way, v bool) {
	if v {
		t.entries[g].abv |= 1 << way
	} else {
		t.entries[g].abv &^= 1 << way
	}
}

// AllAllocated reports whether every way in the group is allocated.
func (t *Table) AllAllocated(g addr.Group) bool {
	return t.entries[g].abv == uint8(1<<t.ways)-1
}

// FreeWay returns some unallocated logical way of the group and whether
// one exists, preferring ways other than skip (pass an out-of-range way
// such as 0xF to consider all).
func (t *Table) FreeWay(g addr.Group, skip addr.Way) (addr.Way, bool) {
	e := &t.entries[g]
	for w := 0; w < t.ways; w++ {
		if addr.Way(w) != skip && e.abv&(1<<w) == 0 {
			return addr.Way(w), true
		}
	}
	return 0, false
}

// --- slot-0 cache tag ---------------------------------------------------

// CacheTag returns the logical way cached in slot 0, if any.
func (t *Table) CacheTag(g addr.Group) (way addr.Way, dirty, valid bool) {
	e := &t.entries[g]
	return addr.Way(e.cacheWay), e.flags&flagDirty != 0, e.flags&flagCacheValid != 0
}

// FillCache records that the given off-chip logical way is now
// duplicated in slot 0.
func (t *Table) FillCache(g addr.Group, way addr.Way) {
	e := &t.entries[g]
	e.cacheWay = uint8(way)
	e.flags |= flagCacheValid
	e.flags &^= flagDirty
}

// MarkCacheDirty sets the dirty bit of the slot-0 cache copy.
func (t *Table) MarkCacheDirty(g addr.Group) { t.entries[g].flags |= flagDirty }

// InvalidateCache drops the slot-0 cache copy.
func (t *Table) InvalidateCache(g addr.Group) {
	t.entries[g].flags &^= flagCacheValid | flagDirty
}

// --- shared competing counter (MEA) -------------------------------------

// CountAccess applies one off-chip access by the given logical way to
// the group's shared competing counter (a Majority-Element-Algorithm
// style hot-segment detector, as in [25]/[33]). It returns true when
// the way's count has reached threshold, i.e. the segment should be
// swapped into the stacked slot. The counter is reset by the caller via
// ResetCounter after acting on the decision.
func (t *Table) CountAccess(g addr.Group, way addr.Way, threshold int) bool {
	e := &t.entries[g]
	switch {
	case e.candidate == noCandidate:
		e.candidate = uint8(way)
		e.counter = 1
	case addr.Way(e.candidate) == way:
		if e.counter < 0xFF {
			e.counter++
		}
	default:
		e.counter--
		if e.counter == 0 {
			e.candidate = noCandidate
		}
		return false
	}
	return int(e.counter) >= threshold
}

// ResetCounter clears the group's competing counter.
func (t *Table) ResetCounter(g addr.Group) {
	e := &t.entries[g]
	e.counter = 0
	e.candidate = noCandidate
}

// --- statistics / invariants --------------------------------------------

// CacheModeGroups counts groups currently operating in cache mode.
func (t *Table) CacheModeGroups() (n uint32) {
	for i := range t.entries {
		if t.entries[i].flags&flagCacheMode != 0 {
			n++
		}
	}
	return n
}

// CheckInvariants validates the structural invariants of every group:
// perm is a permutation of the ways; in cache mode the slot-0 resident
// is unallocated; a valid cache tag implies cache mode and names an
// allocated way not resident in slot 0. It returns the first violation
// found.
func (t *Table) CheckInvariants() error {
	for i := range t.entries {
		e := &t.entries[i]
		var seen uint16
		for s := 0; s < t.ways; s++ {
			w := e.residentAt(addr.Way(s))
			if int(w) >= t.ways {
				return fmt.Errorf("srrt: group %d slot %d holds invalid way %d", i, s, w)
			}
			if seen&(1<<w) != 0 {
				return fmt.Errorf("srrt: group %d way %d resident in two slots", i, w)
			}
			seen |= 1 << w
		}
		if e.flags&flagCacheMode != 0 {
			if res := e.residentAt(0); e.abv&(1<<res) != 0 {
				return fmt.Errorf("srrt: group %d in cache mode but slot-0 resident way %d is allocated", i, res)
			}
		}
		if e.flags&flagCacheValid != 0 {
			if e.flags&flagCacheMode == 0 {
				return fmt.Errorf("srrt: group %d has a cache tag but is in PoM mode", i)
			}
			if e.cacheWay == uint8(e.residentAt(0)) {
				return fmt.Errorf("srrt: group %d caches the slot-0 resident itself", i)
			}
			if int(e.cacheWay) >= t.ways {
				return fmt.Errorf("srrt: group %d cache tag names invalid way %d", i, e.cacheWay)
			}
		}
	}
	return nil
}

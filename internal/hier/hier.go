// Package hier implements the composable cache-hierarchy pipeline: an
// ordered stack of set-associative levels built from configuration,
// with one entry point that owns the walk, the latency accounting and
// the cascaded dirty-victim writebacks that used to be hand-rolled for
// a fixed L1/L2/L3 stack inside the simulator.
//
// # Level model
//
// A Hierarchy is constructed from []config.CacheLevelConfig, ordered
// from the core outward. Each level is either private (one cache
// instance per core) or shared (a single instance all cores hit).
// LatencyCycles is the cumulative hit latency from the core; the walk
// charges the delta over the previous level before probing each level,
// and the first level's latency is never charged — it is assumed hidden
// by the core model's BaseCPI, matching the inline walk this package
// replaced. The deltas are hoisted at construction so Access performs
// no per-level arithmetic beyond one addition.
//
// # Writeback semantics
//
// A miss that evicts a dirty line cascades the victim into the next
// level down as a write, repeating while the fills keep evicting dirty
// lines; a dirty victim leaving the last level is returned to the
// caller (stamped with the walk time at which it spilled) for the
// memory system to absorb. Writebacks are modelled as FREE in core
// time: evictions are off the load's critical path and are absorbed by
// write buffers in real hardware, so no stall cycles are charged for
// the cascade — but the spilled victims still reach the memory
// controller, where they reserve bank and bus occupancy and so degrade
// demand-access latency under bandwidth pressure. That occupancy-only
// model is pinned by TestWritebackCascadeIsFreeOfCoreTime.
package hier

import (
	"fmt"

	"chameleon/internal/cache"
	"chameleon/internal/config"
	"chameleon/internal/stats"
)

// Victim is a dirty line that spilled out of the last cache level and
// must be written back to memory.
type Victim struct {
	// Addr is the base address of the spilled line.
	Addr uint64
	// Now is the core-local time at which the writeback issues: the
	// walk time accumulated up to the level whose eviction started the
	// cascade.
	Now uint64
}

// level is one constructed hierarchy level.
type level struct {
	name   string
	delta  uint64 // latency charged before probing this level, hoisted
	shared bool
	caches []*cache.Cache // one entry when shared, else one per core
}

func (l *level) cache(core int) *cache.Cache {
	if l.shared {
		return l.caches[0]
	}
	return l.caches[core]
}

// SharedOp is one deferred shared-phase interaction produced by a
// private-prefix walk (AccessPrivate): either a dirty-victim cascade
// entering the first shared level, or the demand reference continuing
// past the private levels. Ops are recorded in walk order and must be
// replayed in that order by AccessShared for the split walk to be
// bit-identical to Access.
type SharedOp struct {
	// Addr is the cascading victim's address, or the demand physical
	// address when Demand is set.
	Addr uint64
	// At is the absolute time the victim cascade issues (the walk time
	// at the private level whose eviction started it). Unused for the
	// demand op, whose latency accounting continues from the private
	// stall.
	At uint64
	// Demand marks the demand-reference continuation; it is always the
	// last op of a walk, if present.
	Demand bool
}

// Hierarchy is a constructed cache stack for a fixed set of cores. It
// is not safe for concurrent use as a whole: the simulator advances one
// core at a time, and the victim buffer returned by Access is reused.
// The split walk (AccessPrivate/AccessShared) relaxes this: private
// levels of distinct cores may be walked concurrently, as long as the
// shared phase stays on a single goroutine (see the parallel engine in
// internal/sim).
type Hierarchy struct {
	levels  []level
	victims []Victim // scratch reused across Access/AccessShared calls
	ops     []SharedOp
	// firstShared is the index of the first shared level: levels before
	// it are the core-private prefix AccessPrivate walks, levels from it
	// on (even private ones in unusual configurations) belong to the
	// shared phase. Equal to len(levels) when every level is private.
	firstShared int
}

// New builds the hierarchy for the given core count. Private levels get
// one cache instance per core; shared levels one in total.
func New(levels []config.CacheLevelConfig, cores int) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("hier: at least one cache level is required")
	}
	if cores <= 0 {
		return nil, fmt.Errorf("hier: core count must be positive, got %d", cores)
	}
	h := &Hierarchy{levels: make([]level, len(levels))}
	var prev uint64
	for i, lc := range levels {
		// delta[0] = 0 (the first level's latency hides under BaseCPI),
		// delta[1] = lat[1], delta[i] = lat[i] - lat[i-1] beyond.
		var delta uint64
		if i > 0 {
			if lc.LatencyCycles < prev {
				return nil, fmt.Errorf("hier: level %s latency %d below the previous level's %d",
					lc.Name, lc.LatencyCycles, prev)
			}
			delta = lc.LatencyCycles - prev
			if i == 1 {
				delta = lc.LatencyCycles
			}
		}
		n := cores
		if lc.Shared {
			n = 1
		}
		caches := make([]*cache.Cache, n)
		for j := range caches {
			c, err := cache.New(lc.Name, lc.SizeBytes, lc.Ways, lc.LineBytes)
			if err != nil {
				return nil, fmt.Errorf("hier: %w", err)
			}
			caches[j] = c
		}
		h.levels[i] = level{name: lc.Name, delta: delta, shared: lc.Shared, caches: caches}
		prev = lc.LatencyCycles
	}
	h.firstShared = len(h.levels)
	for i := range h.levels {
		if h.levels[i].shared {
			h.firstShared = i
			break
		}
	}
	return h, nil
}

// PrivateLevels returns the length of the core-private prefix: the
// number of leading levels before the first shared one. AccessPrivate
// walks exactly these levels.
func (h *Hierarchy) PrivateLevels() int { return h.firstShared }

// MaxOpsPerWalk bounds how many SharedOps one AccessPrivate call can
// append: one victim cascade per private level plus the demand
// continuation. Callers size their reusable op buffers with it.
func (h *Hierarchy) MaxOpsPerWalk() int { return h.firstShared + 1 }

// Access walks the hierarchy for one reference by core to phys at local
// time now. It returns the stall cycles the walk adds to the core clock
// (the cumulative latency down to the hit level, or to the LLC on a
// full miss), whether the reference missed every level, and the dirty
// victims that spilled past the last level. The victims slice is reused
// by the next Access call; consume it before walking again.
func (h *Hierarchy) Access(core int, phys uint64, write bool, now uint64) (stall uint64, llcMiss bool, victims []Victim) {
	var hit bool
	stall, hit, h.ops = h.AccessPrivate(core, phys, write, now, h.ops[:0])
	if hit && len(h.ops) == 0 {
		h.victims = h.victims[:0]
		return stall, false, h.victims
	}
	return h.AccessShared(core, write, h.ops, stall, now)
}

// AccessPrivate walks the core-private prefix (levels before the first
// shared one) for one reference. It returns the stall accrued so far,
// whether the demand reference hit in a private level, and ops extended
// with the walk's deferred shared-phase interactions (dirty-victim
// cascades that crossed into the shared levels, then — on a full
// private miss — the demand continuation). A hit with no ops means the
// step never touches shared state. ops entries alias no hierarchy
// storage; distinct cores may walk their private prefixes concurrently
// provided each passes its own buffer.
func (h *Hierarchy) AccessPrivate(core int, phys uint64, write bool, now uint64, ops []SharedOp) (stall uint64, hit bool, out []SharedOp) {
	for i := 0; i < h.firstShared; i++ {
		lv := &h.levels[i]
		stall += lv.delta
		hit, v, hv := lv.caches[core].Access(phys, write && i == 0)
		if hit {
			return stall, true, ops
		}
		if hv && v.Dirty {
			ops = h.spillPrivate(core, v.Addr, i+1, now+stall, ops)
		}
	}
	return stall, false, append(ops, SharedOp{Addr: phys, Demand: true})
}

// spillPrivate cascades a dirty victim through the remaining private
// levels; a victim surviving past the private prefix is recorded as a
// deferred shared op carrying the originating walk time (the cascade
// charges no core time, so every hop keeps now — see spill).
func (h *Hierarchy) spillPrivate(core int, addr uint64, from int, now uint64, ops []SharedOp) []SharedOp {
	for i := from; i < h.firstShared; i++ {
		hit, v, hv := h.levels[i].caches[core].Access(addr, true)
		if hit || !hv || !v.Dirty {
			return ops
		}
		addr = v.Addr
	}
	return append(ops, SharedOp{Addr: addr, At: now})
}

// AccessShared replays a private walk's deferred ops against the shared
// phase of the hierarchy (levels from the first shared one on), in
// recorded order: victim cascades first, then the demand continuation.
// stall continues from AccessPrivate's return; the composition
// AccessPrivate + AccessShared is bit-identical to Access, which is
// implemented as exactly that composition. Like Access, it reuses the
// hierarchy's victim buffer and must stay on one goroutine.
func (h *Hierarchy) AccessShared(core int, write bool, ops []SharedOp, stall uint64, now uint64) (stall2 uint64, llcMiss bool, victims []Victim) {
	h.victims = h.victims[:0]
	for _, op := range ops {
		if !op.Demand {
			h.spill(core, op.Addr, h.firstShared, op.At)
			continue
		}
		for i := h.firstShared; i < len(h.levels); i++ {
			lv := &h.levels[i]
			stall += lv.delta
			hit, v, hv := lv.cache(core).Access(op.Addr, write && i == 0)
			if hit {
				return stall, false, h.victims
			}
			if hv && v.Dirty {
				h.spill(core, v.Addr, i+1, now+stall)
			}
		}
		llcMiss = true
	}
	return stall, llcMiss, h.victims
}

// spill cascades a dirty victim into level from and deeper: each fill
// that evicts another dirty line continues the cascade, and a dirty
// line leaving the last level is recorded for the memory system. The
// cascade charges no core time (see the package comment), so every hop
// carries the originating walk time now.
func (h *Hierarchy) spill(core int, addr uint64, from int, now uint64) {
	for i := from; i < len(h.levels); i++ {
		hit, v, hv := h.levels[i].cache(core).Access(addr, true)
		if hit || !hv || !v.Dirty {
			return
		}
		addr = v.Addr
	}
	h.victims = append(h.victims, Victim{Addr: addr, Now: now})
}

// NumLevels returns the hierarchy depth.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// LevelName returns level i's configured name.
func (h *Hierarchy) LevelName(i int) string { return h.levels[i].name }

// Cache exposes the underlying cache of one level for one core (the
// core index is ignored for shared levels). It exists for tests and the
// simulator's inline reference walk.
func (h *Hierarchy) Cache(level, core int) *cache.Cache {
	return h.levels[level].cache(core)
}

// LevelStats returns level i's statistics aggregated across cores
// (private levels sum their per-core instances).
func (h *Hierarchy) LevelStats(i int) cache.Stats {
	var sum cache.Stats
	for _, c := range h.levels[i].caches {
		s := c.Stats()
		sum.Accesses += s.Accesses
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Writebacks += s.Writebacks
	}
	return sum
}

// ResetStats clears every level's statistics without flushing contents.
func (h *Hierarchy) ResetStats() {
	for _, lv := range h.levels {
		for _, c := range lv.caches {
			c.ResetStats()
		}
	}
}

// Sources returns one stats.Source per level, aggregated across cores,
// named after the level. Snapshots are taken lazily at call time.
func (h *Hierarchy) Sources() []stats.Source {
	out := make([]stats.Source, len(h.levels))
	for i := range h.levels {
		out[i] = levelSource{h: h, i: i}
	}
	return out
}

type levelSource struct {
	h *Hierarchy
	i int
}

func (s levelSource) Name() string             { return s.h.levels[s.i].name }
func (s levelSource) Snapshot() stats.Snapshot { return s.h.LevelStats(s.i).Snapshot() }

package hier

import (
	"testing"

	"chameleon/internal/config"
)

// threeLevels is a small private/private/shared stack with the seed's
// latencies (4, 12, 38) and one 64 B line per L1/L2 set, so evictions
// are easy to force.
func threeLevels() []config.CacheLevelConfig {
	return []config.CacheLevelConfig{
		{Name: "L1", SizeBytes: 64, Ways: 1, LineBytes: 64, LatencyCycles: 4},
		{Name: "L2", SizeBytes: 64, Ways: 1, LineBytes: 64, LatencyCycles: 12},
		{Name: "L3", SizeBytes: 128, Ways: 1, LineBytes: 64, LatencyCycles: 38, Shared: true},
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("empty level list accepted")
	}
	if _, err := New(threeLevels(), 0); err == nil {
		t.Error("zero cores accepted")
	}
	bad := threeLevels()
	bad[2].LatencyCycles = 1 // below L2's 12
	if _, err := New(bad, 1); err == nil {
		t.Error("decreasing latency accepted")
	}
	bad = threeLevels()
	bad[1].Ways = 0
	if _, err := New(bad, 1); err == nil {
		t.Error("invalid cache geometry accepted")
	}
}

// TestLatencyDeltas: the walk charges the cumulative configured latency
// down to the level that hits — except the first level, whose latency
// hides under the core model — and the full LLC latency on a miss. The
// geometry widens per level (1/2/4 sets) so each level can hold lines
// the one above it evicted.
func TestLatencyDeltas(t *testing.T) {
	h, err := New([]config.CacheLevelConfig{
		{Name: "L1", SizeBytes: 64, Ways: 1, LineBytes: 64, LatencyCycles: 4},
		{Name: "L2", SizeBytes: 128, Ways: 1, LineBytes: 64, LatencyCycles: 12},
		{Name: "L3", SizeBytes: 256, Ways: 1, LineBytes: 64, LatencyCycles: 38, Shared: true},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cold miss walks every level: stall = L3's cumulative 38.
	stall, miss, _ := h.Access(0, 0, false, 0)
	if stall != 38 || !miss {
		t.Errorf("cold miss: stall %d miss %v, want 38 true", stall, miss)
	}
	// Now resident everywhere; an L1 hit costs nothing.
	stall, miss, _ = h.Access(0, 0, false, 10)
	if stall != 0 || miss {
		t.Errorf("L1 hit: stall %d miss %v, want 0 false", stall, miss)
	}
	// Line 64 evicts 0 from the single-set L1 but lands in L2/L3's other
	// sets, leaving their copies of line 0 in place.
	if _, miss, _ := h.Access(0, 64, false, 20); !miss {
		t.Error("expected cold miss on line 64")
	}
	// Line 0 misses L1, hits L2: the full L2 latency is charged, not a
	// delta over L1's hidden 4 cycles.
	stall, miss, _ = h.Access(0, 0, false, 30)
	if stall != 12 || miss {
		t.Errorf("L2 hit: stall %d miss %v, want 12 false", stall, miss)
	}
	// Line 128 aliases line 0 in L1 and L2 but sits in L3 set 2, so after
	// it passes through, line 0 survives only in the LLC.
	if _, miss, _ := h.Access(0, 128, false, 40); !miss {
		t.Error("expected cold miss on line 128")
	}
	stall, miss, _ = h.Access(0, 0, false, 50)
	if stall != 38 || miss {
		t.Errorf("L3 hit: stall %d miss %v, want 38 false", stall, miss)
	}
}

// TestPrivateVsShared: private levels isolate cores; a shared LLC is
// one cache they all hit.
func TestPrivateVsShared(t *testing.T) {
	h, err := New(threeLevels(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, miss, _ := h.Access(0, 0, false, 0); !miss {
		t.Error("cold miss expected for core 0")
	}
	// Core 1's private L1/L2 are cold, but the shared LLC has the line.
	stall, miss, _ := h.Access(1, 0, false, 0)
	if miss || stall != 38 {
		t.Errorf("core 1: stall %d miss %v, want LLC hit at 38", stall, miss)
	}
	if h.Cache(0, 0) == h.Cache(0, 1) {
		t.Error("private level shared between cores")
	}
	if h.Cache(2, 0) != h.Cache(2, 1) {
		t.Error("shared level not shared")
	}
}

// TestWritebackCascadeIsFreeOfCoreTime pins the writeback model the
// package documents: dirty-victim cascades — all the way to a spill
// past the LLC — charge the core NOTHING beyond the plain walk latency.
// The spilled victims reach the caller stamped with the walk time at
// which they left the stack, so the memory system still pays occupancy.
func TestWritebackCascadeIsFreeOfCoreTime(t *testing.T) {
	h, err := New(threeLevels(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the line everywhere reachable, then evict it repeatedly.
	if stall, _, v := h.Access(0, 0, true, 100); stall != 38 || len(v) != 0 {
		t.Fatalf("cold write: stall %d victims %d", stall, len(v))
	}
	// Write line 64: L1 evicts dirty 0 (absorbed by L2's copy), L2
	// evicts dirty 0 (absorbed by L3's copy), L3 fills 64 into its
	// second set. No spill yet; stall is the plain miss latency.
	stall, miss, victims := h.Access(0, 64, true, 200)
	if stall != 38 || !miss || len(victims) != 0 {
		t.Fatalf("second write: stall %d miss %v victims %d, want 38 true 0", stall, miss, len(victims))
	}
	// Write line 128: it aliases line 0 in every level, so the dirty
	// line 0 is finally pushed out of the LLC to memory. The stall must
	// STILL be exactly 38 — the cascade and the memory writeback are
	// free in core time — and the victim carries the walk time the LLC
	// evicted it (now + 38).
	stall, miss, victims = h.Access(0, 128, true, 300)
	if stall != 38 || !miss {
		t.Errorf("cascading write: stall %d miss %v, want 38 true (writebacks charge no core time)", stall, miss)
	}
	if len(victims) != 1 || victims[0].Addr != 0 || victims[0].Now != 338 {
		t.Errorf("victims = %+v, want [{Addr:0 Now:338}]", victims)
	}
}

// TestSingleLevelSpill: a one-level hierarchy spills straight to
// memory, with zero stall (the first level's latency is hidden) and the
// victim stamped at the access time itself.
func TestSingleLevelSpill(t *testing.T) {
	h, err := New([]config.CacheLevelConfig{
		{Name: "LLC", SizeBytes: 64, Ways: 1, LineBytes: 64, LatencyCycles: 7},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stall, _, v := h.Access(0, 0, true, 10); stall != 0 || len(v) != 0 {
		t.Fatalf("cold write: stall %d victims %d, want 0 0", stall, len(v))
	}
	stall, miss, victims := h.Access(0, 64, false, 20)
	if stall != 0 || !miss {
		t.Errorf("conflict read: stall %d miss %v, want 0 true", stall, miss)
	}
	if len(victims) != 1 || victims[0].Addr != 0 || victims[0].Now != 20 {
		t.Errorf("victims = %+v, want [{Addr:0 Now:20}]", victims)
	}
}

// TestStatsAggregation: LevelStats sums private instances across cores;
// Sources exposes the same numbers under the level names.
func TestStatsAggregation(t *testing.T) {
	h, err := New(threeLevels(), 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0, false, 0)
	h.Access(1, 0, false, 0)
	l1 := h.LevelStats(0)
	if l1.Accesses != 2 || l1.Misses != 2 {
		t.Errorf("L1 aggregate = %+v, want 2 accesses 2 misses", l1)
	}
	llc := h.LevelStats(2)
	if llc.Accesses != 2 || llc.Hits != 1 || llc.Misses != 1 {
		t.Errorf("LLC aggregate = %+v, want 2 accesses 1 hit 1 miss", llc)
	}
	srcs := h.Sources()
	if len(srcs) != 3 || srcs[0].Name() != "L1" || srcs[2].Name() != "L3" {
		t.Fatalf("sources misnamed: %v", srcs)
	}
	if got := srcs[2].Snapshot()["hits"]; got != 1 {
		t.Errorf("LLC source hits = %v, want 1", got)
	}
	h.ResetStats()
	if s := h.LevelStats(0); s != (h.LevelStats(1)) || s.Accesses != 0 {
		t.Errorf("ResetStats left counters: %+v", s)
	}
}

// TestAccessDoesNotAllocate: the walk must stay allocation-free once
// the victim scratch buffer has grown (the hot path of every simulated
// reference).
func TestAccessDoesNotAllocate(t *testing.T) {
	h, err := New(threeLevels(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch buffer with a spilling access pattern.
	for i := uint64(0); i < 16; i++ {
		h.Access(0, i*64, true, i)
	}
	var n uint64
	got := testing.AllocsPerRun(200, func() {
		h.Access(0, n*64%1024, true, n)
		n++
	})
	if got != 0 {
		t.Errorf("Access allocates %v times per call, want 0", got)
	}
}

// TestSplitWalkEquivalence: driving one hierarchy through the
// monolithic Access and a twin through the explicit
// AccessPrivate → AccessShared split (the parallel engine's usage,
// skipping the shared phase when a private hit produced no deferred
// ops) must agree step for step — stall, llcMiss, every victim — and
// leave identical per-level statistics. Single-line sets make dirty
// cascades constant, so the deferred-op ordering is exercised hard.
func TestSplitWalkEquivalence(t *testing.T) {
	const cores = 3
	mono, err := New(threeLevels(), cores)
	if err != nil {
		t.Fatal(err)
	}
	split, err := New(threeLevels(), cores)
	if err != nil {
		t.Fatal(err)
	}
	if split.PrivateLevels() != 2 {
		t.Fatalf("PrivateLevels = %d, want 2", split.PrivateLevels())
	}
	ops := make([]SharedOp, 0, split.MaxOpsPerWalk())
	var lcg uint64 = 99
	for step := 0; step < 20000; step++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		core := int(lcg>>33) % cores
		addr := ((lcg >> 17) % 2048) &^ 63 // 32 lines: heavy conflict traffic
		write := lcg>>62 == 0
		now := uint64(step) * 3

		wantStall, wantMiss, wantVictims := mono.Access(core, addr, write, now)

		var hit bool
		var stall uint64
		stall, hit, ops = split.AccessPrivate(core, addr, write, now, ops[:0])
		var miss bool
		var victims []Victim
		if hit && len(ops) == 0 {
			miss, victims = false, nil
		} else {
			stall, miss, victims = split.AccessShared(core, write, ops, stall, now)
		}

		if stall != wantStall || miss != wantMiss || len(victims) != len(wantVictims) {
			t.Fatalf("step %d: split (stall %d miss %v victims %d) != mono (stall %d miss %v victims %d)",
				step, stall, miss, len(victims), wantStall, wantMiss, len(wantVictims))
		}
		for i := range victims {
			if victims[i] != wantVictims[i] {
				t.Fatalf("step %d victim %d: split %+v != mono %+v", step, i, victims[i], wantVictims[i])
			}
		}
	}
	for i := 0; i < mono.NumLevels(); i++ {
		if mono.LevelStats(i) != split.LevelStats(i) {
			t.Errorf("level %d stats diverged: mono %+v split %+v", i, mono.LevelStats(i), split.LevelStats(i))
		}
	}
}

// BenchmarkHierarchy measures the raw pipelined walk on the default
// three-level stack: a write-heavy strided sweep with a hot subset, so
// hits, misses and dirty cascades all appear. The per-access cost here
// is the budget the composable pipeline must hold against the inlined
// walk it replaced (see BenchmarkStep in internal/sim for the
// end-to-end gate).
func BenchmarkHierarchy(b *testing.B) {
	levels := config.Default(512).CacheLevels
	const cores = 12
	h, err := New(levels, cores)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var lcg uint64 = 1
	for i := 0; i < b.N; i++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		addr := (lcg >> 20) % (64 << 20) // 64 MB span: misses dominate
		if i%4 == 0 {
			addr %= 16 << 10 // hot 16 KB: L1 hits
		}
		h.Access(i%cores, addr&^63, i%3 == 0, uint64(i))
	}
}

package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// NodeState is a member's health as seen by the local node.
type NodeState string

// Member health states. Alive nodes own ring segments; suspect nodes
// keep their segments (benefit of the doubt) until the suspicion
// timeout promotes them to dead; dead nodes are dropped from the ring
// and eventually evicted from the peer list entirely.
const (
	StateAlive   NodeState = "alive"
	StateSuspect NodeState = "suspect"
	StateDead    NodeState = "dead"
)

// rank orders states for same-incarnation merges: worse news wins, so
// a death observed anywhere propagates everywhere.
func (s NodeState) rank() int {
	switch s {
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	default:
		return 0
	}
}

// Node is one cluster member on the wire. Incarnation is a per-node
// logical clock bumped only by the node itself (to refute rumours of
// its death); for a given incarnation the worst observed state wins.
type Node struct {
	ID          string    `json:"id"`
	Addr        string    `json:"addr"` // advertised base URL, e.g. http://10.0.0.1:8080
	Incarnation uint64    `json:"incarnation"`
	State       NodeState `json:"state"`
}

// Digest is the gossip wire format: the sender's identity plus its
// full versioned peer list (chamd clusters are small, so the digest
// is the whole view — no delta encoding needed).
type Digest struct {
	From  Node   `json:"from"`
	Nodes []Node `json:"nodes"`
}

// MembershipOptions configure a Membership.
type MembershipOptions struct {
	// Self identifies the local node (ID and Addr required).
	Self Node
	// Seeds are peer base URLs to contact before any IDs are known.
	Seeds []string
	// GossipInterval is the background exchange period (default 1s).
	GossipInterval time.Duration
	// SuspicionTimeout promotes suspect → dead (default 5×interval).
	SuspicionTimeout time.Duration
	// EvictTimeout removes dead entries from the view entirely
	// (default 10×suspicion), bounding resurrection-by-stale-gossip.
	EvictTimeout time.Duration
	// Client performs gossip exchanges (default: 2s-timeout client).
	Client *http.Client
	// Now supplies the clock (default time.Now); tests inject a fake
	// clock to drive suspicion/eviction deterministically.
	Now func() time.Time
	// OnChange is invoked (synchronously, without locks held) whenever
	// the set of ring-eligible nodes changes.
	OnChange func()
	// Logf, if set, receives membership transitions.
	Logf func(format string, args ...any)
}

func (o MembershipOptions) withDefaults() MembershipOptions {
	if o.GossipInterval <= 0 {
		o.GossipInterval = time.Second
	}
	if o.SuspicionTimeout <= 0 {
		o.SuspicionTimeout = 5 * o.GossipInterval
	}
	if o.EvictTimeout <= 0 {
		o.EvictTimeout = 10 * o.SuspicionTimeout
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Membership maintains the local node's converged view of the
// cluster via push/pull gossip: each round the node sends its full
// versioned peer list to one random peer and merges the reply.
// Failed exchanges mark the target suspect; Tick promotes suspects to
// dead after the suspicion timeout and evicts long-dead entries.
type Membership struct {
	opts MembershipOptions

	mu    sync.Mutex
	self  Node                  // State always alive; Incarnation bumps on refute
	peers map[string]*peerEntry // by node ID, self excluded
	seeds []string              // addrs not yet matched to a known peer
	rnd   *rand.Rand

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type peerEntry struct {
	Node
	since time.Time // local time the current state was observed
}

// NewMembership builds a membership view seeded with opts.Seeds. No
// background goroutine runs until Start.
func NewMembership(opts MembershipOptions) *Membership {
	opts = opts.withDefaults()
	opts.Self.State = StateAlive
	m := &Membership{
		opts:  opts,
		self:  opts.Self,
		peers: make(map[string]*peerEntry),
		rnd:   rand.New(rand.NewSource(int64(ringHash(opts.Self.ID)) ^ time.Now().UnixNano())),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, s := range opts.Seeds {
		if s = strings.TrimRight(s, "/"); s != "" && s != opts.Self.Addr {
			m.seeds = append(m.seeds, s)
		}
	}
	return m
}

// Self returns the local node's current identity (alive, current
// incarnation).
func (m *Membership) Self() Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self
}

// Members returns every known node including self, sorted by ID.
func (m *Membership) Members() []Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Node, 0, len(m.peers)+1)
	out = append(out, m.self)
	for _, p := range m.peers {
		out = append(out, p.Node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RingMembers returns the ring-eligible nodes (self plus every peer
// not yet declared dead), sorted by ID. Suspects keep their segments
// until the suspicion timeout expires so a single dropped packet does
// not reshuffle ownership.
func (m *Membership) RingMembers() []Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.ringMembersLocked()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (m *Membership) ringMembersLocked() []Node {
	out := make([]Node, 0, len(m.peers)+1)
	out = append(out, m.self)
	for _, p := range m.peers {
		if p.State != StateDead {
			out = append(out, p.Node)
		}
	}
	return out
}

// Lookup returns the current view of a node by ID.
func (m *Membership) Lookup(id string) (Node, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.self.ID {
		return m.self, true
	}
	if p, ok := m.peers[id]; ok {
		return p.Node, true
	}
	return Node{}, false
}

// Alive reports whether a node is ring-eligible (self, or a known
// peer not declared dead).
func (m *Membership) Alive(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.self.ID {
		return true
	}
	p, ok := m.peers[id]
	return ok && p.State != StateDead
}

// snapshotLocked renders the digest node list: self plus all peers.
func (m *Membership) snapshotLocked() []Node {
	out := make([]Node, 0, len(m.peers)+1)
	out = append(out, m.self)
	for _, p := range m.peers {
		out = append(out, p.Node)
	}
	return out
}

// Digest returns the local view in wire form.
func (m *Membership) Digest() Digest {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Digest{From: m.self, Nodes: m.snapshotLocked()}
}

// HandleGossip merges a peer's pushed view and returns the local view
// for the pull half of the exchange. The sender itself is folded in
// as alive: it just proved liveness by reaching us.
func (m *Membership) HandleGossip(d Digest) Digest {
	from := d.From
	from.State = StateAlive
	nodes := append([]Node{from}, d.Nodes...)
	m.merge(nodes)
	return m.Digest()
}

// merge folds remote observations into the local view, returning
// through OnChange when the ring-eligible set changed. Merge rules:
// higher incarnation wins outright; equal incarnations take the worse
// state; rumours about self are refuted by bumping our incarnation.
func (m *Membership) merge(nodes []Node) {
	m.mu.Lock()
	before := ringKeyLocked(m.ringMembersLocked())
	now := m.opts.Now()
	for _, rn := range nodes {
		if rn.ID == "" || rn.ID == m.self.ID {
			// Gossip about us: anything but alive at our incarnation (or
			// later) is a rumour of our death — refute it by outliving it.
			if rn.ID == m.self.ID && rn.State != StateAlive && rn.Incarnation >= m.self.Incarnation {
				m.self.Incarnation = rn.Incarnation + 1
				m.opts.Logf("cluster: refuting %s rumour, incarnation now %d", rn.State, m.self.Incarnation)
			}
			continue
		}
		cur, ok := m.peers[rn.ID]
		switch {
		case !ok:
			m.peers[rn.ID] = &peerEntry{Node: rn, since: now}
			m.opts.Logf("cluster: learned %s (%s) %s inc=%d", rn.ID, rn.Addr, rn.State, rn.Incarnation)
		case rn.Incarnation > cur.Incarnation,
			rn.Incarnation == cur.Incarnation && rn.State.rank() > cur.State.rank():
			if cur.State != rn.State {
				m.opts.Logf("cluster: %s %s -> %s (inc %d -> %d)", rn.ID, cur.State, rn.State, cur.Incarnation, rn.Incarnation)
			}
			cur.Node = rn
			cur.since = now
		}
		// A resolved seed no longer needs blind contact.
		m.dropSeedLocked(rn.Addr)
	}
	after := ringKeyLocked(m.ringMembersLocked())
	m.mu.Unlock()
	if before != after && m.opts.OnChange != nil {
		m.opts.OnChange()
	}
}

func (m *Membership) dropSeedLocked(addr string) {
	addr = strings.TrimRight(addr, "/")
	for i, s := range m.seeds {
		if s == addr {
			m.seeds = append(m.seeds[:i], m.seeds[i+1:]...)
			return
		}
	}
}

// ringKeyLocked canonicalizes a member set for change detection.
func ringKeyLocked(nodes []Node) string {
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID + "@" + n.Addr
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// MarkFailed records a failed direct exchange with a peer: alive
// becomes suspect at the peer's current incarnation. Gossip spreads
// the suspicion; the peer refutes it by bumping its incarnation.
func (m *Membership) MarkFailed(id string) {
	m.mu.Lock()
	p, ok := m.peers[id]
	if ok && p.State == StateAlive {
		p.State = StateSuspect
		p.since = m.opts.Now()
		m.opts.Logf("cluster: %s unreachable, now suspect", id)
	}
	m.mu.Unlock()
}

// Tick advances the failure-detection state machine at time now:
// suspects past the suspicion timeout become dead (triggering
// OnChange: ring ownership reconverges here), and dead entries past
// the evict timeout are forgotten.
func (m *Membership) Tick(now time.Time) {
	m.mu.Lock()
	before := ringKeyLocked(m.ringMembersLocked())
	for id, p := range m.peers {
		switch p.State {
		case StateSuspect:
			if now.Sub(p.since) >= m.opts.SuspicionTimeout {
				p.State = StateDead
				p.since = now
				m.opts.Logf("cluster: %s suspicion expired, now dead", id)
			}
		case StateDead:
			if now.Sub(p.since) >= m.opts.EvictTimeout {
				delete(m.peers, id)
				m.opts.Logf("cluster: %s evicted", id)
			}
		}
	}
	after := ringKeyLocked(m.ringMembersLocked())
	m.mu.Unlock()
	if before != after && m.opts.OnChange != nil {
		m.opts.OnChange()
	}
}

// gossipTarget picks one random exchange partner: a non-dead peer or
// an unresolved seed address. Returns ("", "") when there is no one
// to talk to.
func (m *Membership) gossipTarget() (id, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	type cand struct{ id, addr string }
	var cands []cand
	for _, p := range m.peers {
		if p.State != StateDead && p.Addr != "" {
			cands = append(cands, cand{p.ID, p.Addr})
		}
	}
	for _, s := range m.seeds {
		cands = append(cands, cand{"", s})
	}
	if len(cands) == 0 {
		return "", ""
	}
	// Sort for determinism before the seeded random pick (map order
	// above is randomized by the runtime).
	sort.Slice(cands, func(i, j int) bool { return cands[i].addr < cands[j].addr })
	c := cands[m.rnd.Intn(len(cands))]
	return c.id, c.addr
}

// GossipOnce performs one push/pull exchange with a random partner.
// Unreachable known peers are marked suspect. A round with no
// available partner is a no-op.
func (m *Membership) GossipOnce(ctx context.Context) error {
	id, addr := m.gossipTarget()
	if addr == "" {
		return nil
	}
	var reply Digest
	err := DoJSON(ctx, m.opts.Client, http.MethodPost, addr+GossipPath, m.Digest(), &reply)
	if err != nil {
		if id != "" {
			m.MarkFailed(id)
		}
		return fmt.Errorf("cluster: gossip with %s: %w", addr, err)
	}
	from := reply.From
	from.State = StateAlive
	m.merge(append([]Node{from}, reply.Nodes...))
	return nil
}

// Start launches the background gossip loop: every interval, one
// exchange plus one failure-detection tick. Stop ends it.
func (m *Membership) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.opts.GossipInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), m.opts.GossipInterval)
				if err := m.GossipOnce(ctx); err != nil {
					m.opts.Logf("%v", err)
				}
				cancel()
				m.Tick(m.opts.Now())
			}
		}
	}()
}

// Stop terminates the background loop started by Start and waits for
// it to exit. Safe to call more than once; a Membership that was
// never started must not be stopped.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing(64, []string{"n1", "n2", "n3"})
	if r.Len() != 3 {
		t.Fatalf("ring has %d nodes, want 3", r.Len())
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("owners(%s) = %v, want 2 distinct", key, owners)
		}
		// Lookups are pure: same ring, same key, same owners.
		if again := r.Owners(key, 2); !reflect.DeepEqual(owners, again) {
			t.Fatalf("owners(%s) unstable: %v then %v", key, owners, again)
		}
	}
	if got := r.Owners("k", 99); len(got) != 3 {
		t.Fatalf("owners clamped = %v, want all 3 nodes", got)
	}
}

func TestRingIndependentOfInputOrderAndDuplicates(t *testing.T) {
	a := NewRing(32, []string{"n1", "n2", "n3"})
	b := NewRing(32, []string{"n3", "n1", "n2", "n1", ""})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner(%s) differs across construction orders: %s vs %s",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingMinimalReshuffle: removing one node must only move keys that
// node owned; keys owned by survivors stay put. This is the property
// that makes the cluster cache survive membership churn.
func TestRingMinimalReshuffle(t *testing.T) {
	full := NewRing(64, []string{"n1", "n2", "n3"})
	without := NewRing(64, []string{"n1", "n2"})
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), without.Owner(key)
		if before == "n3" {
			if after == "n3" {
				t.Fatalf("key %s still owned by removed node", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved from surviving node %s to %s", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(0, nodes) // default vnode count
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of keys (counts %v); virtual nodes not balancing", n, 100*share, counts)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if o := NewRing(8, nil).Owners("k", 2); o != nil {
		t.Fatalf("empty ring owners = %v, want nil", o)
	}
	if NewRing(8, nil).Owner("k") != "" {
		t.Fatal("empty ring owner should be empty")
	}
	one := NewRing(8, []string{"solo"})
	if got := one.Owners("k", 2); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-node owners = %v", got)
	}
}

// Package cluster is a stdlib-only (raft-free) clustering layer for
// chamd: versioned push/pull gossip membership over HTTP, a
// consistent-hash ring with virtual nodes for routing content-
// addressed jobs to owners, and small JSON transport helpers the
// server builds its peer protocol (result-cache fill, work stealing)
// on top of. There is no coordinator: every node runs the same code
// and the ring is a pure function of the locally converged view.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node point count on the ring. 64
// points keeps ownership within a few percent of uniform for small
// clusters while rebuilds stay trivially cheap.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over node IDs. Build one
// with NewRing whenever membership changes; lookups are lock-free.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  []string    // distinct node IDs, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// ringHash maps an arbitrary string to a ring position. SHA-256 keeps
// placement independent of Go's per-process map/hash seeds, so every
// node computes identical ownership from an identical member list.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with vnodes virtual points per node (<=0
// takes DefaultVirtualNodes). Duplicate node IDs are collapsed.
func NewRing(vnodes int, nodes []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{vnodes: vnodes}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(n + "#" + strconv.Itoa(v)),
				node: n,
			})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the distinct node IDs on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Owners returns up to n distinct nodes responsible for key, walking
// clockwise from the key's position: the first entry is the owner,
// the rest are replicas. n is clamped to the node count.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		if node := r.points[i].node; !seen[node] {
			seen[node] = true
			out = append(out, node)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// Owner returns the single node responsible for key ("" on an empty
// ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source for suspicion/eviction.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testNode is one in-process gossip endpoint.
type testNode struct {
	c  *Cluster
	ts *httptest.Server
}

// newTestCluster wires n clusters together over httptest servers.
// Node i is seeded with node 0's address only (join-through-seed).
func newTestCluster(t *testing.T, n int, clock *fakeClock) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = &testNode{}
		node := nodes[i]
		mux := http.NewServeMux()
		mux.HandleFunc("POST "+GossipPath, func(w http.ResponseWriter, r *http.Request) {
			var d Digest
			if err := ReadJSON(w, r, &d, 1<<20); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			WriteJSON(w, http.StatusOK, node.c.HandleGossip(d))
		})
		node.ts = httptest.NewServer(mux)
		t.Cleanup(node.ts.Close)
	}
	for i := range nodes {
		var peers []string
		if i > 0 {
			peers = []string{nodes[0].ts.URL}
		}
		nodes[i].c = New(Config{
			NodeID:           nodeID(i),
			Addr:             nodes[i].ts.URL,
			Peers:            peers,
			GossipInterval:   10 * time.Millisecond,
			SuspicionTimeout: 50 * time.Millisecond,
			EvictTimeout:     200 * time.Millisecond,
			Now:              clock.Now,
			Logf:             t.Logf,
		})
	}
	return nodes
}

func nodeID(i int) string { return string(rune('a'+i)) + "-node" }

func converge(t *testing.T, nodes []*testNode, rounds int) {
	t.Helper()
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			if err := n.c.GossipOnce(ctx); err != nil {
				t.Logf("round %d: %v", r, err)
			}
		}
	}
}

func TestGossipJoinConverges(t *testing.T) {
	clock := newFakeClock()
	nodes := newTestCluster(t, 3, clock)
	converge(t, nodes, 6)
	for i, n := range nodes {
		members := n.c.Members()
		if len(members) != 3 {
			t.Fatalf("node %d sees %d members (%v), want 3", i, len(members), members)
		}
		for _, m := range members {
			if m.State != StateAlive {
				t.Fatalf("node %d sees %s as %s, want alive", i, m.ID, m.State)
			}
		}
		if n.c.Ring().Len() != 3 {
			t.Fatalf("node %d ring has %d nodes, want 3", i, n.c.Ring().Len())
		}
	}
	// Every node agrees on ownership for any key.
	for _, key := range []string{"k1", "k2", "k3", "k4"} {
		want := nodes[0].c.Ring().Owners(key, 2)
		for i := 1; i < len(nodes); i++ {
			got := nodes[i].c.Ring().Owners(key, 2)
			if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("ownership of %s disagrees: node0=%v node%d=%v", key, want, i, got)
			}
		}
	}
}

func TestFailureDetectionAndEviction(t *testing.T) {
	clock := newFakeClock()
	nodes := newTestCluster(t, 3, clock)
	converge(t, nodes, 6)

	// Kill node c (index 2): its HTTP endpoint goes away.
	dead := nodes[2]
	dead.ts.Close()

	ctx := context.Background()
	// Survivors gossip until one of them fails an exchange with the
	// dead node; failed exchanges mark it suspect, and gossip spreads
	// the suspicion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = nodes[0].c.GossipOnce(ctx)
		_ = nodes[1].c.GossipOnce(ctx)
		n0, _ := nodes[0].c.Membership().Lookup(nodeID(2))
		n1, _ := nodes[1].c.Membership().Lookup(nodeID(2))
		if n0.State == StateSuspect && n1.State == StateSuspect {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("suspicion never spread: node0 sees %s, node1 sees %s", n0.State, n1.State)
		}
	}
	// Suspects are still ring members (benefit of the doubt).
	if nodes[0].c.Ring().Len() != 3 {
		t.Fatalf("suspect evicted from ring early: %v", nodes[0].c.Ring().Nodes())
	}

	// Past the suspicion timeout the node is dead and off the ring.
	clock.Advance(60 * time.Millisecond)
	nodes[0].c.Tick(clock.Now())
	nodes[1].c.Tick(clock.Now())
	if got := nodes[0].c.Ring().Nodes(); len(got) != 2 {
		t.Fatalf("ring after death = %v, want 2 nodes", got)
	}
	if nodes[0].c.Alive(nodeID(2)) {
		t.Fatal("dead node still reported alive")
	}

	// Past the evict timeout the entry is forgotten entirely.
	clock.Advance(250 * time.Millisecond)
	nodes[0].c.Tick(clock.Now())
	if _, ok := nodes[0].c.Membership().Lookup(nodeID(2)); ok {
		t.Fatal("dead node not evicted from membership")
	}
}

func TestIncarnationRefutesDeathRumour(t *testing.T) {
	clock := newFakeClock()
	nodes := newTestCluster(t, 2, clock)
	converge(t, nodes, 4)

	// Node a hears a rumour that it is dead at its own incarnation.
	self := nodes[0].c.Self()
	nodes[0].c.HandleGossip(Digest{
		From:  nodes[1].c.Self(),
		Nodes: []Node{{ID: self.ID, Addr: self.Addr, Incarnation: self.Incarnation, State: StateDead}},
	})
	after := nodes[0].c.Self()
	if after.Incarnation <= self.Incarnation {
		t.Fatalf("incarnation did not bump on refutation: %d -> %d", self.Incarnation, after.Incarnation)
	}
	// The bumped incarnation overrides the stale death on other nodes.
	converge(t, nodes, 4)
	seen, ok := nodes[1].c.Membership().Lookup(self.ID)
	if !ok || seen.State != StateAlive || seen.Incarnation != after.Incarnation {
		t.Fatalf("peer still believes rumour: %+v (want alive inc=%d)", seen, after.Incarnation)
	}
}

func TestBackgroundLoopConverges(t *testing.T) {
	clock := newFakeClock()
	nodes := newTestCluster(t, 3, clock)
	for _, n := range nodes {
		n.c.Start()
		defer n.c.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if len(n.c.Members()) != 3 {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("background gossip never converged: %d/%d/%d members",
				len(nodes[0].c.Members()), len(nodes[1].c.Members()), len(nodes[2].c.Members()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

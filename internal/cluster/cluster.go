package cluster

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// Config assembles a Cluster.
type Config struct {
	// NodeID uniquely names this node in the cluster (required).
	NodeID string
	// Addr is the base URL peers reach this node at (required), e.g.
	// "http://10.0.0.1:8080".
	Addr string
	// Peers seed the membership with other nodes' base URLs.
	Peers []string
	// VirtualNodes per member on the ring (default DefaultVirtualNodes).
	VirtualNodes int
	// GossipInterval / SuspicionTimeout / EvictTimeout tune failure
	// detection (see MembershipOptions).
	GossipInterval   time.Duration
	SuspicionTimeout time.Duration
	EvictTimeout     time.Duration
	// Client is used for all peer HTTP (default 5s-timeout client).
	Client *http.Client
	// Now supplies the clock (default time.Now).
	Now func() time.Time
	// Logf, if set, receives membership transitions.
	Logf func(format string, args ...any)
}

// Cluster composes gossip membership with a consistent-hash ring kept
// in lockstep: whenever the ring-eligible member set changes, the
// ring is rebuilt and the registered OnChange hook fires (the server
// uses it to re-enqueue work owned by dead nodes).
type Cluster struct {
	cfg      Config
	mem      *Membership
	ring     atomic.Pointer[Ring]
	onChange atomic.Pointer[func()]
	started  atomic.Bool
}

// New builds a cluster view of one node plus its seed peers. No
// background goroutine runs until Start.
func New(cfg Config) *Cluster {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	c := &Cluster{cfg: cfg}
	c.mem = NewMembership(MembershipOptions{
		Self:             Node{ID: cfg.NodeID, Addr: cfg.Addr},
		Seeds:            cfg.Peers,
		GossipInterval:   cfg.GossipInterval,
		SuspicionTimeout: cfg.SuspicionTimeout,
		EvictTimeout:     cfg.EvictTimeout,
		Client:           cfg.Client,
		Now:              cfg.Now,
		Logf:             cfg.Logf,
		OnChange:         c.rebuild,
	})
	c.rebuild()
	return c
}

// rebuild recomputes the ring from the current ring-eligible members
// and notifies the server hook.
func (c *Cluster) rebuild() {
	members := c.mem.RingMembers()
	ids := make([]string, len(members))
	for i, n := range members {
		ids[i] = n.ID
	}
	c.ring.Store(NewRing(c.cfg.VirtualNodes, ids))
	if fn := c.onChange.Load(); fn != nil {
		(*fn)()
	}
}

// SetOnChange registers a hook fired after every ring rebuild.
func (c *Cluster) SetOnChange(fn func()) { c.onChange.Store(&fn) }

// Self returns the local node's identity.
func (c *Cluster) Self() Node { return c.mem.Self() }

// Membership exposes the underlying gossip state.
func (c *Cluster) Membership() *Membership { return c.mem }

// Ring returns the current consistent-hash ring (never nil).
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// HTTPClient returns the shared peer HTTP client.
func (c *Cluster) HTTPClient() *http.Client { return c.cfg.Client }

// Members returns every known node including self.
func (c *Cluster) Members() []Node { return c.mem.Members() }

// Alive reports whether a node is ring-eligible.
func (c *Cluster) Alive(id string) bool { return c.mem.Alive(id) }

// Owners resolves up to n distinct owner nodes for a key: the first
// is the ring owner, the rest replicas. Nodes that have vanished from
// the membership between ring build and lookup are skipped.
func (c *Cluster) Owners(key string, n int) []Node {
	ids := c.Ring().Owners(key, n)
	out := make([]Node, 0, len(ids))
	for _, id := range ids {
		if node, ok := c.mem.Lookup(id); ok {
			out = append(out, node)
		}
	}
	return out
}

// IsOwner reports whether the local node is among the first n owners
// of key.
func (c *Cluster) IsOwner(key string, n int) bool {
	self := c.mem.Self().ID
	for _, id := range c.Ring().Owners(key, n) {
		if id == self {
			return true
		}
	}
	return false
}

// HandleGossip serves the receiving half of a push/pull exchange.
func (c *Cluster) HandleGossip(d Digest) Digest { return c.mem.HandleGossip(d) }

// GossipOnce runs one push/pull exchange (see Membership.GossipOnce).
func (c *Cluster) GossipOnce(ctx context.Context) error { return c.mem.GossipOnce(ctx) }

// Tick advances failure detection at time now.
func (c *Cluster) Tick(now time.Time) { c.mem.Tick(now) }

// Start launches the background gossip loop.
func (c *Cluster) Start() {
	if c.started.CompareAndSwap(false, true) {
		c.mem.Start()
	}
}

// Stop halts the background loop, if one was started.
func (c *Cluster) Stop() {
	if c.started.Load() {
		c.mem.Stop()
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Peer-protocol paths served by a clustered chamd node. The server
// package registers the handlers; they live here so both sides of the
// wire agree on the URLs.
const (
	// GossipPath accepts a Digest POST and replies with the local view.
	GossipPath = "/v1/cluster/gossip"
	// MembersPath reports the local membership and ring (diagnostics).
	MembersPath = "/v1/cluster/members"
	// CachePath prefixed to a result hash serves GET (peer lookup) and
	// PUT (peer fill) of cached result bytes.
	CachePath = "/v1/cluster/cache/"
	// QueuePath lists this node's stealable queued jobs.
	QueuePath = "/v1/cluster/queue"
	// ClaimPath CAS-claims one queued job for a thief.
	ClaimPath = "/v1/cluster/claim"
	// CompletePath reports a stolen job's outcome back to its owner.
	CompletePath = "/v1/cluster/complete"
)

// ForwardedHeader is the single-hop loop guard: a submit carrying it
// was already routed by the named node and must be served locally.
const ForwardedHeader = "X-Chameleon-Forwarded"

// maxPeerBody bounds any peer response we are willing to buffer.
const maxPeerBody = 64 << 20

// DoJSON performs one JSON request against a peer: in (if non-nil) is
// the request body, out (if non-nil) receives the decoded response.
// Non-2xx responses are returned as *PeerError.
func DoJSON(ctx context.Context, hc *http.Client, method, url string, in, out any) error {
	return DoJSONHeader(ctx, hc, method, url, nil, in, out)
}

// DoJSONHeader is DoJSON with extra request headers (e.g. the
// single-hop ForwardedHeader on a routed submit).
func DoJSONHeader(ctx context.Context, hc *http.Client, method, url string, hdr map[string]string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &PeerError{Status: resp.StatusCode, URL: url, Body: string(truncate(data, 200))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// GetBytes fetches a raw (non-JSON-enveloped) peer payload, e.g. a
// cached result. A 404 returns (nil, false, nil).
func GetBytes(ctx context.Context, hc *http.Client, url string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, false, err
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, nil
	case resp.StatusCode < 200 || resp.StatusCode > 299:
		return nil, false, &PeerError{Status: resp.StatusCode, URL: url, Body: string(truncate(data, 200))}
	}
	return data, true, nil
}

// PutBytes uploads a raw peer payload (e.g. a peer cache fill).
func PutBytes(ctx context.Context, hc *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &PeerError{Status: resp.StatusCode, URL: url, Body: string(truncate(data, 200))}
	}
	return nil
}

// ReadJSON decodes a JSON request body of at most maxBytes.
func ReadJSON(w http.ResponseWriter, r *http.Request, out any, maxBytes int64) error {
	if maxBytes <= 0 {
		maxBytes = maxPeerBody
	}
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes)).Decode(out)
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// PeerError is a non-2xx peer response.
type PeerError struct {
	Status int
	URL    string
	Body   string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("peer %s: HTTP %d: %s", e.URL, e.Status, e.Body)
}

func truncate(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

package config

import (
	"errors"
	"fmt"
)

// Memory tier kinds. A tier's Kind selects which device model backs it
// and which of the MemTierConfig device sections must be populated.
const (
	TierDRAM = "dram" // bank/rank/channel DRAM model (internal/dram)
	TierNVM  = "nvm"  // byte-addressable NVM with asymmetric read/write timing
	TierCXL  = "cxl"  // CXL-attached far memory behind a serial link
)

// PowerConfig holds per-operation energies (picojoules) and background
// power (milliwatts) for one memory device. It lives in the tier
// configuration so every tier — DRAM, NVM or CXL — carries its own
// energy profile instead of the simulator hardcoding two DRAM defaults.
type PowerConfig struct {
	ActPrePJ       float64 // one activate+precharge pair (or per-access overhead)
	ReadPJPerByte  float64
	WritePJPerByte float64
	RefreshPJ      float64 // one rank refresh (0 for refresh-free media)
	BackgroundMW   float64 // standby power for the whole device
}

// DefaultStackedPower approximates an HBM-class stack: lower per-bit
// I/O energy (short TSV paths), higher background power (more banks).
func DefaultStackedPower() PowerConfig {
	return PowerConfig{
		ActPrePJ:       900,
		ReadPJPerByte:  4,
		WritePJPerByte: 4.5,
		RefreshPJ:      28_000,
		BackgroundMW:   350,
	}
}

// DefaultOffChipPower approximates a DDR3 DIMM: higher per-bit I/O
// energy (board traces), lower background power.
func DefaultOffChipPower() PowerConfig {
	return PowerConfig{
		ActPrePJ:       1_600,
		ReadPJPerByte:  12,
		WritePJPerByte: 13,
		RefreshPJ:      120_000,
		BackgroundMW:   180,
	}
}

// DefaultNVMPower approximates a PCM-class part: reads moderately more
// expensive than DRAM, writes an order of magnitude more, no refresh,
// near-zero standby (non-volatile cells idle for free).
func DefaultNVMPower() PowerConfig {
	return PowerConfig{
		ActPrePJ:       2_000,
		ReadPJPerByte:  17,
		WritePJPerByte: 90,
		RefreshPJ:      0,
		BackgroundMW:   50,
	}
}

// DefaultCXLPower approximates a CXL memory expander: DRAM-like media
// energy plus an always-on link PHY dominating background power.
func DefaultCXLPower() PowerConfig {
	return PowerConfig{
		ActPrePJ:       1_600,
		ReadPJPerByte:  14,
		WritePJPerByte: 15,
		RefreshPJ:      120_000,
		BackgroundMW:   450,
	}
}

// NVMConfig describes a byte-addressable non-volatile memory tier. The
// timing model follows the NUMA-based hybrid-memory emulation literature
// (arXiv 1808.00064): a fixed media latency per access, asymmetric
// between reads and writes, plus separate sustained read and write
// bandwidth ceilings well below DRAM.
type NVMConfig struct {
	Name          string
	CapacityBytes uint64
	// Banks is the number of independently schedulable banks (defaults
	// to 16 when zero).
	Banks int
	// ReadLatencyNanos / WriteLatencyNanos are the media access
	// latencies; writes are several times slower than reads.
	ReadLatencyNanos  float64
	WriteLatencyNanos float64
	// ReadBandwidth / WriteBandwidth are sustained ceilings in
	// bytes/second; the write path saturates far earlier.
	ReadBandwidth  float64
	WriteBandwidth float64
	// WearBlockBytes is the write-endurance accounting granularity
	// (defaults to 4 KB when zero; must be a power of two).
	WearBlockBytes int
	// EnduranceWrites is the per-block write budget; blocks past it are
	// reported as worn. Zero defaults to 100M (a PCM-class cell budget).
	EnduranceWrites uint64
}

// DefaultNVM returns a plausible PCM/Optane-class tier of the given
// capacity: ~300 ns reads, ~1 µs writes, 8/3 GB/s read/write ceilings.
func DefaultNVM(capacityBytes uint64) NVMConfig {
	return NVMConfig{
		Name:              "nvm",
		CapacityBytes:     capacityBytes,
		Banks:             16,
		ReadLatencyNanos:  300,
		WriteLatencyNanos: 1000,
		ReadBandwidth:     8 * GB,
		WriteBandwidth:    3 * GB,
		WearBlockBytes:    4 * KB,
		EnduranceWrites:   100_000_000,
	}
}

// CXLConfig describes a CXL-attached far-memory tier: DRAM-class media
// reached across a serial link that adds latency and bottlenecks
// bandwidth. Parameters follow the METICULOUS CXL-emulation study
// (arXiv 2309.06565): ~200 ns of added link round-trip and ~32 GB/s of
// link bandwidth per direction.
type CXLConfig struct {
	Name          string
	CapacityBytes uint64
	// LinkLatencyNanos is the added round-trip port-to-port latency.
	LinkLatencyNanos float64
	// LinkBandwidth is the per-direction link ceiling in bytes/second;
	// transfers queue behind it in arrival order.
	LinkBandwidth float64
	// MediaLatencyNanos is the device-side media access time.
	MediaLatencyNanos float64
}

// DefaultCXL returns a plausible x8 CXL 2.0 expander of the given
// capacity.
func DefaultCXL(capacityBytes uint64) CXLConfig {
	return CXLConfig{
		Name:              "cxl",
		CapacityBytes:     capacityBytes,
		LinkLatencyNanos:  200,
		LinkBandwidth:     32 * GB,
		MediaLatencyNanos: 80,
	}
}

// MemTierConfig describes one tier of the memory stack. Exactly one of
// the device sections (DRAM, NVM, CXL) must be populated, matching Kind
// when Kind is set (an empty Kind is inferred from the populated
// section). Power overrides the tier's energy profile; nil falls back
// to the kind's default (stacked/off-chip for the first/subsequent DRAM
// tiers).
type MemTierConfig struct {
	Kind  string       `json:",omitempty"`
	DRAM  *DRAMConfig  `json:",omitempty"`
	NVM   *NVMConfig   `json:",omitempty"`
	CXL   *CXLConfig   `json:",omitempty"`
	Power *PowerConfig `json:",omitempty"`
}

// ResolvedKind returns the tier's kind, inferring it from the populated
// device section when Kind is empty. Ambiguous or empty tiers resolve
// to "" (rejected by Validate).
func (t MemTierConfig) ResolvedKind() string {
	if t.Kind != "" {
		return t.Kind
	}
	switch {
	case t.DRAM != nil && t.NVM == nil && t.CXL == nil:
		return TierDRAM
	case t.NVM != nil && t.DRAM == nil && t.CXL == nil:
		return TierNVM
	case t.CXL != nil && t.DRAM == nil && t.NVM == nil:
		return TierCXL
	}
	return ""
}

// Name returns the tier's device name.
func (t MemTierConfig) Name() string {
	switch {
	case t.DRAM != nil:
		return t.DRAM.Name
	case t.NVM != nil:
		return t.NVM.Name
	case t.CXL != nil:
		return t.CXL.Name
	}
	return ""
}

// CapacityBytes returns the tier's capacity.
func (t MemTierConfig) CapacityBytes() uint64 {
	switch {
	case t.DRAM != nil:
		return t.DRAM.CapacityBytes
	case t.NVM != nil:
		return t.NVM.CapacityBytes
	case t.CXL != nil:
		return t.CXL.CapacityBytes
	}
	return 0
}

// SetCapacity rewrites the tier's capacity in place (used by the
// simulator to size flat-baseline devices).
func (t *MemTierConfig) SetCapacity(bytes uint64) {
	switch {
	case t.DRAM != nil:
		t.DRAM.CapacityBytes = bytes
	case t.NVM != nil:
		t.NVM.CapacityBytes = bytes
	case t.CXL != nil:
		t.CXL.CapacityBytes = bytes
	}
}

// Clone deep-copies the tier so callers can mutate device parameters
// without aliasing the source configuration.
func (t MemTierConfig) Clone() MemTierConfig {
	if t.DRAM != nil {
		d := *t.DRAM
		t.DRAM = &d
	}
	if t.NVM != nil {
		n := *t.NVM
		t.NVM = &n
	}
	if t.CXL != nil {
		c := *t.CXL
		t.CXL = &c
	}
	if t.Power != nil {
		p := *t.Power
		t.Power = &p
	}
	return t
}

// CloneTiers deep-copies a tier stack.
func CloneTiers(tiers []MemTierConfig) []MemTierConfig {
	out := make([]MemTierConfig, len(tiers))
	for i, t := range tiers {
		out[i] = t.Clone()
	}
	return out
}

// TierPower resolves tier i's power profile: the configured override,
// else the kind's default. The first DRAM tier defaults to the stacked
// (HBM) profile, deeper DRAM tiers to the off-chip (DDR) profile —
// preserving the pre-tier simulator's energy accounting for two-tier
// configurations that never mention power.
func (c Config) TierPower(i int) PowerConfig {
	if i < 0 || i >= len(c.MemoryTiers) {
		return PowerConfig{}
	}
	return TierPowerFor(c.MemoryTiers[i], i)
}

// TierPowerFor implements TierPower for a tier outside a Config (the
// device builders resolve power from the tier list alone).
func TierPowerFor(t MemTierConfig, idx int) PowerConfig {
	if t.Power != nil {
		return *t.Power
	}
	switch t.ResolvedKind() {
	case TierNVM:
		return DefaultNVMPower()
	case TierCXL:
		return DefaultCXLPower()
	default:
		if idx == 0 {
			return DefaultStackedPower()
		}
		return DefaultOffChipPower()
	}
}

// validate reports the tier's configuration errors; idx is used only in
// messages.
func (t MemTierConfig) validate(idx int) error {
	var errs []error
	sections := 0
	for _, set := range []bool{t.DRAM != nil, t.NVM != nil, t.CXL != nil} {
		if set {
			sections++
		}
	}
	if sections != 1 {
		return fmt.Errorf("config: memory tier %d must have exactly one device section (DRAM, NVM or CXL), got %d", idx, sections)
	}
	kind := t.ResolvedKind()
	switch kind {
	case TierDRAM:
		if t.DRAM == nil {
			return fmt.Errorf("config: memory tier %d: kind %q but no DRAM section", idx, t.Kind)
		}
		d := t.DRAM
		if d.CapacityBytes == 0 {
			errs = append(errs, fmt.Errorf("config: %s DRAM capacity must be positive", d.Name))
		}
		if d.Channels <= 0 || d.BanksPerRank <= 0 || d.RanksPerChan <= 0 {
			errs = append(errs, fmt.Errorf("config: %s DRAM geometry must be positive", d.Name))
		}
		if d.BusFreqHz <= 0 || d.BusWidthBits <= 0 {
			errs = append(errs, fmt.Errorf("config: %s DRAM bus parameters must be positive", d.Name))
		}
	case TierNVM:
		if t.NVM == nil {
			return fmt.Errorf("config: memory tier %d: kind %q but no NVM section", idx, t.Kind)
		}
		n := t.NVM
		if n.CapacityBytes == 0 {
			errs = append(errs, fmt.Errorf("config: %s NVM capacity must be positive", n.Name))
		}
		if n.ReadLatencyNanos <= 0 || n.WriteLatencyNanos <= 0 {
			errs = append(errs, fmt.Errorf("config: %s NVM latencies must be positive", n.Name))
		}
		if n.ReadBandwidth <= 0 || n.WriteBandwidth <= 0 {
			errs = append(errs, fmt.Errorf("config: %s NVM bandwidths must be positive", n.Name))
		}
		if n.Banks < 0 {
			errs = append(errs, fmt.Errorf("config: %s NVM bank count must be non-negative", n.Name))
		}
		if wb := n.WearBlockBytes; wb < 0 || (wb > 0 && wb&(wb-1) != 0) {
			errs = append(errs, fmt.Errorf("config: %s NVM wear block must be a power of two", n.Name))
		}
	case TierCXL:
		if t.CXL == nil {
			return fmt.Errorf("config: memory tier %d: kind %q but no CXL section", idx, t.Kind)
		}
		x := t.CXL
		if x.CapacityBytes == 0 {
			errs = append(errs, fmt.Errorf("config: %s CXL capacity must be positive", x.Name))
		}
		if x.LinkLatencyNanos <= 0 || x.LinkBandwidth <= 0 {
			errs = append(errs, fmt.Errorf("config: %s CXL link parameters must be positive", x.Name))
		}
		if x.MediaLatencyNanos < 0 {
			errs = append(errs, fmt.Errorf("config: %s CXL media latency must be non-negative", x.Name))
		}
	default:
		return fmt.Errorf("config: memory tier %d has unknown kind %q (dram, nvm or cxl)", idx, t.Kind)
	}
	if t.Name() == "" {
		errs = append(errs, fmt.Errorf("config: memory tier %d must be named", idx))
	}
	return errors.Join(errs...)
}

// WithNVMTier returns a copy of c with a default byte-addressable NVM
// tier of the given capacity appended as the farthest (coldest) tier.
// It is the one-line route from a two-tier DRAM config to a stack a
// three-tier policy (hwc) can drive.
func (c Config) WithNVMTier(capacityBytes uint64) Config {
	tiers := CloneTiers(c.MemoryTiers)
	n := DefaultNVM(capacityBytes)
	tiers = append(tiers, MemTierConfig{NVM: &n})
	c.MemoryTiers = tiers
	return c
}

// WithCXLTier returns a copy of c with a default CXL-attached memory
// tier of the given capacity appended as the farthest tier.
func (c Config) WithCXLTier(capacityBytes uint64) Config {
	tiers := CloneTiers(c.MemoryTiers)
	x := DefaultCXL(capacityBytes)
	tiers = append(tiers, MemTierConfig{CXL: &x})
	c.MemoryTiers = tiers
	return c
}

// Package config defines the simulated machine configuration.
//
// The defaults reproduce Table I of the CHAMELEON paper (MICRO 2018):
// 12 out-of-order cores at 3.6 GHz, a three-level cache hierarchy, a
// 4 GB high-bandwidth stacked DRAM, a 20 GB off-chip DRAM, and an SSD
// page-fault latency of 100K CPU cycles.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Common byte sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// CPUConfig describes the simulated cores.
type CPUConfig struct {
	Cores    int     // number of cores (one application instance each)
	FreqHz   float64 // core clock frequency
	BaseCPI  float64 // cycles per non-memory instruction when not stalled
	MaxMLP   int     // maximum overlapped LLC misses per core
	IssueBlk int     // instructions retired between trace events
}

// CacheConfig is the legacy per-level cache shape of the fixed
// three-level schema (JSON keys L1/L2/L3). New configurations use
// Config.CacheLevels; this type remains only so stored legacy
// configurations keep decoding (see Config.UnmarshalJSON).
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// CacheLevelConfig describes one level of the cache hierarchy, ordered
// from the level closest to the core (index 0) to the last-level cache.
type CacheLevelConfig struct {
	// Name labels the level in statistics and error messages ("L1",
	// "L2", ...). Names must be unique within a hierarchy.
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// LatencyCycles is the cumulative hit latency of this level in CPU
	// cycles, measured from the core. The first level's latency is
	// assumed hidden by the core model (BaseCPI) and is never charged;
	// deeper levels charge the delta over the previous level on the way
	// down. Latencies must be non-decreasing across the stack.
	LatencyCycles uint64
	// Shared marks the level as one cache shared by every core;
	// otherwise each core gets a private instance.
	Shared bool
}

// DRAMConfig describes one DRAM device (a set of channels).
type DRAMConfig struct {
	Name          string
	CapacityBytes uint64
	Channels      int
	RanksPerChan  int
	BanksPerRank  int
	BusFreqHz     float64 // bus clock; data rate is 2x (DDR)
	BusWidthBits  int     // per channel
	RowBytes      int     // row-buffer size per bank
	TCAS          int     // in bus cycles
	TRCD          int     // in bus cycles
	TRP           int     // in bus cycles
	TRAS          int     // in bus cycles
	TRFCNanos     float64 // refresh cycle time, nanoseconds
	TREFINanos    float64 // refresh interval, nanoseconds
}

// PeakBandwidth returns the aggregate peak data bandwidth in bytes/sec.
func (d DRAMConfig) PeakBandwidth() float64 {
	return float64(d.Channels) * float64(d.BusWidthBits) / 8 * 2 * d.BusFreqHz
}

// OSConfig describes operating-system level parameters.
type OSConfig struct {
	PageBytes        int    // base page size (4 KB)
	HugePageBytes    int    // THP size (2 MB)
	PageFaultCycles  uint64 // major fault (SSD) latency in CPU cycles
	BufferCacheBytes uint64 // memory reserved by the OS buffer cache
}

// MemSysConfig describes the heterogeneous memory-system organisation.
type MemSysConfig struct {
	SegmentBytes int // PoM/Chameleon segment size (2 KB in the paper)
	// SwapThreshold is the competing-counter value an off-chip segment
	// must accumulate before a PoM swap. It is set above the number of
	// lines per segment (32) so that a single streaming sweep through a
	// segment never triggers a swap — only segments whose counter
	// accumulates across repeated visits (persistently hot data) are
	// promoted, which is what makes swaps profitable under bandwidth
	// saturation.
	SwapThreshold     int
	SRTCacheEntries   int  // on-die SRT cache entries (0 disables modelling)
	CacheLineBytes    int  // transfer granularity (64 B)
	ClearOnModeSwitch bool // security clearing on cache<->PoM transitions
}

// UnmarshalJSON accepts both the current field names and the
// pre-rename "ClearOnModeSwith" key (deprecated; kept for one release
// so serialized configurations keep loading).
func (m *MemSysConfig) UnmarshalJSON(b []byte) error {
	type plain MemSysConfig // plain drops the method, avoiding recursion
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	var legacy struct {
		ClearOnModeSwith *bool
	}
	if err := json.Unmarshal(b, &legacy); err != nil {
		return err
	}
	*m = MemSysConfig(p)
	if legacy.ClearOnModeSwith != nil {
		m.ClearOnModeSwitch = *legacy.ClearOnModeSwith
	}
	return nil
}

// Config is the complete simulated system configuration.
type Config struct {
	CPU CPUConfig
	// CacheLevels is the cache hierarchy, ordered from the core
	// outward. Any depth >= 1 is valid; the last entry is the LLC that
	// filters accesses into the memory system. Legacy JSON documents
	// using the fixed L1/L2/L3 keys (plus CPU.L1Latency/L2Latency/
	// L3Latency) still decode into this field; mixing legacy keys with
	// CacheLevels in one document is an error.
	CacheLevels []CacheLevelConfig
	// MemoryTiers is the ordered memory-tier stack, fastest first
	// (canonical JSON key "memory_tiers"). The default is the paper's
	// two DRAM tiers (stacked + off-chip); any length >= 2 and mix of
	// dram/nvm/cxl kinds is valid. Legacy JSON documents using the
	// fixed Fast/Slow DRAM keys still decode into this field (as an
	// equivalent two-tier stack); mixing legacy keys with memory_tiers
	// in one document is an error. A memory_tiers list in a document
	// replaces the decode target's whole stack.
	MemoryTiers []MemTierConfig `json:"memory_tiers"`
	OS          OSConfig
	MemSys      MemSysConfig

	// Scale divides the memory-tier capacities (and should be matched
	// by a proportional reduction of workload footprints). Scale 1 is
	// the paper's full-size system. Scale must be a power of two.
	Scale uint64
}

// NumTiers returns the number of configured memory tiers.
func (c Config) NumTiers() int { return len(c.MemoryTiers) }

// Tier returns tier i, or a zero value when out of range.
func (c Config) Tier(i int) MemTierConfig {
	if i < 0 || i >= len(c.MemoryTiers) {
		return MemTierConfig{}
	}
	return c.MemoryTiers[i]
}

// TierCapacity returns tier i's capacity (0 when out of range).
func (c Config) TierCapacity(i int) uint64 { return c.Tier(i).CapacityBytes() }

// FastDRAM returns the first tier's DRAM parameters (a zero value when
// the first tier is not DRAM-backed). It exists for the many two-tier
// call sites that predate the tier list.
func (c Config) FastDRAM() DRAMConfig {
	if d := c.Tier(0).DRAM; d != nil {
		return *d
	}
	return DRAMConfig{}
}

// SlowDRAM returns the second tier's DRAM parameters (a zero value when
// the second tier is not DRAM-backed).
func (c Config) SlowDRAM() DRAMConfig {
	if d := c.Tier(1).DRAM; d != nil {
		return *d
	}
	return DRAMConfig{}
}

// LLC returns the last (memory-side) cache level, or a zero value when
// no levels are configured.
func (c Config) LLC() CacheLevelConfig {
	if len(c.CacheLevels) == 0 {
		return CacheLevelConfig{}
	}
	return c.CacheLevels[len(c.CacheLevels)-1]
}

// Level returns the named cache level.
func (c Config) Level(name string) (CacheLevelConfig, bool) {
	for _, lv := range c.CacheLevels {
		if lv.Name == name {
			return lv, true
		}
	}
	return CacheLevelConfig{}, false
}

// UnmarshalJSON decodes a configuration, accepting both the canonical
// schemas (CacheLevels, memory_tiers) and the legacy fixed keys: the
// three-level L1/L2/L3 objects (plus CPU.L1Latency/L2Latency/L3Latency)
// and the Fast/Slow DRAM pair. Legacy keys overlay the decode target's
// existing stack (or, when the target has a different shape, the
// unscaled Table I defaults), mirroring the ClearOnModeSwitch key
// migration. A document mixing a canonical schema with its legacy keys
// is rejected: the two would silently shadow each other.
func (c *Config) UnmarshalJSON(b []byte) error {
	var keys struct {
		CacheLevels *json.RawMessage
		L1, L2, L3  *CacheConfig
		CPU         *struct {
			L1Latency, L2Latency, L3Latency *uint64
		}
		MemoryTiers *json.RawMessage `json:"memory_tiers"`
		Fast, Slow  *json.RawMessage
	}
	if err := json.Unmarshal(b, &keys); err != nil {
		return err
	}
	hasLegacyMem := keys.Fast != nil || keys.Slow != nil
	if hasLegacyMem && keys.MemoryTiers != nil {
		return errors.New("config: document mixes memory_tiers with legacy Fast/Slow keys; use one schema")
	}
	type plain Config // plain drops the method, avoiding recursion
	p := plain(*c)    // preserve target values: absent keys keep them
	if keys.MemoryTiers != nil {
		// A memory_tiers list replaces the whole stack. Decoding onto
		// the target's tiers would element-wise merge device sections
		// (leaving, say, a default DRAM pointer inside a document's NVM
		// tier), so the incoming list decodes fresh.
		p.MemoryTiers = nil
	}
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	hasLegacy := keys.L1 != nil || keys.L2 != nil || keys.L3 != nil
	var lat [3]*uint64
	if keys.CPU != nil {
		lat = [3]*uint64{keys.CPU.L1Latency, keys.CPU.L2Latency, keys.CPU.L3Latency}
		for _, l := range lat {
			hasLegacy = hasLegacy || l != nil
		}
	}
	if hasLegacy && keys.CacheLevels != nil {
		return errors.New("config: document mixes CacheLevels with legacy L1/L2/L3 keys; use one schema")
	}
	*c = Config(p)
	if hasLegacyMem {
		// Overlay the legacy DRAM pair on a two-DRAM-tier base: the
		// target's own stack when it already has that shape (so partial
		// legacy documents merge like any other nested struct), else
		// Table I.
		base := c.MemoryTiers
		if len(base) != 2 || base[0].DRAM == nil || base[1].DRAM == nil {
			base = Default(1).MemoryTiers
		}
		tiers := CloneTiers(base[:2])
		if keys.Fast != nil {
			if err := json.Unmarshal(*keys.Fast, tiers[0].DRAM); err != nil {
				return err
			}
		}
		if keys.Slow != nil {
			if err := json.Unmarshal(*keys.Slow, tiers[1].DRAM); err != nil {
				return err
			}
		}
		c.MemoryTiers = tiers
	}
	if !hasLegacy {
		return nil
	}
	// Overlay the legacy keys on a three-level base: the target's own
	// stack when it already has the L1/L2/L3 shape (so partial legacy
	// documents merge like any other nested struct), else Table I.
	base := c.CacheLevels
	if len(base) != 3 || base[0].Name != "L1" || base[1].Name != "L2" || base[2].Name != "L3" {
		base = Default(1).CacheLevels
	}
	levels := make([]CacheLevelConfig, 3)
	copy(levels, base)
	for i, l := range []*CacheConfig{keys.L1, keys.L2, keys.L3} {
		if l != nil {
			levels[i].SizeBytes = l.SizeBytes
			levels[i].Ways = l.Ways
			levels[i].LineBytes = l.LineBytes
		}
	}
	for i, l := range lat {
		if l != nil {
			levels[i].LatencyCycles = *l
		}
	}
	c.CacheLevels = levels
	return nil
}

// Default returns the Table I configuration at the given scale divisor.
// scale == 1 reproduces the paper's 4 GB + 20 GB system. Larger scales
// divide the DRAM capacities and, to preserve the working-set:capacity
// ratios the results depend on, also shrink the L2/L3 caches (floored
// at 64 KB / 256 KB) — otherwise a scaled-down stacked DRAM would be no
// larger than the unscaled LLC.
func Default(scale uint64) Config {
	if scale == 0 {
		scale = 1
	}
	l2 := 256 * KB / int(scale)
	if l2 < 64*KB {
		l2 = 64 * KB
	}
	l3 := 12 * MB / int(scale)
	if l3 < 256*KB {
		l3 = 256 * KB
	}
	c := Config{
		CPU: CPUConfig{
			Cores:    12,
			FreqHz:   3.6e9,
			BaseCPI:  0.33, // ~3-wide effective issue
			MaxMLP:   4,
			IssueBlk: 64,
		},
		CacheLevels: []CacheLevelConfig{
			{Name: "L1", SizeBytes: 32 * KB, Ways: 4, LineBytes: 64, LatencyCycles: 4},
			{Name: "L2", SizeBytes: l2, Ways: 8, LineBytes: 64, LatencyCycles: 12},
			{Name: "L3", SizeBytes: l3, Ways: 16, LineBytes: 64, LatencyCycles: 38, Shared: true},
		},
		MemoryTiers: []MemTierConfig{
			{Kind: TierDRAM, DRAM: &DRAMConfig{
				Name:          "stacked",
				CapacityBytes: 4 * GB / scale,
				Channels:      2,
				RanksPerChan:  2,
				BanksPerRank:  8,
				BusFreqHz:     1.6e9,
				BusWidthBits:  128,
				RowBytes:      2 * KB,
				TCAS:          11, TRCD: 11, TRP: 11, TRAS: 28,
				TRFCNanos:  138,
				TREFINanos: 7800,
			}},
			{Kind: TierDRAM, DRAM: &DRAMConfig{
				Name:          "offchip",
				CapacityBytes: 20 * GB / scale,
				Channels:      2,
				RanksPerChan:  2,
				BanksPerRank:  8,
				BusFreqHz:     0.8e9,
				BusWidthBits:  64,
				RowBytes:      8 * KB,
				TCAS:          11, TRCD: 11, TRP: 11, TRAS: 28,
				TRFCNanos:  530,
				TREFINanos: 7800,
			}},
		},
		OS: OSConfig{
			PageBytes:       4 * KB,
			HugePageBytes:   2 * MB,
			PageFaultCycles: 100_000,
		},
		MemSys: MemSysConfig{
			SegmentBytes:      2 * KB,
			SwapThreshold:     8,
			SRTCacheEntries:   32 * 1024,
			CacheLineBytes:    64,
			ClearOnModeSwitch: true,
		},
		Scale: scale,
	}
	return c
}

// WithRatio returns a copy of c with the first:second tier capacity
// ratio set to 1:ratio while keeping their combined capacity constant,
// mirroring the paper's sensitivity study (1:3 = 6+18 GB, 1:5 = 4+20 GB,
// 1:7 = 3+21 GB). Deeper tiers are untouched.
func (c Config) WithRatio(ratio int) (Config, error) {
	if ratio < 1 {
		return c, fmt.Errorf("config: ratio must be >= 1, got %d", ratio)
	}
	if len(c.MemoryTiers) < 2 {
		return c, fmt.Errorf("config: ratio requires at least two memory tiers, got %d", len(c.MemoryTiers))
	}
	total := c.TierCapacity(0) + c.TierCapacity(1)
	fast := total / uint64(ratio+1)
	// Round down to a segment-group friendly boundary.
	seg := uint64(c.MemSys.SegmentBytes)
	fast -= fast % seg
	tiers := CloneTiers(c.MemoryTiers)
	tiers[0].SetCapacity(fast)
	tiers[1].SetCapacity(total - fast)
	c.MemoryTiers = tiers
	return c, nil
}

// TotalCapacity returns the summed capacity of every memory tier — the
// OS-visible capacity when the whole stack is exposed as memory.
func (c Config) TotalCapacity() uint64 {
	var total uint64
	for _, t := range c.MemoryTiers {
		total += t.CapacityBytes()
	}
	return total
}

// Ratio returns the second:first tier capacity ratio rounded to the
// nearest integer (5 for the default 4+20 GB system).
func (c Config) Ratio() int {
	fast, slow := c.TierCapacity(0), c.TierCapacity(1)
	if fast == 0 {
		return 0
	}
	return int((slow + fast/2) / fast)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	var errs []error
	if c.CPU.Cores <= 0 {
		errs = append(errs, errors.New("config: CPU.Cores must be positive"))
	}
	if c.CPU.FreqHz <= 0 {
		errs = append(errs, errors.New("config: CPU.FreqHz must be positive"))
	}
	if c.CPU.MaxMLP <= 0 {
		errs = append(errs, errors.New("config: CPU.MaxMLP must be positive"))
	}
	if len(c.CacheLevels) == 0 {
		errs = append(errs, errors.New("config: at least one cache level is required"))
	}
	names := make(map[string]bool, len(c.CacheLevels))
	var prevLat uint64
	for i, lv := range c.CacheLevels {
		name := lv.Name
		if name == "" {
			errs = append(errs, fmt.Errorf("config: cache level %d must be named", i))
			name = fmt.Sprintf("level %d", i)
		} else if names[name] {
			errs = append(errs, fmt.Errorf("config: duplicate cache level name %q", name))
		}
		names[name] = true
		if lv.LineBytes <= 0 || lv.SizeBytes <= 0 || lv.Ways <= 0 {
			errs = append(errs, fmt.Errorf("config: %s cache parameters must be positive", name))
			continue
		}
		if lv.LineBytes&(lv.LineBytes-1) != 0 {
			errs = append(errs, fmt.Errorf("config: %s line size must be a power of two", name))
		}
		if lv.SizeBytes/(lv.Ways*lv.LineBytes) == 0 {
			errs = append(errs, fmt.Errorf("config: %s cache smaller than one set", name))
		}
		// The walk charges latency deltas on the way down, so the
		// cumulative latencies must be non-decreasing.
		if i > 0 && lv.LatencyCycles < prevLat {
			errs = append(errs, fmt.Errorf("config: %s latency %d below the previous level's %d",
				name, lv.LatencyCycles, prevLat))
		}
		prevLat = lv.LatencyCycles
	}
	if len(c.MemoryTiers) < 2 {
		errs = append(errs, fmt.Errorf("config: at least two memory tiers are required, got %d", len(c.MemoryTiers)))
	}
	tierNames := make(map[string]bool, len(c.MemoryTiers))
	for i, t := range c.MemoryTiers {
		if err := t.validate(i); err != nil {
			errs = append(errs, err)
			continue
		}
		if name := t.Name(); tierNames[name] {
			errs = append(errs, fmt.Errorf("config: duplicate memory tier name %q", name))
		} else {
			tierNames[name] = true
		}
	}
	seg := c.MemSys.SegmentBytes
	if seg <= 0 || seg&(seg-1) != 0 {
		errs = append(errs, fmt.Errorf("config: segment size must be a positive power of two, got %d", seg))
	}
	if c.MemSys.CacheLineBytes <= 0 || seg%max(c.MemSys.CacheLineBytes, 1) != 0 {
		errs = append(errs, errors.New("config: segment size must be a multiple of the cache-line size"))
	}
	if seg > 0 {
		// Placement works in whole segments, so every tier must hold an
		// integral number of them.
		for _, t := range c.MemoryTiers {
			if cap := t.CapacityBytes(); cap > 0 && cap%uint64(seg) != 0 {
				errs = append(errs, fmt.Errorf("config: %s capacity must be a multiple of the segment size", t.Name()))
			}
		}
	}
	if c.OS.PageBytes <= 0 || c.OS.PageBytes&(c.OS.PageBytes-1) != 0 {
		errs = append(errs, errors.New("config: page size must be a positive power of two"))
	}
	if c.OS.HugePageBytes%max(c.OS.PageBytes, 1) != 0 {
		errs = append(errs, errors.New("config: huge-page size must be a multiple of the page size"))
	}
	return errors.Join(errs...)
}

package config

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestCacheLevelsDecode proves the two config schemas converge: a
// legacy fixed three-level document (L1/L2/L3 objects plus CPU latency
// fields) and its CacheLevels rewrite construct identical hierarchies,
// and a document that mixes the schemas is rejected.
func TestCacheLevelsDecode(t *testing.T) {
	legacy := `{
		"L1": {"SizeBytes": 65536, "Ways": 8, "LineBytes": 64},
		"L2": {"SizeBytes": 524288, "Ways": 8, "LineBytes": 64},
		"L3": {"SizeBytes": 8388608, "Ways": 16, "LineBytes": 64},
		"CPU": {"L1Latency": 3, "L2Latency": 14, "L3Latency": 40}
	}`
	modern := `{
		"CacheLevels": [
			{"Name": "L1", "SizeBytes": 65536, "Ways": 8, "LineBytes": 64, "LatencyCycles": 3},
			{"Name": "L2", "SizeBytes": 524288, "Ways": 8, "LineBytes": 64, "LatencyCycles": 14},
			{"Name": "L3", "SizeBytes": 8388608, "Ways": 16, "LineBytes": 64, "LatencyCycles": 40, "Shared": true}
		]
	}`
	var oldC, newC Config
	if err := json.Unmarshal([]byte(legacy), &oldC); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if err := json.Unmarshal([]byte(modern), &newC); err != nil {
		t.Fatalf("CacheLevels decode: %v", err)
	}
	if !reflect.DeepEqual(oldC.CacheLevels, newC.CacheLevels) {
		t.Errorf("schemas diverged:\nlegacy: %+v\nmodern: %+v", oldC.CacheLevels, newC.CacheLevels)
	}

	// Partial legacy keys overlay the decode target's stack in place,
	// like any other nested struct field.
	cfg := Default(1)
	if err := json.Unmarshal([]byte(`{"L2": {"SizeBytes": 1048576, "Ways": 4, "LineBytes": 64}}`), &cfg); err != nil {
		t.Fatalf("partial legacy decode: %v", err)
	}
	if cfg.CacheLevels[1].SizeBytes != 1048576 || cfg.CacheLevels[1].Ways != 4 {
		t.Errorf("partial L2 overlay lost: %+v", cfg.CacheLevels[1])
	}
	if cfg.CacheLevels[0] != Default(1).CacheLevels[0] || cfg.CacheLevels[2] != Default(1).CacheLevels[2] {
		t.Errorf("partial overlay disturbed untouched levels: %+v", cfg.CacheLevels)
	}
	if cfg.CacheLevels[1].LatencyCycles != 12 || !cfg.CacheLevels[2].Shared {
		t.Errorf("overlay dropped base latency/sharing: %+v", cfg.CacheLevels)
	}

	// Absent keys keep the target's hierarchy untouched.
	cfg = Default(256)
	want := append([]CacheLevelConfig(nil), cfg.CacheLevels...)
	if err := json.Unmarshal([]byte(`{"Scale": 256}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.CacheLevels, want) {
		t.Errorf("decode without cache keys rewrote the hierarchy: %+v", cfg.CacheLevels)
	}

	// Mixing the schemas in one document must error, for every legacy key.
	for _, doc := range []string{
		`{"CacheLevels": [{"Name": "L1"}], "L1": {"SizeBytes": 1024, "Ways": 1, "LineBytes": 64}}`,
		`{"CacheLevels": [{"Name": "L1"}], "L3": {"SizeBytes": 1024, "Ways": 1, "LineBytes": 64}}`,
		`{"CacheLevels": [{"Name": "L1"}], "CPU": {"L2Latency": 10}}`,
	} {
		var c Config
		err := json.Unmarshal([]byte(doc), &c)
		if err == nil || !strings.Contains(err.Error(), "legacy") {
			t.Errorf("mixed schemas not rejected (err %v): %s", err, doc)
		}
	}

	// Marshal emits only the canonical schema.
	b, err := json.Marshal(Default(1))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"L1":`) || !strings.Contains(string(b), `"CacheLevels":`) {
		t.Errorf("marshal leaked the legacy schema: %s", b)
	}
}

// FuzzConfigDecode generates a legacy document (fixed cache levels plus
// the Fast/Slow DRAM pair) and its canonical rewrite from one parameter
// tuple and requires both to decode to the same machine (or both to
// keep failing validation identically), and the mixed documents to
// error.
func FuzzConfigDecode(f *testing.F) {
	f.Add(32*KB, 4, 64, uint64(4), 256*KB, 8, uint64(12), 12*MB, 16, uint64(38), uint64(4*GB), uint64(20*GB))
	f.Add(16*KB, 2, 32, uint64(2), 128*KB, 4, uint64(20), 4*MB, 8, uint64(44), uint64(16*MB), uint64(80*MB))
	f.Add(1, 0, 0, uint64(0), 0, -3, uint64(9), 64, 1, uint64(1), uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, s1, w1, line int, lat1 uint64, s2, w2 int, lat2 uint64, s3, w3 int, lat3 uint64, fastCap, slowCap uint64) {
		legacy := fmt.Sprintf(`{
			"L1": {"SizeBytes": %d, "Ways": %d, "LineBytes": %d},
			"L2": {"SizeBytes": %d, "Ways": %d, "LineBytes": %d},
			"L3": {"SizeBytes": %d, "Ways": %d, "LineBytes": %d},
			"CPU": {"L1Latency": %d, "L2Latency": %d, "L3Latency": %d},
			"Fast": {"CapacityBytes": %d},
			"Slow": {"CapacityBytes": %d}
		}`, s1, w1, line, s2, w2, line, s3, w3, line, lat1, lat2, lat3, fastCap, slowCap)
		modern := fmt.Sprintf(`{"CacheLevels": [
			{"Name": "L1", "SizeBytes": %d, "Ways": %d, "LineBytes": %d, "LatencyCycles": %d},
			{"Name": "L2", "SizeBytes": %d, "Ways": %d, "LineBytes": %d, "LatencyCycles": %d},
			{"Name": "L3", "SizeBytes": %d, "Ways": %d, "LineBytes": %d, "LatencyCycles": %d, "Shared": true}
		]}`, s1, w1, line, lat1, s2, w2, line, lat2, s3, w3, line, lat3)

		oldC, newC := Default(1), Default(1)
		oldErr := json.Unmarshal([]byte(legacy), &oldC)
		newErr := json.Unmarshal([]byte(modern), &newC)
		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("decode disagreement: legacy %v, modern %v", oldErr, newErr)
		}
		if oldErr != nil {
			return
		}
		// The modern document carries the capacities through the
		// canonical schema instead.
		newC.MemoryTiers[0].SetCapacity(fastCap)
		newC.MemoryTiers[1].SetCapacity(slowCap)
		// The legacy base stack is shared (L3); the rewrite says so
		// explicitly, so the machines must now match field for field.
		if !reflect.DeepEqual(oldC, newC) {
			t.Fatalf("configs diverged:\nlegacy: %+v\nmodern: %+v", oldC, newC)
		}
		// Validation must agree too: the same machine is legal or not
		// regardless of which schema described it.
		if (oldC.Validate() == nil) != (newC.Validate() == nil) {
			t.Fatalf("validation disagreement: legacy %v, modern %v", oldC.Validate(), newC.Validate())
		}
		// Marshal speaks only the canonical schema, and the marshal
		// round-trips: the memory_tiers rewrite of the legacy document
		// reconstructs the identical machine.
		b, err := json.Marshal(oldC)
		if err != nil {
			t.Fatal(err)
		}
		var rt Config
		if err := json.Unmarshal(b, &rt); err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if !reflect.DeepEqual(oldC, rt) {
			t.Fatalf("memory_tiers round trip diverged:\nwant: %+v\ngot:  %+v", oldC, rt)
		}
		// And the mixed documents always error.
		var c Config
		if err := json.Unmarshal([]byte(`{"CacheLevels": [], `+legacy[1:]), &c); err == nil {
			t.Fatal("mixed cache schemas decoded without error")
		}
		if err := json.Unmarshal([]byte(`{"memory_tiers": [], `+legacy[1:]), &c); err == nil {
			t.Fatal("mixed memory schemas decoded without error")
		}
	})
}

package config

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestMemoryTiersDecode proves the two memory schemas converge: a
// legacy Fast/Slow document and its memory_tiers rewrite construct
// identical configurations, and a document mixing them is rejected.
func TestMemoryTiersDecode(t *testing.T) {
	legacy := `{
		"Fast": {"CapacityBytes": 16777216},
		"Slow": {"CapacityBytes": 83886080}
	}`
	// The legacy pair overlays the Table I tiers; its memory_tiers
	// rewrite is the marshal of that result, so decoding it fresh must
	// reconstruct the same Config field for field.
	oldC := Default(256)
	if err := json.Unmarshal([]byte(legacy), &oldC); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if oldC.TierCapacity(0) != 16*MB || oldC.TierCapacity(1) != 80*MB {
		t.Fatalf("legacy overlay lost capacities: %d + %d", oldC.TierCapacity(0), oldC.TierCapacity(1))
	}
	if oldC.FastDRAM().Channels != 2 || oldC.FastDRAM().Name != "stacked" {
		t.Fatalf("legacy overlay dropped base DRAM fields: %+v", oldC.FastDRAM())
	}
	b, err := json.Marshal(oldC)
	if err != nil {
		t.Fatal(err)
	}
	var newC Config
	if err := json.Unmarshal(b, &newC); err != nil {
		t.Fatalf("memory_tiers decode: %v", err)
	}
	if !reflect.DeepEqual(oldC, newC) {
		t.Errorf("schemas diverged:\nlegacy: %+v\nmodern: %+v", oldC, newC)
	}

	// A memory_tiers list replaces the target's stack wholesale; the
	// document's NVM tier must not inherit a DRAM section from the
	// element it lands on.
	cfg := Default(256)
	doc := `{"memory_tiers": [
		{"DRAM": {"Name": "hbm", "CapacityBytes": 16777216, "Channels": 4, "RanksPerChan": 2,
			"BanksPerRank": 8, "BusFreqHz": 1.6e9, "BusWidthBits": 128, "RowBytes": 2048,
			"TCAS": 11, "TRCD": 11, "TRP": 11, "TRAS": 28, "TRFCNanos": 138, "TREFINanos": 7800}},
		{"NVM": {"Name": "pmem", "CapacityBytes": 83886080}}
	]}`
	if err := json.Unmarshal([]byte(doc), &cfg); err != nil {
		t.Fatal(err)
	}
	if got := len(cfg.MemoryTiers); got != 2 {
		t.Fatalf("tier list not replaced: %d tiers", got)
	}
	if cfg.MemoryTiers[1].DRAM != nil || cfg.MemoryTiers[1].NVM == nil {
		t.Errorf("NVM tier merged with the target's DRAM element: %+v", cfg.MemoryTiers[1])
	}
	if cfg.MemoryTiers[1].ResolvedKind() != TierNVM {
		t.Errorf("kind not inferred from the NVM section: %q", cfg.MemoryTiers[1].ResolvedKind())
	}

	// Absent keys keep the target's stack untouched.
	cfg = Default(256)
	want := CloneTiers(cfg.MemoryTiers)
	if err := json.Unmarshal([]byte(`{"Scale": 256}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.MemoryTiers, want) {
		t.Errorf("decode without memory keys rewrote the stack: %+v", cfg.MemoryTiers)
	}

	// Marshal emits only the canonical schema.
	if strings.Contains(string(b), `"Fast":`) || !strings.Contains(string(b), `"memory_tiers":`) {
		t.Errorf("marshal leaked the legacy schema: %s", b)
	}
}

// TestMemoryTiersRejection table-drives the malformed documents and
// stacks the decoder and validator must refuse.
func TestMemoryTiersRejection(t *testing.T) {
	decodeErrs := []struct {
		name, doc, want string
	}{
		{"mixed fast", `{"memory_tiers": [], "Fast": {"CapacityBytes": 1024}}`, "legacy"},
		{"mixed slow", `{"memory_tiers": [], "Slow": {"CapacityBytes": 1024}}`, "legacy"},
	}
	for _, tc := range decodeErrs {
		var c Config
		err := json.Unmarshal([]byte(tc.doc), &c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	validateErrs := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero capacity", func(c *Config) {
			n := DefaultNVM(0)
			c.MemoryTiers = append(c.MemoryTiers, MemTierConfig{NVM: &n})
		}, "capacity"},
		{"unknown kind", func(c *Config) { c.MemoryTiers[0].Kind = "sram" }, "unknown kind"},
		{"ambiguous sections", func(c *Config) {
			n := DefaultNVM(GB)
			c.MemoryTiers[0].NVM = &n
			c.MemoryTiers[0].Kind = ""
		}, "exactly one device section"},
		{"duplicate names", func(c *Config) {
			c.MemoryTiers[1].DRAM.Name = "stacked"
		}, "duplicate"},
		{"unnamed tier", func(c *Config) { c.MemoryTiers[0].DRAM.Name = "" }, "named"},
		{"single tier", func(c *Config) { c.MemoryTiers = c.MemoryTiers[:1] }, "two memory tiers"},
		{"kind without section", func(c *Config) {
			c.MemoryTiers = append(c.MemoryTiers, MemTierConfig{Kind: TierNVM})
		}, "exactly one device section"},
	}
	for _, tc := range validateErrs {
		c := Default(256)
		tc.mut(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestWithNVMTier: the one-line three-tier upgrade appends a valid,
// named NVM tier and leaves the source config untouched.
func TestWithNVMTier(t *testing.T) {
	base := Default(256)
	c := base.WithNVMTier(128 * MB)
	if base.NumTiers() != 2 {
		t.Fatalf("WithNVMTier mutated its receiver: %d tiers", base.NumTiers())
	}
	if c.NumTiers() != 3 || c.Tier(2).ResolvedKind() != TierNVM {
		t.Fatalf("appended stack wrong: %d tiers, kind %q", c.NumTiers(), c.Tier(2).ResolvedKind())
	}
	if c.TierCapacity(2) != 128*MB {
		t.Errorf("NVM capacity = %d, want %d", c.TierCapacity(2), 128*MB)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("three-tier config invalid: %v", err)
	}
	if x := base.WithCXLTier(256 * MB); x.Tier(2).ResolvedKind() != TierCXL || x.Validate() != nil {
		t.Errorf("WithCXLTier stack invalid: %v", x.Validate())
	}
}

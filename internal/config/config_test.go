package config

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDefaultIsValid(t *testing.T) {
	for _, scale := range []uint64{1, 2, 8, 64, 256} {
		if err := Default(scale).Validate(); err != nil {
			t.Errorf("Default(%d): %v", scale, err)
		}
	}
}

func TestDefaultTableI(t *testing.T) {
	c := Default(1)
	if c.CPU.Cores != 12 {
		t.Errorf("cores = %d, want 12", c.CPU.Cores)
	}
	if c.CPU.FreqHz != 3.6e9 {
		t.Errorf("freq = %v, want 3.6 GHz", c.CPU.FreqHz)
	}
	if c.TierCapacity(0) != 4*GB {
		t.Errorf("stacked capacity = %d, want 4 GB", c.TierCapacity(0))
	}
	if c.TierCapacity(1) != 20*GB {
		t.Errorf("off-chip capacity = %d, want 20 GB", c.TierCapacity(1))
	}
	if c.OS.PageFaultCycles != 100_000 {
		t.Errorf("page-fault latency = %d, want 100K", c.OS.PageFaultCycles)
	}
	if c.MemSys.SegmentBytes != 2*KB {
		t.Errorf("segment = %d, want 2 KB", c.MemSys.SegmentBytes)
	}
	// Bandwidth ratio: 128-bit @1.6 GHz vs 64-bit @0.8 GHz => 4x.
	ratio := c.FastDRAM().PeakBandwidth() / c.SlowDRAM().PeakBandwidth()
	if ratio < 3.99 || ratio > 4.01 {
		t.Errorf("bandwidth ratio = %v, want 4", ratio)
	}
}

func TestScalePreservesRatios(t *testing.T) {
	base := Default(1)
	scaled := Default(64)
	if scaled.TierCapacity(0)*64 != base.TierCapacity(0) {
		t.Errorf("fast capacity not scaled by 64")
	}
	if scaled.TierCapacity(1)*64 != base.TierCapacity(1) {
		t.Errorf("slow capacity not scaled by 64")
	}
	if base.Ratio() != scaled.Ratio() {
		t.Errorf("capacity ratio changed under scaling: %d vs %d", base.Ratio(), scaled.Ratio())
	}
}

func TestScaledCachesFloored(t *testing.T) {
	c := Default(1 << 20)
	l2, ok := c.Level("L2")
	if !ok || l2.SizeBytes < 64*KB {
		t.Errorf("L2 scaled below floor: %+v", l2)
	}
	l3, ok := c.Level("L3")
	if !ok || l3.SizeBytes < 256*KB {
		t.Errorf("L3 scaled below floor: %+v", l3)
	}
	if got := c.LLC(); got != l3 {
		t.Errorf("LLC() = %+v, want the L3 level", got)
	}
}

func TestWithRatio(t *testing.T) {
	for _, ratio := range []int{3, 5, 7} {
		c, err := Default(8).WithRatio(ratio)
		if err != nil {
			t.Fatalf("WithRatio(%d): %v", ratio, err)
		}
		if got := c.Ratio(); got != ratio {
			t.Errorf("Ratio() = %d, want %d", got, ratio)
		}
		if c.TotalCapacity() != Default(8).TotalCapacity() {
			t.Errorf("ratio %d changed total capacity", ratio)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("WithRatio(%d) invalid: %v", ratio, err)
		}
	}
}

func TestWithRatioRejectsNonPositive(t *testing.T) {
	if _, err := Default(1).WithRatio(0); err == nil {
		t.Error("WithRatio(0) should fail")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no cores", func(c *Config) { c.CPU.Cores = 0 }},
		{"no freq", func(c *Config) { c.CPU.FreqHz = 0 }},
		{"no MLP", func(c *Config) { c.CPU.MaxMLP = 0 }},
		{"bad L1", func(c *Config) { c.CacheLevels[0].Ways = 0 }},
		{"no cache levels", func(c *Config) { c.CacheLevels = nil }},
		{"unnamed level", func(c *Config) { c.CacheLevels[1].Name = "" }},
		{"duplicate level names", func(c *Config) { c.CacheLevels[1].Name = "L1" }},
		{"line not power of two", func(c *Config) { c.CacheLevels[0].LineBytes = 48 }},
		{"cache under one set", func(c *Config) { c.CacheLevels[0].SizeBytes = 64 }},
		{"decreasing latency", func(c *Config) { c.CacheLevels[2].LatencyCycles = 1 }},
		{"no fast capacity", func(c *Config) { c.MemoryTiers[0].DRAM.CapacityBytes = 0 }},
		{"no channels", func(c *Config) { c.MemoryTiers[1].DRAM.Channels = 0 }},
		{"one tier only", func(c *Config) { c.MemoryTiers = c.MemoryTiers[:1] }},
		{"duplicate tier names", func(c *Config) { c.MemoryTiers[1].DRAM.Name = c.MemoryTiers[0].DRAM.Name }},
		{"unknown tier kind", func(c *Config) { c.MemoryTiers[0].Kind = "sram" }},
		{"zero NVM capacity", func(c *Config) {
			c.MemoryTiers = append(c.MemoryTiers, MemTierConfig{NVM: &NVMConfig{Name: "pmem"}})
		}},
		{"bad segment", func(c *Config) { c.MemSys.SegmentBytes = 1000 }},
		{"segment under line", func(c *Config) { c.MemSys.CacheLineBytes = 0 }},
		{"bad page", func(c *Config) { c.OS.PageBytes = 3000 }},
		{"huge page misaligned", func(c *Config) { c.OS.HugePageBytes = 5000 }},
		{"capacity not segment multiple", func(c *Config) { c.MemoryTiers[0].DRAM.CapacityBytes += 1 }},
	}
	for _, m := range mutations {
		c := Default(8)
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestPeakBandwidth(t *testing.T) {
	d := DRAMConfig{Channels: 2, BusWidthBits: 128, BusFreqHz: 1.6e9}
	// 2 channels * 16 B * 2 (DDR) * 1.6e9 = 102.4 GB/s
	if got := d.PeakBandwidth(); got != 102.4e9 {
		t.Errorf("PeakBandwidth = %v, want 102.4e9", got)
	}
}

func TestClearOnModeSwitchJSON(t *testing.T) {
	// Canonical key.
	var m MemSysConfig
	if err := json.Unmarshal([]byte(`{"ClearOnModeSwitch": true}`), &m); err != nil {
		t.Fatal(err)
	}
	if !m.ClearOnModeSwitch {
		t.Error("canonical key not decoded")
	}
	// The pre-rename key (a long-lived typo) still decodes for one
	// release so stored specs keep working.
	m = MemSysConfig{}
	if err := json.Unmarshal([]byte(`{"ClearOnModeSwith": true}`), &m); err != nil {
		t.Fatal(err)
	}
	if !m.ClearOnModeSwitch {
		t.Error("legacy ClearOnModeSwith key not honoured")
	}
	// When both keys appear the legacy one wins: its presence is
	// explicit intent from a pre-rename writer.
	m = MemSysConfig{}
	if err := json.Unmarshal([]byte(`{"ClearOnModeSwitch": false, "ClearOnModeSwith": true}`), &m); err != nil {
		t.Fatal(err)
	}
	if !m.ClearOnModeSwitch {
		t.Error("legacy key should win only when it is present (explicit intent)")
	}
	// Round-trip: Marshal emits only the canonical key.
	b, err := json.Marshal(Default(256).MemSys)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Swith") {
		t.Errorf("marshal leaked the legacy key: %s", b)
	}
}

package policy

import (
	"fmt"

	"chameleon/internal/addr"
)

func init() {
	Register("alloy", Descriptor{
		Build: func(bc BuildContext) (Controller, error) {
			return NewAlloy(bc.Fast, bc.Slow,
				bc.Config.TierCapacity(0), bc.Config.TierCapacity(1))
		},
	})
}

// Alloy models the latency-optimised DRAM cache of Qureshi & Loh
// (MICRO 2012): the stacked DRAM is a direct-mapped cache of 64 B lines
// whose tag and data (TAD, 72 B) stream out in a single burst, with a
// MAP-I-style memory-access predictor that launches the off-chip access
// in parallel with the cache probe on predicted misses. Because the
// stacked DRAM holds copies, the OS-visible capacity is only the
// off-chip capacity — the source of Alloy's page-fault penalty on
// high-footprint workloads in the paper.
type Alloy struct {
	fast Mem
	slow Mem

	sets     uint64
	setShift uint // log2(sets)
	tags     []uint8
	meta     []uint8 // bit0 valid, bit1 dirty

	pred      []uint8 // 2-bit saturating miss predictors, indexed by page hash
	slowBytes uint64

	stats       Stats
	probeBytes  int
	fastForward bool

	predHits uint64 // correct predictions
	predMiss uint64 // mispredictions
}

const (
	alloyValid = 1 << 0
	alloyDirty = 1 << 1
)

// NewAlloy builds the Alloy cache controller. fastBytes and slowBytes
// are the device capacities; fastBytes/64 must be a power of two.
func NewAlloy(fast, slow Mem, fastBytes, slowBytes uint64) (*Alloy, error) {
	sets := fastBytes / 64
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("alloy: stacked capacity must be a power-of-two multiple of 64 B, got %d", fastBytes)
	}
	var shift uint
	for s := sets; s > 1; s >>= 1 {
		shift++
	}
	maxTag := (slowBytes/64 + sets - 1) / sets
	if maxTag > 255 {
		return nil, fmt.Errorf("alloy: capacity ratio too large for 8-bit tags (%d)", maxTag)
	}
	return &Alloy{
		fast:       fast,
		slow:       slow,
		sets:       sets,
		setShift:   shift,
		tags:       make([]uint8, sets),
		meta:       make([]uint8, sets),
		pred:       make([]uint8, 1<<16),
		slowBytes:  slowBytes,
		probeBytes: 72,
	}, nil
}

// Name implements Controller.
func (a *Alloy) Name() string { return "alloy" }

// OSVisibleBytes implements Controller.
func (a *Alloy) OSVisibleBytes() uint64 { return a.slowBytes }

// Stats implements Controller.
func (a *Alloy) Stats() Stats { return a.stats }

// ResetStats implements Controller.
func (a *Alloy) ResetStats() {
	a.stats = Stats{}
	a.predHits, a.predMiss = 0, 0
}

// SetFastForward toggles warm-up mode: tag/predictor state is still
// maintained but no simulated DRAM bandwidth is consumed.
func (a *Alloy) SetFastForward(v bool) { a.fastForward = v }

// PredictorAccuracy returns the fraction of correct hit/miss
// predictions.
func (a *Alloy) PredictorAccuracy() float64 {
	t := a.predHits + a.predMiss
	if t == 0 {
		return 1
	}
	return float64(a.predHits) / float64(t)
}

func (a *Alloy) predIndex(p addr.Phys) uint64 {
	page := uint64(p) >> 12
	page ^= page >> 16
	return page & uint64(len(a.pred)-1)
}

// Access implements Controller.
func (a *Alloy) Access(now uint64, p addr.Phys, write bool) AccessResult {
	a.stats.Accesses++
	line := uint64(p) >> 6
	set := line & (a.sets - 1)
	tag := uint8(line >> a.setShift)

	pi := a.predIndex(p)
	predictMiss := a.pred[pi] >= 2

	hit := a.meta[set]&alloyValid != 0 && a.tags[set] == tag

	// The TAD probe always happens (it carries the data on a hit). On a
	// miss the subsequent TAD fill streams into the still-open row, so
	// probe+fill are modelled as one double-length burst.
	probeBytes := a.probeBytes
	if !hit {
		probeBytes *= 2
	}
	probeDone := now + 60
	if !a.fastForward {
		probeDone = a.fast.Access(now, set<<6, write || !hit, probeBytes)
	}

	var done uint64
	if hit {
		a.stats.FastHits++
		done = probeDone
		if write {
			a.meta[set] |= alloyDirty
		}
		if predictMiss {
			a.predMiss++
		} else {
			a.predHits++
		}
		if a.pred[pi] > 0 {
			a.pred[pi]--
		}
	} else {
		start := probeDone
		if predictMiss {
			start = now // launched in parallel with the probe
			a.predHits++
		} else {
			a.predMiss++
		}
		if a.pred[pi] < 3 {
			a.pred[pi]++
		}
		if a.fastForward {
			done = start + 200
		} else {
			done = a.slow.Access(start, uint64(p), false, 64)
		}

		// Writeback the dirty victim, then fill the TAD. Both are off
		// the demand critical path; their bandwidth is charged at the
		// request time (they sit in the controller's write buffers and
		// drain opportunistically).
		if a.meta[set]&(alloyValid|alloyDirty) == alloyValid|alloyDirty {
			if !a.fastForward {
				victim := (uint64(a.tags[set])<<a.setShift | set) << 6
				a.slow.Access(now, victim, true, 64)
			}
			a.stats.Writebacks++
		}
		a.stats.Fills++
		a.tags[set] = tag
		a.meta[set] = alloyValid
		if write {
			a.meta[set] |= alloyDirty
		}
	}
	a.stats.LatencySum += done - now
	return AccessResult{Done: done, FastHit: hit}
}

// ISAAlloc implements Controller; Alloy ignores OS allocation hints.
func (a *Alloy) ISAAlloc(now uint64, seg addr.Seg) { a.stats.ISAAllocs++ }

// ISAFree implements Controller; Alloy ignores OS allocation hints.
func (a *Alloy) ISAFree(now uint64, seg addr.Seg) { a.stats.ISAFrees++ }

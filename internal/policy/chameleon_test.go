package policy

import (
	"testing"
	"testing/quick"

	"chameleon/internal/addr"
	"chameleon/internal/rng"
	"chameleon/internal/srrt"
)

// chamFixture builds a Chameleon controller over a 4-group, 3-way
// space (segments A=way0, B=way1, C=way2 per group — the layout of the
// paper's worked examples).
func chamFixture(t *testing.T, opt bool) (*Chameleon, *addr.Space, *fakeMem, *fakeMem) {
	t.Helper()
	sp := smallSpace(t, 4, 2)
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	var c *Chameleon
	var err error
	if opt {
		c, err = NewChameleonOpt(sp, fast, slow, 0, 1, 64, false)
	} else {
		c, err = NewChameleon(sp, fast, slow, 0, 1, 64, false)
	}
	if err != nil {
		t.Fatal(err)
	}
	return c, sp, fast, slow
}

// segPhys returns the home physical address of a group's way.
func segPhys(sp *addr.Space, g addr.Group, w addr.Way) addr.Phys {
	return sp.BaseOf(sp.SegAt(g, w))
}

func TestChameleonBootsInCacheMode(t *testing.T) {
	c, _, _, _ := chamFixture(t, false)
	if c.CacheModeFraction() != 1 {
		t.Errorf("cache-mode fraction at boot = %v, want 1", c.CacheModeFraction())
	}
	if err := c.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Figure 8, flow 1-2-4-5: ISA-Alloc of an off-chip address keeps the
// previous mode.
func TestBasicAllocOffChipNoTransition(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	c.ISAAlloc(0, sp.SegAt(0, 1))
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Error("off-chip alloc must not end cache mode in the basic design")
	}
	if !c.Table().Allocated(0, 1) {
		t.Error("ABV bit not set")
	}
}

// Figure 9: ISA-Alloc of the stacked segment when nothing is cached
// transitions the group to PoM mode.
func TestBasicAllocStackedTransitionsToPoM(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	c.ISAAlloc(0, sp.SegAt(0, 0))
	if c.Table().ModeOf(0) != srrt.ModePoM {
		t.Error("stacked alloc must switch to PoM mode")
	}
	if !c.Table().Allocated(0, 0) {
		t.Error("ABV bit not set")
	}
	if err := c.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Figure 8, flow 1-2-3-6-8: ISA-Alloc of the stacked segment while the
// group caches a dirty off-chip segment writes it back first.
func TestBasicAllocStackedWritesBackDirtyCache(t *testing.T) {
	c, sp, _, slow := chamFixture(t, false)
	// Cache segment B (way 1) and dirty it.
	c.ISAAlloc(0, sp.SegAt(0, 1))
	c.Access(0, segPhys(sp, 0, 1), false)  // fill
	c.Access(100, segPhys(sp, 0, 1), true) // dirty the cache copy
	w0 := slow.writes
	c.ISAAlloc(200, sp.SegAt(0, 0))
	if slow.writes-w0 != 32 {
		t.Errorf("dirty cache writeback wrote %d lines, want 32", slow.writes-w0)
	}
	if _, _, valid := c.Table().CacheTag(0); valid {
		t.Error("cache tag must be invalidated")
	}
	if c.Table().ModeOf(0) != srrt.ModePoM {
		t.Error("group must be in PoM mode")
	}
}

// Figure 10, flow 1-2-3-7-8: freeing an unremapped stacked segment
// switches the group to cache mode with no data movement.
func TestBasicFreeStackedUnremapped(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	c.ISAAlloc(0, sp.SegAt(0, 0))
	moves := c.Stats().ProactiveMoves
	c.ISAFree(100, sp.SegAt(0, 0))
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Error("free of stacked segment must enter cache mode")
	}
	if c.Stats().ProactiveMoves != moves {
		t.Error("unremapped free needs no data movement")
	}
}

// Figure 11: freeing a stacked segment that has been remapped off-chip
// swaps it back so the stacked slot is available for caching.
func TestBasicFreeStackedRemapped(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	// Put group 0 in PoM mode and let segment B swap into the stacked
	// slot (threshold 1).
	c.ISAAlloc(0, sp.SegAt(0, 0))
	c.Access(0, segPhys(sp, 0, 1), false)
	if c.Table().SlotOf(0, 0) == 0 {
		t.Fatal("setup: way 0 should have been displaced")
	}
	swaps := c.Stats().Swaps
	c.ISAFree(100, sp.SegAt(0, 0))
	if c.Table().SlotOf(0, 0) != 0 {
		t.Error("freed stacked segment must be swapped back to slot 0")
	}
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Error("group must enter cache mode")
	}
	if c.Stats().Swaps != swaps+1 {
		t.Errorf("swap-back not counted (swaps %d -> %d)", swaps, c.Stats().Swaps)
	}
	if err := c.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Figure 10, flow 1-2-4-5: freeing an off-chip segment in the basic
// design never changes the mode.
func TestBasicFreeOffChipNoTransition(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	c.ISAAlloc(0, sp.SegAt(0, 0)) // PoM mode
	c.ISAAlloc(0, sp.SegAt(0, 1))
	c.ISAFree(100, sp.SegAt(0, 1))
	if c.Table().ModeOf(0) != srrt.ModePoM {
		t.Error("basic design: off-chip free must not trigger a transition")
	}
}

func TestCacheModeFillAndHit(t *testing.T) {
	c, sp, fast, slow := chamFixture(t, false)
	b := segPhys(sp, 0, 1)
	res := c.Access(0, b, false)
	if res.FastHit {
		t.Fatal("first access must miss")
	}
	if c.Stats().Fills != 1 {
		t.Fatalf("fills = %d, want 1", c.Stats().Fills)
	}
	// Fill streamed 32 lines: slow reads 32 (+1 demand), fast writes 32.
	if slow.reads != 33 || fast.writes != 32 {
		t.Errorf("fill traffic: slow reads %d, fast writes %d", slow.reads, fast.writes)
	}
	if res := c.Access(100, b, false); !res.FastHit {
		t.Error("second access must hit the segment cache")
	}
}

func TestCacheModeEvictionWritesBackDirty(t *testing.T) {
	c, sp, _, slow := chamFixture(t, false)
	b, cc := segPhys(sp, 0, 1), segPhys(sp, 0, 2)
	c.Access(0, b, false)
	c.Access(10, b, true) // dirty the cached copy of B
	w0 := slow.writes
	swaps := c.Stats().Swaps
	c.Access(20, cc, false) // C evicts B
	if slow.writes-w0 != 32 {
		t.Errorf("dirty eviction wrote %d lines, want 32", slow.writes-w0)
	}
	if c.Stats().Swaps != swaps+1 {
		t.Error("dirty evict + fill must count as a swap (paper §VI-B)")
	}
	if way, _, valid := c.Table().CacheTag(0); !valid || way != 2 {
		t.Errorf("cache tag = (%d,%v), want way 2", way, valid)
	}
}

func TestCacheModeWriteMissDoesNotFill(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	fills := c.Stats().Fills
	c.Access(0, segPhys(sp, 0, 1), true)
	if c.Stats().Fills != fills {
		t.Error("write (writeback) misses must not allocate segments")
	}
}

func TestFreeOfCachedSegmentInvalidates(t *testing.T) {
	c, sp, _, _ := chamFixture(t, false)
	c.ISAAlloc(0, sp.SegAt(0, 1))
	c.Access(0, segPhys(sp, 0, 1), false)
	if _, _, valid := c.Table().CacheTag(0); !valid {
		t.Fatal("setup: segment not cached")
	}
	c.ISAFree(100, sp.SegAt(0, 1))
	if _, _, valid := c.Table().CacheTag(0); valid {
		t.Error("freeing the cached segment must drop the copy")
	}
}

// Figure 13: Chameleon-Opt proactively remaps an allocated stacked
// segment to a free off-chip slot, keeping the group in cache mode.
func TestOptAllocStackedProactiveRemap(t *testing.T) {
	c, sp, _, _ := chamFixture(t, true)
	// B allocated, A and C free (the figure's starting state).
	c.ISAAlloc(0, sp.SegAt(0, 1))
	c.ISAAlloc(0, sp.SegAt(0, 0)) // allocate A
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Error("group must stay in cache mode (free segment C remains)")
	}
	if got := c.Table().SlotOf(0, 0); got == 0 {
		t.Error("A must be remapped off-chip")
	}
	if res := c.Table().ResidentAt(0, 0); c.Table().Allocated(0, res) {
		t.Error("slot-0 resident must be a free segment")
	}
	if c.Stats().ProactiveMoves != 1 {
		t.Errorf("proactive moves = %d, want 1", c.Stats().ProactiveMoves)
	}
	if err := c.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Figure 12, flow ...-10-6: when the last free segment is allocated the
// group switches to PoM mode.
func TestOptFullGroupSwitchesToPoM(t *testing.T) {
	c, sp, _, _ := chamFixture(t, true)
	c.ISAAlloc(0, sp.SegAt(0, 1))
	c.ISAAlloc(0, sp.SegAt(0, 2))
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Fatal("setup: group should still cache (A free)")
	}
	c.ISAAlloc(0, sp.SegAt(0, 0))
	if c.Table().ModeOf(0) != srrt.ModePoM {
		t.Error("fully allocated group must run in PoM mode")
	}
	if err := c.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Figure 14, flow 2-3-4-5-7: freeing an off-chip-resident segment of a
// full group moves the stacked resident out and enters cache mode.
// (After the allocation sequence with proactive remapping, way 2 ends
// up in the stacked slot and ways 0/1 reside off-chip.)
func TestOptFreeOffChipProactiveRemap(t *testing.T) {
	c, sp, _, _ := chamFixture(t, true)
	for w := addr.Way(0); w < 3; w++ {
		c.ISAAlloc(0, sp.SegAt(0, w))
	}
	if c.Table().SlotOf(0, 1) == 0 {
		t.Fatal("setup: way 1 expected off-chip")
	}
	moves := c.Stats().ProactiveMoves
	c.ISAFree(100, sp.SegAt(0, 1))
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Error("Opt must reclaim the freed off-chip space for caching")
	}
	if res := c.Table().ResidentAt(0, 0); c.Table().Allocated(0, res) {
		t.Error("slot-0 resident must be free after the proactive remap")
	}
	if c.Stats().ProactiveMoves != moves+1 {
		t.Error("proactive move not counted")
	}
	if err := c.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Freeing the segment that currently resides in the stacked slot of a
// full (PoM) group needs no data movement at all.
func TestOptFreeStackedResident(t *testing.T) {
	c, sp, _, _ := chamFixture(t, true)
	for w := addr.Way(0); w < 3; w++ {
		c.ISAAlloc(0, sp.SegAt(0, w))
	}
	// The proactive remaps during allocation leave way 2 in slot 0.
	stackedWay := c.Table().ResidentAt(0, 0)
	moves := c.Stats().ProactiveMoves
	c.ISAFree(100, sp.SegAt(0, stackedWay))
	if c.Table().ModeOf(0) != srrt.ModeCache {
		t.Error("group must enter cache mode")
	}
	if c.Stats().ProactiveMoves != moves {
		t.Error("freeing the stacked resident needs no movement")
	}
}

func TestPolymorphicNeverSwapsInPoMMode(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	c, err := NewPolymorphic(sp, &fakeMem{lat: 10}, &fakeMem{lat: 50}, 0, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	c.ISAAlloc(0, sp.SegAt(0, 0)) // basic transitions: group 0 -> PoM
	for i := 0; i < 100; i++ {
		c.Access(uint64(i*100), segPhys(sp, 0, 1), false)
	}
	if c.Stats().Swaps != 0 {
		t.Errorf("polymorphic memory must not swap, got %d", c.Stats().Swaps)
	}
}

func TestClearingCountsAndWrites(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	c, err := NewChameleon(sp, fast, slow, 0, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	w0 := fast.writes
	c.ISAAlloc(0, sp.SegAt(0, 0)) // cache -> PoM clears the stacked slot
	if c.Stats().ClearedSegments != 1 {
		t.Errorf("cleared = %d, want 1", c.Stats().ClearedSegments)
	}
	if fast.writes-w0 != 32 {
		t.Errorf("clear wrote %d lines, want 32", fast.writes-w0)
	}
}

// modeMatchesFreeSpace is the co-design's central invariant:
// basic: cache mode <=> the group's stacked segment is free;
// opt: cache mode <=> the group has any free segment.
func modeMatchesFreeSpace(c *Chameleon, sp *addr.Space, opt bool) bool {
	tb := c.Table()
	for g := addr.Group(0); uint32(g) < tb.Groups(); g++ {
		var free bool
		if opt {
			_, free = tb.FreeWay(g, 0xF)
		} else {
			free = !tb.Allocated(g, 0)
		}
		if (tb.ModeOf(g) == srrt.ModeCache) != free {
			return false
		}
	}
	return true
}

// TestModeInvariantProperty drives random but OS-valid ISA/access
// sequences and checks the structural invariants plus the mode/free
// relationship after every operation batch.
func TestModeInvariantProperty(t *testing.T) {
	for _, opt := range []bool{false, true} {
		opt := opt
		f := func(seed uint64) bool {
			c, sp, _, _ := chamFixture(t, opt)
			r := rng.New(seed)
			allocated := make(map[addr.Seg]bool)
			segs := int(sp.FastSegs + sp.SlowSegs)
			for i := 0; i < 300; i++ {
				seg := addr.Seg(r.Intn(segs))
				now := uint64(i * 50)
				switch r.Intn(3) {
				case 0:
					if !allocated[seg] {
						c.ISAAlloc(now, seg)
						allocated[seg] = true
					}
				case 1:
					if allocated[seg] {
						c.ISAFree(now, seg)
						delete(allocated, seg)
					}
				default:
					if allocated[seg] {
						c.Access(now, sp.BaseOf(seg), r.Intn(2) == 0)
					}
				}
				if c.Table().CheckInvariants() != nil {
					return false
				}
			}
			return modeMatchesFreeSpace(c, sp, opt)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("opt=%v: %v", opt, err)
		}
	}
}

// TestAccessConsistencyProperty: an allocated segment written through
// the controller is always observable (lookup resolves to exactly one
// location) regardless of the remap/cache churn around it.
func TestAccessConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, sp, _, _ := chamFixture(t, true)
		r := rng.New(seed)
		segs := int(sp.FastSegs + sp.SlowSegs)
		alloc := map[addr.Seg]bool{}
		for i := 0; i < 200; i++ {
			seg := addr.Seg(r.Intn(segs))
			now := uint64(i * 50)
			if !alloc[seg] && r.Intn(2) == 0 {
				c.ISAAlloc(now, seg)
				alloc[seg] = true
			}
			if alloc[seg] {
				res := c.Access(now, sp.BaseOf(seg), false)
				if res.Done < now {
					return false
				}
			}
		}
		return c.Table().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package policy

import (
	"fmt"

	"chameleon/internal/addr"
	"chameleon/internal/config"
)

func init() {
	Register("hwc", Descriptor{
		MinTiers: 3,
		Build: func(bc BuildContext) (Controller, error) {
			ms := bc.Config.MemSys
			return NewHWC("hwc", bc.Tiers, uint64(ms.SegmentBytes), ms.SwapThreshold, ms.CacheLineBytes)
		},
	})
}

// HWC is a hardware-managed hot/warm/cold placement policy for stacks
// of three or more tiers. The whole capacity is OS-visible through a
// full segment-indirection table (every segment can live in any slot of
// any tier). Per-segment saturating heat counters drive promotion: a
// segment that crosses the promotion threshold of a nearer tier swaps
// with a cold victim there, chosen by a clock-hand scan. Demotions into
// a write-endurance-limited (NVM) tier are throttled: victims whose
// write heat is still high stay put rather than burn endurance, and the
// skip is counted in Stats.ThrottledDemotions.
//
// The access path performs no heap allocations; all state is dense
// per-segment arrays sized at construction.
type HWC struct {
	name  string
	tiers []TierMem

	segBytes  uint64
	segShift  uint
	lineBytes int
	threshold int // promotion threshold base (MemSys.SwapThreshold)

	// Slot geometry: slots are numbered contiguously across the stack,
	// tier i owning [slotStart[i], slotStart[i+1]).
	slotStart []uint32
	nvmTier   []bool // per tier: write-endurance-limited

	loc  []uint32 // segment -> slot
	occ  []uint32 // slot -> segment
	heat []uint8  // per-segment saturating access heat
	wrht []uint8  // per-segment saturating write heat

	hands []uint32 // per-tier clock hand for victim selection

	// In-transit transfer backlog, as in remapSys: optional swaps are
	// skipped while the engine is too far behind or a device is
	// congested.
	xferBacklog uint64
	maxBacklog  uint64

	accesses    uint64 // decay clock
	fastForward bool

	tierAcc []uint64
	stats   Stats
}

// hwcDecayInterval halves every heat counter each time this many
// accesses have been serviced, so heat tracks the current phase rather
// than the whole run.
const hwcDecayInterval = 1 << 14

// hwcVictimScan bounds the clock-hand victim search per promotion.
const hwcVictimScan = 8

// hwcHotWrite is the write-heat level at or above which a segment is
// considered too write-hot to demote into an NVM tier.
const hwcHotWrite = 4

// NewHWC builds the hot/warm/cold controller over the given stack.
func NewHWC(name string, tiers []TierMem, segBytes uint64, threshold, lineBytes int) (*HWC, error) {
	if len(tiers) < 3 {
		return nil, fmt.Errorf("hwc: needs at least 3 tiers, got %d", len(tiers))
	}
	if segBytes == 0 || segBytes&(segBytes-1) != 0 {
		return nil, fmt.Errorf("hwc: segment size must be a positive power of two, got %d", segBytes)
	}
	h := &HWC{
		name:       name,
		tiers:      tiers,
		segBytes:   segBytes,
		lineBytes:  lineBytes,
		threshold:  max(threshold, 1),
		maxBacklog: 2048,
		slotStart:  make([]uint32, len(tiers)+1),
		nvmTier:    make([]bool, len(tiers)),
		hands:      make([]uint32, len(tiers)),
		tierAcc:    make([]uint64, len(tiers)),
	}
	for i := uint(0); i < 64; i++ {
		if segBytes == 1<<i {
			h.segShift = i
		}
	}
	var slots uint64
	for i, t := range tiers {
		if t.CapacityBytes%segBytes != 0 {
			return nil, fmt.Errorf("hwc: tier %s capacity %d not a multiple of the segment size", t.Name, t.CapacityBytes)
		}
		slots += t.CapacityBytes / segBytes
		h.slotStart[i+1] = uint32(slots)
		h.nvmTier[i] = t.Kind == config.TierNVM
	}
	// Identity placement: OS address order maps straight down the
	// stack, so tier 0 starts out holding the lowest segments.
	h.loc = make([]uint32, slots)
	h.occ = make([]uint32, slots)
	h.heat = make([]uint8, slots)
	h.wrht = make([]uint8, slots)
	for s := range h.loc {
		h.loc[s] = uint32(s)
		h.occ[s] = uint32(s)
	}
	return h, nil
}

// Name implements Controller.
func (h *HWC) Name() string { return h.name }

// OSVisibleBytes implements Controller: the whole stack.
func (h *HWC) OSVisibleBytes() uint64 {
	return uint64(h.slotStart[len(h.tiers)]) << h.segShift
}

// Stats implements Controller.
func (h *HWC) Stats() Stats { return h.stats }

// ResetStats implements Controller.
func (h *HWC) ResetStats() {
	h.stats = Stats{}
	clear(h.tierAcc)
}

// TierAccesses implements TierAccounting.
func (h *HWC) TierAccesses() []uint64 { return h.tierAcc }

// SetFastForward implements the simulator's warm-up contract: metadata
// still updates, device traffic is suppressed.
func (h *HWC) SetFastForward(v bool) { h.fastForward = v }

// tierOf returns the tier owning a slot.
func (h *HWC) tierOf(slot uint32) int {
	for i := 1; i < len(h.slotStart); i++ {
		if slot < h.slotStart[i] {
			return i - 1
		}
	}
	return len(h.tiers) - 1
}

// slotMem returns the device and device-local address of a slot.
func (h *HWC) slotMem(slot uint32) (Mem, uint64, int) {
	t := h.tierOf(slot)
	local := uint64(slot-h.slotStart[t]) << h.segShift
	return h.tiers[t].Mem, local, t
}

// canTransfer mirrors remapSys: optional background transfers are
// skipped while the in-transit buffers are behind or a device is
// congested.
func (h *HWC) canTransfer(now uint64) bool {
	if h.xferBacklog > now+h.maxBacklog {
		return false
	}
	for _, t := range h.tiers {
		if c, ok := t.Mem.(congestible); ok && c.QueueDelay(now) > h.maxBacklog {
			return false
		}
	}
	return true
}

// Access implements Controller.
func (h *HWC) Access(now uint64, p addr.Phys, write bool) AccessResult {
	seg := uint64(p) >> h.segShift
	offset := uint64(p) & (h.segBytes - 1)
	slot := h.loc[seg]
	mem, local, tier := h.slotMem(slot)

	var done uint64
	if h.fastForward {
		done = now + 200
	} else {
		done = mem.Access(now, local+offset, write, 64)
	}
	h.tierAcc[tier]++
	h.stats.Accesses++
	fastHit := tier == 0
	if fastHit {
		h.stats.FastHits++
	}
	h.stats.LatencySum += done - now

	// Heat tracking and promotion. The promotion target is the hottest
	// tier whose threshold the segment's heat now clears: heat must
	// reach threshold*t to earn a slot in tier t-1 (nearer tiers demand
	// more evidence, keeping tier 0 for genuinely hot segments).
	if h.heat[seg] < 0xff {
		h.heat[seg]++
	}
	if write && h.wrht[seg] < 0xff {
		h.wrht[seg]++
	}
	if tier > 0 && int(h.heat[seg]) >= h.threshold*tier && h.canTransfer(now) {
		h.promote(now, uint32(seg), slot, tier)
	}

	h.accesses++
	if h.accesses%hwcDecayInterval == 0 {
		h.decay()
	}
	return AccessResult{Done: done, FastHit: fastHit}
}

// promote swaps the segment into the next-nearer tier, evicting the
// coldest victim the clock hand finds there. Demotion of a write-hot
// victim into an NVM tier is vetoed (endurance throttling) unless a
// colder victim exists in the scan window.
func (h *HWC) promote(now uint64, seg, slot uint32, fromTier int) {
	dst := fromTier - 1
	lo, hi := h.slotStart[dst], h.slotStart[dst+1]
	n := hi - lo
	if n == 0 {
		return
	}
	// Clock-hand scan for the coldest resident of the destination tier.
	victim := uint32(0xffffffff)
	var victimHeat uint8 = 0xff
	hand := h.hands[dst]
	for i := uint32(0); i < hwcVictimScan && i < n; i++ {
		s := lo + (hand+i)%n
		resident := h.occ[s]
		hheat := h.heat[resident]
		if hheat < victimHeat {
			victim, victimHeat = s, hheat
		}
		if hheat == 0 {
			break
		}
	}
	h.hands[dst] = (hand + hwcVictimScan) % n
	if victim == 0xffffffff || victimHeat >= h.heat[seg] {
		return // nothing colder than the promotee in the window
	}
	// Endurance throttle: do not demote a write-hot segment into NVM —
	// it would keep writing there and burn the wear budget.
	if h.nvmTier[fromTier] && h.wrht[h.occ[victim]] >= hwcHotWrite {
		h.stats.ThrottledDemotions++
		return
	}
	h.swap(now, slot, victim)
}

// swap exchanges the contents (and mappings) of two slots, charging
// both devices' bandwidth like remapSys.swapSegments.
func (h *HWC) swap(now uint64, a, b uint32) {
	segA, segB := h.occ[a], h.occ[b]
	h.stats.Swaps++
	h.stats.SwapBytes += 2 * h.segBytes
	if !h.fastForward {
		am, ab, _ := h.slotMem(a)
		bm, bb, _ := h.slotMem(b)
		seg := int(h.segBytes)
		rdA := am.Stream(now, ab, false, seg, h.lineBytes)
		wrB := bm.Stream(now, bb, true, seg, h.lineBytes)
		rdB := bm.Stream(now, bb, false, seg, h.lineBytes)
		wrA := am.Stream(now, ab, true, seg, h.lineBytes)
		done := max(max(rdA, wrB), max(rdB, wrA))
		if done > h.xferBacklog {
			h.xferBacklog = done
		}
	}
	h.loc[segA], h.loc[segB] = b, a
	h.occ[a], h.occ[b] = segB, segA
}

// decay halves every heat counter — cheap phase adaptation.
func (h *HWC) decay() {
	for i := range h.heat {
		h.heat[i] >>= 1
		h.wrht[i] >>= 1
	}
}

// ISAAlloc implements Controller; hwc is free-space agnostic.
func (h *HWC) ISAAlloc(now uint64, seg addr.Seg) { h.stats.ISAAllocs++ }

// ISAFree implements Controller: a freed segment's heat is cleared so
// stale heat cannot promote dead data.
func (h *HWC) ISAFree(now uint64, seg addr.Seg) {
	h.stats.ISAFrees++
	if s := uint64(seg); s < uint64(len(h.heat)) {
		h.heat[s] = 0
		h.wrht[s] = 0
	}
}

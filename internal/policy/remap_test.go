package policy

import (
	"testing"

	"chameleon/internal/addr"
)

// congestedMem reports a fixed queue delay, for testing the
// opportunistic-transfer gate.
type congestedMem struct {
	fakeMem
	delay uint64
}

func (c *congestedMem) QueueDelay(now uint64) uint64 { return c.delay }

func TestFastForwardSkipsDeviceTraffic(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	c, err := NewChameleonOpt(sp, fast, slow, 0, 1, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFastForward(true)
	// Demand access, fill, ISA transitions: no device operations.
	c.Access(0, segPhys(sp, 0, 1), false)
	c.ISAAlloc(0, sp.SegAt(0, 0))
	c.ISAFree(0, sp.SegAt(0, 0))
	if fast.reads+fast.writes+slow.reads+slow.writes != 0 {
		t.Errorf("fast-forward leaked device traffic: fast=%+v slow=%+v", fast, slow)
	}
	// State still advanced: the fill happened logically.
	if _, _, valid := c.Table().CacheTag(0); !valid {
		t.Error("fast-forward must still update the remap metadata")
	}
	c.SetFastForward(false)
	c.Access(100, segPhys(sp, 0, 1), false)
	if fast.reads+slow.reads == 0 {
		t.Error("normal mode must touch the devices again")
	}
}

func TestCongestionGateDefersSwaps(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	fast := &congestedMem{fakeMem: fakeMem{lat: 10}, delay: 1 << 20}
	slow := &fakeMem{lat: 50}
	p, err := NewPoM("pom", sp, fast, slow, 0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	off := addr.Phys(uint64(sp.SegAt(0, 1)) * 2048)
	p.Access(0, off, false) // threshold 1, but the device is congested
	if p.Stats().Swaps != 0 {
		t.Error("swap should be deferred while the device is congested")
	}
	fast.delay = 0
	p.Access(100, off, false) // retries and succeeds
	if p.Stats().Swaps != 1 {
		t.Errorf("swaps = %d after congestion cleared", p.Stats().Swaps)
	}
}

func TestCongestionGateDefersCacheFills(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	slow := &congestedMem{fakeMem: fakeMem{lat: 50}, delay: 1 << 20}
	fast := &fakeMem{lat: 10}
	c, err := NewChameleon(sp, fast, slow, 0, 8, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, segPhys(sp, 0, 1), false)
	if c.Stats().Fills != 0 {
		t.Error("fill should be skipped under congestion")
	}
	slow.delay = 0
	c.Access(100, segPhys(sp, 0, 1), false)
	if c.Stats().Fills != 1 {
		t.Errorf("fills = %d after congestion cleared", c.Stats().Fills)
	}
}

func TestBacklogThrottlesConsecutiveTransfers(t *testing.T) {
	sp := smallSpace(t, 8, 2)
	// Huge latency makes each segment transfer leave a long backlog.
	fast := &fakeMem{lat: 100_000}
	slow := &fakeMem{lat: 100_000}
	c, err := NewChameleon(sp, fast, slow, 0, 8, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	// Two immediate fills to different groups: the second must be
	// deferred because the first transfer's completion is beyond the
	// backlog window.
	c.Access(0, segPhys(sp, 0, 1), false)
	c.Access(1, segPhys(sp, 1, 1), false)
	if got := c.Stats().Fills; got != 1 {
		t.Errorf("fills = %d, want 1 (second deferred)", got)
	}
}

func TestAlloyPredictorLearns(t *testing.T) {
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	a, err := NewAlloy(fast, slow, 1<<20, 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	// A page that always misses: the predictor should converge to
	// predicting misses (parallel probe), keeping accuracy high.
	for i := 0; i < 64; i++ {
		// Distinct lines in one 4 KB page, never reused: all misses.
		p := addr.Phys(2<<20 + uint64(i%64)<<6)
		a.Access(uint64(i*100), p, false)
		// Thrash the set so re-touches still miss.
		a.Invalidate()
	}
	if acc := a.PredictorAccuracy(); acc < 0.8 {
		t.Errorf("predictor accuracy = %.2f on an all-miss stream", acc)
	}
}

// Invalidate is a test helper that wipes the Alloy tags, forcing
// misses.
func (a *Alloy) Invalidate() {
	for i := range a.meta {
		a.meta[i] = 0
	}
}

func TestPoMCounterIsolatedPerGroup(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	p, _, _ := newTestPoM(t, sp, 3)
	// Accesses to group 0 must not advance group 1's counter.
	off0 := addr.Phys(uint64(sp.SegAt(0, 1)) * 2048)
	off1 := addr.Phys(uint64(sp.SegAt(1, 1)) * 2048)
	p.Access(0, off0, false)
	p.Access(0, off0, false)
	p.Access(0, off1, false)
	p.Access(0, off1, false)
	if p.Stats().Swaps != 0 {
		t.Error("no group reached its threshold")
	}
	p.Access(0, off0, false) // group 0 reaches 3
	if p.Stats().Swaps != 1 {
		t.Errorf("swaps = %d, want 1", p.Stats().Swaps)
	}
}

func TestChameleonOSVisibleCapacity(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	c, err := NewChameleon(sp, &fakeMem{}, &fakeMem{}, 0, 8, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.OSVisibleBytes() != sp.TotalBytes() {
		t.Error("Chameleon must expose the full PoM capacity")
	}
}

func TestStatsReset(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	c, err := NewChameleonOpt(sp, &fakeMem{lat: 1}, &fakeMem{lat: 1}, 0, 1, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, segPhys(sp, 0, 1), false)
	c.ResetStats()
	if c.Stats().Accesses != 0 || c.Stats().Fills != 0 {
		t.Errorf("stats not cleared: %+v", c.Stats())
	}
	// Remap state survives the reset.
	if _, _, valid := c.Table().CacheTag(0); !valid {
		t.Error("reset must not drop remap state")
	}
}

package policy

import (
	"fmt"

	"chameleon/internal/addr"
	"chameleon/internal/config"
)

func init() {
	Register("flat", Descriptor{
		RequiresBaseline: true,
		Build: func(bc BuildContext) (Controller, error) {
			name := fmt.Sprintf("flat-%dGB", bc.BaselineBytes/config.GB*bc.Config.Scale)
			return NewFlat(name, nil, bc.Slow, 0, bc.BaselineBytes), nil
		},
	})
	Register("numa-flat", Descriptor{
		OSManaged: true,
		Build: func(bc BuildContext) (Controller, error) {
			if len(bc.Tiers) > 2 {
				// The whole stack is OS-visible: every tier becomes a
				// NUMA node, ordered near to far.
				return NewFlatTiers("numa-flat", bc.Tiers), nil
			}
			return NewFlat("numa-flat", bc.Fast, bc.Slow,
				bc.Config.TierCapacity(0), bc.Config.TotalCapacity()), nil
		},
	})
}

// Flat is a non-remapping memory system over an ordered tier stack.
// With only an off-chip device it models the paper's
// baseline_20GB/24GB DDR3 systems; with two or more devices it models
// the OS-managed NUMA-flat system used by the first-touch and AutoNUMA
// studies (addresses route to the tier whose OS-visible range they fall
// in, with no hardware indirection).
type Flat struct {
	name    string
	mems    []Mem
	bases   []uint64 // tier i owns OS addresses [bases[i], bases[i+1])
	fastIdx int      // tier counted as a stacked-DRAM hit (-1 when none)
	total   uint64   // OS-visible capacity
	stats   Stats
	tierAcc []uint64 // demand accesses per tier
}

// NewFlat builds a flat memory system over the classic fast/slow pair.
// fast may be nil for a DDR3-only baseline; total is the OS-visible
// capacity in bytes.
func NewFlat(name string, fast, slow Mem, fastBytes, total uint64) *Flat {
	f := &Flat{name: name, fastIdx: -1, total: total}
	if fast != nil {
		f.mems = append(f.mems, fast)
		f.bases = append(f.bases, 0)
		f.fastIdx = 0
	}
	f.mems = append(f.mems, slow)
	f.bases = append(f.bases, fastBytes, total)
	f.tierAcc = make([]uint64, len(f.mems))
	return f
}

// NewFlatTiers builds a flat memory system spanning an arbitrary tier
// stack; the whole capacity is OS-visible and tier 0 counts as the
// stacked node.
func NewFlatTiers(name string, tiers []TierMem) *Flat {
	f := &Flat{name: name, fastIdx: 0}
	f.bases = append(f.bases, 0)
	for _, t := range tiers {
		f.mems = append(f.mems, t.Mem)
		f.total += t.CapacityBytes
		f.bases = append(f.bases, f.total)
	}
	f.tierAcc = make([]uint64, len(f.mems))
	return f
}

// Name implements Controller.
func (f *Flat) Name() string { return f.name }

// OSVisibleBytes implements Controller.
func (f *Flat) OSVisibleBytes() uint64 { return f.total }

// Stats implements Controller.
func (f *Flat) Stats() Stats { return f.stats }

// ResetStats implements Controller.
func (f *Flat) ResetStats() {
	f.stats = Stats{}
	clear(f.tierAcc)
}

// TierAccesses implements TierAccounting.
func (f *Flat) TierAccesses() []uint64 { return f.tierAcc }

// Access implements Controller.
func (f *Flat) Access(now uint64, p addr.Phys, write bool) AccessResult {
	f.stats.Accesses++
	i := len(f.mems) - 1
	for j := 1; j < len(f.mems); j++ {
		if uint64(p) < f.bases[j] {
			i = j - 1
			break
		}
	}
	done := f.mems[i].Access(now, uint64(p)-f.bases[i], write, 64)
	f.tierAcc[i]++
	fastHit := i == f.fastIdx
	if fastHit {
		f.stats.FastHits++
	}
	f.stats.LatencySum += done - now
	return AccessResult{Done: done, FastHit: fastHit}
}

// ISAAlloc implements Controller; flat systems ignore the notification.
func (f *Flat) ISAAlloc(now uint64, seg addr.Seg) { f.stats.ISAAllocs++ }

// ISAFree implements Controller; flat systems ignore the notification.
func (f *Flat) ISAFree(now uint64, seg addr.Seg) { f.stats.ISAFrees++ }

package policy

import (
	"fmt"

	"chameleon/internal/addr"
	"chameleon/internal/config"
)

func init() {
	Register("flat", Descriptor{
		RequiresBaseline: true,
		Build: func(bc BuildContext) (Controller, error) {
			name := fmt.Sprintf("flat-%dGB", bc.BaselineBytes/config.GB*bc.Config.Scale)
			return NewFlat(name, nil, bc.Slow, 0, bc.BaselineBytes), nil
		},
	})
	Register("numa-flat", Descriptor{
		OSManaged: true,
		Build: func(bc BuildContext) (Controller, error) {
			return NewFlat("numa-flat", bc.Fast, bc.Slow,
				bc.Config.Fast.CapacityBytes, bc.Config.TotalCapacity()), nil
		},
	})
}

// Flat is a non-remapping memory system. With only an off-chip device
// it models the paper's baseline_20GB/24GB DDR3 systems; with both
// devices it models the OS-managed NUMA-flat system used by the
// first-touch and AutoNUMA studies (addresses below the stacked
// capacity go to the stacked DRAM, the rest to off-chip, with no
// hardware indirection).
type Flat struct {
	name      string
	fast      Mem // nil when no stacked DRAM is present
	slow      Mem
	fastBytes uint64 // stacked capacity (0 when absent)
	total     uint64 // OS-visible capacity
	stats     Stats
}

// NewFlat builds a flat memory system. fast may be nil for a
// DDR3-only baseline; total is the OS-visible capacity in bytes.
func NewFlat(name string, fast, slow Mem, fastBytes, total uint64) *Flat {
	return &Flat{name: name, fast: fast, slow: slow, fastBytes: fastBytes, total: total}
}

// Name implements Controller.
func (f *Flat) Name() string { return f.name }

// OSVisibleBytes implements Controller.
func (f *Flat) OSVisibleBytes() uint64 { return f.total }

// Stats implements Controller.
func (f *Flat) Stats() Stats { return f.stats }

// ResetStats implements Controller.
func (f *Flat) ResetStats() { f.stats = Stats{} }

// Access implements Controller.
func (f *Flat) Access(now uint64, p addr.Phys, write bool) AccessResult {
	f.stats.Accesses++
	var done uint64
	fastHit := false
	if f.fast != nil && uint64(p) < f.fastBytes {
		done = f.fast.Access(now, uint64(p), write, 64)
		fastHit = true
		f.stats.FastHits++
	} else {
		done = f.slow.Access(now, uint64(p)-f.fastBytes, write, 64)
	}
	f.stats.LatencySum += done - now
	return AccessResult{Done: done, FastHit: fastHit}
}

// ISAAlloc implements Controller; flat systems ignore the notification.
func (f *Flat) ISAAlloc(now uint64, seg addr.Seg) { f.stats.ISAAllocs++ }

// ISAFree implements Controller; flat systems ignore the notification.
func (f *Flat) ISAFree(now uint64, seg addr.Seg) { f.stats.ISAFrees++ }

package policy

import (
	"chameleon/internal/addr"
	"chameleon/internal/srrt"
)

func init() {
	// The three ISA-consuming designs share a build shape; only the
	// constructor differs.
	build := func(ctor func(sp *addr.Space, bc BuildContext) (Controller, error)) func(BuildContext) (Controller, error) {
		return func(bc BuildContext) (Controller, error) {
			sp, err := bc.NewSpace(uint64(bc.Config.MemSys.SegmentBytes))
			if err != nil {
				return nil, err
			}
			return ctor(sp, bc)
		}
	}
	Register("polymorphic", Descriptor{
		NeedsISA: true,
		Build: build(func(sp *addr.Space, bc BuildContext) (Controller, error) {
			ms := bc.Config.MemSys
			return NewPolymorphic(sp, bc.Fast, bc.Slow, ms.SRTCacheEntries, ms.CacheLineBytes, ms.ClearOnModeSwitch)
		}),
	})
	Register("chameleon", Descriptor{
		NeedsISA: true,
		Build: build(func(sp *addr.Space, bc BuildContext) (Controller, error) {
			ms := bc.Config.MemSys
			return NewChameleon(sp, bc.Fast, bc.Slow, ms.SRTCacheEntries, ms.SwapThreshold, ms.CacheLineBytes, ms.ClearOnModeSwitch)
		}),
	})
	Register("chameleon-opt", Descriptor{
		NeedsISA: true,
		Build: build(func(sp *addr.Space, bc BuildContext) (Controller, error) {
			ms := bc.Config.MemSys
			return NewChameleonOpt(sp, bc.Fast, bc.Slow, ms.SRTCacheEntries, ms.SwapThreshold, ms.CacheLineBytes, ms.ClearOnModeSwitch)
		}),
	})
}

// Chameleon implements the paper's hardware-software co-design. It is a
// PoM system whose segment groups dynamically switch between PoM mode
// and cache mode, driven by ISA-Alloc/ISA-Free notifications from the
// OS (Figures 8/10 for the basic design, Figures 12/14 for
// Chameleon-Opt):
//
//   - In PoM mode the group behaves exactly like the PoM baseline
//     (competing-counter driven segment swaps).
//   - In cache mode the group's stacked slot is backed by a free
//     segment and caches off-chip segments with no insertion threshold,
//     writing back dirty victims on eviction.
//
// The basic design enters cache mode only when the group's *stacked*
// segment is freed. Chameleon-Opt (opt=true) additionally remaps
// segments proactively so that free space anywhere in the group frees
// up the stacked slot for caching.
//
// With pomSwaps=false and opt=false the controller degenerates into the
// Polymorphic Memory design of Chung et al. [51]: free stacked space is
// used as a cache but hot segments are never swapped in PoM mode.
type Chameleon struct {
	*remapSys
	name     string
	opt      bool
	pomSwaps bool
}

// NewChameleon builds the basic Chameleon controller.
func NewChameleon(space *addr.Space, fast, slow Mem, metaEntries, threshold, lineBytes int, clearing bool) (*Chameleon, error) {
	return newChameleonVariant("chameleon", space, fast, slow, metaEntries, threshold, lineBytes, clearing, false, true)
}

// NewChameleonOpt builds the optimised controller with proactive
// remapping.
func NewChameleonOpt(space *addr.Space, fast, slow Mem, metaEntries, threshold, lineBytes int, clearing bool) (*Chameleon, error) {
	return newChameleonVariant("chameleon-opt", space, fast, slow, metaEntries, threshold, lineBytes, clearing, true, true)
}

// NewPolymorphic builds the Polymorphic Memory comparison point [51].
func NewPolymorphic(space *addr.Space, fast, slow Mem, metaEntries, lineBytes int, clearing bool) (*Chameleon, error) {
	return newChameleonVariant("polymorphic", space, fast, slow, metaEntries, 1, lineBytes, clearing, false, false)
}

func newChameleonVariant(name string, space *addr.Space, fast, slow Mem, metaEntries, threshold, lineBytes int, clearing, opt, pomSwaps bool) (*Chameleon, error) {
	rs, err := newRemapSys(space, fast, slow, metaEntries, threshold, lineBytes, clearing)
	if err != nil {
		return nil, err
	}
	c := &Chameleon{remapSys: rs, name: name, opt: opt, pomSwaps: pomSwaps}
	// At boot nothing is allocated, so every group's stacked slot is
	// free and usable as a cache.
	for g := uint32(0); g < c.table.Groups(); g++ {
		c.table.SetMode(addr.Group(g), srrt.ModeCache)
	}
	return c, nil
}

// Name implements Controller.
func (c *Chameleon) Name() string { return c.name }

// OSVisibleBytes implements Controller.
func (c *Chameleon) OSVisibleBytes() uint64 { return c.space.TotalBytes() }

// Stats implements Controller.
func (c *Chameleon) Stats() Stats { return c.stats }

// ResetStats implements Controller.
func (c *Chameleon) ResetStats() { c.stats = Stats{} }

// Table exposes the remapping table for tests and invariant checks.
func (c *Chameleon) Table() *srrt.Table { return c.table }

// CacheModeFraction implements ModeDistribution.
func (c *Chameleon) CacheModeFraction() float64 {
	g := c.table.Groups()
	if g == 0 {
		return 0
	}
	return float64(c.table.CacheModeGroups()) / float64(g)
}

// Access implements Controller.
func (c *Chameleon) Access(now uint64, phys addr.Phys, write bool) AccessResult {
	g, way := c.space.GroupOf(c.space.SegOf(phys))
	t := c.metaLookup(now, g)
	offset := c.space.OffsetIn(phys)

	if c.table.ModeOf(g) == srrt.ModePoM {
		done, fastHit := c.pomModeAccess(t, g, way, offset, write, c.pomSwaps)
		return c.recordAccess(now, done, fastHit)
	}
	done, fastHit := c.cacheModeAccess(t, g, way, offset, write)
	return c.recordAccess(now, done, fastHit)
}

// cacheModeAccess services an access to a group in cache mode: hits are
// served from the slot-0 copy; misses are served from the authoritative
// off-chip slot and then fill the stacked slot with no insertion
// threshold (the source of Chameleon's hit-rate edge over PoM, §VI-B).
func (c *Chameleon) cacheModeAccess(now uint64, g addr.Group, way addr.Way, offset uint64, write bool) (uint64, bool) {
	loc := c.table.Lookup(g, way)
	if loc.CacheHit {
		done, _ := c.slotAccess(now, g, 0, offset, write)
		if write {
			c.table.MarkCacheDirty(g)
		}
		return done, true
	}
	done, fastHit := c.slotAccess(now, g, loc.Slot, offset, write)
	if fastHit {
		// Defensive: a demand access to the (free) slot-0 resident;
		// the OS should never touch unallocated memory.
		return done, true
	}
	if write {
		// Writeback traffic does not allocate into the segment cache:
		// filling 2 KB to absorb a 64 B eviction would only churn the
		// slot and manufacture dirty evictions.
		return done, false
	}
	if !c.canTransfer(now) {
		// In-transit buffers full: serve from off-chip without
		// inserting (the next access to the segment retries).
		return done, false
	}

	// Evict the current copy and fill the demanded segment, off the
	// demand critical path (critical-word-first through the in-transit
	// buffers).
	dirtyEvict := false
	if old, dirty, valid := c.table.CacheTag(g); valid {
		if dirty {
			c.moveSegment(now, g, 0, c.table.SlotOf(g, old))
			c.stats.Writebacks++
			dirtyEvict = true
		}
		c.table.InvalidateCache(g)
	}
	c.moveSegment(now, g, loc.Slot, 0)
	if dirtyEvict {
		// A dirty eviction plus a fill consumes the bandwidth of a
		// full swap; the paper counts these as swaps (§VI-B).
		c.stats.Swaps++
	} else {
		c.stats.Fills++
	}
	c.table.FillCache(g, way)
	if write {
		c.table.MarkCacheDirty(g)
	}
	return done, false
}

// ISAAlloc implements Controller (Figure 8 / Figure 12).
func (c *Chameleon) ISAAlloc(now uint64, seg addr.Seg) {
	c.stats.ISAAllocs++
	g, way := c.space.GroupOf(seg)
	t := c.metaLookup(now, g)
	c.table.SetAllocated(g, way, true)
	if c.opt {
		c.isaAllocOpt(t, g, way)
	} else {
		c.isaAllocBasic(t, g, way)
	}
}

// isaAllocBasic: only allocations of stacked-range addresses can end
// cache mode (Figure 8).
func (c *Chameleon) isaAllocBasic(now uint64, g addr.Group, way addr.Way) {
	if way != 0 || c.table.ModeOf(g) != srrt.ModeCache {
		return
	}
	// The stacked segment is being allocated: stop caching and switch
	// the group to PoM mode.
	c.endCaching(now, g)
	c.table.SetMode(g, srrt.ModePoM)
	c.table.ResetCounter(g)
	c.clearSegment(now, g, 0)
}

// isaAllocOpt: keep the group in cache mode as long as any segment
// remains free, proactively remapping the allocated segment out of the
// stacked slot when possible (Figures 12/13).
func (c *Chameleon) isaAllocOpt(now uint64, g addr.Group, way addr.Way) {
	if c.table.ModeOf(g) != srrt.ModeCache {
		return // defensive: the OS should not allocate in a full group
	}
	slot := c.table.SlotOf(g, way)
	if slot == 0 {
		// The newly allocated segment would occupy the stacked slot.
		if free, ok := c.table.FreeWay(g, way); ok {
			// Proactively remap it to a free off-chip slot so the
			// stacked slot stays available for caching (Figure 13).
			dst := c.table.SlotOf(g, free)
			c.table.SwapSlots(g, 0, dst)
			c.stats.ProactiveMoves++
			c.clearSegment(now, g, dst)
			return
		}
		// No free segment left: the group is full, switch to PoM.
		c.endCaching(now, g)
		c.table.SetMode(g, srrt.ModePoM)
		c.table.ResetCounter(g)
		c.clearSegment(now, g, 0)
		return
	}
	// Allocated at an off-chip slot. The slot-0 resident is still free
	// (cache-mode invariant), so the group stays in cache mode.
}

// endCaching writes back a dirty cache copy and drops the cache tag.
func (c *Chameleon) endCaching(now uint64, g addr.Group) {
	if old, dirty, valid := c.table.CacheTag(g); valid {
		if dirty {
			c.moveSegment(now, g, 0, c.table.SlotOf(g, old))
			c.stats.Writebacks++
		}
		c.table.InvalidateCache(g)
	}
}

// ISAFree implements Controller (Figure 10 / Figure 14).
func (c *Chameleon) ISAFree(now uint64, seg addr.Seg) {
	c.stats.ISAFrees++
	g, way := c.space.GroupOf(seg)
	t := c.metaLookup(now, g)
	c.table.SetAllocated(g, way, false)

	if c.table.ModeOf(g) == srrt.ModeCache {
		// Already caching; if the freed segment happens to be the one
		// cached, drop the (now meaningless) copy.
		if cw, _, valid := c.table.CacheTag(g); valid && cw == way {
			c.table.InvalidateCache(g)
			c.clearSegment(t, g, 0)
		}
		return
	}

	// Group is in PoM mode.
	if !c.opt && way != 0 {
		// Basic design: frees of off-chip addresses never trigger a
		// transition (Figure 10, flow 1-2-4-5).
		return
	}
	slot := c.table.SlotOf(g, way)
	switch {
	case slot == 0:
		// The freed segment already occupies the stacked slot: it
		// becomes the cache slot with no data movement.
	case !c.opt:
		// Basic design, freed stacked segment is remapped off-chip
		// (Figure 11): swap it back into the stacked slot so the slot
		// is available for caching.
		c.swapSegments(t, g, 0, slot)
		c.stats.ProactiveMoves++
	default:
		// Chameleon-Opt, freed segment lives off-chip: move the
		// allocated stacked resident out to the freed slot, vacating
		// the stacked slot for caching (Figure 14, flow 2-3-4-5-7).
		c.moveSegment(t, g, 0, slot)
		c.table.SwapSlots(g, 0, slot)
		c.stats.ProactiveMoves++
	}
	c.table.SetMode(g, srrt.ModeCache)
	c.table.ResetCounter(g)
	c.clearSegment(t, g, 0)
}

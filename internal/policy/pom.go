package policy

import (
	"chameleon/internal/addr"
	"chameleon/internal/srrt"
)

func init() {
	Register("pom", Descriptor{
		Build: func(bc BuildContext) (Controller, error) {
			ms := bc.Config.MemSys
			sp, err := bc.NewSpace(uint64(ms.SegmentBytes))
			if err != nil {
				return nil, err
			}
			return NewPoM("pom", sp, bc.Fast, bc.Slow, ms.SRTCacheEntries, ms.SwapThreshold, ms.CacheLineBytes)
		},
	})
	// CAMEO remaps at cache-line granularity with first-touch swaps.
	Register("cameo", Descriptor{
		Build: func(bc BuildContext) (Controller, error) {
			ms := bc.Config.MemSys
			sp, err := bc.NewSpace(uint64(ms.CacheLineBytes))
			if err != nil {
				return nil, err
			}
			return NewPoM("cameo", sp, bc.Fast, bc.Slow, ms.SRTCacheEntries, 1, ms.CacheLineBytes)
		},
	})
}

// remapSys is the machinery shared by all SRRT-based controllers (PoM,
// CAMEO-style, Polymorphic, Chameleon, Chameleon-Opt): address
// translation through the remapping table, the on-die SRT metadata
// cache, and the segment swap/move engine with its bandwidth
// accounting.
type remapSys struct {
	space *addr.Space
	table *srrt.Table
	meta  *srrt.MetaCache
	fast  Mem
	slow  Mem

	segBytes  int
	lineBytes int
	threshold int // PoM competing-counter swap threshold
	clearing  bool

	// Finite in-transit swap buffers: optional background transfers
	// (threshold swaps, cache fills) are skipped while the engine is
	// more than maxBacklog cycles behind, preventing segment traffic
	// from drowning demand accesses.
	xferBacklog uint64 // completion cycle of the latest transfer
	maxBacklog  uint64

	// fastForward suppresses device traffic (but not metadata updates)
	// while the simulator fast-forwards to the region of interest.
	fastForward bool

	stats Stats
}

// congestible is implemented by devices that can report data-bus
// congestion (dram.Device does).
type congestible interface {
	QueueDelay(now uint64) uint64
}

// canTransfer reports whether the swap engine can accept an optional
// background transfer at the given cycle: its own in-transit buffers
// must have drained and the devices must not be badly congested —
// modelling the paper's "drained opportunistically" write buffers.
func (r *remapSys) canTransfer(now uint64) bool {
	if r.xferBacklog > now+r.maxBacklog {
		return false
	}
	for _, m := range [2]Mem{r.fast, r.slow} {
		if c, ok := m.(congestible); ok && c.QueueDelay(now) > r.maxBacklog {
			return false
		}
	}
	return true
}

// SetFastForward toggles fast-forward mode: remapping metadata is still
// maintained, but segment transfers and clears do not consume simulated
// DRAM bandwidth. Used while the simulator warms state up to the region
// of interest.
func (r *remapSys) SetFastForward(v bool) { r.fastForward = v }

func newRemapSys(space *addr.Space, fast, slow Mem, metaEntries, threshold, lineBytes int, clearing bool) (*remapSys, error) {
	table, err := srrt.New(space)
	if err != nil {
		return nil, err
	}
	return &remapSys{
		space:      space,
		table:      table,
		meta:       srrt.NewMetaCache(metaEntries),
		fast:       fast,
		slow:       slow,
		segBytes:   int(space.SegBytes),
		lineBytes:  lineBytes,
		threshold:  threshold,
		clearing:   clearing,
		maxBacklog: 2048,
	}, nil
}

// metaLookup models the SRRT lookup: a miss in the on-die SRT cache
// costs one extra stacked-DRAM access (the table lives in stacked DRAM,
// as in [25]). It returns the cycle at which translation is available.
func (r *remapSys) metaLookup(now uint64, g addr.Group) uint64 {
	if r.meta.Lookup(uint32(g)) {
		r.stats.SRTHits++
		return now
	}
	r.stats.SRTMisses++
	if r.fastForward {
		return now
	}
	return r.fast.Access(now, uint64(g)<<6%r.space.FastBytes, false, 64)
}

// slotMem returns the device and device-local base address of a group
// slot.
func (r *remapSys) slotMem(g addr.Group, slot addr.Way) (Mem, uint64, bool) {
	fast, local := r.space.SlotAddr(g, slot)
	if fast {
		return r.fast, local, true
	}
	return r.slow, local, false
}

// slotAccess performs one demand access to offset within a group slot.
func (r *remapSys) slotAccess(now uint64, g addr.Group, slot addr.Way, offset uint64, write bool) (done uint64, fastHit bool) {
	mem, base, isFast := r.slotMem(g, slot)
	if r.fastForward {
		// Warm-up: state transitions happen, timing is nominal.
		return now + 200, isFast
	}
	return mem.Access(now, base+offset, write, 64), isFast
}

// moveSegment streams one segment from slot src to slot dst (a one-way
// move through the in-transit buffers). It returns the completion
// cycle; the transfer consumes read bandwidth at the source and write
// bandwidth at the destination.
func (r *remapSys) moveSegment(now uint64, g addr.Group, src, dst addr.Way) uint64 {
	r.stats.SwapBytes += uint64(r.segBytes)
	if r.fastForward {
		return now
	}
	sm, sb, _ := r.slotMem(g, src)
	dm, db, _ := r.slotMem(g, dst)
	rd := sm.Stream(now, sb, false, r.segBytes, r.lineBytes)
	wr := dm.Stream(now, db, true, r.segBytes, r.lineBytes)
	done := max(rd, wr)
	if done > r.xferBacklog {
		r.xferBacklog = done
	}
	return done
}

// swapSegments exchanges the contents of two slots (both directions
// move through the fast-swap in-transit buffers [25]) and updates the
// remapping table. It returns the completion cycle of the transfer.
func (r *remapSys) swapSegments(now uint64, g addr.Group, a, b addr.Way) uint64 {
	d1 := r.moveSegment(now, g, a, b)
	d2 := r.moveSegment(now, g, b, a)
	r.table.SwapSlots(g, a, b)
	r.stats.Swaps++
	return max(d1, d2)
}

// clearSegment models the security clearing of a slot on cache<->PoM
// transitions (§V-D2): a background stream of zero writes.
func (r *remapSys) clearSegment(now uint64, g addr.Group, slot addr.Way) {
	if !r.clearing {
		return
	}
	r.stats.ClearedSegments++
	if r.fastForward {
		return
	}
	m, b, _ := r.slotMem(g, slot)
	m.Stream(now, b, true, r.segBytes, r.lineBytes)
}

// pomModeAccess services an access to a group operating in PoM mode:
// translate through the permutation, access the resident slot, and run
// the competing-counter hot-segment detector, swapping when a segment
// crosses the threshold.
func (r *remapSys) pomModeAccess(now uint64, g addr.Group, way addr.Way, offset uint64, write bool, allowSwap bool) (uint64, bool) {
	slot := r.table.SlotOf(g, way)
	done, fastHit := r.slotAccess(now, g, slot, offset, write)
	if !fastHit && allowSwap {
		if r.table.CountAccess(g, way, r.threshold) && r.canTransfer(now) {
			// Swap the hot segment with whatever occupies the stacked
			// slot; the demand access was already serviced
			// critical-word-first from the source, and the transfer
			// bandwidth is charged from the request time (in-transit
			// buffers drain opportunistically). When the buffers are
			// full the swap is deferred: the counter stays saturated
			// and the next access retries.
			r.swapSegments(now, g, 0, slot)
			r.table.ResetCounter(g)
		}
	}
	return done, fastHit
}

func (r *remapSys) recordAccess(now, done uint64, fastHit bool) AccessResult {
	r.stats.Accesses++
	if fastHit {
		r.stats.FastHits++
	}
	r.stats.LatencySum += done - now
	return AccessResult{Done: done, FastHit: fastHit}
}

// PoM is the hardware-managed Part-of-Memory baseline (Sim et al.,
// MICRO 2014): the full stacked+off-chip capacity is OS-visible, a
// segment-restricted remapping table redirects accesses, and a shared
// competing counter per group swaps hot off-chip segments into the
// stacked slot once they cross an access threshold. PoM is agnostic to
// OS free space: ISA-Alloc/ISA-Free are ignored.
type PoM struct {
	*remapSys
	name string
}

// NewPoM builds the PoM controller. threshold is the competing-counter
// swap threshold (the paper's baseline uses a small threshold; CAMEO
// behaviour is approximated with threshold 1 and 64 B segments).
func NewPoM(name string, space *addr.Space, fast, slow Mem, metaEntries, threshold, lineBytes int) (*PoM, error) {
	rs, err := newRemapSys(space, fast, slow, metaEntries, threshold, lineBytes, false)
	if err != nil {
		return nil, err
	}
	return &PoM{remapSys: rs, name: name}, nil
}

// Name implements Controller.
func (p *PoM) Name() string { return p.name }

// OSVisibleBytes implements Controller.
func (p *PoM) OSVisibleBytes() uint64 { return p.space.TotalBytes() }

// Stats implements Controller.
func (p *PoM) Stats() Stats { return p.stats }

// ResetStats implements Controller.
func (p *PoM) ResetStats() { p.stats = Stats{} }

// Access implements Controller.
func (p *PoM) Access(now uint64, phys addr.Phys, write bool) AccessResult {
	g, way := p.space.GroupOf(p.space.SegOf(phys))
	t := p.metaLookup(now, g)
	done, fastHit := p.pomModeAccess(t, g, way, p.space.OffsetIn(phys), write, true)
	return p.recordAccess(now, done, fastHit)
}

// ISAAlloc implements Controller; PoM is free-space agnostic.
func (p *PoM) ISAAlloc(now uint64, seg addr.Seg) { p.stats.ISAAllocs++ }

// ISAFree implements Controller; PoM is free-space agnostic.
func (p *PoM) ISAFree(now uint64, seg addr.Seg) { p.stats.ISAFrees++ }

// Table exposes the remapping table for tests and invariant checks.
func (p *PoM) Table() *srrt.Table { return p.table }

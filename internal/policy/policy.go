// Package policy implements the heterogeneous memory-system designs the
// paper evaluates: flat DDR baselines, a latency-optimised DRAM cache
// (Alloy), hardware-managed Part-of-Memory (PoM, Sim et al. [25]), a
// CAMEO-style fine-grain variant, Polymorphic Memory (Chung patent
// [51]) and the paper's contributions, Chameleon and Chameleon-Opt.
//
// A Controller services the LLC-miss stream (64 B demand reads and
// writebacks addressed by OS-visible physical address) and receives the
// ISA-Alloc / ISA-Free notifications issued by the OS model. All times
// are CPU cycles.
package policy

import (
	"chameleon/internal/addr"
	"chameleon/internal/stats"
)

// Mem is the memory device abstraction the controllers drive.
// *dram.Device and the memtier NVM/CXL devices implement it; tests
// substitute fixed-latency fakes.
type Mem interface {
	// Access performs one transfer and returns its completion cycle.
	Access(now uint64, local uint64, write bool, bytes int) uint64
	// Stream performs a bulk transfer as line-sized accesses.
	Stream(now uint64, local uint64, write bool, bytes, lineBytes int) uint64
}

// TierMem is one level of the memory stack as seen by a controller:
// the device plus the identity a placement policy keys decisions on
// (an NVM tier's kind drives endurance-aware write throttling).
type TierMem struct {
	Name          string
	Kind          string // config.TierDRAM / TierNVM / TierCXL
	CapacityBytes uint64
	Mem           Mem
}

// TierAccounting is implemented by controllers that track per-tier
// demand-access counts (index 0 = nearest tier).
type TierAccounting interface {
	TierAccesses() []uint64
}

// AccessResult describes one serviced demand access.
type AccessResult struct {
	Done    uint64 // cycle at which the demanded data is available
	FastHit bool   // serviced by stacked DRAM
}

// Stats aggregates controller activity.
type Stats struct {
	Accesses uint64 // demand accesses (reads + writes)
	FastHits uint64 // accesses serviced by the stacked DRAM

	Swaps          uint64 // segment swaps (incl. dirty cache evict+fill, per the paper)
	SwapBytes      uint64
	Fills          uint64 // clean cache-mode segment fills
	Writebacks     uint64 // dirty segment writebacks
	ProactiveMoves uint64 // one-way segment moves triggered by ISA-Alloc/Free

	ISAAllocs       uint64
	ISAFrees        uint64
	ClearedSegments uint64 // security clears on cache<->PoM transitions

	SRTHits   uint64
	SRTMisses uint64

	// ThrottledDemotions counts demotions a tiering policy skipped to
	// protect a write-endurance-limited (NVM) tier from hot writers.
	ThrottledDemotions uint64

	LatencySum uint64 // sum over accesses of (Done - now)
}

// HitRate returns the stacked-DRAM hit rate.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.FastHits) / float64(s.Accesses)
}

// AMAT returns the average memory (LLC-miss) access latency in cycles.
func (s Stats) AMAT() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Accesses)
}

// Snapshot flattens the stats into the unified metric shape.
func (s Stats) Snapshot() stats.Snapshot {
	return stats.Snapshot{
		"accesses":            float64(s.Accesses),
		"fast_hits":           float64(s.FastHits),
		"hit_rate":            s.HitRate(),
		"amat_cycles":         s.AMAT(),
		"swaps":               float64(s.Swaps),
		"swap_bytes":          float64(s.SwapBytes),
		"fills":               float64(s.Fills),
		"writebacks":          float64(s.Writebacks),
		"proactive_moves":     float64(s.ProactiveMoves),
		"isa_allocs":          float64(s.ISAAllocs),
		"isa_frees":           float64(s.ISAFrees),
		"cleared_segments":    float64(s.ClearedSegments),
		"srt_hits":            float64(s.SRTHits),
		"srt_misses":          float64(s.SRTMisses),
		"throttled_demotions": float64(s.ThrottledDemotions),
		"latency_sum":         float64(s.LatencySum),
	}
}

// Source adapts a Controller to the unified stats.Source interface.
func Source(c Controller) stats.Source { return ctrlSource{c} }

type ctrlSource struct{ c Controller }

func (s ctrlSource) Name() string             { return s.c.Name() }
func (s ctrlSource) Snapshot() stats.Snapshot { return s.c.Stats().Snapshot() }

// Controller is a heterogeneous memory-system design.
type Controller interface {
	// Name identifies the design (e.g. "pom", "chameleon-opt").
	Name() string
	// Access services one 64 B demand access to OS-visible physical
	// address p, beginning no earlier than now.
	Access(now uint64, p addr.Phys, write bool) AccessResult
	// ISAAlloc notifies the hardware that the OS allocated the segment.
	ISAAlloc(now uint64, seg addr.Seg)
	// ISAFree notifies the hardware that the OS freed the segment.
	ISAFree(now uint64, seg addr.Seg)
	// OSVisibleBytes is the memory capacity exposed to the OS.
	OSVisibleBytes() uint64
	// Stats returns accumulated statistics.
	Stats() Stats
	// ResetStats clears statistics (e.g. after warm-up).
	ResetStats()
}

// ModeDistribution is implemented by controllers with per-group modes
// (Chameleon designs); it reports the fraction of segment groups
// currently operating in cache mode.
type ModeDistribution interface {
	CacheModeFraction() float64
}

package policy

import (
	"testing"

	"chameleon/internal/addr"
)

// fakeMem is a fixed-latency Mem that records traffic, for testing the
// controllers' decisions without DRAM timing noise.
type fakeMem struct {
	lat    uint64
	reads  uint64
	writes uint64
	bytes  uint64
}

func (f *fakeMem) Access(now uint64, local uint64, write bool, bytes int) uint64 {
	if write {
		f.writes++
	} else {
		f.reads++
	}
	f.bytes += uint64(bytes)
	return now + f.lat
}

func (f *fakeMem) Stream(now uint64, local uint64, write bool, bytes, lineBytes int) uint64 {
	for off := 0; off < bytes; off += lineBytes {
		f.Access(now, local+uint64(off), write, lineBytes)
	}
	return now + f.lat
}

// smallSpace builds a tiny address space: groups of 1 stacked + ratio
// off-chip segments of 2 KB.
func smallSpace(t *testing.T, groups, ratio int) *addr.Space {
	t.Helper()
	seg := uint64(2048)
	sp, err := addr.NewSpace(uint64(groups)*seg, uint64(groups*ratio)*seg, seg)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestFlatRouting(t *testing.T) {
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	f := NewFlat("numa", fast, slow, 4096, 16384)
	res := f.Access(0, 100, false)
	if !res.FastHit || res.Done != 10 {
		t.Errorf("low address should hit fast: %+v", res)
	}
	res = f.Access(0, 5000, true)
	if res.FastHit || res.Done != 50 {
		t.Errorf("high address should go off-chip: %+v", res)
	}
	if fast.reads != 1 || slow.writes != 1 {
		t.Errorf("traffic fast=%+v slow=%+v", fast, slow)
	}
	if f.OSVisibleBytes() != 16384 {
		t.Errorf("capacity = %d", f.OSVisibleBytes())
	}
	st := f.Stats()
	if st.Accesses != 2 || st.FastHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.AMAT() != 30 {
		t.Errorf("AMAT = %v, want 30", st.AMAT())
	}
}

func TestFlatWithoutFastDevice(t *testing.T) {
	slow := &fakeMem{lat: 50}
	f := NewFlat("flat-20GB", nil, slow, 0, 1<<20)
	res := f.Access(0, 0, false)
	if res.FastHit {
		t.Error("DDR-only baseline cannot hit fast memory")
	}
	if slow.reads != 1 {
		t.Error("access did not reach the off-chip device")
	}
}

func TestAlloyFillThenHit(t *testing.T) {
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	a, err := NewAlloy(fast, slow, 1<<20, 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	p := addr.Phys(2 << 20)
	res := a.Access(0, p, false)
	if res.FastHit {
		t.Error("cold access should miss")
	}
	res = a.Access(1000, p, false)
	if !res.FastHit {
		t.Error("second access should hit the DRAM cache")
	}
	if a.Stats().Fills != 1 {
		t.Errorf("fills = %d", a.Stats().Fills)
	}
}

func TestAlloyDirtyVictimWriteback(t *testing.T) {
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	a, err := NewAlloy(fast, slow, 1<<20, 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	p := addr.Phys(0)
	conflict := addr.Phys(1 << 20) // same set, different tag
	a.Access(0, p, true)           // install dirty
	w0 := slow.writes
	a.Access(100, conflict, false) // evicts dirty p
	if slow.writes != w0+1 {
		t.Errorf("dirty victim not written back (writes %d -> %d)", w0, slow.writes)
	}
	if a.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", a.Stats().Writebacks)
	}
}

func TestAlloyCapacityIsOffChipOnly(t *testing.T) {
	a, err := NewAlloy(&fakeMem{}, &fakeMem{}, 1<<20, 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	if a.OSVisibleBytes() != 5<<20 {
		t.Errorf("OS-visible = %d, want off-chip only", a.OSVisibleBytes())
	}
}

func TestAlloyRejectsBadGeometry(t *testing.T) {
	if _, err := NewAlloy(&fakeMem{}, &fakeMem{}, 1000, 5000); err == nil {
		t.Error("non power-of-two set count should fail")
	}
}

func newTestPoM(t *testing.T, sp *addr.Space, threshold int) (*PoM, *fakeMem, *fakeMem) {
	t.Helper()
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	p, err := NewPoM("pom", sp, fast, slow, 0, threshold, 64)
	if err != nil {
		t.Fatal(err)
	}
	return p, fast, slow
}

func TestPoMSwapAfterThreshold(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	p, _, _ := newTestPoM(t, sp, 3)
	// Off-chip segment: way 1 of group 0 = segment 4.
	off := addr.Phys(uint64(sp.SegAt(0, 1)) * 2048)
	for i := 0; i < 2; i++ {
		if res := p.Access(uint64(i*100), off, false); res.FastHit {
			t.Fatal("hit before swap")
		}
	}
	if p.Stats().Swaps != 0 {
		t.Fatal("swapped early")
	}
	p.Access(300, off, false) // third access crosses threshold
	if p.Stats().Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", p.Stats().Swaps)
	}
	if res := p.Access(400, off, false); !res.FastHit {
		t.Error("post-swap access should hit stacked DRAM")
	}
	// The displaced stacked segment now lives off-chip.
	stacked := addr.Phys(0)
	if res := p.Access(500, stacked, false); res.FastHit {
		t.Error("displaced segment should be off-chip")
	}
	if err := p.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoMSwapMovesBothSegments(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	p, fast, slow := newTestPoM(t, sp, 1)
	off := addr.Phys(uint64(sp.SegAt(0, 1)) * 2048)
	fr, fw, sr, sw := fast.reads, fast.writes, slow.reads, slow.writes
	p.Access(0, off, false) // threshold 1: swap immediately
	// A full swap streams 32 lines each way on each device.
	if fast.reads-fr != 32 || fast.writes-fw != 32 {
		t.Errorf("fast transfer = (%d,%d), want (32,32)", fast.reads-fr, fast.writes-fw)
	}
	// Slow also did the demand read.
	if slow.reads-sr != 33 || slow.writes-sw != 32 {
		t.Errorf("slow transfer = (%d,%d), want (33,32)", slow.reads-sr, slow.writes-sw)
	}
	if p.Stats().SwapBytes != 4096 {
		t.Errorf("swap bytes = %d, want 4096", p.Stats().SwapBytes)
	}
}

func TestPoMIgnoresISA(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	p, _, _ := newTestPoM(t, sp, 3)
	p.ISAAlloc(0, 0)
	p.ISAFree(0, 0)
	if p.Table().Allocated(0, 0) {
		t.Error("PoM must be free-space agnostic")
	}
	if p.Stats().ISAAllocs != 1 || p.Stats().ISAFrees != 1 {
		t.Error("ISA instruction counts missing")
	}
}

func TestPoMStackedHitRate(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	p, _, _ := newTestPoM(t, sp, 100)
	p.Access(0, addr.Phys(0), false)    // stacked
	p.Access(0, addr.Phys(9000), false) // off-chip (seg 4)
	if hr := p.Stats().HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
}

func TestPoMMetaCacheMissCostsAccess(t *testing.T) {
	sp := smallSpace(t, 4, 2)
	fast := &fakeMem{lat: 10}
	slow := &fakeMem{lat: 50}
	p, err := NewPoM("pom", sp, fast, slow, 2, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Access(0, addr.Phys(0), false)
	// SRT miss (10) then the demand access (10) => 20.
	if res.Done != 20 {
		t.Errorf("cold SRT lookup latency = %d, want 20", res.Done)
	}
	res = p.Access(100, addr.Phys(0), false)
	if res.Done != 110 {
		t.Errorf("warm SRT lookup latency = %d, want 110", res.Done)
	}
	st := p.Stats()
	if st.SRTMisses == 0 || st.SRTHits == 0 {
		t.Errorf("SRT stats = %+v", st)
	}
}

package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"chameleon/internal/addr"
	"chameleon/internal/config"
)

// BuildContext carries everything a registered design needs to
// construct its Controller: the machine configuration and the memory
// tier stack the simulator already built. For flat DDR baselines
// (Descriptor.RequiresBaseline) the simulator sizes the second tier's
// device to BaselineBytes before calling Build.
type BuildContext struct {
	Config config.Config
	// Tiers is the ordered memory stack (nearest first). Devices are
	// *dram.Device / memtier devices in the simulator, fakes in tests.
	Tiers []TierMem
	// Fast and Slow alias Tiers[0].Mem and Tiers[1].Mem — the pair
	// every two-tier design consumes.
	Fast Mem
	Slow Mem
	// BaselineBytes is the OS-visible capacity of a flat baseline
	// (Options.BaselineBytes); zero for every other design.
	BaselineBytes uint64
}

// NewSpace builds the two-device address space at the given remapping
// granularity — the common first step of every SRRT-based design.
func (bc BuildContext) NewSpace(segBytes uint64) (*addr.Space, error) {
	fast, slow := bc.Config.TierCapacity(0), bc.Config.TierCapacity(1)
	if len(bc.Tiers) >= 2 {
		fast, slow = bc.Tiers[0].CapacityBytes, bc.Tiers[1].CapacityBytes
	}
	return addr.NewSpace(fast, slow, segBytes)
}

// Descriptor describes one memory-system design to the rest of the
// system. Registering a descriptor is all it takes for a design to be
// constructible by the simulator, selectable in both CLIs, accepted by
// the server API, and included in experiment sweeps.
type Descriptor struct {
	// Build constructs the design's controller.
	Build func(bc BuildContext) (Controller, error)
	// NeedsISA marks designs that consume the OS's ISA-Alloc/ISA-Free
	// notifications (the Chameleon co-designs); the OS model issues
	// them at SegGranularity.
	NeedsISA bool
	// SegGranularity returns the ISA-notification granularity in bytes.
	// Nil defaults to Config.MemSys.SegmentBytes. Ignored unless
	// NeedsISA is set.
	SegGranularity func(cfg config.Config) uint64
	// RequiresBaseline marks flat DDR baselines: Options.BaselineBytes
	// must be set, and the simulator sizes the off-chip device to it.
	RequiresBaseline bool
	// OSManaged marks designs with no hardware indirection that expose
	// both memories to the OS as NUMA nodes: the OS defaults to
	// first-touch allocation and may attach AutoNUMA migration.
	OSManaged bool
	// MinTiers is the number of memory tiers the design needs. Zero
	// means the classic two; designs that place across deeper stacks
	// (hot/warm/cold) declare 3 or more, and the simulator rejects
	// configurations with fewer tiers than the design exploits.
	MinTiers int
}

// RequiredTiers returns the effective tier floor (MinTiers, defaulting
// to 2).
func (d Descriptor) RequiredTiers() int {
	if d.MinTiers < 2 {
		return 2
	}
	return d.MinTiers
}

// ISASegBytes returns the granularity at which the OS should issue
// ISA-Alloc/ISA-Free notifications for this design under cfg, or 0
// when the design does not consume them.
func (d Descriptor) ISASegBytes(cfg config.Config) uint64 {
	if !d.NeedsISA {
		return 0
	}
	if d.SegGranularity != nil {
		return d.SegGranularity(cfg)
	}
	return uint64(cfg.MemSys.SegmentBytes)
}

var registry = struct {
	sync.RWMutex
	m map[string]Descriptor
}{m: map[string]Descriptor{}}

// Register makes a design constructible under the given name. Each
// design file self-registers from init(), so importing the policy
// package is enough to populate the full catalogue. Register panics on
// an empty name, a nil Build, or a duplicate name — all programming
// errors, caught at process start.
func Register(name string, d Descriptor) {
	if name == "" {
		panic("policy: Register with empty name")
	}
	if d.Build == nil {
		panic(fmt.Sprintf("policy: Register(%q) with nil Build", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("policy: duplicate Register(%q)", name))
	}
	registry.m[name] = d
}

// Lookup resolves a registered design by name. An unknown name returns
// an error listing the valid set.
func Lookup(name string) (Descriptor, error) {
	registry.RLock()
	defer registry.RUnlock()
	d, ok := registry.m[name]
	if !ok {
		return Descriptor{}, fmt.Errorf("policy: unknown design %q (registered: %s)",
			name, strings.Join(namesLocked(), ", "))
	}
	return d, nil
}

// Names returns every registered design name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

// namesLocked lists the registered names; callers hold the registry
// lock.
func namesLocked() []string {
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

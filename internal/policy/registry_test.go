package policy

import (
	"strings"
	"testing"
)

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("flat", Descriptor{Build: func(bc BuildContext) (Controller, error) { return nil, nil }})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with empty name did not panic")
		}
	}()
	Register("", Descriptor{Build: func(bc BuildContext) (Controller, error) { return nil, nil }})
}

func TestRegisterNilBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with nil Build did not panic")
		}
	}()
	Register("nil-build", Descriptor{})
}

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := Lookup("no-such-design")
	if err == nil {
		t.Fatal("Lookup of unknown design succeeded")
	}
	for _, want := range Names() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention registered design %q", err, want)
		}
	}
}

func TestNamesContainsBuiltins(t *testing.T) {
	got := map[string]bool{}
	for _, n := range Names() {
		got[n] = true
	}
	for _, want := range []string{
		"flat", "numa-flat", "alloy", "pom", "cameo",
		"polymorphic", "chameleon", "chameleon-opt",
	} {
		if !got[want] {
			t.Errorf("built-in design %q not registered (have %v)", want, Names())
		}
	}
	// Names must come back sorted for stable CLI help and error text.
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

package addr

import (
	"testing"
	"testing/quick"
)

func mustSpace(t *testing.T, fast, slow, seg uint64) *Space {
	t.Helper()
	s, err := NewSpace(fast, slow, seg)
	if err != nil {
		t.Fatalf("NewSpace(%d,%d,%d): %v", fast, slow, seg, err)
	}
	return s
}

func TestNewSpaceGeometry(t *testing.T) {
	s := mustSpace(t, 4<<20, 20<<20, 2048)
	if s.FastSegs != 2048 {
		t.Errorf("FastSegs = %d, want 2048", s.FastSegs)
	}
	if s.SlowSegs != 10240 {
		t.Errorf("SlowSegs = %d, want 10240", s.SlowSegs)
	}
	if s.Ratio != 5 {
		t.Errorf("Ratio = %d, want 5", s.Ratio)
	}
	if s.Ways() != 6 {
		t.Errorf("Ways = %d, want 6", s.Ways())
	}
	if s.Groups() != s.FastSegs {
		t.Errorf("Groups = %d, want %d", s.Groups(), s.FastSegs)
	}
	if s.TotalBytes() != 24<<20 {
		t.Errorf("TotalBytes = %d, want %d", s.TotalBytes(), 24<<20)
	}
}

func TestNewSpaceErrors(t *testing.T) {
	cases := []struct {
		name             string
		fast, slow, segB uint64
	}{
		{"zero segment", 4096, 4096, 0},
		{"non power-of-two segment", 4096, 4096, 1000},
		{"zero fast", 0, 4096, 1024},
		{"fast not segment multiple", 1536, 4096, 1024},
		{"slow not segment multiple", 2048, 1536, 1024},
		{"slow not fast multiple", 2048, 3072, 1024},
	}
	for _, c := range cases {
		if _, err := NewSpace(c.fast, c.slow, c.segB); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSegOfAndBase(t *testing.T) {
	s := mustSpace(t, 1<<20, 5<<20, 2048)
	if got := s.SegOf(0); got != 0 {
		t.Errorf("SegOf(0) = %d", got)
	}
	if got := s.SegOf(2047); got != 0 {
		t.Errorf("SegOf(2047) = %d", got)
	}
	if got := s.SegOf(2048); got != 1 {
		t.Errorf("SegOf(2048) = %d", got)
	}
	if got := s.BaseOf(3); got != Phys(3*2048) {
		t.Errorf("BaseOf(3) = %d", got)
	}
}

func TestFastRangeClassification(t *testing.T) {
	s := mustSpace(t, 1<<20, 5<<20, 2048)
	if !s.InFast(0) || !s.InFast(Phys(1<<20-1)) {
		t.Error("low addresses should be in fast range")
	}
	if s.InFast(Phys(1 << 20)) {
		t.Error("boundary address should be off-chip")
	}
	if !s.Valid(Phys(6<<20 - 1)) {
		t.Error("last byte should be valid")
	}
	if s.Valid(Phys(6 << 20)) {
		t.Error("address past the end should be invalid")
	}
}

// TestGroupRoundTrip checks that SegAt inverts GroupOf for every
// segment in a small space.
func TestGroupRoundTrip(t *testing.T) {
	s := mustSpace(t, 64<<10, 320<<10, 2048)
	total := s.FastSegs + s.SlowSegs
	for seg := Seg(0); uint32(seg) < total; seg++ {
		g, w := s.GroupOf(seg)
		if got := s.SegAt(g, w); got != seg {
			t.Fatalf("SegAt(GroupOf(%d)) = %d", seg, got)
		}
		if w == 0 != s.SegInFast(seg) {
			t.Fatalf("seg %d: way %d vs SegInFast %v", seg, w, s.SegInFast(seg))
		}
	}
}

// TestGroupRoundTripProperty extends the round-trip to random
// geometries.
func TestGroupRoundTripProperty(t *testing.T) {
	f := func(fastSegsRaw uint16, ratioRaw, segRaw uint8) bool {
		fastSegs := uint64(fastSegsRaw%512) + 1
		ratio := uint64(ratioRaw%7) + 1
		segB := uint64(1024) << (segRaw % 3)
		s, err := NewSpace(fastSegs*segB, fastSegs*ratio*segB, segB)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			seg := Seg(uint64(i*37) % uint64(s.FastSegs+s.SlowSegs))
			g, w := s.GroupOf(seg)
			if s.SegAt(g, w) != seg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlotAddr(t *testing.T) {
	s := mustSpace(t, 64<<10, 320<<10, 2048) // 32 groups
	fast, local := s.SlotAddr(5, 0)
	if !fast || local != 5*2048 {
		t.Errorf("SlotAddr(5,0) = (%v,%d)", fast, local)
	}
	// Way 1 of group 5 is off-chip segment 32+5; its device-local
	// address is its home address minus the fast range.
	fast, local = s.SlotAddr(5, 1)
	wantSeg := uint64(32 + 5)
	if fast || local != wantSeg*2048-(64<<10) {
		t.Errorf("SlotAddr(5,1) = (%v,%d), want (false,%d)", fast, local, wantSeg*2048-(64<<10))
	}
}

func TestOffsetIn(t *testing.T) {
	s := mustSpace(t, 64<<10, 320<<10, 2048)
	if got := s.OffsetIn(Phys(2048 + 100)); got != 100 {
		t.Errorf("OffsetIn = %d, want 100", got)
	}
}

// TestOffChipInterleaving checks the documented group-assignment rule:
// off-chip segment j (0-based past the stacked range) belongs to group
// j mod FastSegs.
func TestOffChipInterleaving(t *testing.T) {
	s := mustSpace(t, 64<<10, 320<<10, 2048)
	for j := uint32(0); j < s.SlowSegs; j++ {
		g, w := s.GroupOf(Seg(s.FastSegs + j))
		if uint32(g) != j%s.FastSegs {
			t.Fatalf("off-chip seg %d: group %d, want %d", j, g, j%s.FastSegs)
		}
		if uint32(w) != 1+j/s.FastSegs {
			t.Fatalf("off-chip seg %d: way %d, want %d", j, w, 1+j/s.FastSegs)
		}
	}
}

// TestSlotAddrBijection: over a whole small space, slot addresses must
// tile each device exactly once (no two slots share storage, nothing
// is skipped).
func TestSlotAddrBijection(t *testing.T) {
	s := mustSpace(t, 32<<10, 160<<10, 2048) // 16 groups, 6 ways
	fastSeen := map[uint64]bool{}
	slowSeen := map[uint64]bool{}
	for g := Group(0); uint32(g) < s.Groups(); g++ {
		for w := 0; w < s.Ways(); w++ {
			fast, local := s.SlotAddr(g, Way(w))
			if local%s.SegBytes != 0 {
				t.Fatalf("slot (%d,%d) not segment aligned: %d", g, w, local)
			}
			if fast {
				if fastSeen[local] {
					t.Fatalf("fast local %d covered twice", local)
				}
				fastSeen[local] = true
			} else {
				if slowSeen[local] {
					t.Fatalf("slow local %d covered twice", local)
				}
				slowSeen[local] = true
			}
		}
	}
	if len(fastSeen) != int(s.FastSegs) {
		t.Errorf("fast slots = %d, want %d", len(fastSeen), s.FastSegs)
	}
	if len(slowSeen) != int(s.SlowSegs) {
		t.Errorf("slow slots = %d, want %d", len(slowSeen), s.SlowSegs)
	}
	for local := range fastSeen {
		if local >= s.FastBytes {
			t.Fatalf("fast local %d beyond device", local)
		}
	}
	for local := range slowSeen {
		if local >= s.SlowBytes {
			t.Fatalf("slow local %d beyond device", local)
		}
	}
}

// TestSegOfBaseOfInverse is the address round trip at segment
// granularity.
func TestSegOfBaseOfInverse(t *testing.T) {
	f := func(raw uint32) bool {
		s, err := NewSpace(64<<10, 320<<10, 2048)
		if err != nil {
			return false
		}
		p := Phys(uint64(raw) % s.TotalBytes())
		seg := s.SegOf(p)
		base := s.BaseOf(seg)
		return base <= p && uint64(p) < uint64(base)+s.SegBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

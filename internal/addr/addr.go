// Package addr defines the physical address-space layout of the
// heterogeneous memory system and the segment/segment-group arithmetic
// used by the remapping hardware.
//
// The OS-visible physical address space is laid out as in the paper:
// stacked-DRAM addresses occupy [0, FastBytes) and off-chip addresses
// occupy [FastBytes, FastBytes+SlowBytes). The space is divided into
// fixed-size segments; one stacked segment plus Ratio off-chip segments
// form a segment group, and hardware remapping is restricted to segments
// within the same group (Segment-Restricted Remapping, Sim et al. [25]).
package addr

import "fmt"

// Phys is a physical byte address as seen by the OS (before hardware
// remapping).
type Phys uint64

// Seg is a global segment index: Phys >> SegShift.
type Seg uint32

// Group identifies a segment group.
type Group uint32

// Way is a slot index within a segment group. Way 0 is the stacked-DRAM
// slot; ways 1..Ratio are off-chip slots.
type Way uint8

// Space describes the physical address space and segment-group geometry.
type Space struct {
	FastBytes uint64 // stacked DRAM capacity
	SlowBytes uint64 // off-chip DRAM capacity
	SegBytes  uint64 // segment size
	SegShift  uint   // log2(SegBytes)

	FastSegs uint32 // number of stacked segments == number of groups
	SlowSegs uint32 // number of off-chip segments
	Ratio    uint8  // off-chip segments per group (SlowSegs / FastSegs)
}

// NewSpace builds the address-space geometry. The off-chip capacity must
// be an exact integer multiple of the stacked capacity so that every
// group has the same number of ways.
func NewSpace(fastBytes, slowBytes, segBytes uint64) (*Space, error) {
	if segBytes == 0 || segBytes&(segBytes-1) != 0 {
		return nil, fmt.Errorf("addr: segment size must be a power of two, got %d", segBytes)
	}
	if fastBytes == 0 || fastBytes%segBytes != 0 || slowBytes%segBytes != 0 {
		return nil, fmt.Errorf("addr: capacities (%d, %d) must be non-zero multiples of the segment size %d", fastBytes, slowBytes, segBytes)
	}
	if slowBytes%fastBytes != 0 {
		return nil, fmt.Errorf("addr: off-chip capacity %d must be a multiple of stacked capacity %d", slowBytes, fastBytes)
	}
	var shift uint
	for s := segBytes; s > 1; s >>= 1 {
		shift++
	}
	sp := &Space{
		FastBytes: fastBytes,
		SlowBytes: slowBytes,
		SegBytes:  segBytes,
		SegShift:  shift,
		FastSegs:  uint32(fastBytes / segBytes),
		SlowSegs:  uint32(slowBytes / segBytes),
		Ratio:     uint8(slowBytes / fastBytes),
	}
	if uint64(sp.FastSegs)*(1+uint64(sp.Ratio)) != uint64(sp.FastSegs)+uint64(sp.SlowSegs) {
		return nil, fmt.Errorf("addr: inconsistent geometry")
	}
	return sp, nil
}

// TotalBytes returns the OS-visible capacity when both devices are
// exposed as part of memory.
func (s *Space) TotalBytes() uint64 { return s.FastBytes + s.SlowBytes }

// Ways returns the number of segments per group (1 + Ratio).
func (s *Space) Ways() int { return int(s.Ratio) + 1 }

// Groups returns the number of segment groups.
func (s *Space) Groups() uint32 { return s.FastSegs }

// SegOf returns the segment containing the physical address.
func (s *Space) SegOf(p Phys) Seg { return Seg(uint64(p) >> s.SegShift) }

// BaseOf returns the first physical address of a segment.
func (s *Space) BaseOf(seg Seg) Phys { return Phys(uint64(seg) << s.SegShift) }

// InFast reports whether the physical address lies in the stacked-DRAM
// address range.
func (s *Space) InFast(p Phys) bool { return uint64(p) < s.FastBytes }

// SegInFast reports whether the segment's home address lies in the
// stacked-DRAM range.
func (s *Space) SegInFast(seg Seg) bool { return uint32(seg) < s.FastSegs }

// Valid reports whether p is inside the OS-visible address space.
func (s *Space) Valid(p Phys) bool { return uint64(p) < s.TotalBytes() }

// GroupOf returns the segment group and way of a segment's home slot.
// Stacked segment g is way 0 of group g; off-chip segment index j
// (0-based past the stacked range) is way 1 + j/FastSegs of group
// j % FastSegs, interleaving off-chip segments across groups.
func (s *Space) GroupOf(seg Seg) (Group, Way) {
	if s.SegInFast(seg) {
		return Group(seg), 0
	}
	j := uint32(seg) - s.FastSegs
	return Group(j % s.FastSegs), Way(1 + j/s.FastSegs)
}

// SegAt returns the segment whose home slot is the given way of the
// given group (the inverse of GroupOf).
func (s *Space) SegAt(g Group, w Way) Seg {
	if w == 0 {
		return Seg(g)
	}
	return Seg(s.FastSegs + uint32(g) + (uint32(w)-1)*s.FastSegs)
}

// SlotAddr returns the physical DRAM location (device-local address) of
// a group's way: way 0 is a stacked-DRAM address, ways >= 1 are off-chip
// addresses relative to the start of the off-chip device.
//
// device: true = stacked, false = off-chip. local is the byte offset
// within that device.
func (s *Space) SlotAddr(g Group, w Way) (fast bool, local uint64) {
	seg := s.SegAt(g, w)
	base := uint64(s.BaseOf(seg))
	if w == 0 {
		return true, base
	}
	return false, base - s.FastBytes
}

// OffsetIn returns the byte offset of p within its segment.
func (s *Space) OffsetIn(p Phys) uint64 { return uint64(p) & (s.SegBytes - 1) }

// Package cache implements a generic set-associative, write-back,
// write-allocate cache with LRU replacement. It is used to model the
// paper's three-level hierarchy (32 KB L1, 256 KB private L2, 12 MB
// shared L3) that filters core accesses into the LLC-miss stream seen
// by the heterogeneous memory system.
package cache

import (
	"fmt"

	"chameleon/internal/stats"
)

// Victim describes a line evicted by a fill.
type Victim struct {
	Addr  uint64 // base address of the evicted line
	Dirty bool
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Snapshot flattens the stats into the unified metric shape.
func (s Stats) Snapshot() stats.Snapshot {
	return stats.Snapshot{
		"accesses":   float64(s.Accesses),
		"hits":       float64(s.Hits),
		"misses":     float64(s.Misses),
		"writebacks": float64(s.Writebacks),
		"miss_rate":  s.MissRate(),
	}
}

type line struct {
	tag   uint64
	lru   uint64
	valid bool
	dirty bool
}

// Cache is a single cache level.
type Cache struct {
	name      string
	lineShift uint
	sets      uint64
	ways      int
	lines     []line // sets * ways, set-major
	tick      uint64
	stats     Stats
}

// New builds a cache of sizeBytes organised as ways-associative sets of
// lineBytes lines. The set count must come out a power of two.
func New(name string, sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: parameters must be positive", name)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size must be a power of two", name)
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets <= 0 {
		return nil, fmt.Errorf("cache %s: set count %d must be positive", name, sets)
	}
	var shift uint
	for l := lineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		name:      name,
		lineShift: shift,
		sets:      uint64(sets),
		ways:      ways,
		lines:     make([]line, sets*ways),
	}, nil
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics without flushing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Snapshot implements stats.Source (Name is the cache level's name).
func (c *Cache) Snapshot() stats.Snapshot { return c.stats.Snapshot() }

func (c *Cache) set(addr uint64) (base int, tag uint64) {
	blk := addr >> c.lineShift
	return int(blk%c.sets) * c.ways, blk
}

// Access looks up addr; on a miss the line is filled (write-allocate)
// and the evicted victim, if any, is returned. The returned hit flag is
// false on misses. A write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim, hasVictim bool) {
	c.stats.Accesses++
	c.tick++
	base, tag := c.set(addr)
	set := c.lines[base : base+c.ways]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			return true, Victim{}, false
		}
	}
	c.stats.Misses++

	// Choose a fill slot: first invalid, else LRU.
	slot := 0
	for i := range set {
		if !set[i].valid {
			slot = i
			break
		}
		if set[i].lru < set[slot].lru {
			slot = i
		}
	}
	if set[slot].valid {
		victim = Victim{Addr: set[slot].tag << c.lineShift, Dirty: set[slot].dirty}
		hasVictim = true
		if victim.Dirty {
			c.stats.Writebacks++
		}
	}
	set[slot] = line{tag: tag, lru: c.tick, valid: true, dirty: write}
	return false, victim, hasVictim
}

// Probe reports whether addr is present without disturbing LRU or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	base, tag := c.set(addr)
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr if present, returning whether the dropped line
// was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	base, tag := c.set(addr)
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasDirty = set[i].dirty
			set[i] = line{}
			return wasDirty
		}
	}
	return false
}

// Flush invalidates the entire cache, returning the number of dirty
// lines discarded.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

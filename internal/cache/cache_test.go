package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, size, ways, line int) *Cache {
	t.Helper()
	c, err := New("t", size, ways, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBasicHitMiss(t *testing.T) {
	c := mustCache(t, 4096, 4, 64) // 16 sets
	if hit, _, _ := c.Access(0, false); hit {
		t.Error("first access should miss")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("second access should hit")
	}
	if hit, _, _ := c.Access(32, false); !hit {
		t.Error("same-line access should hit")
	}
	if hit, _, _ := c.Access(64, false); hit {
		t.Error("next line should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustCache(t, 2*64, 2, 64) // 1 set, 2 ways
	c.Access(0, false)
	c.Access(64, false)
	c.Access(0, false)   // touch 0 again; 64 is now LRU
	c.Access(128, false) // evicts 64
	if !c.Probe(0) {
		t.Error("line 0 (MRU) should survive")
	}
	if c.Probe(64) {
		t.Error("line 64 (LRU) should be evicted")
	}
	if !c.Probe(128) {
		t.Error("line 128 should be resident")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := mustCache(t, 2*64, 2, 64)
	c.Access(0, true) // dirty
	c.Access(64, false)
	_, v, hv := c.Access(128, false) // evicts 0
	if !hv || v.Addr != 0 || !v.Dirty {
		t.Errorf("victim = %+v (hv=%v), want dirty line 0", v, hv)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanVictimNotWrittenBack(t *testing.T) {
	c := mustCache(t, 2*64, 2, 64)
	c.Access(0, false)
	c.Access(64, false)
	_, v, hv := c.Access(128, false)
	if !hv || v.Dirty {
		t.Errorf("victim = %+v, want clean", v)
	}
	if c.Stats().Writebacks != 0 {
		t.Error("clean eviction should not count a writeback")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mustCache(t, 2*64, 2, 64)
	c.Access(0, false)
	c.Access(0, true) // write hit
	c.Access(64, false)
	_, v, _ := c.Access(128, false) // evict 0
	if !v.Dirty {
		t.Error("write hit should have marked the line dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, 4096, 4, 64)
	c.Access(0, true)
	if !c.Invalidate(0) {
		t.Error("invalidate should report dirty")
	}
	if c.Probe(0) {
		t.Error("line should be gone")
	}
	if c.Invalidate(0) {
		t.Error("second invalidate should find nothing dirty")
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t, 4096, 4, 64)
	c.Access(0, true)
	c.Access(64, false)
	if d := c.Flush(); d != 1 {
		t.Errorf("Flush dirty count = %d, want 1", d)
	}
	if c.Probe(0) || c.Probe(64) {
		t.Error("flush should empty the cache")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 12 MB, 16 ways, 64 B lines => 12288 sets (Table I's L3).
	c := mustCache(t, 12<<20, 16, 64)
	c.Access(0, false)
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("L3-geometry cache broken")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("x", 0, 4, 64); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := New("x", 4096, 4, 48); err == nil {
		t.Error("non power-of-two line should fail")
	}
	if _, err := New("x", 64, 4, 64); err == nil {
		t.Error("cache smaller than one set should fail")
	}
}

// TestCapacityProperty: after any access sequence, the number of
// resident distinct lines cannot exceed the cache's line capacity, and
// a working set no larger than one set's associativity always hits
// after the first touch.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New("q", 2048, 4, 64) // 32 lines
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		resident := 0
		for line := uint64(0); line <= 0xFFFF>>6; line++ {
			if c.Probe(line << 6) {
				resident++
			}
		}
		return resident <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSmallWorkingSetAlwaysHits(t *testing.T) {
	c := mustCache(t, 4096, 4, 64)
	// 4 lines in the same set (set 0 of 16): exactly associativity.
	lines := []uint64{0, 16 * 64, 32 * 64, 48 * 64}
	for _, l := range lines {
		c.Access(l, false)
	}
	st0 := c.Stats()
	for i := 0; i < 100; i++ {
		for _, l := range lines {
			c.Access(l, false)
		}
	}
	if got := c.Stats().Misses - st0.Misses; got != 0 {
		t.Errorf("resident working set missed %d times", got)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := mustCache(t, 4096, 4, 64)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("contents should survive a stats reset")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s = Stats{Accesses: 10, Misses: 4}
	if s.MissRate() != 0.4 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

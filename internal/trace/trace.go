// Package trace generates deterministic synthetic memory-reference
// streams that stand in for the paper's SPEC2006 / NAS / Mantevo /
// stream workloads. A Profile is calibrated by its target LLC-MPKI and
// memory footprint (Table II of the paper) plus locality knobs; the
// generated stream is fed through the simulated cache hierarchy, so
// the achieved LLC-MPKI is an emergent, testable property.
package trace

import (
	"fmt"

	"chameleon/internal/rng"
)

// Profile describes one synthetic application.
type Profile struct {
	Name           string
	FootprintBytes uint64  // per-process virtual footprint
	TargetLLCMPKI  float64 // Table II LLC misses per kilo-instruction
	RefPKI         float64 // L1 references per kilo-instruction
	StreamFrac     float64 // fraction of cold refs that stream sequentially
	HotFrac        float64 // fraction of non-stream cold refs hitting the hot region
	HotRegionFrac  float64 // hot region size as a fraction of the footprint
	WriteFrac      float64 // fraction of references that are writes
	// BurstLines is the mean number of consecutive references a
	// non-stream cold access keeps within one 2 KB segment before
	// moving on (spatial+temporal locality; 0 means the default of 16).
	// Pointer-chasing codes use small values, stencils large ones.
	BurstLines int
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.FootprintBytes < 1<<16 {
		return fmt.Errorf("trace %s: footprint %d too small", p.Name, p.FootprintBytes)
	}
	if p.RefPKI <= 0 {
		return fmt.Errorf("trace %s: RefPKI must be positive", p.Name)
	}
	if p.TargetLLCMPKI < 0 || p.TargetLLCMPKI > p.RefPKI {
		return fmt.Errorf("trace %s: target MPKI %.2f out of range (RefPKI %.2f)", p.Name, p.TargetLLCMPKI, p.RefPKI)
	}
	for _, f := range []float64{p.StreamFrac, p.HotFrac, p.HotRegionFrac, p.WriteFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("trace %s: fractions must lie in [0,1]", p.Name)
		}
	}
	return nil
}

// Scale returns a copy of p with the footprint divided by div,
// preserving every other characteristic. Used to shrink experiments
// together with the machine's Scale divisor.
func (p Profile) Scale(div uint64) Profile {
	if div == 0 {
		div = 1
	}
	p.FootprintBytes /= div
	if p.FootprintBytes < 1<<16 {
		p.FootprintBytes = 1 << 16
	}
	return p
}

// MaxVAddr returns an inclusive upper bound on the virtual addresses
// the synthetic generator can emit for this profile: the footprint
// itself, or the end of the hot region when HotRegionFrac pushes it
// past the footprint (the hot region starts at footprint/4). Replayed
// traces recorded from synthetic streams obey the same bound. The
// parallel engine uses it to prove a run can never evict a page.
func (p Profile) MaxVAddr() uint64 {
	hot := uint64(float64(p.FootprintBytes)*p.HotRegionFrac) &^ 63
	if hot < 4096 {
		hot = 4096
	}
	base := (p.FootprintBytes / 4) &^ 63
	return max(p.FootprintBytes, base+hot)
}

// Ref is one generated memory reference.
type Ref struct {
	Gap   uint64 // instructions executed since the previous reference
	VAddr uint64
	Write bool
}

// Source produces one core's reference stream. *Stream (the synthetic
// generator) and internal/memtrace's trace replay both implement it,
// so the simulator drives synthetic and recorded workloads through the
// same per-core interface.
type Source interface {
	// Next produces the next reference. Sources never run dry: the
	// synthetic generator is infinite and trace replay wraps around.
	Next() Ref
	// Profile describes the stream (name, footprint, and — for
	// synthetic sources — the generator knobs).
	Profile() Profile
}

// Sink receives a run's per-core reference streams as they are
// consumed, e.g. to record them (internal/memtrace's Writer). Begin is
// called once, before any references flow, with the run's workload
// name and the resolved per-core profiles; Emit is the hot path and
// must not block or allocate. Emit-time failures latch inside the sink
// and surface from its own close/flush API. Callers guarantee Emit is
// invoked from a single goroutine at a time, in the simulation's
// committed step order — sim's parallel engine buffers worker-side
// references and has its sequencer flush them in that order — so
// implementations need no locking.
type Sink interface {
	Begin(runName string, cores []Profile) error
	Emit(core int, r Ref)
}

// Stream generates the reference stream for one process.
type Stream struct {
	prof Profile
	rnd  *rng.RNG

	coldProb   float64 // probability that a ref bypasses the hot set
	gapMean    uint64  // mean instructions between refs
	streamPtr  uint64  // sequential cursor (line granularity)
	hotBytes   uint64  // size of the upper hot region
	hotBase    uint64  // start of the hot region
	cacheHot   uint64  // tiny per-core region that stays cache-resident
	totalLines uint64

	// current burst state
	burstLeft      int
	burstSeg       uint64 // segment index (segBytes units)
	burstLine      uint64 // walking line cursor within the segment
	burstMean      int
	burstTransient bool // current burst targets one-shot data
}

// segBytes is the generator's notion of a spatial-locality granule,
// matching the paper's 2 KB segment.
const segBytes = 2048

// NewStream builds a generator; distinct seeds give statistically
// independent but reproducible copies (the paper's rate mode).
func NewStream(p Profile, seed uint64) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hot := uint64(float64(p.FootprintBytes) * p.HotRegionFrac)
	hot &^= 63
	if hot < 4096 {
		hot = 4096
	}
	burst := p.BurstLines
	if burst <= 0 {
		burst = 16
	}
	s := &Stream{
		prof:       p,
		rnd:        rng.New(seed),
		coldProb:   p.TargetLLCMPKI / p.RefPKI,
		gapMean:    uint64(1000 / p.RefPKI),
		hotBytes:   hot,
		hotBase:    (p.FootprintBytes / 4) &^ 63,
		cacheHot:   16 << 10, // fits in L1
		totalLines: p.FootprintBytes >> 6,
		burstMean:  burst,
	}
	if s.gapMean == 0 {
		s.gapMean = 1
	}
	s.streamPtr = s.rnd.Uint64n(s.totalLines)
	return s, nil
}

// Profile returns the stream's profile.
func (s *Stream) Profile() Profile { return s.prof }

// Next produces the next reference.
func (s *Stream) Next() Ref {
	// Gap: uniform in [gapMean/2, 3*gapMean/2) keeps the mean while
	// de-synchronising the cores.
	gap := s.gapMean/2 + s.rnd.Uint64n(s.gapMean) + 1

	var va uint64
	transient := false
	if s.rnd.Float64() < s.coldProb {
		va, transient = s.coldRef()
	} else {
		// Warm reference: lands in a tiny cache-resident region.
		va = s.rnd.Uint64n(s.cacheHot) &^ 63
	}
	// Writes concentrate on re-referenced (warm/hot/stream) data;
	// transient one-shot reads are read-mostly, as in real codes where
	// stores target the live working set.
	wf := s.prof.WriteFrac
	if transient {
		wf *= 0.15
	}
	write := s.rnd.Float64() < wf
	return Ref{Gap: gap, VAddr: va, Write: write}
}

// cold produces a reference that misses the cache hierarchy. Three
// behaviours: sequential streaming, and segment-granularity bursts to
// either the hot region (re-referenced over the run) or a uniformly
// random segment. Bursts model the spatial/temporal locality that PoM
// segments and Chameleon's cache mode exploit; repeated visits to hot
// segments give line-granularity designs (Alloy, CAMEO) their reuse.
func (s *Stream) coldRef() (va uint64, transient bool) {
	const segLines = segBytes / 64
	if s.burstLeft > 0 {
		s.burstLeft--
		s.burstLine = (s.burstLine + 1) % segLines
		return s.burstSeg*segBytes + s.burstLine<<6, s.burstTransient
	}
	if s.rnd.Float64() < s.prof.StreamFrac {
		s.streamPtr++
		if s.streamPtr >= s.totalLines {
			s.streamPtr = 0
		}
		return s.streamPtr << 6, false
	}
	// Start a new burst: a walk of distinct lines within one segment,
	// of length uniform in [1, min(2*burstMean, segLines)], starting
	// from a random line.
	maxLen := min(2*s.burstMean-1, segLines)
	s.burstLeft = s.rnd.Intn(maxLen) + 1
	if s.rnd.Float64() < s.prof.HotFrac {
		s.burstSeg = (s.hotBase + s.rnd.Uint64n(s.hotBytes)) / segBytes
		s.burstTransient = false
	} else {
		s.burstSeg = s.rnd.Uint64n(s.prof.FootprintBytes) / segBytes
		s.burstTransient = true
	}
	s.burstLine = s.rnd.Uint64n(segLines)
	s.burstLeft--
	return s.burstSeg*segBytes + s.burstLine<<6, s.burstTransient
}

package trace

import (
	"testing"
	"testing/quick"
)

func validProfile() Profile {
	return Profile{
		Name:           "test",
		FootprintBytes: 8 << 20,
		TargetLLCMPKI:  10,
		RefPKI:         100,
		StreamFrac:     0.3,
		HotFrac:        0.8,
		HotRegionFrac:  0.1,
		WriteFrac:      0.3,
		BurstLines:     16,
	}
}

func TestValidate(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Profile){
		func(p *Profile) { p.FootprintBytes = 100 },
		func(p *Profile) { p.RefPKI = 0 },
		func(p *Profile) { p.TargetLLCMPKI = 200 }, // above RefPKI
		func(p *Profile) { p.TargetLLCMPKI = -1 },
		func(p *Profile) { p.StreamFrac = 1.5 },
		func(p *Profile) { p.WriteFrac = -0.1 },
	}
	for i, mut := range bad {
		p := validProfile()
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestScale(t *testing.T) {
	p := validProfile()
	s := p.Scale(4)
	if s.FootprintBytes != p.FootprintBytes/4 {
		t.Errorf("scaled footprint = %d", s.FootprintBytes)
	}
	if s.TargetLLCMPKI != p.TargetLLCMPKI {
		t.Error("MPKI must not change under scaling")
	}
	tiny := p.Scale(1 << 40)
	if tiny.FootprintBytes < 1<<16 {
		t.Error("scale must floor the footprint")
	}
	if p.Scale(0).FootprintBytes != p.FootprintBytes {
		t.Error("scale 0 should behave as 1")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewStream(validProfile(), 7)
	b, _ := NewStream(validProfile(), 7)
	for i := 0; i < 10000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("streams diverged at ref %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := NewStream(validProfile(), 1)
	b, _ := NewStream(validProfile(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().VAddr == b.Next().VAddr {
			same++
		}
	}
	if same > 900 {
		t.Errorf("streams with different seeds nearly identical (%d/1000)", same)
	}
}

// TestAddressesWithinFootprint: every generated address lies inside the
// virtual footprint (property over seeds).
func TestAddressesWithinFootprint(t *testing.T) {
	f := func(seed uint64) bool {
		p := validProfile()
		s, err := NewStream(p, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			if s.Next().VAddr >= p.FootprintBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddressesLineAligned(t *testing.T) {
	s, _ := NewStream(validProfile(), 3)
	for i := 0; i < 5000; i++ {
		if r := s.Next(); r.VAddr%64 != 0 {
			t.Fatalf("unaligned address %#x", r.VAddr)
		}
	}
}

// TestColdFractionMatchesTarget: the fraction of references leaving the
// warm region approximates TargetLLCMPKI/RefPKI.
func TestColdFractionMatchesTarget(t *testing.T) {
	p := validProfile()
	s, _ := NewStream(p, 11)
	cold := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if s.Next().VAddr >= s.cacheHot {
			cold++
		}
	}
	got := float64(cold) / n
	want := p.TargetLLCMPKI / p.RefPKI
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("cold fraction = %.4f, want ~%.4f", got, want)
	}
}

// TestGapMeanMatchesRefPKI: the average instruction gap approximates
// 1000/RefPKI.
func TestGapMeanMatchesRefPKI(t *testing.T) {
	p := validProfile()
	s, _ := NewStream(p, 13)
	var sum uint64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Next().Gap
	}
	mean := float64(sum) / n
	want := 1000 / p.RefPKI
	if mean < want*0.85 || mean > want*1.25 {
		t.Errorf("gap mean = %.2f, want ~%.2f", mean, want)
	}
}

// TestWriteFraction: overall write ratio is close to (but, because
// transient bursts are read-mostly, not above) WriteFrac.
func TestWriteFraction(t *testing.T) {
	p := validProfile()
	s, _ := NewStream(p, 17)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	if got < p.WriteFrac*0.7 || got > p.WriteFrac*1.1 {
		t.Errorf("write fraction = %.3f, want near %.3f", got, p.WriteFrac)
	}
}

// TestBurstStaysInSegment: consecutive non-stream cold refs stay inside
// one 2 KB segment for the duration of a burst.
func TestBurstStaysInSegment(t *testing.T) {
	p := validProfile()
	p.StreamFrac = 0 // bursts only
	s, _ := NewStream(p, 19)
	prevSeg := uint64(1 << 62)
	changes, colds := 0, 0
	for i := 0; i < 50000; i++ {
		r := s.Next()
		if r.VAddr < s.cacheHot {
			continue // warm ref
		}
		colds++
		seg := r.VAddr / segBytes
		if seg != prevSeg {
			changes++
			prevSeg = seg
		}
	}
	// With mean burst 16, segment changes should be ~colds/16.
	if changes > colds/6 {
		t.Errorf("segment changed %d times over %d cold refs; bursts not coherent", changes, colds)
	}
}

// TestStreamSequential: with StreamFrac 1 the cold stream walks
// consecutive lines.
func TestStreamSequential(t *testing.T) {
	p := validProfile()
	p.StreamFrac = 1
	p.TargetLLCMPKI = p.RefPKI // all refs cold
	s, _ := NewStream(p, 23)
	prev := s.Next().VAddr
	for i := 0; i < 1000; i++ {
		cur := s.Next().VAddr
		if cur != prev+64 && cur != 0 { // wrap allowed
			t.Fatalf("stream jumped from %#x to %#x", prev, cur)
		}
		prev = cur
	}
}

func TestHotRegionPlacement(t *testing.T) {
	p := validProfile()
	s, _ := NewStream(p, 29)
	if s.hotBase != (p.FootprintBytes/4)&^63 {
		t.Errorf("hot base = %#x, want footprint/4", s.hotBase)
	}
	if s.hotBytes < 4096 {
		t.Error("hot region too small")
	}
}

// TestHotShareOfColdTraffic: hot-region references dominate non-stream
// cold traffic per the HotFrac knob.
func TestHotShareOfColdTraffic(t *testing.T) {
	p := validProfile()
	p.StreamFrac = 0
	p.HotFrac = 0.8
	s, _ := NewStream(p, 31)
	hot, cold := 0, 0
	for i := 0; i < 300000; i++ {
		r := s.Next()
		if r.VAddr < s.cacheHot {
			continue
		}
		cold++
		if r.VAddr >= s.hotBase && r.VAddr < s.hotBase+s.hotBytes {
			hot++
		}
	}
	share := float64(hot) / float64(cold)
	if share < 0.7 || share > 0.9 {
		t.Errorf("hot share = %.3f, want ~0.8", share)
	}
}

// TestTransientWritesRarer: one-shot (transient) cold bursts must carry
// far fewer writes than the overall WriteFrac (stores target live
// data).
func TestTransientWritesRarer(t *testing.T) {
	p := validProfile()
	p.StreamFrac = 0
	p.HotFrac = 0.5
	p.WriteFrac = 0.4
	s, _ := NewStream(p, 37)
	var hotW, hotN, trW, trN int
	for i := 0; i < 300000; i++ {
		r := s.Next()
		if r.VAddr < s.cacheHot {
			continue
		}
		inHot := r.VAddr >= s.hotBase && r.VAddr < s.hotBase+s.hotBytes
		if inHot {
			hotN++
			if r.Write {
				hotW++
			}
		} else {
			trN++
			if r.Write {
				trW++
			}
		}
	}
	hotFrac := float64(hotW) / float64(hotN)
	trFrac := float64(trW) / float64(trN)
	if trFrac >= hotFrac/2 {
		t.Errorf("transient writes (%.3f) should be well below hot writes (%.3f)", trFrac, hotFrac)
	}
}

// TestBurstLengthCapped: a single burst never exceeds a segment's line
// count, even with an absurd BurstLines setting. (Two consecutive
// bursts may legitimately pick the same segment, so this checks the
// generator's internal burst counter rather than observed run length.)
func TestBurstLengthCapped(t *testing.T) {
	p := validProfile()
	p.BurstLines = 1000 // silly value must be capped at segment size
	p.StreamFrac = 0
	p.TargetLLCMPKI = p.RefPKI // all cold
	s, _ := NewStream(p, 41)
	for i := 0; i < 10000; i++ {
		s.Next()
		if s.burstLeft > int(segBytes/64) {
			t.Fatalf("burst counter %d exceeds %d lines", s.burstLeft, segBytes/64)
		}
	}
}

package sim

import (
	"context"
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/osmodel"
	"chameleon/internal/policy"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// parOpts builds the standard options for the parallel-equivalence
// runs: the default machine, a footprint small enough that run-ahead
// translation is provably stable for every registered policy, and a
// policy-agnostic baseline capacity.
func parOpts(t testing.TB, kind string, threads int) Options {
	t.Helper()
	const scale = 512
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(scale)
	if desc, err := policy.Lookup(kind); err == nil {
		for cfg.NumTiers() < desc.RequiredTiers() {
			cfg = cfg.WithNVMTier(32 * config.GB / scale)
		}
	}
	return Options{
		Config:             cfg,
		Policy:             PolicyKind(kind),
		Workload:           prof.Scale(4 * scale),
		Seed:               29,
		WarmupInstructions: 100_000,
		Threads:            threads,
		BaselineBytes:      24 * config.GB / scale,
	}
}

// normEngine returns a copy of r with the run-provenance fields
// cleared. Engine/FallbackReason record which engine executed the run,
// so they legitimately differ between a Threads=1 and a Threads=8
// invocation even though every simulation counter is bit-identical;
// cross-engine DeepEqual comparisons must exclude them.
func normEngine(r *Result) *Result {
	c := *r
	c.Engine, c.FallbackReason = "", ""
	return &c
}

// memSink records every emitted reference for byte-identity checks.
type memSink struct {
	cores []int
	refs  []trace.Ref
}

func (m *memSink) Begin(string, []trace.Profile) error { return nil }
func (m *memSink) Emit(core int, r trace.Ref) {
	m.cores = append(m.cores, core)
	m.refs = append(m.refs, r)
}

// parVariant is one feature dimension of the equivalence matrix. Each
// variant exercises a distinct engine path: timeline drives the
// sequencer-side epoch sampling, capture drives the commit-ordered
// per-core ref rings, and evict oversubscribes physical memory so the
// engine must run in eviction-safe (generation-validated) mode.
type parVariant struct {
	name    string
	capture bool
	mutate  func(t testing.TB, o *Options)
}

var parVariants = []parVariant{
	{name: "base"},
	{name: "timeline", mutate: func(_ testing.TB, o *Options) {
		o.TimelineEpochCycles = 200_000
	}},
	{name: "capture", capture: true},
	{name: "evict", mutate: func(t testing.TB, o *Options) {
		// Shrink every memory tier 4x, skip prefaulting, and reshape
		// the reference stream into uniform scatter bursts (no hot
		// region, no stream, high miss rate, short bursts) so the
		// aggregate touched working set far exceeds physical memory:
		// CLOCK evicts on nearly every measured-run fault, run-ahead
		// translations race with page-table mutation constantly, and
		// the generation protocol is on the hot path.
		prof, err := workload.ByName("bwaves")
		if err != nil {
			t.Fatal(err)
		}
		// Scale(768) keeps the footprint within the plausibility bound
		// even for cache-mode policies whose OS-visible capacity
		// excludes the fast tier.
		o.Workload = prof.Scale(768)
		o.Workload.StreamFrac = 0
		o.Workload.HotFrac = 0
		o.Workload.TargetLLCMPKI = 60
		o.Workload.RefPKI = 150
		o.Workload.BurstLines = 4
		o.SkipPrefault = true
		for i := range o.Config.MemoryTiers {
			tier := &o.Config.MemoryTiers[i]
			if tier.DRAM != nil {
				tier.DRAM.CapacityBytes /= 4
			}
			if tier.NVM != nil {
				tier.NVM.CapacityBytes /= 4
			}
			if tier.CXL != nil {
				tier.CXL.CapacityBytes /= 4
			}
		}
		o.BaselineBytes /= 4
	}},
}

// runVariant builds and runs one cell of the matrix, asserting the
// engine-selection invariants along the way: stable-footprint variants
// must report the parallel engine at Threads>1, and the eviction
// variant may additionally land on the sequential auto-retry when a
// rare run-ahead collision is detected (still bit-identical).
func runVariant(t *testing.T, kind string, threads int, v parVariant) (*Result, *memSink) {
	t.Helper()
	opts := parOpts(t, kind, threads)
	var sink *memSink
	if v.capture {
		sink = &memSink{}
		opts.TraceSink = sink
	}
	if v.mutate != nil {
		v.mutate(t, &opts)
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := threads > 1; sys.ParallelEnabled() != want {
		t.Fatalf("%s/%s: ParallelEnabled() = %v at %d threads, want %v",
			kind, v.name, sys.ParallelEnabled(), threads, want)
	}
	res, err := sys.Run(300_000)
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case threads <= 1:
		if res.Engine != EngineSequential || res.FallbackReason != "" {
			t.Fatalf("%s/%s: sequential run reported %q/%q", kind, v.name, res.Engine, res.FallbackReason)
		}
	case v.name == "evict":
		parallel := res.Engine == EngineParallel && res.FallbackReason == ""
		retried := res.Engine == EngineSequential && res.FallbackReason == FallbackEvictionCollision
		if !parallel && !retried {
			t.Fatalf("%s/%s: threads=%d reported %q/%q", kind, v.name, threads, res.Engine, res.FallbackReason)
		}
	default:
		if res.Engine != EngineParallel || res.FallbackReason != "" {
			t.Fatalf("%s/%s: threads=%d reported %q/%q, want parallel engine",
				kind, v.name, threads, res.Engine, res.FallbackReason)
		}
	}
	return res, sink
}

// TestParallelEquivalence: the parallel engine must reproduce the
// sequential engine bit for bit — per-core results, device and policy
// counters, timeline points, captured traces, every statistic — for
// every registered policy at every thread count, across the feature
// matrix that used to force sequential fallbacks. The commit sequencer
// replays shared-phase events in the scheduler's exact (time, id)
// order, so whole runs are DeepEqual up to the Engine provenance
// fields.
func TestParallelEquivalence(t *testing.T) {
	for _, kind := range PolicyNames() {
		kind := kind
		for _, v := range parVariants {
			v := v
			t.Run(kind+"/"+v.name, func(t *testing.T) {
				seq, seqSink := runVariant(t, kind, 1, v)
				switch v.name {
				case "timeline":
					if len(seq.Timeline) == 0 {
						t.Fatal("no timeline points sampled; variant is not exercising sampling")
					}
				case "evict":
					if seq.OS.Evictions == 0 {
						t.Fatal("no evictions occurred; variant is not exercising eviction-safe mode")
					}
				}
				if v.capture && len(seqSink.refs) == 0 {
					t.Fatal("no references captured")
				}
				for _, threads := range []int{2, 4, 8} {
					par, parSink := runVariant(t, kind, threads, v)
					if !reflect.DeepEqual(normEngine(seq), normEngine(par)) {
						t.Errorf("threads=%d diverged from sequential:\nseq: %+v\npar: %+v",
							threads, seq, par)
					}
					if v.capture && !reflect.DeepEqual(seqSink, parSink) {
						t.Errorf("threads=%d captured trace differs from sequential", threads)
					}
				}
			})
		}
	}
}

// TestParallelEquivalenceFaults repeats the equivalence check with
// prefaulting disabled, so every page is demand-faulted mid-run and the
// sequencer's fault-commit path (full Translate, pending-replay parking)
// is exercised rather than just the mapped read path.
func TestParallelEquivalenceFaults(t *testing.T) {
	opts := parOpts(t, string(PolicyChameleonOpt), 1)
	opts.SkipPrefault = true
	seq := runFaults(t, opts)
	if seq.OS.MinorFaults == 0 {
		t.Fatal("no faults occurred; the test is not exercising the fault path")
	}
	for _, threads := range []int{2, 4, 8} {
		opts := parOpts(t, string(PolicyChameleonOpt), threads)
		opts.SkipPrefault = true
		par := runFaults(t, opts)
		if !reflect.DeepEqual(normEngine(seq), normEngine(par)) {
			t.Errorf("threads=%d diverged from sequential under demand faulting", threads)
		}
	}
}

func runFaults(t *testing.T, opts Options) *Result {
	t.Helper()
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(300_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelEngineSelection pins the engine-selection contract:
// trace capture and timeline sampling — the classes PR 7 forced onto
// the sequential engine — now run parallel with identical results and
// byte-identical captures, while the two remaining structural
// fallbacks (allocation-churn phases, AutoNUMA) are reported through
// Result.Engine/FallbackReason instead of silently serializing.
func TestParallelEngineSelection(t *testing.T) {
	t.Run("capture+timeline stays parallel", func(t *testing.T) {
		run := func(threads int) (*Result, *memSink) {
			opts := parOpts(t, string(PolicyChameleonOpt), threads)
			sink := &memSink{}
			opts.TraceSink = sink
			opts.TimelineEpochCycles = 200_000
			sys, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if want := threads > 1; sys.ParallelEnabled() != want {
				t.Fatalf("threads=%d: ParallelEnabled() = %v, want %v", threads, sys.ParallelEnabled(), want)
			}
			res, err := sys.Run(300_000)
			if err != nil {
				t.Fatal(err)
			}
			return res, sink
		}
		seqRes, seqSink := run(0)
		parRes, parSink := run(8)
		if parRes.Engine != EngineParallel {
			t.Errorf("capture+timeline at 8 threads reported %q, want parallel", parRes.Engine)
		}
		if !reflect.DeepEqual(normEngine(seqRes), normEngine(parRes)) {
			t.Error("threaded capture+timeline run diverged from Threads=0 run")
		}
		if len(seqSink.refs) == 0 {
			t.Fatal("no references captured")
		}
		if !reflect.DeepEqual(seqSink, parSink) {
			t.Error("captured traces differ between Threads=0 and threaded runs")
		}
		if len(seqRes.Timeline) == 0 {
			t.Error("no timeline points sampled")
		}
	})

	t.Run("alloc phases fall back", func(t *testing.T) {
		opts := parOpts(t, string(PolicyChameleonOpt), 8)
		opts.PhaseAllocBytes = opts.Config.TotalCapacity() / 48
		opts.PhaseEveryInstructions = 50_000
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if sys.ParallelEnabled() {
			t.Fatal("allocation-churn phases must force the sequential engine")
		}
		res, err := sys.Run(300_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine != EngineSequential || res.FallbackReason != FallbackAllocPhases {
			t.Errorf("reported %q/%q, want %q/%q",
				res.Engine, res.FallbackReason, EngineSequential, FallbackAllocPhases)
		}
	})

	t.Run("autonuma falls back", func(t *testing.T) {
		opts := parOpts(t, string(PolicyNUMAFlat), 8)
		opts.AutoNUMA = &osmodel.AutoNUMAConfig{
			EpochCycles: 1_000_000,
			Threshold:   0.8,
			ScanPages:   4096,
		}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if sys.ParallelEnabled() {
			t.Fatal("AutoNUMA must force the sequential engine")
		}
		res, err := sys.Run(300_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine != EngineSequential || res.FallbackReason != FallbackAutoNUMA {
			t.Errorf("reported %q/%q, want %q/%q",
				res.Engine, res.FallbackReason, EngineSequential, FallbackAutoNUMA)
		}
	})
}

// TestStepLoopDoesNotAllocate pins the sequential engine's steady-state
// step loop at zero allocations per reference: once the system is
// prefaulted and the scratch buffers have grown to their working sizes,
// whole execute passes must not allocate. This is the package-level
// regression gate behind BenchmarkStep's allocs/op column.
func TestStepLoopDoesNotAllocate(t *testing.T) {
	opts := parOpts(t, string(PolicyChameleonOpt), 1)
	opts.WarmupInstructions = 0
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sys.ran = true
	sys.runCtx = context.Background()
	if err := sys.prefault(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One warm pass settles caches, remap metadata and scratch buffers.
	if err := sys.execute(100_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := sys.execute(20_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state execute pass allocated %.1f times, want 0", allocs)
	}
}

package sim

import (
	"context"
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/policy"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// parOpts builds the standard options for the parallel-equivalence
// runs: the default machine, a footprint small enough that run-ahead
// translation is provably stable for every registered policy, and a
// policy-agnostic baseline capacity.
func parOpts(t testing.TB, kind string, threads int) Options {
	t.Helper()
	const scale = 512
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(scale)
	if desc, err := policy.Lookup(kind); err == nil {
		for cfg.NumTiers() < desc.RequiredTiers() {
			cfg = cfg.WithNVMTier(32 * config.GB / scale)
		}
	}
	return Options{
		Config:             cfg,
		Policy:             PolicyKind(kind),
		Workload:           prof.Scale(4 * scale),
		Seed:               29,
		WarmupInstructions: 100_000,
		Threads:            threads,
		BaselineBytes:      24 * config.GB / scale,
	}
}

func runPar(t *testing.T, opts Options, wantParallel bool) *Result {
	t.Helper()
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ParallelEnabled() != wantParallel {
		t.Fatalf("ParallelEnabled() = %v at %d threads, want %v",
			sys.ParallelEnabled(), opts.Threads, wantParallel)
	}
	res, err := sys.Run(300_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelEquivalence: the parallel engine must reproduce the
// sequential engine bit for bit — per-core results, device and policy
// counters, every statistic — for every registered policy at every
// thread count. The commit sequencer replays shared-phase events in the
// scheduler's exact (time, id) order, so whole runs are DeepEqual.
func TestParallelEquivalence(t *testing.T) {
	for _, kind := range PolicyNames() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			seq := runPar(t, parOpts(t, kind, 1), false)
			for _, threads := range []int{2, 4, 8} {
				par := runPar(t, parOpts(t, kind, threads), true)
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("threads=%d diverged from sequential:\nseq: %+v\npar: %+v",
						threads, seq, par)
				}
			}
		})
	}
}

// TestParallelEquivalenceFaults repeats the equivalence check with
// prefaulting disabled, so every page is demand-faulted mid-run and the
// sequencer's fault-commit path (full Translate, pending-replay parking)
// is exercised rather than just the mapped read path.
func TestParallelEquivalenceFaults(t *testing.T) {
	opts := parOpts(t, string(PolicyChameleonOpt), 1)
	opts.SkipPrefault = true
	seq := runPar(t, opts, false)
	if seq.OS.MinorFaults == 0 {
		t.Fatal("no faults occurred; the test is not exercising the fault path")
	}
	for _, threads := range []int{2, 4, 8} {
		opts := parOpts(t, string(PolicyChameleonOpt), threads)
		opts.SkipPrefault = true
		par := runPar(t, opts, true)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("threads=%d diverged from sequential under demand faulting", threads)
		}
	}
}

// memSink records every emitted reference for byte-identity checks.
type memSink struct {
	cores []int
	refs  []trace.Ref
}

func (m *memSink) Begin(string, []trace.Profile) error { return nil }
func (m *memSink) Emit(core int, r trace.Ref) {
	m.cores = append(m.cores, core)
	m.refs = append(m.refs, r)
}

// TestParallelFallback: features that serialize every step (trace
// capture, timeline sampling) must force the sequential engine
// regardless of Threads, with results — including the captured trace —
// identical to a Threads=0 run.
func TestParallelFallback(t *testing.T) {
	run := func(threads int) (*Result, *memSink) {
		opts := parOpts(t, string(PolicyChameleonOpt), threads)
		sink := &memSink{}
		opts.TraceSink = sink
		opts.TimelineEpochCycles = 200_000
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if sys.ParallelEnabled() {
			t.Fatalf("threads=%d: trace capture + timeline must fall back to sequential", threads)
		}
		res, err := sys.Run(300_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, sink
	}
	seqRes, seqSink := run(0)
	parRes, parSink := run(8)
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("fallback run diverged from Threads=0 run")
	}
	if len(seqSink.refs) == 0 {
		t.Fatal("no references captured")
	}
	if !reflect.DeepEqual(seqSink, parSink) {
		t.Error("captured traces differ between Threads=0 and fallback runs")
	}
	if len(seqRes.Timeline) == 0 {
		t.Error("no timeline points sampled")
	}
}

// TestStepLoopDoesNotAllocate pins the sequential engine's steady-state
// step loop at zero allocations per reference: once the system is
// prefaulted and the scratch buffers have grown to their working sizes,
// whole execute passes must not allocate. This is the package-level
// regression gate behind BenchmarkStep's allocs/op column.
func TestStepLoopDoesNotAllocate(t *testing.T) {
	opts := parOpts(t, string(PolicyChameleonOpt), 1)
	opts.WarmupInstructions = 0
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sys.ran = true
	sys.runCtx = context.Background()
	if err := sys.prefault(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One warm pass settles caches, remap metadata and scratch buffers.
	if err := sys.execute(100_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := sys.execute(20_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state execute pass allocated %.1f times, want 0", allocs)
	}
}

package sim

import (
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

// TestSchedulerEquivalence: the heap scheduler must reproduce the
// linear-scan reference bit for bit. The (time, id) tie-break makes the
// heap's minimum the exact core the linear scan would pick, so whole
// runs — device queues, remapping state, every counter — are identical.
func TestSchedulerEquivalence(t *testing.T) {
	const scale = 512
	run := func(k PolicyKind, linear bool) *Result {
		cfg := config.Default(scale)
		prof, err := workload.ByName("cloverleaf")
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Config:              cfg,
			Policy:              k,
			Workload:            prof.Scale(scale),
			Seed:                29,
			WarmupInstructions:  300_000,
			TimelineEpochCycles: 500_000,
		}
		if k == PolicyFlat {
			opts.BaselineBytes = 24 * config.GB / scale
		}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		sys.linearSched = linear
		res, err := sys.Run(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, k := range []PolicyKind{PolicyFlat, PolicyPoM, PolicyChameleonOpt} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			heap := run(k, false)
			linear := run(k, true)
			if !reflect.DeepEqual(heap, linear) {
				t.Errorf("heap and linear schedulers diverged:\nheap:   %+v\nlinear: %+v", heap, linear)
			}
		})
	}
}

// TestCoreHeapOrder drains a heap built from shuffled clocks and checks
// it yields (time, id) order.
func TestCoreHeapOrder(t *testing.T) {
	times := []uint64{90, 10, 50, 10, 70, 30, 50, 20}
	var cores []*core
	for i, tm := range times {
		cores = append(cores, &core{id: i, time: tm})
	}
	h := newCoreHeap(cores)
	var got []*core
	for h.len() > 0 {
		got = append(got, h.peek())
		h.pop()
	}
	if len(got) != len(cores) {
		t.Fatalf("drained %d cores, want %d", len(got), len(cores))
	}
	for i := 1; i < len(got); i++ {
		if coreLess(got[i], got[i-1]) {
			t.Errorf("pop %d (time %d, id %d) out of order after (time %d, id %d)",
				i, got[i].time, got[i].id, got[i-1].time, got[i-1].id)
		}
	}
	if got[0].id != 1 || got[1].id != 3 {
		t.Errorf("equal clocks must drain in id order, got ids %d, %d", got[0].id, got[1].id)
	}
}

// TestCoreHeapFix advances the root repeatedly (the execute pattern)
// and checks the heap keeps selecting the global minimum.
func TestCoreHeapFix(t *testing.T) {
	var cores []*core
	for i := 0; i < 5; i++ {
		cores = append(cores, &core{id: i, time: uint64(i)})
	}
	h := newCoreHeap(cores)
	var last *core
	for step := 0; step < 200; step++ {
		c := h.peek()
		if last != nil && coreLess(c, last) {
			t.Fatalf("step %d: selected (time %d, id %d) before previous (time %d, id %d)",
				step, c.time, c.id, last.time, last.id)
		}
		last = &core{id: c.id, time: c.time}
		c.time += uint64(7+3*c.id) % 11
		h.fix()
	}
}

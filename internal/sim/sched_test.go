package sim

import (
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

// TestSchedulerEquivalence: the heap scheduler must reproduce the
// linear-scan reference bit for bit. The (time, id) tie-break makes the
// heap's minimum the exact core the linear scan would pick, so whole
// runs — device queues, remapping state, every counter — are identical.
func TestSchedulerEquivalence(t *testing.T) {
	const scale = 512
	run := func(k PolicyKind, linear bool) *Result {
		cfg := config.Default(scale)
		prof, err := workload.ByName("cloverleaf")
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Config:              cfg,
			Policy:              k,
			Workload:            prof.Scale(scale),
			Seed:                29,
			WarmupInstructions:  300_000,
			TimelineEpochCycles: 500_000,
		}
		if k == PolicyFlat {
			opts.BaselineBytes = 24 * config.GB / scale
		}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		sys.linearSched = linear
		res, err := sys.Run(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, k := range []PolicyKind{PolicyFlat, PolicyPoM, PolicyChameleonOpt} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			heap := run(k, false)
			linear := run(k, true)
			if !reflect.DeepEqual(heap, linear) {
				t.Errorf("heap and linear schedulers diverged:\nheap:   %+v\nlinear: %+v", heap, linear)
			}
		})
	}
}

// TestCoreHeapOrder drains a heap built from shuffled clocks and checks
// it yields (time, id) order.
func TestCoreHeapOrder(t *testing.T) {
	times := []uint64{90, 10, 50, 10, 70, 30, 50, 20}
	h := newCoreHeap(times, nil)
	type popped struct {
		id   int32
		time uint64
	}
	var got []popped
	for h.len() > 0 {
		i := h.peek()
		got = append(got, popped{id: i, time: times[i]})
		h.pop()
	}
	if len(got) != len(times) {
		t.Fatalf("drained %d cores, want %d", len(got), len(times))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.time < a.time || (b.time == a.time && b.id < a.id) {
			t.Errorf("pop %d (time %d, id %d) out of order after (time %d, id %d)",
				i, b.time, b.id, a.time, a.id)
		}
	}
	if got[0].id != 1 || got[1].id != 3 {
		t.Errorf("equal clocks must drain in id order, got ids %d, %d", got[0].id, got[1].id)
	}
}

// TestCoreHeapFix advances the root repeatedly (the execute pattern)
// and checks the heap keeps selecting the global minimum.
func TestCoreHeapFix(t *testing.T) {
	times := make([]uint64, 5)
	for i := range times {
		times[i] = uint64(i)
	}
	h := newCoreHeap(times, nil)
	lastID := int32(-1)
	var lastTime uint64
	for step := 0; step < 200; step++ {
		i := h.peek()
		tm := times[i]
		if lastID >= 0 && (tm < lastTime || (tm == lastTime && i < lastID)) {
			t.Fatalf("step %d: selected (time %d, id %d) before previous (time %d, id %d)",
				step, tm, i, lastTime, lastID)
		}
		lastID, lastTime = i, tm
		times[i] += uint64(7+3*i) % 11
		h.fix()
	}
}

package sim

import "chameleon/internal/stats"

// Name implements stats.Source: the controller name of the run.
func (r *Result) Name() string { return r.Policy }

// Snapshot implements stats.Source: the run's headline scalars plus
// every substrate counter, namespaced by subsystem ("ctrl.swaps",
// "dram_fast.row_hits", ...). This is the one metric shape consumed by
// the server's expvar surface, the experiment figure emitters, and the
// CLI's counter dump.
func (r *Result) Snapshot() stats.Snapshot {
	s := stats.Snapshot{
		"ipc_geomean":         r.GeoMeanIPC,
		"stacked_hit_rate":    r.StackedHitRate,
		"amat_cycles":         r.AMAT,
		"cache_mode_fraction": r.CacheModeFraction,
		"cpu_utilization":     r.CPUUtilization,
		"max_cycles":          float64(r.MaxCycles),
		"cores":               float64(len(r.Cores)),
	}
	s.Merge("ctrl", r.Ctrl.Snapshot())
	s.Merge("os", r.OS.Snapshot())
	s.Merge("dram_fast", r.Fast.Snapshot())
	s.Merge("dram_slow", r.Slow.Snapshot())
	s.Merge("l3", r.L3.Snapshot())
	return s
}

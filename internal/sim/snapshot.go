package sim

import (
	"strings"

	"chameleon/internal/stats"
)

// LevelResult carries its level's stats as a Source.
var _ stats.Source = LevelResult{}

// Name implements stats.Source: the controller name of the run.
func (r *Result) Name() string { return r.Policy }

// Snapshot implements stats.Source: the run's headline scalars plus
// every substrate counter, namespaced by subsystem ("ctrl.swaps",
// "dram_fast.row_hits", "l3.misses", ...). Cache levels contribute one
// namespace each, keyed by the lower-cased level name, so the server's
// expvar surface, the experiment figure emitters, and the CLI's counter
// dump follow whatever hierarchy the run was configured with.
func (r *Result) Snapshot() stats.Snapshot {
	s := stats.Snapshot{
		"ipc_geomean":         r.GeoMeanIPC,
		"stacked_hit_rate":    r.StackedHitRate,
		"amat_cycles":         r.AMAT,
		"cache_mode_fraction": r.CacheModeFraction,
		"cpu_utilization":     r.CPUUtilization,
		"max_cycles":          float64(r.MaxCycles),
		"cores":               float64(len(r.Cores)),
	}
	s.Merge("ctrl", r.Ctrl.Snapshot())
	s.Merge("os", r.OS.Snapshot())
	s.Merge("dram_fast", r.Fast.Snapshot())
	s.Merge("dram_slow", r.Slow.Snapshot())
	for _, t := range r.Tiers {
		ns := "mem_" + strings.ToLower(t.Tier)
		s.Merge(ns, t.Device)
		s[ns+".capacity_bytes"] = float64(t.CapacityBytes)
		s[ns+".demand_accesses"] = float64(t.DemandAccesses)
		s[ns+".occupancy"] = t.Occupancy
		s[ns+".energy_nj"] = t.EnergyNJ
		s[ns+".utilization"] = t.Utilization
	}
	for _, lv := range r.Levels {
		s.Merge(strings.ToLower(lv.Level), lv.Snapshot())
	}
	return s
}

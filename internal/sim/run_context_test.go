package sim

import (
	"context"
	"errors"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Config:   config.Default(1024),
		Policy:   PolicyChameleonOpt,
		Workload: prof.Scale(1024),
		Seed:     7,
	}
}

func TestRunOnlyOnce(t *testing.T) {
	sys, err := New(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	// A zero budget is rejected before the run starts and must not
	// consume the single allowed run.
	if _, err := sys.Run(0); err == nil {
		t.Fatal("zero budget should fail")
	}
	if _, err := sys.Run(10_000); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := sys.Run(10_000); err == nil {
		t.Fatal("second Run on the same System should fail")
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	sys, err := New(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from a progress callback a few epochs in, so the cancel
	// provably lands while the simulation loop is executing.
	o := testOptions(t)
	o.TimelineEpochCycles = 50_000
	o.Progress = func(TimelinePoint) { cancel() }
	sys, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunContext(ctx, 1<<40); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestProgressCallback(t *testing.T) {
	o := testOptions(t)
	o.TimelineEpochCycles = 20_000
	var points int
	o.Progress = func(TimelinePoint) { points++ }
	sys, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if points == 0 {
		t.Fatal("progress callback never fired")
	}
	if points != len(res.Timeline) {
		t.Fatalf("progress fired %d times, timeline has %d points", points, len(res.Timeline))
	}
}

package sim

// coreHeap is a binary min-heap of runnable core indices ordered by
// (time, id), where time aliases the struct-of-arrays clock slice. The
// id tie-break makes the minimum unique, so heap selection is identical
// to a first-strictly-smaller linear scan over the cores — the two
// schedulers produce bit-identical runs.
//
// Only the scheduled core's clock ever advances, so the heap needs no
// general decrease-key: after a step either the root sifts down (fix)
// or, when the core exhausts its budget, it is popped. The index
// storage is supplied by the caller (System.heapIdx) and reused across
// execute passes, keeping the scheduler allocation-free.
type coreHeap struct {
	time []uint64 // aliases coreSoA.time; never written by the heap
	idx  []int32
}

// newCoreHeap builds a heap over cores 0..len(time)-1. storage is
// reused as the index backing array; pass nil to allocate fresh (tests).
func newCoreHeap(time []uint64, storage []int32) coreHeap {
	h := coreHeap{time: time, idx: storage[:0]}
	for i := range time {
		h.idx = append(h.idx, int32(i))
	}
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *coreHeap) len() int { return len(h.idx) }

// peek returns the core index with the smallest (time, id) without
// removing it.
func (h *coreHeap) peek() int32 { return h.idx[0] }

// fix restores heap order after the root core's clock advanced.
func (h *coreHeap) fix() { h.siftDown(0) }

// pop removes the root core (it finished its instruction budget).
func (h *coreHeap) pop() {
	n := len(h.idx) - 1
	h.idx[0] = h.idx[n]
	h.idx = h.idx[:n]
	if n > 1 {
		h.siftDown(0)
	}
}

// less orders cores by (time, id); the global step order every engine
// in this package — linear scan, heap, parallel commit sequencer —
// agrees on.
func (h *coreHeap) less(a, b int32) bool {
	return h.time[a] < h.time[b] || (h.time[a] == h.time[b] && a < b)
}

func (h *coreHeap) siftDown(i int) {
	n := len(h.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.idx[r], h.idx[l]) {
			m = r
		}
		if !h.less(h.idx[m], h.idx[i]) {
			return
		}
		h.idx[i], h.idx[m] = h.idx[m], h.idx[i]
		i = m
	}
}

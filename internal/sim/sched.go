package sim

// coreHeap is a binary min-heap of runnable cores ordered by
// (time, id). The id tie-break makes the minimum unique, so heap
// selection is identical to a first-strictly-smaller linear scan over
// the cores slice — the two schedulers produce bit-identical runs.
//
// Only the scheduled core's clock ever advances, so the heap needs no
// general decrease-key: after a step either the root sifts down (fix)
// or, when the core exhausts its budget, it is popped.
type coreHeap struct {
	cs []*core
}

func newCoreHeap(cores []*core) *coreHeap {
	h := &coreHeap{cs: append([]*core(nil), cores...)}
	for i := len(h.cs)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *coreHeap) len() int { return len(h.cs) }

// peek returns the core with the smallest (time, id) without removing
// it.
func (h *coreHeap) peek() *core { return h.cs[0] }

// fix restores heap order after the root core's clock advanced.
func (h *coreHeap) fix() { h.siftDown(0) }

// pop removes the root core (it finished its instruction budget).
func (h *coreHeap) pop() {
	n := len(h.cs) - 1
	h.cs[0] = h.cs[n]
	h.cs[n] = nil
	h.cs = h.cs[:n]
	if n > 1 {
		h.siftDown(0)
	}
}

func coreLess(a, b *core) bool {
	return a.time < b.time || (a.time == b.time && a.id < b.id)
}

func (h *coreHeap) siftDown(i int) {
	n := len(h.cs)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && coreLess(h.cs[r], h.cs[l]) {
			m = r
		}
		if !coreLess(h.cs[m], h.cs[i]) {
			return
		}
		h.cs[i], h.cs[m] = h.cs[m], h.cs[i]
		i = m
	}
}

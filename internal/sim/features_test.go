package sim

import (
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/osmodel"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

func featureOpts(t *testing.T, k PolicyKind) Options {
	t.Helper()
	const scale = 512
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Config:             config.Default(scale),
		Policy:             k,
		Workload:           prof.Scale(scale),
		Seed:               21,
		WarmupInstructions: 500_000,
	}
}

func TestTHPIssuesBatchedISA(t *testing.T) {
	opts := featureOpts(t, PolicyChameleonOpt)
	opts.UseTHP = true
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Prefault allocated the footprint with 2 MB pages: each page
	// triggers HugePageBytes/SegmentBytes = 1024 ISA-Alloc calls
	// (Algorithm 1's GFP_TRANSHUGE path). Warm-up stats are reset, so
	// count via the OS minor faults instead: every mapped huge page
	// must correspond to exactly 1024 allocations at the controller.
	pages := res.OS.MinorFaults
	_ = pages
	if res.GeoMeanIPC <= 0 {
		t.Fatal("THP run made no progress")
	}
	if sys.OS().Config().PageBytes != uint64(opts.Config.OS.HugePageBytes) {
		t.Errorf("OS page size = %d, want THP", sys.OS().Config().PageBytes)
	}
}

func TestTHPISABatchRatio(t *testing.T) {
	opts := featureOpts(t, PolicyChameleonOpt)
	opts.UseTHP = true
	opts.WarmupInstructions = 0 // keep warm-up stats visible
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10_000); err != nil {
		t.Fatal(err)
	}
	st := sys.Controller().Stats()
	os := sys.OS().Stats()
	mapped := os.MinorFaults
	perPage := uint64(opts.Config.OS.HugePageBytes / opts.Config.MemSys.SegmentBytes)
	if st.ISAAllocs != mapped*perPage {
		t.Errorf("ISA-Allocs = %d, want %d pages x %d segments", st.ISAAllocs, mapped, perPage)
	}
}

func TestMixedWorkloads(t *testing.T) {
	opts := featureOpts(t, PolicyChameleonOpt)
	const scale = 512
	mix := make([]trace.Profile, 0, 3)
	for _, name := range []string{"mcf", "stream", "miniFE"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, p.Scale(scale))
	}
	opts.Mix = mix
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != opts.Config.CPU.Cores {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	// Cores running mcf (high MPKI) must miss far more than cores
	// running miniFE (0.48 MPKI).
	mcfMPKI := res.Cores[0].MPKI  // core 0 -> mix[0] = mcf
	miniMPKI := res.Cores[2].MPKI // core 2 -> mix[2] = miniFE
	if mcfMPKI < miniMPKI*5 {
		t.Errorf("mix not heterogeneous: mcf MPKI %.2f vs miniFE %.2f", mcfMPKI, miniMPKI)
	}
}

func TestMixValidation(t *testing.T) {
	opts := featureOpts(t, PolicyPoM)
	opts.Mix = []trace.Profile{{Name: "bad"}} // invalid profile
	if _, err := New(opts); err == nil {
		t.Error("invalid mix profile should fail")
	}
}

func TestTimelineSampling(t *testing.T) {
	opts := featureOpts(t, PolicyChameleonOpt)
	opts.TimelineEpochCycles = 50_000
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 2 {
		t.Fatalf("timeline has %d points", len(res.Timeline))
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Cycle <= res.Timeline[i-1].Cycle {
			t.Fatal("timeline not monotone")
		}
	}
	for _, p := range res.Timeline {
		if p.CacheModeFraction < 0 || p.CacheModeFraction > 1 {
			t.Errorf("bad mode fraction %v", p.CacheModeFraction)
		}
	}
}

func TestGroupAwareAllocationIntegration(t *testing.T) {
	frac := func(alloc osmodel.AllocPolicy) float64 {
		opts := featureOpts(t, PolicyChameleonOpt)
		// 85% footprint leaves meaningful placement freedom.
		opts.Workload.FootprintBytes = opts.Config.TotalCapacity() * 85 / 100 / 12
		opts.Alloc = &alloc
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(30_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CacheModeFraction
	}
	uniform := frac(osmodel.AllocShuffled)
	aware := frac(osmodel.AllocGroupAware)
	t.Logf("cache-mode fraction: shuffled %.3f, group-aware %.3f", uniform, aware)
	if aware <= uniform {
		t.Errorf("group-aware OS placement should raise Chameleon-Opt's cache-mode share (%.3f vs %.3f)", aware, uniform)
	}
}

func TestEnergyAndUtilisationReporting(t *testing.T) {
	opts := featureOpts(t, PolicyPoM)
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := sys.DeviceEnergy(res.MaxCycles)
	if fast.TotalNJ() <= 0 || slow.TotalNJ() <= 0 {
		t.Error("energy reports empty")
	}
	fu, su := sys.DeviceUtilisation(res.MaxCycles)
	if fu < 0 || fu > 1.05 || su < 0 || su > 1.05 {
		t.Errorf("utilisation out of range: %v, %v", fu, su)
	}
	if su <= 0 {
		t.Error("off-chip device did no work?")
	}
}

// TestPhaseChurnDrivesModeTransitions: with mid-run allocation churn,
// ISA events arrive during measurement and the cache-mode share
// fluctuates (the dynamic reconfiguration the paper is named for).
func TestPhaseChurnDrivesModeTransitions(t *testing.T) {
	opts := featureOpts(t, PolicyChameleonOpt)
	opts.Workload.FootprintBytes = opts.Config.TotalCapacity() * 70 / 100 / 12
	opts.PhaseAllocBytes = opts.Config.TotalCapacity() / 48
	opts.PhaseEveryInstructions = 50_000
	opts.TimelineEpochCycles = 100_000
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ctrl.ISAAllocs == 0 || res.Ctrl.ISAFrees == 0 {
		t.Fatalf("no ISA events during the measured run: %+v", res.Ctrl)
	}
	if len(res.Timeline) < 3 {
		t.Fatalf("timeline too short: %d", len(res.Timeline))
	}
	lo, hi := 1.0, 0.0
	for _, p := range res.Timeline {
		if p.CacheModeFraction < lo {
			lo = p.CacheModeFraction
		}
		if p.CacheModeFraction > hi {
			hi = p.CacheModeFraction
		}
	}
	if hi-lo < 0.05 {
		t.Errorf("cache-mode share did not respond to churn: [%.3f, %.3f]", lo, hi)
	}
}

// TestPhaseChurnMemoryNeutral: after an even number of phases the
// transient buffers are freed, so the OS ends with the same free
// memory as a churn-free run.
func TestPhaseChurnMemoryNeutral(t *testing.T) {
	opts := featureOpts(t, PolicyChameleonOpt)
	opts.Workload.FootprintBytes = opts.Config.TotalCapacity() * 60 / 100 / 12
	opts.PhaseAllocBytes = 1 << 20
	opts.PhaseEveryInstructions = 40_000
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(200_000); err != nil {
		t.Fatal(err)
	}
	free := sys.OS().FreeBytes()
	footprint := opts.Workload.FootprintBytes / uint64(opts.Config.OS.PageBytes) * uint64(opts.Config.OS.PageBytes)
	_ = footprint
	// All cores hold either 0 or PhaseAllocBytes transient memory;
	// free bytes must be within cores*PhaseAllocBytes of the baseline.
	baseline := opts.Config.TotalCapacity() - 12*pageRound(opts.Workload.FootprintBytes, uint64(opts.Config.OS.PageBytes))
	slack := 12 * pageRound(opts.PhaseAllocBytes, uint64(opts.Config.OS.PageBytes))
	if free > baseline || free+slack < baseline {
		t.Errorf("free %d outside [%d-%d, %d]", free, baseline, slack, baseline)
	}
}

func pageRound(b, page uint64) uint64 {
	return (b + page - 1) / page * page
}

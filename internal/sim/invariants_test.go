package sim

import (
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/policy"
	"chameleon/internal/srrt"
	"chameleon/internal/workload"
)

// tabled is implemented by controllers exposing their remapping table.
type tabled interface{ Table() *srrt.Table }

// TestRemapInvariantsAfterFullRuns drives every SRRT-based design
// through a complete simulation (prefault, warm-up, measurement) and
// validates the remapping table's structural invariants at the end.
func TestRemapInvariantsAfterFullRuns(t *testing.T) {
	const scale = 512
	cfg := config.Default(scale)
	for _, k := range []PolicyKind{PolicyPoM, PolicyPolymorphic, PolicyChameleon, PolicyChameleonOpt} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prof, err := workload.ByName("cloverleaf")
			if err != nil {
				t.Fatal(err)
			}
			sys, err := New(Options{
				Config:             cfg,
				Policy:             k,
				Workload:           prof.Scale(scale),
				Seed:               31,
				WarmupInstructions: 500_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(100_000); err != nil {
				t.Fatal(err)
			}
			tb, ok := sys.Controller().(tabled)
			if !ok {
				t.Fatalf("%v does not expose its table", k)
			}
			if err := tb.Table().CheckInvariants(); err != nil {
				t.Errorf("invariants violated after run: %v", err)
			}
		})
	}
}

// TestTrafficConservation checks cross-module accounting: the bytes
// the DRAM devices report moving must equal demand traffic plus the
// controller's segment transfers, clears, probes and SRT fills.
func TestTrafficConservation(t *testing.T) {
	const scale = 512
	cfg := config.Default(scale)
	cfg.MemSys.ClearOnModeSwitch = false // clears are not in Ctrl.SwapBytes
	prof, err := workload.ByName("hpccg")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Config:             cfg,
		Policy:             PolicyPoM,
		Workload:           prof.Scale(scale),
		Seed:               13,
		WarmupInstructions: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	demand := res.Ctrl.Accesses * 64
	srt := res.Ctrl.SRTMisses * 64
	segment := res.Ctrl.SwapBytes * 2 // each byte read once and written once
	want := demand + srt + segment
	got := res.Fast.BytesMoved + res.Slow.BytesMoved
	if got != want {
		t.Errorf("device bytes %d != accounted bytes %d (demand %d, srt %d, segments %d)",
			got, want, demand, srt, segment)
	}
}

// TestCoreFairness: in rate mode every core runs the same program, so
// per-core IPCs should cluster (no core starves under the min-time
// scheduler).
func TestCoreFairness(t *testing.T) {
	const scale = 512
	cfg := config.Default(scale)
	prof, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Config:             cfg,
		Policy:             PolicyChameleonOpt,
		Workload:           prof.Scale(scale),
		Seed:               17,
		WarmupInstructions: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Cores[0].IPC, res.Cores[0].IPC
	for _, c := range res.Cores {
		if c.IPC < lo {
			lo = c.IPC
		}
		if c.IPC > hi {
			hi = c.IPC
		}
	}
	if hi > lo*1.5 {
		t.Errorf("core IPC spread too wide: [%.3f, %.3f]", lo, hi)
	}
}

// TestWarmupImprovesHitRate: the fast-forward warm-up must leave the
// remapping state converged — a warmed run's measured hit rate should
// exceed a cold run's.
func TestWarmupImprovesHitRate(t *testing.T) {
	const scale = 512
	run := func(warmup uint64) float64 {
		cfg := config.Default(scale)
		prof, err := workload.ByName("bwaves")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(Options{
			Config:             cfg,
			Policy:             PolicyPoM,
			Workload:           prof.Scale(scale),
			Seed:               23,
			WarmupInstructions: warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(50_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.StackedHitRate
	}
	cold := run(0)
	warm := run(2_000_000)
	t.Logf("cold hit %.3f, warm hit %.3f", cold, warm)
	if warm <= cold {
		t.Errorf("warm-up should converge the hot set: %.3f <= %.3f", warm, cold)
	}
}

// TestModeDistributionInterface: only the Chameleon designs advertise a
// mode distribution.
func TestModeDistributionInterface(t *testing.T) {
	const scale = 512
	cfg := config.Default(scale)
	prof, _ := workload.ByName("miniFE")
	for _, k := range []PolicyKind{PolicyPoM, PolicyChameleon} {
		opts := Options{Config: cfg, Policy: k, Workload: prof.Scale(scale), Seed: 1}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, isMD := sys.Controller().(policy.ModeDistribution)
		if k == PolicyChameleon && !isMD {
			t.Error("chameleon must expose its mode distribution")
		}
		if k == PolicyPoM && isMD {
			t.Error("pom has no modes to expose")
		}
	}
}

package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/policy"
	"chameleon/internal/workload"
)

// TestLegacyTierConfigEquivalence is the refactor's compatibility gate:
// a machine described by the legacy Fast/Slow JSON pair and the same
// machine described by its memory_tiers rewrite must produce DeepEqual
// results for every registered policy, sequentially and under the
// parallel engine. Policies that need a deeper stack get the same NVM
// tier appended to both spellings.
func TestLegacyTierConfigEquivalence(t *testing.T) {
	const scale = 512
	legacyDoc := []byte(`{
		"Fast": {"CapacityBytes": 16777216},
		"Slow": {"CapacityBytes": 50331648}
	}`)
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	run := func(t *testing.T, cfg config.Config, name string, threads int) *Result {
		t.Helper()
		opts := Options{
			Config:             cfg,
			Policy:             PolicyKind(name),
			Workload:           prof.Scale(scale),
			Seed:               17,
			WarmupInstructions: 50_000,
			Threads:            threads,
		}
		desc, err := policy.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for opts.Config.NumTiers() < desc.RequiredTiers() {
			opts.Config = opts.Config.WithNVMTier(32 * config.GB / scale)
		}
		if desc.RequiresBaseline {
			opts.BaselineBytes = 24 * config.GB / scale
		}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	legacyCfg := config.Default(scale)
	if err := json.Unmarshal(legacyDoc, &legacyCfg); err != nil {
		t.Fatal(err)
	}
	// The translation: the canonical marshal of the legacy decode.
	b, err := json.Marshal(legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	var tierCfg config.Config
	if err := json.Unmarshal(b, &tierCfg); err != nil {
		t.Fatal(err)
	}

	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			want := run(t, legacyCfg, name, 1)
			if got := run(t, tierCfg, name, 1); !reflect.DeepEqual(want, got) {
				t.Errorf("memory_tiers run diverged from legacy Fast/Slow:\nlegacy: %+v\ntiers:  %+v", want, got)
			}
			// The threaded run reports Engine "parallel"; compare the
			// simulation content with the provenance fields cleared.
			if got := run(t, tierCfg, name, 4); !reflect.DeepEqual(normEngine(want), normEngine(got)) {
				t.Errorf("threaded memory_tiers run diverged from legacy Fast/Slow:\nlegacy: %+v\ntiers:  %+v", want, got)
			}
		})
	}
}

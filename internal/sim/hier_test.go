package sim

import (
	"reflect"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/policy"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// TestHierarchyEquivalence: the composable hierarchy pipeline must
// reproduce the pre-refactor inline L1/L2/L3 walk bit for bit, for
// EVERY registered policy — same IPC, MPKI, hit rates, per-level stats,
// device queues and remapping state. walkInline restates the seed
// code over the hierarchy's own caches (see run.go), so a DeepEqual of
// whole Results is the strongest equivalence the engine can state.
func TestHierarchyEquivalence(t *testing.T) {
	const scale = 512
	run := func(t *testing.T, name string, inline bool) *Result {
		t.Helper()
		cfg := config.Default(scale)
		prof, err := workload.ByName("cloverleaf")
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Config:              cfg,
			Policy:              PolicyKind(name),
			Workload:            prof.Scale(scale),
			Seed:                31,
			WarmupInstructions:  300_000,
			TimelineEpochCycles: 500_000,
			// Allocation churn drives ISA notifications and mode
			// switches mid-run, exercising the walk under remapping.
			PhaseAllocBytes:        64 * config.KB,
			PhaseEveryInstructions: 40_000,
		}
		desc, err := policy.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for opts.Config.NumTiers() < desc.RequiredTiers() {
			opts.Config = opts.Config.WithNVMTier(32 * config.GB / scale)
		}
		if desc.RequiresBaseline {
			opts.BaselineBytes = 24 * config.GB / scale
		}
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		sys.inlineWalk = inline
		res, err := sys.Run(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			pipelined := run(t, name, false)
			inline := run(t, name, true)
			if !reflect.DeepEqual(pipelined, inline) {
				t.Errorf("hierarchy pipeline diverged from the inline walk:\npipeline: %+v\ninline:   %+v",
					pipelined, inline)
			}
		})
	}
}

// TestMixWorkloadNames: under Options.Mix the result must name every
// application, not silently report Mix[0] — per core the profile it
// ran, and the joined mix in Result.Workload.
func TestMixWorkloadNames(t *testing.T) {
	const scale = 512
	cfg := config.Default(scale)
	bwaves, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	leslie, err := workload.ByName("leslie3d")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Config:   cfg,
		Policy:   PolicyChameleon,
		Workload: bwaves.Scale(scale), // validation fallback; Mix drives the cores
		Mix:      []trace.Profile{bwaves.Scale(scale), leslie.Scale(scale)},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "bwaves+leslie3d" {
		t.Errorf("Result.Workload = %q, want the joined mix name", res.Workload)
	}
	for i, cr := range res.Cores {
		want := "bwaves"
		if i%2 == 1 {
			want = "leslie3d"
		}
		if cr.Workload != want {
			t.Errorf("core %d workload = %q, want %q", i, cr.Workload, want)
		}
	}
}

// TestSingleWorkloadName pins the non-mix naming: Result.Workload and
// every CoreResult carry the profile's name.
func TestSingleWorkloadName(t *testing.T) {
	const scale = 512
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Config:   config.Default(scale),
		Policy:   PolicyPoM,
		Workload: prof.Scale(scale),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "bwaves" {
		t.Errorf("Result.Workload = %q, want bwaves", res.Workload)
	}
	for i, cr := range res.Cores {
		if cr.Workload != "bwaves" {
			t.Errorf("core %d workload = %q, want bwaves", i, cr.Workload)
		}
	}
}

// TestResultLevels: a run on the default config reports one LevelResult
// per configured level, in hierarchy order, with inclusive activity
// (each level's accesses bounded by the previous level's misses + its
// writeback fills) and lower-cased per-level snapshot namespaces.
func TestResultLevels(t *testing.T) {
	const scale = 512
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Config:   config.Default(scale),
		Policy:   PolicyChameleonOpt,
		Workload: prof.Scale(scale),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(res.Levels))
	}
	for i, want := range []string{"L1", "L2", "L3"} {
		if res.Levels[i].Level != want {
			t.Errorf("level %d named %q, want %q", i, res.Levels[i].Level, want)
		}
	}
	l1, l3 := res.Levels[0].Stats, res.Levels[2].Stats
	if l1.Accesses == 0 || l3.Accesses == 0 {
		t.Fatalf("levels saw no traffic: %+v", res.Levels)
	}
	// The LLC sees every demand miss the cores counted, plus fills from
	// dirty-victim cascades; its miss count can only exceed the cores'.
	if l3.Misses < res.totalLLCMisses() {
		t.Errorf("LLC misses %d below summed core LLC misses %d", l3.Misses, res.totalLLCMisses())
	}
	snap := res.Snapshot()
	for _, key := range []string{"l1.accesses", "l2.misses", "l3.miss_rate"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing per-level key %q", key)
		}
	}
}

// totalLLCMisses sums the per-core demand LLC misses.
func (r *Result) totalLLCMisses() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.LLCMisses
	}
	return n
}

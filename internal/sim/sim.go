// Package sim is the discrete-event timing simulator that ties the
// substrates together: synthetic cores drive reference streams through
// a configurable N-level cache hierarchy (internal/hier; the default
// reproduces the paper's three levels) and the configured heterogeneous
// memory-system controller, with OS demand paging (and optional
// AutoNUMA migration) in the translation path.
//
// The engine advances the core with the smallest local clock one
// reference at a time, which keeps memory-system arrivals near time order
// while avoiding a full event queue.
package sim

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"chameleon/internal/addr"
	"chameleon/internal/config"
	"chameleon/internal/dram"
	"chameleon/internal/hier"
	"chameleon/internal/memtier"
	"chameleon/internal/osmodel"
	"chameleon/internal/policy"
	"chameleon/internal/trace"
)

// PolicyKind names the memory-system design under test. Any name
// registered with policy.Register is valid; the constants below cover
// the designs of the paper's evaluation.
type PolicyKind string

// The memory-system designs of the paper's evaluation.
const (
	PolicyFlat         PolicyKind = "flat"          // DDR-only baseline (BaselineBytes capacity)
	PolicyNUMAFlat     PolicyKind = "numa-flat"     // OS-managed heterogeneous memory
	PolicyAlloy        PolicyKind = "alloy"         // latency-optimised DRAM cache
	PolicyPoM          PolicyKind = "pom"           // hardware-managed part of memory
	PolicyCAMEO        PolicyKind = "cameo"         // 64 B congruence-group PoM variant
	PolicyPolymorphic  PolicyKind = "polymorphic"   // Chung et al. polymorphic memory
	PolicyChameleon    PolicyKind = "chameleon"     // basic co-design
	PolicyChameleonOpt PolicyKind = "chameleon-opt" // proactive-remapping co-design
)

func (k PolicyKind) String() string { return string(k) }

// PolicyNames returns every registered design name, sorted.
func PolicyNames() []string { return policy.Names() }

// Options configures one simulation.
type Options struct {
	Config   config.Config
	Policy   PolicyKind
	Workload trace.Profile
	// Copies is the number of application instances (default: one per
	// core, the paper's rate mode).
	Copies int
	// BaselineBytes is the total capacity of a PolicyFlat system (e.g.
	// 20 GB or 24 GB). Ignored for other policies.
	BaselineBytes uint64
	// Alloc overrides the OS frame-allocation policy. Default:
	// first-touch for PolicyNUMAFlat, shuffled otherwise.
	Alloc *osmodel.AllocPolicy
	// AutoNUMA attaches the migration engine (PolicyNUMAFlat only).
	AutoNUMA *osmodel.AutoNUMAConfig
	// Prefault eagerly maps every process's footprint before the
	// measured run, modelling the paper's fast-forward to the region
	// of interest. Default true (set SkipPrefault to disable).
	SkipPrefault bool
	// WarmupInstructions are executed per core before statistics are
	// reset, warming caches and remapping state.
	WarmupInstructions uint64
	// UseTHP backs processes with 2 MB transparent huge pages instead
	// of 4 KB pages (Algorithm 1's GFP_TRANSHUGE path: one page
	// allocation issues SegBytes-granularity ISA notifications for the
	// whole huge page).
	UseTHP bool
	// Mix assigns per-core workloads (core i runs Mix[i mod len]),
	// modelling a consolidated multi-programmed machine instead of the
	// paper's rate mode. When set, Workload is ignored except as a
	// fallback for validation.
	Mix []trace.Profile
	// TimelineEpochCycles, when non-zero, records a TimelinePoint every
	// epoch of simulated time (mode distribution and cumulative hit
	// rate over the measured run).
	TimelineEpochCycles uint64
	// PhaseAllocBytes / PhaseEveryInstructions model the allocation
	// churn of §III-B: every PhaseEveryInstructions instructions each
	// core alternately allocates and frees a PhaseAllocBytes transient
	// buffer, driving ISA-Alloc/ISA-Free (and Chameleon mode
	// transitions) during the measured run.
	PhaseAllocBytes        uint64
	PhaseEveryInstructions uint64
	// Seed makes the run deterministic.
	Seed uint64
	// Threads is the number of worker goroutines the run may shard its
	// simulated cores across (0 or 1 selects the sequential engine).
	// Workers run ahead through core-private state (reference
	// generation, mapped-page translation, private cache levels) and
	// park on shared-phase events (LLC, memory controller, page
	// faults), which a sequencer commits in the scheduler's global
	// (time, id) order — so results are bit-identical to the sequential
	// engine at any thread count (see TestParallelEquivalence). Timeline
	// sampling and trace capture run under parallelism (the sequencer
	// samples and flushes captured references in commit order), and a
	// possibly-evicting footprint runs in the engine's eviction-safe
	// mode (page-table generation validation plus a commit fence; see
	// parallel.go). The engine still falls back to sequential execution
	// — reported via Result.Engine/Result.FallbackReason — for
	// allocation-churn phases and AutoNUMA, whose per-step OS work is
	// inherently serial.
	Threads int
	// TraceSink, when non-nil, receives every per-core reference the
	// run consumes — warm-up included — in consumption order, making
	// the run recordable (see internal/memtrace.Writer). Begin is
	// called once during New with the resolved per-core profiles.
	// Concurrency contract: Emit is invoked only from the goroutine
	// that sequences step commits, in commit order — under the parallel
	// engine workers tee references into per-core rings and the
	// sequencer flushes them in the scheduler's exact order — so
	// single-goroutine sinks keep working unchanged, and re-capture
	// stays byte-identical, at any thread count.
	TraceSink trace.Sink `json:"-"`
	// Sources supplies pre-built per-core reference streams: core i
	// runs Sources[i], overriding the synthetic Workload/Mix/Copies
	// stream construction (each source's Profile still validates, names
	// the core's results and sizes prefaulting). This is how a recorded
	// trace replays as a first-class workload; Mix cannot be combined
	// with it.
	Sources []trace.Source `json:"-"`
	// Progress, when non-nil, receives every TimelinePoint as it is
	// sampled during the measured run (requires TimelineEpochCycles).
	// Concurrency contract: like TraceSink.Emit it is invoked only from
	// the goroutine that sequences step commits, in commit order —
	// under the parallel engine that is the sequencer goroutine, which
	// samples epochs at the exact step positions the sequential engine
	// would — so existing single-goroutine callbacks need no locking.
	// Long-running or blocking callbacks slow the simulation down.
	Progress func(TimelinePoint) `json:"-"`
}

// coreSoA holds per-core state in struct-of-arrays layout, indexed by
// core id. The step loop touches time/instr/budget for every simulated
// reference; keeping the hot fields in dense parallel slices puts the
// whole scheduler working set on a handful of cache lines instead of
// chasing one heap object per core, and gives the parallel engine
// per-field ownership boundaries (workers mutate only their own cores'
// entries).
type coreSoA struct {
	stream []trace.Source
	proc   []*osmodel.Process

	time   []uint64
	instr  []uint64
	budget []uint64
	done   []bool

	llcMisses   []uint64
	faultCycles []uint64
	memStall    []uint64

	// A page-fault stall advances a core's clock far beyond its peers;
	// the faulting reference is parked here and replayed when the core
	// is next scheduled in time order, so its access does not reserve
	// device queues deep in the simulated future.
	pendingValid []bool
	pendingPhys  []uint64
	pendingWrite []bool

	// Allocation-churn phase state (Options.PhaseAllocBytes).
	phaseNext []uint64 // instruction count of the next phase boundary
	phaseHeld []bool   // transient buffer currently allocated

	// touchTotal/touchFast accumulate the stacked-node access counts of
	// run-ahead TranslateMapped calls per core (a commutative sum the
	// sequential path bumps inside osmodel directly); mergeTouches folds
	// them into the OS at the end of every parallel pass.
	touchTotal []uint64
	touchFast  []uint64
}

func newCoreSoA(n int) coreSoA {
	return coreSoA{
		stream:       make([]trace.Source, n),
		proc:         make([]*osmodel.Process, n),
		time:         make([]uint64, n),
		instr:        make([]uint64, n),
		budget:       make([]uint64, n),
		done:         make([]bool, n),
		llcMisses:    make([]uint64, n),
		faultCycles:  make([]uint64, n),
		memStall:     make([]uint64, n),
		pendingValid: make([]bool, n),
		pendingPhys:  make([]uint64, n),
		pendingWrite: make([]bool, n),
		phaseNext:    make([]uint64, n),
		phaseHeld:    make([]bool, n),
		touchTotal:   make([]uint64, n),
		touchFast:    make([]uint64, n),
	}
}

// n returns the core count.
func (c *coreSoA) n() int { return len(c.time) }

// System is one fully constructed simulation.
type System struct {
	opts  Options
	cfg   config.Config
	tiers []*memtier.Tier
	// fast and slow alias the first two tiers' DRAM devices (nil when a
	// tier is NVM/CXL-backed); they feed the legacy Result.Fast/Slow
	// fields and the sequential engine's fast paths.
	fast  *dram.Device
	slow  *dram.Device
	ctrl  policy.Controller
	os    *osmodel.OS
	auto  *osmodel.AutoNUMA
	hier  *hier.Hierarchy
	cores coreSoA

	// heapIdx is the scheduler heap's reusable index storage, sized at
	// construction so execute passes allocate nothing.
	heapIdx []int32
	// par is the parallel execution engine, non-nil when Options.Threads
	// asked for more than one worker AND the run qualifies (no
	// inherently serial feature — see fallback). execute routes through
	// it unless a test reference path is forced.
	par *parEngine
	// fallback records why a Threads>1 request fell back to the
	// sequential engine ("" when parallel ran or was never requested);
	// surfaced as Result.FallbackReason.
	fallback string

	// runName is the result's workload label, fixed at construction:
	// the profile name, the "+"-joined mix, or a replayed trace's
	// recorded run name.
	runName string

	baseCPIx1000 uint64

	// ran latches after the first Run/RunContext call: the caches,
	// remapping tables and OS state carry that run's history, so a
	// second run on the same System would silently measure a warmed,
	// partially-consumed machine.
	ran    bool
	runCtx context.Context

	// Hot-path guards, fixed at construction so step() pays one bool
	// test instead of re-deriving each condition per reference.
	phaseOn    bool // allocation-churn phases configured
	timelineOn bool // timeline sampling configured
	autoOn     bool // AutoNUMA engine attached
	sinkOn     bool // trace capture attached

	// linearSched routes execute through the O(cores) reference
	// scheduler; settable only from package-internal tests/benchmarks.
	linearSched bool
	// inlineWalk routes the cache walk through the pre-pipeline inline
	// L1/L2/L3 reference (walkInline); settable only from
	// package-internal tests/benchmarks, and only meaningful on the
	// default three-level private/private/shared shape.
	inlineWalk bool
	// wbScratch is walkInline's reusable victim buffer.
	wbScratch []hier.Victim

	// nextEpoch is the next timeline-epoch boundary. Atomic because the
	// parallel engine's workers read it lock-free to decide whether a
	// fully-local step must park for sequencer-side sampling; only the
	// sampling goroutine (sequential loop or sequencer) advances it.
	nextEpoch atomic.Uint64
	timeline  []TimelinePoint
}

// Result.Engine values.
const (
	EngineSequential = "sequential"
	EngineParallel   = "parallel"
)

// Result.FallbackReason values: why a Threads>1 request ran on the
// sequential engine anyway.
const (
	// FallbackAllocPhases: allocation-churn phases map and free memory
	// on the hot path, an inherently serial OS mutation per step.
	FallbackAllocPhases = "alloc-phases"
	// FallbackAutoNUMA: the migration engine ticks on every step and
	// mutates page placement, serialising the translation path.
	FallbackAutoNUMA = "autonuma"
	// FallbackEvictionCollision: a parallel pass aborted because a
	// committed eviction reclaimed a frame a run-ahead step had already
	// translated against, and the run was transparently replayed on the
	// sequential engine (see RunContext).
	FallbackEvictionCollision = "eviction-collision"
)

// TimelinePoint is one sample of the optional run timeline.
type TimelinePoint struct {
	Cycle             uint64
	StackedHitRate    float64 // cumulative over the measured run
	CacheModeFraction float64
}

// New constructs a simulation from the options.
func New(opts Options) (*System, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Sources) > 0 {
		if len(opts.Mix) > 0 {
			return nil, fmt.Errorf("sim: Sources and Mix are mutually exclusive")
		}
		if opts.Workload.Name == "" {
			opts.Workload = opts.Sources[0].Profile()
		}
		for i, src := range opts.Sources {
			if err := src.Profile().Validate(); err != nil {
				return nil, fmt.Errorf("sim: source %d: %w", i, err)
			}
		}
	}
	if err := opts.Workload.Validate(); err != nil {
		return nil, err
	}
	copies := opts.Copies
	if copies <= 0 {
		copies = cfg.CPU.Cores
	}
	if len(opts.Mix) > 0 {
		copies = min(max(copies, len(opts.Mix)), cfg.CPU.Cores)
		opts.Workload = opts.Mix[0]
		for _, p := range opts.Mix {
			if err := p.Validate(); err != nil {
				return nil, err
			}
		}
	}
	if len(opts.Sources) > 0 {
		// A replayed trace fixes the core count: one recorded stream
		// each, regardless of Copies.
		copies = len(opts.Sources)
	}
	if copies > cfg.CPU.Cores {
		return nil, fmt.Errorf("sim: %d copies exceed %d cores", copies, cfg.CPU.Cores)
	}

	s := &System{opts: opts, cfg: cfg,
		baseCPIx1000: uint64(math.Round(cfg.CPU.BaseCPI * 1000)),
		phaseOn:      opts.PhaseEveryInstructions > 0 && opts.PhaseAllocBytes > 0,
		timelineOn:   opts.TimelineEpochCycles > 0,
	}

	desc, err := policy.Lookup(string(opts.Policy))
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.NumTiers() < desc.RequiredTiers() {
		return nil, fmt.Errorf("sim: policy %q needs %d memory tiers, config has %d",
			opts.Policy, desc.RequiredTiers(), cfg.NumTiers())
	}
	tierCfgs := config.CloneTiers(cfg.MemoryTiers)
	if desc.RequiresBaseline {
		if opts.BaselineBytes == 0 {
			return nil, fmt.Errorf("sim: policy %q requires BaselineBytes", opts.Policy)
		}
		tierCfgs[1].SetCapacity(opts.BaselineBytes)
	}
	if s.tiers, err = memtier.BuildStack(tierCfgs, cfg.CPU.FreqHz); err != nil {
		return nil, err
	}
	s.fast, s.slow = s.tiers[0].DRAM(), s.tiers[1].DRAM()
	tms := make([]policy.TierMem, len(s.tiers))
	for i, t := range s.tiers {
		tms[i] = policy.TierMem{Name: t.Name(), Kind: t.Kind, CapacityBytes: t.Capacity(), Mem: t.Dev}
	}
	if s.ctrl, err = desc.Build(policy.BuildContext{
		Config:        cfg,
		Tiers:         tms,
		Fast:          tms[0].Mem,
		Slow:          tms[1].Mem,
		BaselineBytes: opts.BaselineBytes,
	}); err != nil {
		return nil, err
	}

	// OS over the controller's visible space. Hardware-managed designs
	// appear to the OS as a single node; OS-managed designs expose two.
	pageBytes := uint64(cfg.OS.PageBytes)
	if opts.UseTHP {
		pageBytes = uint64(cfg.OS.HugePageBytes)
	}
	osCfg := osmodel.Config{
		TotalBytes:      s.ctrl.OSVisibleBytes(),
		PageBytes:       pageBytes,
		SegBytes:        desc.ISASegBytes(cfg),
		PageFaultCycles: cfg.OS.PageFaultCycles,
		Alloc:           osmodel.AllocShuffled,
		Seed:            opts.Seed + 1,
	}
	if desc.OSManaged {
		osCfg.FastBytes = cfg.TierCapacity(0)
		osCfg.Alloc = osmodel.AllocFirstTouch
		if opts.AutoNUMA != nil {
			// See osmodel.AllocSlowFirst: the stacked node must retain
			// free frames for the migration race of Figure 2c.
			osCfg.Alloc = osmodel.AllocSlowFirst
		}
		if cfg.NumTiers() > 2 {
			// Deeper stacks expose every tier as its own NUMA node (the
			// two-tier case keeps the FastBytes spelling so the classic
			// engine stays bit-identical).
			nodes := make([]uint64, cfg.NumTiers())
			for i := range nodes {
				nodes[i] = cfg.TierCapacity(i)
			}
			osCfg.NodeBytes = nodes
		}
	}
	if opts.Alloc != nil {
		osCfg.Alloc = *opts.Alloc
	}
	if osCfg.Alloc == osmodel.AllocGroupAware {
		sp, err := addr.NewSpace(cfg.TierCapacity(0), cfg.TierCapacity(1), uint64(cfg.MemSys.SegmentBytes))
		if err != nil {
			return nil, err
		}
		osCfg.Space = sp
	}
	var notifier osmodel.Notifier
	if osCfg.SegBytes != 0 {
		notifier = isaAdapter{s.ctrl}
	}
	if s.os, err = osmodel.New(osCfg, notifier); err != nil {
		return nil, err
	}
	if opts.AutoNUMA != nil {
		if !desc.OSManaged {
			return nil, fmt.Errorf("sim: AutoNUMA requires an OS-managed policy (e.g. numa-flat)")
		}
		s.auto = s.os.EnableAutoNUMA(*opts.AutoNUMA)
		s.autoOn = true
	}

	if s.hier, err = hier.New(cfg.CacheLevels, copies); err != nil {
		return nil, err
	}
	var perProc uint64
	s.cores = newCoreSoA(copies)
	s.heapIdx = make([]int32, 0, copies)
	for i := 0; i < copies; i++ {
		var src trace.Source
		if len(opts.Sources) > 0 {
			src = opts.Sources[i]
		} else {
			prof := opts.Workload
			if len(opts.Mix) > 0 {
				prof = opts.Mix[i%len(opts.Mix)]
			}
			st, err := trace.NewStream(prof, opts.Seed+uint64(i)*7919+13)
			if err != nil {
				return nil, err
			}
			src = st
		}
		perProc = max(perProc, src.Profile().FootprintBytes)
		s.cores.stream[i] = src
		s.cores.proc[i] = s.os.NewProcess()
	}
	if uint64(copies)*perProc > osCfg.TotalBytes*4 {
		return nil, fmt.Errorf("sim: footprint %d x%d implausibly exceeds capacity %d", perProc, copies, osCfg.TotalBytes)
	}
	s.runName = opts.Workload.Name
	if len(opts.Mix) > 0 {
		// A consolidated mix has no single name; join the mix entries
		// in assignment order so the result names every application.
		names := make([]string, len(opts.Mix))
		for i, p := range opts.Mix {
			names[i] = p.Name
		}
		s.runName = strings.Join(names, "+")
	}
	if opts.TraceSink != nil {
		profs := make([]trace.Profile, s.cores.n())
		for i := range profs {
			profs[i] = s.cores.stream[i].Profile()
		}
		if err := opts.TraceSink.Begin(s.runName, profs); err != nil {
			return nil, fmt.Errorf("sim: trace sink: %w", err)
		}
		s.sinkOn = true
	}
	// Parallel-engine gate, after sinkOn so the engine can latch its
	// capture mode. Timeline sampling, trace capture and possibly
	// -evicting footprints all run under parallelism now; only the two
	// inherently serial features force the sequential engine.
	if thr := min(opts.Threads, copies); thr > 1 {
		switch {
		case s.phaseOn:
			s.fallback = FallbackAllocPhases
		case s.autoOn:
			s.fallback = FallbackAutoNUMA
		default:
			s.par = newParEngine(s, thr)
		}
	}
	return s, nil
}

// translationsStable reports whether run-ahead translation is trivially
// safe: no page eviction can ever occur, because every process's whole
// virtual span fits in physical memory simultaneously. Evictions are
// the only cross-process page-table mutation, so under this bound the
// parallel engine's lock-free TranslateMapped reads race with nothing
// and it runs in its direct (stable) mode. When the bound does not
// hold the engine no longer falls back: it runs in eviction-safe mode,
// validating the osmodel page-table generation around each lock-free
// translation and fencing workers across committed evictions (see
// parallel.go's "Run-ahead translation safety" section).
func (s *System) translationsStable() bool {
	page := s.os.Config().PageBytes
	var need uint64
	for _, src := range s.cores.stream {
		need += (src.Profile().MaxVAddr()+page-1)/page + 2
	}
	return need*page <= s.os.Config().TotalBytes
}

// ParallelEnabled reports whether this run will use the parallel
// engine (Options.Threads accepted and no sequential fallback applied).
func (s *System) ParallelEnabled() bool { return s.par != nil }

// Hierarchy exposes the cache stack (for tests).
func (s *System) Hierarchy() *hier.Hierarchy { return s.hier }

// isaAdapter forwards OS notifications to the controller.
type isaAdapter struct{ c policy.Controller }

func (a isaAdapter) ISAAlloc(now uint64, seg addr.Seg) { a.c.ISAAlloc(now, seg) }
func (a isaAdapter) ISAFree(now uint64, seg addr.Seg)  { a.c.ISAFree(now, seg) }

// Controller exposes the memory-system controller (for tests).
func (s *System) Controller() policy.Controller { return s.ctrl }

// DeviceEnergy estimates the first two tiers' energy over the given
// number of elapsed CPU cycles using each tier's configured power
// profile (which defaults to the classic HBM/DDR parameters for a
// two-DRAM stack).
func (s *System) DeviceEnergy(elapsedCycles uint64) (fast, slow dram.EnergyReport) {
	return s.tiers[0].Energy(elapsedCycles), s.tiers[1].Energy(elapsedCycles)
}

// DeviceUtilisation returns the fraction of peak bandwidth the first
// two tiers sustained over the given elapsed cycles.
func (s *System) DeviceUtilisation(elapsedCycles uint64) (fast, slow float64) {
	return s.tiers[0].Dev.BusyFraction(elapsedCycles), s.tiers[1].Dev.BusyFraction(elapsedCycles)
}

// Tiers exposes the built memory stack (nearest first) for per-tier
// reporting.
func (s *System) Tiers() []*memtier.Tier { return s.tiers }

// TierEnergy reports tier i's energy over the elapsed window using its
// configured power profile.
func (s *System) TierEnergy(i int, elapsedCycles uint64) dram.EnergyReport {
	return s.tiers[i].Energy(elapsedCycles)
}

// OS exposes the operating-system model (for tests and experiments).
func (s *System) OS() *osmodel.OS { return s.os }

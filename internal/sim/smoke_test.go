package sim

import (
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

// TestSmokeAllPolicies runs every policy briefly on a scaled system and
// checks basic sanity of the results.
func TestSmokeAllPolicies(t *testing.T) {
	const scale = 256
	cfg := config.Default(scale)
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	prof = prof.Scale(scale)

	kinds := []PolicyKind{PolicyFlat, PolicyNUMAFlat, PolicyAlloy, PolicyPoM, PolicyPolymorphic, PolicyChameleon, PolicyChameleonOpt}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			opts := Options{Config: cfg, Policy: k, Workload: prof, Seed: 42, WarmupInstructions: 5_000_000}
			if k == PolicyFlat {
				opts.BaselineBytes = cfg.TotalCapacity()
			}
			sys, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(500_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.GeoMeanIPC <= 0 || res.GeoMeanIPC > 4 {
				t.Errorf("implausible IPC %.3f", res.GeoMeanIPC)
			}
			if res.Ctrl.Accesses == 0 {
				t.Errorf("no memory accesses reached the controller")
			}
			t.Logf("%s: IPC=%.3f hit=%.1f%% AMAT=%.0f swaps=%d fills=%d wb=%d cacheMode=%.1f%% MPKI=%.2f faults=%d",
				k, res.GeoMeanIPC, res.StackedHitRate*100, res.AMAT,
				res.Ctrl.Swaps, res.Ctrl.Fills, res.Ctrl.Writebacks, res.CacheModeFraction*100, res.Cores[0].MPKI, res.OS.MajorFaults)
			t.Logf("   fast: r=%d w=%d rowHit=%d conf=%d busW=%d | slow: r=%d w=%d rowHit=%d conf=%d busW=%d",
				res.Fast.Reads, res.Fast.Writes, res.Fast.RowHits, res.Fast.RowConflicts, res.Fast.BusWaits,
				res.Slow.Reads, res.Slow.Writes, res.Slow.RowHits, res.Slow.RowConflicts, res.Slow.BusWaits)
		})
	}
}

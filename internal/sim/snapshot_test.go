package sim

import (
	"testing"

	"chameleon/internal/cache"
	"chameleon/internal/config"
	"chameleon/internal/dram"
	"chameleon/internal/osmodel"
	"chameleon/internal/stats"
	"chameleon/internal/workload"
)

// Every statistics-bearing layer must speak the one snapshot shape.
var (
	_ stats.Source = (*cache.Cache)(nil)
	_ stats.Source = (*dram.Device)(nil)
	_ stats.Source = (*osmodel.OS)(nil)
	_ stats.Source = (*Result)(nil)
)

// TestResultSnapshotShape runs one small simulation and checks the
// unified snapshot carries the headline scalars and each substrate's
// namespaced counters, consistent with the Result fields.
func TestResultSnapshotShape(t *testing.T) {
	const scale = 1024
	prof, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Config:   config.Default(scale),
		Policy:   PolicyChameleonOpt,
		Workload: prof.Scale(scale),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name() != res.Policy {
		t.Errorf("Name() = %q, want %q", res.Name(), res.Policy)
	}
	snap := res.Snapshot()
	for _, key := range []string{
		"ipc_geomean", "stacked_hit_rate", "amat_cycles",
		"cache_mode_fraction", "cpu_utilization", "max_cycles", "cores",
		"ctrl.accesses", "ctrl.swaps", "os.major_faults",
		"dram_fast.reads", "dram_slow.reads", "l3.misses",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q (have %v)", key, snap.Keys())
		}
	}
	if snap["ipc_geomean"] != res.GeoMeanIPC {
		t.Errorf("ipc_geomean %v != GeoMeanIPC %v", snap["ipc_geomean"], res.GeoMeanIPC)
	}
	if snap["ctrl.accesses"] != float64(res.Ctrl.Accesses) {
		t.Errorf("ctrl.accesses %v != Ctrl.Accesses %d", snap["ctrl.accesses"], res.Ctrl.Accesses)
	}
	if snap["max_cycles"] != float64(res.MaxCycles) {
		t.Errorf("max_cycles %v != MaxCycles %d", snap["max_cycles"], res.MaxCycles)
	}
}

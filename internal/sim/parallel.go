package sim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"chameleon/internal/hier"
	"chameleon/internal/trace"
)

// This file is the parallel execution engine: workers run cores ahead
// through their private state and park on shared-phase events, which a
// single sequencer commits in the scheduler's global (time, id) order.
//
// # Step decomposition
//
// One simulated reference splits into a core-local prefix and a shared
// suffix. The prefix — reference generation, the instruction gap,
// mapped-page translation (osmodel.TranslateMapped) and the private
// cache levels (hier.AccessPrivate) — touches only per-core state and
// so commutes across cores: workers execute it without coordination. A
// step whose reference hits a private level with no spill into the
// shared levels is entirely local and retires on the worker. Everything
// else — the shared cache levels, the memory-system controller, the
// DRAM devices, page faults — is deferred as a parked event carrying
// the step's commit key (the core's pre-step clock) and executed by the
// sequencer via the same finishStep/applyWalk/AccessShared code the
// sequential engine runs.
//
// # Determinism
//
// The sequential scheduler executes steps in (pre-step time, core id)
// order. Local prefixes commute, so only the shared suffixes' relative
// order matters; the sequencer commits parked events by exactly that
// (key, id) order, and it commits an event only once no running core
// could still produce an earlier one: a running core j's published
// clock pub[j] lower-bounds the key of every event j may still emit
// (clocks never decrease), so event (K, i) waits while some running j
// has pub[j] < K, or pub[j] == K with j < i. Hence shared state sees
// the sequential interleaving bit for bit, per-core state evolves in
// program order on a single worker, and the OS access counters are
// commutative sums merged at the end of the pass — results are
// DeepEqual-identical to the sequential engine at any thread count
// (TestParallelEquivalence pins this for every registered policy).
//
// # Commit-ordered side channels (timeline, capture, reference bits)
//
// The commit-safety rule above gives a stronger property than shared
// -state ordering alone: when event (K, i) commits, every step with a
// smaller (key, id) has fully executed. Three per-step side effects
// exploit it to run under parallelism without breaking bit-identity:
//
//   - Timeline sampling. Only the sequencer samples. Every commit
//     re-runs the sequential engine's epoch check at the committing
//     step's position, and a fully-local step that would otherwise
//     retire on its worker parks a no-op evEpoch event whenever its
//     post-gap clock reaches the worker's (atomically loaded) next
//     -epoch bound. That load can only lag the true bound — the
//     sequencer alone advances it, and only at commits that precede the
//     step in (key, id) order — so skipping the park is always sound
//     and parking is at worst spurious. Samples and Options.Progress
//     callbacks therefore fire in exact step order on one goroutine.
//
//   - Trace capture. Each worker tees the references it consumes into
//     a per-core single-producer/single-consumer ring stamped with the
//     step's commit key; before each commit the sequencer drains all
//     rings in merged (key, id) order up to the committing event. The
//     sink sees the sequential engine's exact Emit sequence, which is
//     what makes threaded re-capture byte-identical (the CMTR writer's
//     block layout depends only on global Emit order).
//
//   - CLOCK reference bits (evictable mode, below). Run-ahead ref-bit
//     writes would reach the page table out of order and silently steer
//     CLOCK victim selection away from the sequential run, so in
//     evictable mode workers translate with TranslateMappedQuiet, log
//     the touched frame in a second per-core ring, and the sequencer
//     replays the bits in commit order through os.MarkReferenced.
//
// A core whose ring fills parks a no-op evSync event; committing it
// (like any commit) drains the rings, then the core retries the step.
//
// # Run-ahead translation safety (eviction-safe mode)
//
// Workers translate mapped pages lock-free while the sequencer handles
// faults. When System.translationsStable proves no eviction can ever
// occur the engine runs in stable mode and the fast path is exactly
// PR-era run-ahead. Otherwise it runs in evictable mode, built on the
// osmodel page-table generation counter (seqlock style — it advances on
// every eviction, the only cross-process page-table mutation):
//
//   - Workers validate the generation around each lock-free translation
//     and park the step as a fault on any mismatch, handing the
//     translation to the sequencer to replay authoritatively in order.
//
//   - When a committed fault must evict, the sequencer first fences the
//     workers: it raises e.fence, waits until every worker is parked at
//     the fence, asleep, or exited (no step mid-flight), then runs the
//     eviction. Ref bits were replayed in commit order, so CLOCK picks
//     the bit-identical victim.
//
//   - The undrained touch-ring entries are precisely the steps that
//     sequentially follow the eviction but already translated against
//     the pre-eviction table. If any of them resolved to the victim
//     frame, their private-cache state is stale and cannot be rolled
//     back: the pass aborts with ErrRunAheadCollision and RunContext
//     transparently re-runs on a fresh sequential System (possible
//     whenever no side channel has already escaped — see RunContext).
//     Any other undrained translation is still valid — an eviction
//     invalidates exactly one (process, vpage, frame) binding — so the
//     fence drops and run-ahead resumes.
//
// # Liveness
//
// A worker sleeps only when every core it owns is parked or done, and
// parking/finishing always signals the sequencer. The sequencer waits
// only when (a) nothing is parked — then some core is running and will
// park, finish, or drain the pass — or (b) a commit is blocked on a
// laggard, with a watermark (wmKey/wmWait) armed so the laggard's next
// publish at or past the key (or its park/finish) wakes the sequencer.
// Workers re-check the watermark after every local step, so a signal
// can be delayed by at most one step, never lost. While the fence is
// up workers entering sleep or the fence signal the sequencer, whose
// quiesce loop re-checks; nothing unparks cores mid-commit, so fenced
// and sleeping workers stay put until the fence drops.

// Core run states (parEngine.status).
const (
	coreRunning int32 = iota // owned by its worker, free to run ahead
	coreParked               // blocked on event[i], awaiting commit
	coreDone                 // instruction budget exhausted this pass
)

// Event kinds (parEvent.kind).
const (
	evWalk  uint8 = iota // private walk spilled into the shared levels
	evFault              // translation missed (or its generation went stale); full fault path needed
	evEpoch              // fully-local step that may cross a timeline epoch; sample, then retire
	evSync               // no step at all: the core's side-channel rings are full and must drain
)

// parEvent is one parked shared-phase event.
type parEvent struct {
	kind  uint8
	write bool
	// replay marks an evWalk for a replayed post-fault reference. The
	// sequential engine samples the timeline only on the translate
	// branch of a step, which replays skip — so the sequencer must not
	// sample when committing a replayed walk either.
	replay bool
	// key is the commit key: the core's pre-step clock.
	key uint64
	// phys is the demand physical address (evWalk) or the faulting
	// virtual address (evFault).
	phys uint64
	// stall is the private-prefix stall accrued so far (evWalk, evEpoch).
	stall uint64
}

// parBatchSteps is how many consecutive steps a worker runs on one core
// before re-picking its minimum-clock core, amortising the scan while
// keeping owned cores loosely in time order.
const parBatchSteps = 32

// parRingCap is the per-core side-channel ring capacity (captured refs,
// frame touches). A full ring parks an evSync event, so capacity only
// bounds run-ahead between drains, not correctness.
const (
	parRingCap  = 1024
	parRingMask = parRingCap - 1
)

// refRing is a single-producer/single-consumer ring of captured
// references stamped with their step's commit key: the owning worker
// pushes during run-ahead, the sequencer drains in commit order. head
// and tail are free-running counters (masked on access); the atomic
// tail store publishes entries, the atomic head store frees slots.
type refRing struct {
	key  [parRingCap]uint64
	ref  [parRingCap]trace.Ref
	head atomic.Uint64 // consumed by the sequencer
	tail atomic.Uint64 // published by the worker
}

func (r *refRing) full() bool { return r.tail.Load()-r.head.Load() >= parRingCap }

func (r *refRing) push(key uint64, ref trace.Ref) {
	t := r.tail.Load()
	r.key[t&parRingMask], r.ref[t&parRingMask] = key, ref
	r.tail.Store(t + 1)
}

// touchRing is the frame-touch analogue of refRing: the CLOCK reference
// bits a worker's quiet translations owe the page table, replayed by
// the sequencer in commit order (evictable mode only).
type touchRing struct {
	key   [parRingCap]uint64
	frame [parRingCap]uint32
	head  atomic.Uint64
	tail  atomic.Uint64
}

func (r *touchRing) full() bool { return r.tail.Load()-r.head.Load() >= parRingCap }

func (r *touchRing) push(key uint64, frame uint32) {
	t := r.tail.Load()
	r.key[t&parRingMask], r.frame[t&parRingMask] = key, frame
	r.tail.Store(t + 1)
}

// ErrRunAheadCollision marks the rare evictable-mode abort: a committed
// fault evicted a frame that a sequentially-later step had already
// translated against during run-ahead. The polluted private-cache state
// cannot be rolled back, so the pass unwinds; RunContext retries the
// whole run on a fresh sequential System when no side channel has
// already escaped, and otherwise surfaces an error wrapping this
// sentinel so callers that own their side channels (e.g. a server that
// can reset a progress gauge) can rebuild and retry sequentially
// themselves.
var ErrRunAheadCollision = errors.New("run-ahead eviction collision")

// parEngine is the parallel execution engine's shared state, built once
// at System construction and reset by each executePar pass.
type parEngine struct {
	s       *System
	threads int

	// capturing tees worker-consumed references through per-core rings
	// to the trace sink; evictable runs the generation-validated,
	// fence-on-evict translation protocol. Both fixed at construction.
	capturing bool
	evictable bool

	mu      sync.Mutex
	seqCond *sync.Cond // sequencer waits here; workers signal it

	workers []*parWorker
	owner   []*parWorker // owner[i] runs core i

	status []atomic.Int32 // coreRunning/coreParked/coreDone
	event  []parEvent     // valid while status[i] == coreParked
	ops    [][]hier.SharedOp

	refs    []refRing   // per-core capture rings (capturing only)
	touches []touchRing // per-core ref-bit rings (evictable only)

	// pub[i] lower-bounds the commit key of core i's next parked event:
	// the pre-step clock while a step is in flight (published at the end
	// of the previous step), the core's clock while idle-runnable, and
	// MaxUint64 once done.
	pub []atomic.Uint64

	// Sequencer wait watermark: when wmWait is set, a worker publishing
	// a clock >= wmKey signals seqCond ( >= , not > : a zero-advance
	// step can unblock an id tie at the same key).
	wmKey  atomic.Uint64
	wmWait atomic.Bool

	// fence halts workers between steps while the sequencer commits an
	// evicting fault; fencing mirrors it under mu for the condvar
	// protocol.
	fence   atomic.Bool
	fencing bool

	nDone   int // cores done this pass; guarded by mu
	stopped bool
	stop    atomic.Bool
	err     error // first failure; guarded by mu
}

// parWorker owns the contiguous core range [lo, hi).
type parWorker struct {
	eng     *parEngine
	id      int
	lo, hi  int
	waiting bool // parked in cond.Wait; guarded by eng.mu
	fenced  bool // parked at the eviction fence; guarded by eng.mu
	exited  bool // run() returned this pass; guarded by eng.mu
	cond    *sync.Cond
}

// newParEngine builds the engine for threads workers. Cores are split
// into contiguous chunks so one worker's hot SoA entries stay off its
// neighbours' cache lines. Call it after the trace sink is attached:
// capture and eviction modes latch here.
func newParEngine(s *System, threads int) *parEngine {
	n := s.cores.n()
	e := &parEngine{
		s:         s,
		threads:   threads,
		capturing: s.sinkOn,
		evictable: !s.translationsStable(),
		owner:     make([]*parWorker, n),
		status:    make([]atomic.Int32, n),
		event:     make([]parEvent, n),
		ops:       make([][]hier.SharedOp, n),
		pub:       make([]atomic.Uint64, n),
	}
	if e.capturing {
		e.refs = make([]refRing, n)
	}
	if e.evictable {
		e.touches = make([]touchRing, n)
	}
	e.seqCond = sync.NewCond(&e.mu)
	for i := range e.ops {
		e.ops[i] = make([]hier.SharedOp, 0, s.hier.MaxOpsPerWalk())
	}
	for id := 0; id < threads; id++ {
		w := &parWorker{eng: e, id: id, lo: id * n / threads, hi: (id + 1) * n / threads}
		w.cond = sync.NewCond(&e.mu)
		e.workers = append(e.workers, w)
		for i := w.lo; i < w.hi; i++ {
			e.owner[i] = w
		}
	}
	return e
}

// executePar runs one pass on the parallel engine: spawn the workers,
// sequence commits on the calling goroutine, join, and fold the
// workers' touch tallies into the OS.
func (s *System) executePar(budget uint64) error {
	s.beginPass(budget)
	e := s.par
	c := &s.cores
	e.err = nil
	e.stopped = false
	e.stop.Store(false)
	e.nDone = 0
	e.wmWait.Store(false)
	e.fence.Store(false)
	e.fencing = false
	for i := 0; i < c.n(); i++ {
		e.status[i].Store(coreRunning)
		e.pub[i].Store(c.time[i])
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		w.exited = false
		w.fenced = false
		wg.Add(1)
		go func(w *parWorker) {
			defer wg.Done()
			w.run()
			e.mu.Lock()
			w.exited = true
			e.mu.Unlock()
			e.seqCond.Signal()
		}(w)
	}
	err := e.sequence()
	e.mu.Lock()
	e.stopped = true
	e.stop.Store(true)
	if e.err == nil {
		e.err = err
	}
	for _, w := range e.workers {
		if w.waiting || w.fenced {
			w.waiting = false
			w.cond.Signal()
		}
	}
	e.mu.Unlock()
	wg.Wait()
	s.mergeTouches()
	e.mu.Lock()
	err = e.err
	e.mu.Unlock()
	return err
}

// mergeTouches folds the workers' per-core mapped-translation tallies
// into the OS counters. The counts are commutative sums, so merging
// once per pass reproduces sequential counting exactly.
func (s *System) mergeTouches() {
	c := &s.cores
	for i := range c.touchTotal {
		if c.touchTotal[i] != 0 {
			s.os.AddTouches(c.touchTotal[i], c.touchFast[i])
			c.touchTotal[i], c.touchFast[i] = 0, 0
		}
	}
}

// sequence is the commit loop, run on executePar's goroutine: pick the
// parked event with the smallest (key, id), wait out laggards that
// could still produce an earlier one, drain the side-channel rings up
// to that position, commit it, and unpark the core.
func (e *parEngine) sequence() error {
	s := e.s
	c := &s.cores
	n := c.n()
	commits := 0
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.err != nil {
			return e.err
		}
		if e.nDone == n {
			if e.capturing || e.evictable {
				// Flush the tail: every step has executed, so the rings
				// drain to empty in (key, id) order.
				e.mu.Unlock()
				e.drainLogs(math.MaxUint64, n)
				e.mu.Lock()
			}
			return nil
		}
		// Minimum (key, id) over parked events; ascending id keeps the
		// smallest id on key ties.
		best := -1
		var bestKey uint64
		for i := 0; i < n; i++ {
			if e.status[i].Load() != coreParked {
				continue
			}
			if k := e.event[i].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			// Nothing parked: some core is running (nDone < n) and its
			// park/finish will signal. Publishes alone need not wake us.
			e.seqWaitLocked(math.MaxUint64)
			continue
		}
		blocked := false
		for j := 0; j < n; j++ {
			if e.status[j].Load() != coreRunning {
				continue
			}
			if pj := e.pub[j].Load(); pj < bestKey || (pj == bestKey && j < best) {
				blocked = true
				break
			}
		}
		if blocked {
			e.seqWaitLocked(bestKey)
			continue
		}
		e.mu.Unlock()
		if e.capturing || e.evictable {
			// Commit safety makes every step before (bestKey, best) fully
			// executed and its ring entries published, so this drain
			// reproduces the sequential prefix exactly.
			e.drainLogs(bestKey, best)
		}
		err := e.commit(best)
		if commits++; err == nil && commits >= ctxCheckInterval {
			commits = 0
			if cerr := s.runCtx.Err(); cerr != nil {
				err = fmt.Errorf("sim: run canceled: %w", cerr)
			}
		}
		e.mu.Lock()
		if err != nil {
			return err
		}
		// Unpark: the core resumes in program order on its worker.
		e.pub[best].Store(c.time[best])
		e.status[best].Store(coreRunning)
		if w := e.owner[best]; w.waiting {
			w.waiting = false
			w.cond.Signal()
		}
	}
}

// seqWaitLocked parks the sequencer (mu held) until a worker signals:
// any park/finish, or — when waiting out a laggard — a publish at or
// past key.
func (e *parEngine) seqWaitLocked(key uint64) {
	e.wmKey.Store(key)
	e.wmWait.Store(true)
	e.seqCond.Wait()
	e.wmWait.Store(false)
}

// drainLogs replays side-channel ring entries up to and including the
// commit position (bk, bi): CLOCK reference bits (order among them is
// immaterial — each just sets a bit — but all must land before any
// later eviction consults them) and captured references (merged across
// cores so the sink sees the sequential Emit order).
func (e *parEngine) drainLogs(bk uint64, bi int) {
	if e.evictable {
		e.drainTouches(bk, bi)
	}
	if e.capturing {
		e.drainRefs(bk, bi)
	}
}

// drainTouches applies logged frame touches with (key, id) <= (bk, bi)
// as CLOCK reference bits. Entries appended concurrently carry larger
// keys (commit safety), so a tail snapshot suffices.
func (e *parEngine) drainTouches(bk uint64, bi int) {
	s := e.s
	for i := range e.touches {
		r := &e.touches[i]
		h, t := r.head.Load(), r.tail.Load()
		for ; h != t; h++ {
			k := r.key[h&parRingMask]
			if k > bk || (k == bk && i > bi) {
				break
			}
			s.os.MarkReferenced(r.frame[h&parRingMask])
		}
		r.head.Store(h)
	}
}

// drainRefs emits captured references with (key, id) <= (bk, bi) to
// the trace sink in the scheduler's global (key, id) order. Per-core
// rings are key-sorted (keys are pre-step clocks), so a k-way merge
// over the ring heads reproduces the sequential Emit sequence — the
// property that makes threaded re-capture byte-identical.
func (e *parEngine) drainRefs(bk uint64, bi int) {
	s := e.s
	for {
		best := -1
		var bestKey uint64
		for i := range e.refs {
			r := &e.refs[i]
			h := r.head.Load()
			if h == r.tail.Load() {
				continue
			}
			k := r.key[h&parRingMask]
			if k > bk || (k == bk && i > bi) {
				continue
			}
			if best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		r := &e.refs[best]
		h := r.head.Load()
		s.opts.TraceSink.Emit(best, r.ref[h&parRingMask])
		r.head.Store(h + 1)
	}
}

// commit executes core i's parked shared-phase event. It is the only
// place shared simulation state (LLC, controller, devices, OS tables)
// mutates during a parallel pass, and — matching the sequential step
// order — the only place timeline samples are taken.
func (e *parEngine) commit(i int) error {
	s := e.s
	c := &s.cores
	ev := &e.event[i]
	switch ev.kind {
	case evFault:
		var phys uint64
		var stall uint64
		if s.os.FreeBytes() < s.os.Config().PageBytes {
			if !e.evictable {
				return fmt.Errorf("sim: parallel engine: fault at core %d would evict a page, violating the translation-stability bound; rerun with Threads=1", i)
			}
			p, st, err := e.evictingTranslate(i, ev)
			if err != nil {
				return err
			}
			phys, stall = uint64(p), st
		} else {
			p, st := s.os.Translate(c.proc[i], ev.phys, c.time[i])
			phys, stall = uint64(p), st
		}
		if s.timelineOn {
			// Sequential order within a fault step: translate, sample,
			// then the stall (c.time[i] is still the post-gap clock here).
			s.sampleTimeline(c.time[i])
		}
		if stall > 0 {
			c.time[i] += stall
			c.faultCycles[i] += stall
			c.pendingValid[i] = true
			c.pendingPhys[i] = phys
			c.pendingWrite[i] = ev.write
			return nil
		}
		s.finishStep(i, phys, ev.write)
		return nil
	case evEpoch:
		if s.timelineOn {
			s.sampleTimeline(c.time[i])
		}
		// Retire the fully-local step the worker deferred for sampling.
		c.time[i] += ev.stall
		return nil
	case evSync:
		// The pre-commit drain already emptied this core's rings; the
		// worker retries the step it never started.
		return nil
	}
	if s.timelineOn && !ev.replay {
		s.sampleTimeline(c.time[i])
	}
	stall, llcMiss, victims := s.hier.AccessShared(i, ev.write, e.ops[i], ev.stall, c.time[i])
	s.applyWalk(i, ev.phys, stall, llcMiss, victims)
	return nil
}

// evictingTranslate commits a fault that must evict: quiesce the
// workers behind the fence, run the authoritative translation (CLOCK
// sees the commit-ordered reference bits, so it picks the sequential
// victim), and verify no run-ahead step already translated against the
// reclaimed frame. The page-table generation the eviction bumps is what
// workers validate against once the fence drops.
func (e *parEngine) evictingTranslate(i int, ev *parEvent) (phys uint64, stall uint64, err error) {
	s := e.s
	c := &s.cores
	if err := e.quiesce(); err != nil {
		return 0, 0, err
	}
	defer e.unfence()
	gen := s.os.PageGen()
	p, st := s.os.Translate(c.proc[i], ev.phys, c.time[i])
	if s.os.PageGen() != gen {
		victim := s.os.LastEvictedFrame()
		if e.victimTouched(victim) {
			return 0, 0, fmt.Errorf("sim: parallel engine: committed fault on core %d evicted frame %d already used by a run-ahead translation: %w", i, victim, ErrRunAheadCollision)
		}
	}
	return uint64(p), st, nil
}

// victimTouched reports whether any undrained run-ahead translation
// resolved to the victim frame. Undrained touch entries are exactly the
// steps that sequentially follow the eviction but translated against
// the pre-eviction page table — the set whose private-cache state would
// be stale. An eviction invalidates exactly one (process, vpage, frame)
// binding, so every other undrained translation remains valid.
func (e *parEngine) victimTouched(victim uint32) bool {
	for i := range e.touches {
		r := &e.touches[i]
		for h, t := r.head.Load(), r.tail.Load(); h != t; h++ {
			if r.frame[h&parRingMask] == victim {
				return true
			}
		}
	}
	return false
}

// quiesce raises the eviction fence and waits until no worker is
// mid-step: each is parked at the fence, asleep with every owned core
// parked or done, or exited. Nothing unparks cores while the sequencer
// is here, so the quiescent state holds until unfence.
func (e *parEngine) quiesce() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fencing = true
	e.fence.Store(true)
	for !e.quiescedLocked() {
		if e.stopped {
			e.fencing = false
			e.fence.Store(false)
			if e.err != nil {
				return e.err
			}
			return fmt.Errorf("sim: parallel engine: pass stopped during eviction fence")
		}
		e.seqCond.Wait()
	}
	return nil
}

func (e *parEngine) quiescedLocked() bool {
	for _, w := range e.workers {
		if !(w.fenced || w.waiting || w.exited) {
			return false
		}
	}
	return true
}

// unfence drops the eviction fence and releases fence-parked workers.
func (e *parEngine) unfence() {
	e.mu.Lock()
	e.fencing = false
	e.fence.Store(false)
	for _, w := range e.workers {
		if w.fenced {
			w.cond.Signal()
		}
	}
	e.mu.Unlock()
}

// fenceWait parks the calling worker at the eviction fence until the
// sequencer drops it (or the pass stops).
func (w *parWorker) fenceWait() {
	e := w.eng
	e.mu.Lock()
	if e.fencing {
		w.fenced = true
		e.seqCond.Signal()
		for e.fencing && !e.stopped {
			w.cond.Wait()
		}
		w.fenced = false
	}
	e.mu.Unlock()
}

// fail records the first error and wakes everyone so the pass unwinds.
func (e *parEngine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
	e.stop.Store(true)
	for _, w := range e.workers {
		if w.waiting || w.fenced {
			w.waiting = false
			w.cond.Signal()
		}
	}
	e.mu.Unlock()
	e.seqCond.Signal()
}

// run is a worker's main loop: pick the owned runnable core with the
// smallest clock, run it for up to parBatchSteps local steps, repeat;
// sleep when every owned core is parked, exit when all are done or the
// pass stops. The eviction fence is honoured between steps, so a fence
// raised mid-step waits at most one step's work.
func (w *parWorker) run() {
	e := w.eng
	s := e.s
	c := &s.cores
	steps := 0
	for {
		i := w.pickCore()
		if i < 0 {
			if w.sleep() {
				return
			}
			continue
		}
		for k := 0; k < parBatchSteps; k++ {
			if e.stop.Load() {
				return
			}
			if e.fence.Load() {
				w.fenceWait()
				break
			}
			if steps++; steps >= ctxCheckInterval {
				steps = 0
				if err := s.runCtx.Err(); err != nil {
					e.fail(fmt.Errorf("sim: run canceled: %w", err))
					return
				}
			}
			if c.instr[i] >= c.budget[i] {
				w.finish(i)
				break
			}
			if w.stepLocal(i) {
				break // parked on a shared-phase event
			}
		}
	}
}

// pickCore returns the owned running core with the smallest clock, or
// -1. Reading c.time of an owned core is safe: running cores are
// stepped only by this worker, and the sequencer's writes during a park
// are ordered before the running status it stores afterwards.
func (w *parWorker) pickCore() int {
	e := w.eng
	c := &e.s.cores
	best := -1
	for i := w.lo; i < w.hi; i++ {
		if e.status[i].Load() != coreRunning {
			continue
		}
		if best < 0 || c.time[i] < c.time[best] {
			best = i
		}
	}
	return best
}

// sleep blocks until an owned core is runnable. It reports true when
// the worker should exit (pass stopped or every owned core done).
func (w *parWorker) sleep() (exit bool) {
	e := w.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped {
			return true
		}
		allDone := true
		for i := w.lo; i < w.hi; i++ {
			switch e.status[i].Load() {
			case coreRunning:
				return false
			case coreParked:
				allDone = false
			}
		}
		if allDone {
			return true
		}
		w.waiting = true
		if e.fencing {
			// A sleeping worker is quiescent; tell the fencing sequencer.
			e.seqCond.Signal()
		}
		w.cond.Wait()
	}
}

// stepLocal runs one step's core-local prefix on core i, parking the
// shared suffix if the step needs one. It reports whether the core
// parked. It mirrors System.step minus the features the engine's
// remaining fallback conditions exclude (allocation-churn phases,
// AutoNUMA); timeline sampling and trace capture are deferred to the
// sequencer through evEpoch events and the capture rings.
func (w *parWorker) stepLocal(i int) (parked bool) {
	e := w.eng
	s := e.s
	c := &s.cores
	key := c.time[i] // pre-step clock = commit key; pub[i] already equals it
	if (e.capturing && e.refs[i].full()) || (e.evictable && e.touches[i].full()) {
		// Out of side-channel room: park a no-op sync event so the
		// sequencer drains the rings in commit order, then retry.
		e.event[i] = parEvent{kind: evSync, key: key}
		w.park(i, key)
		return true
	}
	replay := c.pendingValid[i]
	var p uint64
	var write bool
	if replay {
		// Replay the reference whose fault the sequencer committed. Like
		// the sequential replay path this neither re-translates nor
		// re-captures nor samples: the fault commit accounted for all
		// three.
		p, write = c.pendingPhys[i], c.pendingWrite[i]
		c.pendingValid[i] = false
	} else {
		ref := c.stream[i].Next()
		if e.capturing {
			e.refs[i].push(key, ref)
		}
		c.instr[i] += ref.Gap
		c.time[i] += ref.Gap * s.baseCPIx1000 / 1000
		var ok, onFast bool
		if e.evictable {
			// Seqlock-style validation: an eviction bumps the page-table
			// generation, so a stable read brackets a translation no
			// eviction raced with. The reference bit is logged, not set —
			// the sequencer replays bits in commit order so CLOCK victim
			// selection stays bit-identical.
			gen := s.os.PageGen()
			phys, frame, fast, mapped := s.os.TranslateMappedQuiet(c.proc[i], ref.VAddr)
			onFast, ok = fast, mapped
			if !ok || s.os.PageGen() != gen {
				// Unmapped, or the translation went stale: discard it and
				// let the sequencer replay the fault path authoritatively
				// at this step's commit position.
				e.event[i] = parEvent{kind: evFault, write: ref.Write, key: key, phys: ref.VAddr}
				w.park(i, key)
				return true
			}
			e.touches[i].push(key, frame)
			p = uint64(phys)
		} else {
			phys, fast, mapped := s.os.TranslateMapped(c.proc[i], ref.VAddr)
			onFast, ok = fast, mapped
			if !ok {
				e.event[i] = parEvent{kind: evFault, write: ref.Write, key: key, phys: ref.VAddr}
				w.park(i, key)
				return true
			}
			p = uint64(phys)
		}
		c.touchTotal[i]++
		if onFast {
			c.touchFast[i]++
		}
		write = ref.Write
	}
	stall, hit, ops := s.hier.AccessPrivate(i, p, write, c.time[i], e.ops[i][:0])
	e.ops[i] = ops
	if hit && len(ops) == 0 {
		if s.timelineOn && !replay {
			if next := s.nextEpoch.Load(); next != 0 && c.time[i] >= next {
				// The step may cross an epoch boundary. The loaded bound
				// can only lag the true one (the sequencer alone advances
				// it, at commits that precede this step), so skipping the
				// park is always sound and parking is at worst spurious:
				// the sequencer re-checks at commit and samples in exact
				// step order.
				e.event[i] = parEvent{kind: evEpoch, key: key, stall: stall}
				w.park(i, key)
				return true
			}
		}
		// Fully local step: retire and publish the advanced clock.
		c.time[i] += stall
		w.publish(i, c.time[i])
		return false
	}
	e.event[i] = parEvent{kind: evWalk, write: write, replay: replay, key: key, phys: p, stall: stall}
	w.park(i, key)
	return true
}

// park hands core i to the sequencer. The event (and the step's state
// written so far) is made visible by the atomic status store; the
// signal lands after any in-progress sequencer scan holding mu.
func (w *parWorker) park(i int, key uint64) {
	e := w.eng
	e.pub[i].Store(key)
	e.mu.Lock()
	e.status[i].Store(coreParked)
	e.mu.Unlock()
	e.seqCond.Signal()
}

// finish marks core i's budget exhausted for this pass.
func (w *parWorker) finish(i int) {
	e := w.eng
	e.pub[i].Store(math.MaxUint64)
	e.mu.Lock()
	e.status[i].Store(coreDone)
	e.s.cores.done[i] = true
	e.nDone++
	e.mu.Unlock()
	e.seqCond.Signal()
}

// publish advances core i's clock lower bound after a fully local step
// and wakes the sequencer if the new clock crosses its armed watermark.
func (w *parWorker) publish(i int, clock uint64) {
	e := w.eng
	e.pub[i].Store(clock)
	if e.wmWait.Load() && clock >= e.wmKey.Load() {
		// Acquiring mu serialises with the sequencer: either it is
		// inside Wait (the signal wakes it) or it has not yet decided to
		// wait (its re-scan will see the new pub).
		e.mu.Lock()
		e.wmWait.Store(false)
		e.mu.Unlock()
		e.seqCond.Signal()
	}
}

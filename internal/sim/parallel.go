package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"chameleon/internal/hier"
)

// This file is the parallel execution engine: workers run cores ahead
// through their private state and park on shared-phase events, which a
// single sequencer commits in the scheduler's global (time, id) order.
//
// # Step decomposition
//
// One simulated reference splits into a core-local prefix and a shared
// suffix. The prefix — reference generation, the instruction gap,
// mapped-page translation (osmodel.TranslateMapped) and the private
// cache levels (hier.AccessPrivate) — touches only per-core state and
// so commutes across cores: workers execute it without coordination. A
// step whose reference hits a private level with no spill into the
// shared levels is entirely local and retires on the worker. Everything
// else — the shared cache levels, the memory-system controller, the
// DRAM devices, page faults — is deferred as a parked event carrying
// the step's commit key (the core's pre-step clock) and executed by the
// sequencer via the same finishStep/applyWalk/AccessShared code the
// sequential engine runs.
//
// # Determinism
//
// The sequential scheduler executes steps in (pre-step time, core id)
// order. Local prefixes commute, so only the shared suffixes' relative
// order matters; the sequencer commits parked events by exactly that
// (key, id) order, and it commits an event only once no running core
// could still produce an earlier one: a running core j's published
// clock pub[j] lower-bounds the key of every event j may still emit
// (clocks never decrease), so event (K, i) waits while some running j
// has pub[j] < K, or pub[j] == K with j < i. Hence shared state sees
// the sequential interleaving bit for bit, per-core state evolves in
// program order on a single worker, and the OS access counters are
// commutative sums merged at the end of the pass — results are
// DeepEqual-identical to the sequential engine at any thread count
// (TestParallelEquivalence pins this for every registered policy).
//
// # Run-ahead translation safety
//
// Workers translate mapped pages lock-free while the sequencer handles
// faults. That is sound only if no page eviction can occur (evictions
// are the only cross-process page-table mutation): New enables the
// engine only when System.translationsStable proves every process's
// whole virtual span fits in memory, and the sequencer re-checks
// FreeBytes before each fault commit, turning a violated assumption
// into a run error instead of a silent race.
//
// # Liveness
//
// A worker sleeps only when every core it owns is parked or done, and
// parking/finishing always signals the sequencer. The sequencer waits
// only when (a) nothing is parked — then some core is running and will
// park, finish, or drain the pass — or (b) a commit is blocked on a
// laggard, with a watermark (wmKey/wmWait) armed so the laggard's next
// publish at or past the key (or its park/finish) wakes the sequencer.
// Workers re-check the watermark after every local step, so a signal
// can be delayed by at most one step, never lost.

// Core run states (parEngine.status).
const (
	coreRunning int32 = iota // owned by its worker, free to run ahead
	coreParked               // blocked on event[i], awaiting commit
	coreDone                 // instruction budget exhausted this pass
)

// Event kinds (parEvent.kind).
const (
	evWalk  uint8 = iota // private walk spilled into the shared levels
	evFault              // TranslateMapped missed; full fault path needed
)

// parEvent is one parked shared-phase event.
type parEvent struct {
	kind  uint8
	write bool
	// key is the commit key: the core's pre-step clock.
	key uint64
	// phys is the demand physical address (evWalk) or the faulting
	// virtual address (evFault).
	phys uint64
	// stall is the private-prefix stall accrued so far (evWalk).
	stall uint64
}

// parBatchSteps is how many consecutive steps a worker runs on one core
// before re-picking its minimum-clock core, amortising the scan while
// keeping owned cores loosely in time order.
const parBatchSteps = 32

// parEngine is the parallel execution engine's shared state, built once
// at System construction and reset by each executePar pass.
type parEngine struct {
	s       *System
	threads int

	mu      sync.Mutex
	seqCond *sync.Cond // sequencer waits here; workers signal it

	workers []*parWorker
	owner   []*parWorker // owner[i] runs core i

	status []atomic.Int32 // coreRunning/coreParked/coreDone
	event  []parEvent     // valid while status[i] == coreParked
	ops    [][]hier.SharedOp

	// pub[i] lower-bounds the commit key of core i's next parked event:
	// the pre-step clock while a step is in flight (published at the end
	// of the previous step), the core's clock while idle-runnable, and
	// MaxUint64 once done.
	pub []atomic.Uint64

	// Sequencer wait watermark: when wmWait is set, a worker publishing
	// a clock >= wmKey signals seqCond ( >= , not > : a zero-advance
	// step can unblock an id tie at the same key).
	wmKey  atomic.Uint64
	wmWait atomic.Bool

	nDone   int // cores done this pass; guarded by mu
	stopped bool
	stop    atomic.Bool
	err     error // first failure; guarded by mu
}

// parWorker owns the contiguous core range [lo, hi).
type parWorker struct {
	eng     *parEngine
	id      int
	lo, hi  int
	waiting bool // parked in cond.Wait; guarded by eng.mu
	cond    *sync.Cond
}

// newParEngine builds the engine for threads workers. Cores are split
// into contiguous chunks so one worker's hot SoA entries stay off its
// neighbours' cache lines.
func newParEngine(s *System, threads int) *parEngine {
	n := s.cores.n()
	e := &parEngine{
		s:       s,
		threads: threads,
		owner:   make([]*parWorker, n),
		status:  make([]atomic.Int32, n),
		event:   make([]parEvent, n),
		ops:     make([][]hier.SharedOp, n),
		pub:     make([]atomic.Uint64, n),
	}
	e.seqCond = sync.NewCond(&e.mu)
	for i := range e.ops {
		e.ops[i] = make([]hier.SharedOp, 0, s.hier.MaxOpsPerWalk())
	}
	for id := 0; id < threads; id++ {
		w := &parWorker{eng: e, id: id, lo: id * n / threads, hi: (id + 1) * n / threads}
		w.cond = sync.NewCond(&e.mu)
		e.workers = append(e.workers, w)
		for i := w.lo; i < w.hi; i++ {
			e.owner[i] = w
		}
	}
	return e
}

// executePar runs one pass on the parallel engine: spawn the workers,
// sequence commits on the calling goroutine, join, and fold the
// workers' touch tallies into the OS.
func (s *System) executePar(budget uint64) error {
	s.beginPass(budget)
	e := s.par
	c := &s.cores
	e.err = nil
	e.stopped = false
	e.stop.Store(false)
	e.nDone = 0
	e.wmWait.Store(false)
	for i := 0; i < c.n(); i++ {
		e.status[i].Store(coreRunning)
		e.pub[i].Store(c.time[i])
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *parWorker) { defer wg.Done(); w.run() }(w)
	}
	err := e.sequence()
	e.mu.Lock()
	e.stopped = true
	e.stop.Store(true)
	if e.err == nil {
		e.err = err
	}
	for _, w := range e.workers {
		if w.waiting {
			w.waiting = false
			w.cond.Signal()
		}
	}
	e.mu.Unlock()
	wg.Wait()
	s.mergeTouches()
	e.mu.Lock()
	err = e.err
	e.mu.Unlock()
	return err
}

// mergeTouches folds the workers' per-core mapped-translation tallies
// into the OS counters. The counts are commutative sums, so merging
// once per pass reproduces sequential counting exactly.
func (s *System) mergeTouches() {
	c := &s.cores
	for i := range c.touchTotal {
		if c.touchTotal[i] != 0 {
			s.os.AddTouches(c.touchTotal[i], c.touchFast[i])
			c.touchTotal[i], c.touchFast[i] = 0, 0
		}
	}
}

// sequence is the commit loop, run on executePar's goroutine: pick the
// parked event with the smallest (key, id), wait out laggards that
// could still produce an earlier one, commit it, and unpark the core.
func (e *parEngine) sequence() error {
	s := e.s
	c := &s.cores
	n := c.n()
	commits := 0
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.err != nil {
			return e.err
		}
		if e.nDone == n {
			return nil
		}
		// Minimum (key, id) over parked events; ascending id keeps the
		// smallest id on key ties.
		best := -1
		var bestKey uint64
		for i := 0; i < n; i++ {
			if e.status[i].Load() != coreParked {
				continue
			}
			if k := e.event[i].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			// Nothing parked: some core is running (nDone < n) and its
			// park/finish will signal. Publishes alone need not wake us.
			e.seqWaitLocked(math.MaxUint64)
			continue
		}
		blocked := false
		for j := 0; j < n; j++ {
			if e.status[j].Load() != coreRunning {
				continue
			}
			if pj := e.pub[j].Load(); pj < bestKey || (pj == bestKey && j < best) {
				blocked = true
				break
			}
		}
		if blocked {
			e.seqWaitLocked(bestKey)
			continue
		}
		e.mu.Unlock()
		err := e.commit(best)
		if commits++; err == nil && commits >= ctxCheckInterval {
			commits = 0
			if cerr := s.runCtx.Err(); cerr != nil {
				err = fmt.Errorf("sim: run canceled: %w", cerr)
			}
		}
		e.mu.Lock()
		if err != nil {
			return err
		}
		// Unpark: the core resumes in program order on its worker.
		e.pub[best].Store(c.time[best])
		e.status[best].Store(coreRunning)
		if w := e.owner[best]; w.waiting {
			w.waiting = false
			w.cond.Signal()
		}
	}
}

// seqWaitLocked parks the sequencer (mu held) until a worker signals:
// any park/finish, or — when waiting out a laggard — a publish at or
// past key.
func (e *parEngine) seqWaitLocked(key uint64) {
	e.wmKey.Store(key)
	e.wmWait.Store(true)
	e.seqCond.Wait()
	e.wmWait.Store(false)
}

// commit executes core i's parked shared-phase event. It is the only
// place shared simulation state (LLC, controller, devices, OS tables)
// mutates during a parallel pass.
func (e *parEngine) commit(i int) error {
	s := e.s
	c := &s.cores
	ev := &e.event[i]
	if ev.kind == evFault {
		if s.os.FreeBytes() < s.os.Config().PageBytes {
			return fmt.Errorf("sim: parallel engine: fault at core %d would evict a page, violating the translation-stability bound; rerun with Threads=1", i)
		}
		phys, stall := s.os.Translate(c.proc[i], ev.phys, c.time[i])
		if stall > 0 {
			c.time[i] += stall
			c.faultCycles[i] += stall
			c.pendingValid[i] = true
			c.pendingPhys[i] = uint64(phys)
			c.pendingWrite[i] = ev.write
			return nil
		}
		s.finishStep(i, uint64(phys), ev.write)
		return nil
	}
	stall, llcMiss, victims := s.hier.AccessShared(i, ev.write, e.ops[i], ev.stall, c.time[i])
	s.applyWalk(i, ev.phys, stall, llcMiss, victims)
	return nil
}

// fail records the first error and wakes everyone so the pass unwinds.
func (e *parEngine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
	e.stop.Store(true)
	for _, w := range e.workers {
		if w.waiting {
			w.waiting = false
			w.cond.Signal()
		}
	}
	e.mu.Unlock()
	e.seqCond.Signal()
}

// run is a worker's main loop: pick the owned runnable core with the
// smallest clock, run it for up to parBatchSteps local steps, repeat;
// sleep when every owned core is parked, exit when all are done or the
// pass stops.
func (w *parWorker) run() {
	e := w.eng
	s := e.s
	c := &s.cores
	steps := 0
	for {
		i := w.pickCore()
		if i < 0 {
			if w.sleep() {
				return
			}
			continue
		}
		for k := 0; k < parBatchSteps; k++ {
			if e.stop.Load() {
				return
			}
			if steps++; steps >= ctxCheckInterval {
				steps = 0
				if err := s.runCtx.Err(); err != nil {
					e.fail(fmt.Errorf("sim: run canceled: %w", err))
					return
				}
			}
			if c.instr[i] >= c.budget[i] {
				w.finish(i)
				break
			}
			if w.stepLocal(i) {
				break // parked on a shared-phase event
			}
		}
	}
}

// pickCore returns the owned running core with the smallest clock, or
// -1. Reading c.time of an owned core is safe: running cores are
// stepped only by this worker, and the sequencer's writes during a park
// are ordered before the running status it stores afterwards.
func (w *parWorker) pickCore() int {
	e := w.eng
	c := &e.s.cores
	best := -1
	for i := w.lo; i < w.hi; i++ {
		if e.status[i].Load() != coreRunning {
			continue
		}
		if best < 0 || c.time[i] < c.time[best] {
			best = i
		}
	}
	return best
}

// sleep blocks until an owned core is runnable. It reports true when
// the worker should exit (pass stopped or every owned core done).
func (w *parWorker) sleep() (exit bool) {
	e := w.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped {
			return true
		}
		allDone := true
		for i := w.lo; i < w.hi; i++ {
			switch e.status[i].Load() {
			case coreRunning:
				return false
			case coreParked:
				allDone = false
			}
		}
		if allDone {
			return true
		}
		w.waiting = true
		w.cond.Wait()
	}
}

// stepLocal runs one step's core-local prefix on core i, parking the
// shared suffix if the step needs one. It reports whether the core
// parked. It mirrors System.step minus the features the engine's
// fallback conditions exclude (phases, timeline, AutoNUMA, sinks).
func (w *parWorker) stepLocal(i int) (parked bool) {
	e := w.eng
	s := e.s
	c := &s.cores
	key := c.time[i] // pre-step clock = commit key; pub[i] already equals it
	var p uint64
	var write bool
	if c.pendingValid[i] {
		// Replay the reference whose fault the sequencer committed.
		p, write = c.pendingPhys[i], c.pendingWrite[i]
		c.pendingValid[i] = false
	} else {
		ref := c.stream[i].Next()
		c.instr[i] += ref.Gap
		c.time[i] += ref.Gap * s.baseCPIx1000 / 1000
		phys, onFast, ok := s.os.TranslateMapped(c.proc[i], ref.VAddr)
		if !ok {
			e.event[i] = parEvent{kind: evFault, write: ref.Write, key: key, phys: ref.VAddr}
			w.park(i, key)
			return true
		}
		c.touchTotal[i]++
		if onFast {
			c.touchFast[i]++
		}
		p, write = uint64(phys), ref.Write
	}
	stall, hit, ops := s.hier.AccessPrivate(i, p, write, c.time[i], e.ops[i][:0])
	e.ops[i] = ops
	if hit && len(ops) == 0 {
		// Fully local step: retire and publish the advanced clock.
		c.time[i] += stall
		w.publish(i, c.time[i])
		return false
	}
	e.event[i] = parEvent{kind: evWalk, write: write, key: key, phys: p, stall: stall}
	w.park(i, key)
	return true
}

// park hands core i to the sequencer. The event (and the step's state
// written so far) is made visible by the atomic status store; the
// signal lands after any in-progress sequencer scan holding mu.
func (w *parWorker) park(i int, key uint64) {
	e := w.eng
	e.pub[i].Store(key)
	e.mu.Lock()
	e.status[i].Store(coreParked)
	e.mu.Unlock()
	e.seqCond.Signal()
}

// finish marks core i's budget exhausted for this pass.
func (w *parWorker) finish(i int) {
	e := w.eng
	e.pub[i].Store(math.MaxUint64)
	e.mu.Lock()
	e.status[i].Store(coreDone)
	e.s.cores.done[i] = true
	e.nDone++
	e.mu.Unlock()
	e.seqCond.Signal()
}

// publish advances core i's clock lower bound after a fully local step
// and wakes the sequencer if the new clock crosses its armed watermark.
func (w *parWorker) publish(i int, clock uint64) {
	e := w.eng
	e.pub[i].Store(clock)
	if e.wmWait.Load() && clock >= e.wmKey.Load() {
		// Acquiring mu serialises with the sequencer: either it is
		// inside Wait (the signal wakes it) or it has not yet decided to
		// wait (its re-scan will see the new pub).
		e.mu.Lock()
		e.wmWait.Store(false)
		e.mu.Unlock()
		e.seqCond.Signal()
	}
}

package sim

import (
	"fmt"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

// BenchmarkScheduler measures the simulation loop under the heap
// scheduler against the O(cores) linear-scan reference at increasing
// core counts. The two produce bit-identical runs (see
// TestSchedulerEquivalence), so any ns/op difference is pure scheduling
// overhead.
func BenchmarkScheduler(b *testing.B) {
	for _, n := range []int{12, 32, 64} {
		for _, sched := range []struct {
			name   string
			linear bool
		}{{"heap", false}, {"linear", true}} {
			b.Run(fmt.Sprintf("cores=%d/%s", n, sched.name), func(b *testing.B) {
				benchScheduler(b, n, sched.linear)
			})
		}
	}
}

func benchScheduler(b *testing.B, cores int, linear bool) {
	const scale = 512
	cfg := config.Default(scale)
	cfg.CPU.Cores = cores
	prof, err := workload.ByName("bwaves")
	if err != nil {
		b.Fatal(err)
	}
	prof = prof.Scale(scale)
	// Keep the aggregate footprint inside the scaled machine at every
	// core count, so the capacity check admits the 64-core run.
	if cap := cfg.TotalCapacity() / uint64(2*cores); prof.FootprintBytes > cap {
		prof.FootprintBytes = cap
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := New(Options{
			Config:   cfg,
			Policy:   PolicyNUMAFlat,
			Workload: prof,
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.linearSched = linear
		if _, err := sys.Run(20_000); err != nil {
			b.Fatal(err)
		}
	}
}

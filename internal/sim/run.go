package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"chameleon/internal/addr"
	"chameleon/internal/cache"
	"chameleon/internal/dram"
	"chameleon/internal/hier"
	"chameleon/internal/osmodel"
	"chameleon/internal/policy"
	"chameleon/internal/stats"
)

// CoreResult summarises one core's execution.
type CoreResult struct {
	// Workload names the profile this core ran (the Mix entry under
	// Options.Mix, else Options.Workload).
	Workload     string
	Instructions uint64
	Cycles       uint64
	IPC          float64
	LLCMisses    uint64
	MPKI         float64
	FaultCycles  uint64
}

// LevelResult is one cache level's aggregate statistics (private levels
// summed across cores). It implements stats.Source.
type LevelResult struct {
	Level string
	cache.Stats
}

// Name implements stats.Source.
func (l LevelResult) Name() string { return l.Level }

// TierResult is one memory tier's end-of-run statistics.
type TierResult struct {
	Tier          string // device name (stacked, offchip, nvm, ...)
	Kind          string // dram / nvm / cxl
	CapacityBytes uint64
	// DemandAccesses is the tier's demand-access count. For designs
	// without per-tier accounting it is derived from the controller's
	// fast-hit split (exact for two tiers, zero beyond them).
	DemandAccesses uint64
	// Occupancy is the resident fraction of the tier's OS home range,
	// when the whole stack is OS-visible (0 otherwise).
	Occupancy float64
	// EnergyNJ is the tier's energy over the run per its configured
	// power profile; Utilization is its busy fraction of peak bandwidth.
	EnergyNJ    float64
	Utilization float64
	// Device is the backing device's full counter snapshot (row hits
	// for DRAM, wear counters for NVM, link waits for CXL, ...).
	Device stats.Snapshot
}

// Result summarises a simulation run.
type Result struct {
	Policy string
	// Workload names the run's profile; under Options.Mix it is every
	// mix entry's name joined with "+" (see CoreResult.Workload for the
	// per-core assignment).
	Workload string
	Cores    []CoreResult

	GeoMeanIPC     float64
	StackedHitRate float64
	AMAT           float64
	// CacheModeFraction is the share of segment groups in cache mode
	// at the end of the run (Chameleon designs only, else 0).
	CacheModeFraction float64
	// CPUUtilization is 1 - (page-fault stall share of total cycles).
	CPUUtilization float64
	MaxCycles      uint64

	Ctrl policy.Stats
	OS   osmodel.Stats
	// Fast and Slow are the first two tiers' DRAM statistics, zero when
	// a tier is backed by a non-DRAM device (see Tiers for the
	// device-agnostic view).
	Fast dram.Stats
	Slow dram.Stats
	// Tiers holds per-tier statistics in stack order (nearest first).
	Tiers []TierResult
	// Levels holds per-cache-level statistics in hierarchy order (the
	// last entry is the LLC).
	Levels []LevelResult

	NUMATimeline []osmodel.EpochRecord
	// Timeline is populated when Options.TimelineEpochCycles is set.
	Timeline []TimelinePoint

	// Engine reports which execution engine ran the simulation:
	// EngineParallel when the commit-sequencer engine was active, else
	// EngineSequential. Every simulation counter above is bit-identical
	// either way; Engine is run provenance, not a metric.
	Engine string
	// FallbackReason is non-empty when Options.Threads requested
	// parallelism but the run executed sequentially anyway (one of the
	// Fallback* constants). Empty for parallel runs and for runs that
	// never asked for threads.
	FallbackReason string `json:",omitempty"`
}

// Run executes instrPerCore instructions on every core and returns the
// aggregated results. It may be called once per System; a second call
// returns an error because caches, remapping tables and OS state carry
// the first run's history.
func (s *System) Run(instrPerCore uint64) (*Result, error) {
	return s.RunContext(context.Background(), instrPerCore)
}

// RunContext is Run with cancellation: the context is checked at epoch
// boundaries of the simulation loop (every few thousand simulated
// references), so a deadline or an explicit cancel stops a runaway
// simulation promptly. The returned error wraps ctx.Err() when the run
// was cut short.
//
// A parallel pass can abort with ErrRunAheadCollision when a committed
// eviction reclaims a frame a run-ahead step already translated
// against (rare: the workload must evict AND the victim must be hot on
// another core within the run-ahead window). When no side channel has
// escaped the aborted run — no trace sink, no Progress callback, no
// externally owned Sources — RunContext transparently replays the
// whole run on a fresh sequential System built from the same options;
// the result is the bit-exact sequential answer with
// Result.FallbackReason set to FallbackEvictionCollision.
func (s *System) RunContext(ctx context.Context, instrPerCore uint64) (*Result, error) {
	res, err := s.runContext(ctx, instrPerCore)
	if err != nil && errors.Is(err, ErrRunAheadCollision) && s.canRetrySequential() {
		o := s.opts
		o.Threads = 1
		seq, nerr := New(o)
		if nerr != nil {
			return nil, err
		}
		res, err = seq.runContext(ctx, instrPerCore)
		if err == nil {
			res.Engine = EngineSequential
			res.FallbackReason = FallbackEvictionCollision
		}
	}
	return res, err
}

// canRetrySequential reports whether an aborted parallel run may be
// replayed on a fresh System: only when the aborted pass produced no
// externally visible side effects. A trace sink has already received
// a partial capture, a Progress callback may have fired, and Sources
// are stateful streams the aborted run partially consumed — any of
// those makes a silent replay wrong, so the collision surfaces as an
// error instead.
func (s *System) canRetrySequential() bool {
	return !s.sinkOn && s.opts.Progress == nil && len(s.opts.Sources) == 0
}

func (s *System) runContext(ctx context.Context, instrPerCore uint64) (*Result, error) {
	if instrPerCore == 0 {
		return nil, fmt.Errorf("sim: instruction budget must be positive")
	}
	if s.ran {
		return nil, fmt.Errorf("sim: Run may be called only once per System (construct a new System for another run)")
	}
	s.ran = true
	s.runCtx = ctx
	if !s.opts.SkipPrefault {
		if err := s.prefault(ctx); err != nil {
			return nil, err
		}
		if s.auto != nil {
			// The init sweep is not application heat.
			s.auto.ResetWindow()
		}
	}
	c := &s.cores
	if s.opts.WarmupInstructions > 0 {
		// Warm caches, remapping tables, hot-segment counters and OS
		// state without consuming simulated DRAM bandwidth.
		if ff, ok := s.ctrl.(fastForwarder); ok {
			ff.SetFastForward(true)
		}
		if err := s.execute(s.opts.WarmupInstructions); err != nil {
			return nil, err
		}
		if ff, ok := s.ctrl.(fastForwarder); ok {
			ff.SetFastForward(false)
		}
		s.resetStats()
	}
	// Phase barrier: align core clocks so that cores frozen at the end
	// of warm-up (they hit their instruction budget early) do not see
	// artificially congested devices left behind by slower cores.
	var t0 uint64
	for _, tm := range c.time {
		t0 = max(t0, tm)
	}
	start := make([]uint64, c.n())
	instr0 := make([]uint64, c.n())
	faults0 := make([]uint64, c.n())
	for i := range start {
		c.time[i] = t0
		start[i] = c.time[i]
		instr0[i] = c.instr[i]
		faults0[i] = c.faultCycles[i]
	}
	if s.opts.TimelineEpochCycles > 0 {
		s.nextEpoch.Store(t0 + s.opts.TimelineEpochCycles)
	}
	if err := s.execute(instrPerCore); err != nil {
		return nil, err
	}
	return s.collect(start, instr0, faults0), nil
}

// sampleTimeline records a TimelinePoint when the given time crosses
// the next epoch boundary. Called only from the goroutine that orders
// step commits (the sequential loop or the parallel sequencer); the
// atomic nextEpoch accesses publish the advancing bound to run-ahead
// workers, which read it to decide whether a local step must park for
// sampling.
func (s *System) sampleTimeline(now uint64) {
	next := s.nextEpoch.Load()
	if next == 0 || now < next {
		return
	}
	p := TimelinePoint{Cycle: now, StackedHitRate: s.ctrl.Stats().HitRate()}
	if md, ok := s.ctrl.(policy.ModeDistribution); ok {
		p.CacheModeFraction = md.CacheModeFraction()
	}
	s.timeline = append(s.timeline, p)
	for next <= now {
		next += s.opts.TimelineEpochCycles
	}
	s.nextEpoch.Store(next)
	if s.opts.Progress != nil {
		s.opts.Progress(p)
	}
}

// fastForwarder is implemented by controllers that can warm their
// metadata without consuming simulated DRAM bandwidth.
type fastForwarder interface{ SetFastForward(bool) }

// prefault maps every process's footprint up front (the paper
// fast-forwards to the region of interest with memory resident).
// Processes are interleaved in chunks so their pages mix in physical
// memory, as they would after a real ramp-up.
func (s *System) prefault(ctx context.Context) error {
	if ff, ok := s.ctrl.(fastForwarder); ok {
		ff.SetFastForward(true)
		defer ff.SetFastForward(false)
	}
	const chunk = 1 << 20
	c := &s.cores
	var maxFootprint uint64
	for _, src := range c.stream {
		maxFootprint = max(maxFootprint, src.Profile().FootprintBytes)
	}
	for off := uint64(0); off < maxFootprint; off += chunk {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sim: run canceled during prefault: %w", err)
		}
		for i := range c.proc {
			fp := c.stream[i].Profile().FootprintBytes
			if off >= fp {
				continue
			}
			s.os.Map(c.proc[i], off, min(chunk, fp-off), c.time[i])
		}
	}
	return nil
}

func (s *System) resetStats() {
	s.ctrl.ResetStats()
	for _, t := range s.tiers {
		t.Dev.ResetStats()
	}
	s.hier.ResetStats()
	s.os.ResetStats()
	c := &s.cores
	for i := range c.llcMisses {
		c.llcMisses[i] = 0
		c.faultCycles[i] = 0
		c.memStall[i] = 0
	}
}

// ctxCheckInterval is how many simulated references execute between
// RunContext cancellation checks. Coarse enough to stay off the hot
// path, fine enough that a cancel lands within microseconds of wall
// time.
const ctxCheckInterval = 4096

// beginPass arms every core for one execute pass — budget further
// instructions each, not yet done. It is the budget-reset preamble
// shared by all three engines (heap, linear reference, parallel).
func (s *System) beginPass(budget uint64) {
	c := &s.cores
	for i := range c.budget {
		c.budget[i] = c.instr[i] + budget
		c.done[i] = false
	}
}

// checkCancel is the shared cancellation probe: it polls the run
// context once every ctxCheckInterval calls, counting via *steps.
func (s *System) checkCancel(steps *int) error {
	if *steps++; *steps < ctxCheckInterval {
		return nil
	}
	*steps = 0
	if err := s.runCtx.Err(); err != nil {
		return fmt.Errorf("sim: run canceled: %w", err)
	}
	return nil
}

// execute runs every core for budget further instructions. It returns
// a non-nil error only when the run context is canceled (or, on the
// parallel engine, when a run invariant is violated).
//
// Cores advance in (time, id) order via an indexed min-heap: pick the
// root, step it, then either sift its advanced clock down or pop it
// when its budget is spent. O(log cores) per reference instead of the
// O(cores) scan of executeLinear, with identical scheduling order. With
// Options.Threads > 1 (and no sequential fallback, see System.par) the
// pass instead runs on the parallel engine, which reproduces the same
// order at commit granularity.
func (s *System) execute(budget uint64) error {
	if s.linearSched {
		return s.executeLinear(budget)
	}
	if s.par != nil && !s.inlineWalk {
		return s.executePar(budget)
	}
	s.beginPass(budget)
	c := &s.cores
	h := newCoreHeap(c.time, s.heapIdx)
	steps := 0
	for h.len() > 0 {
		if err := s.checkCancel(&steps); err != nil {
			return err
		}
		i := h.peek()
		s.step(int(i))
		if c.instr[i] >= c.budget[i] {
			c.done[i] = true
			h.pop()
		} else {
			h.fix()
		}
	}
	return nil
}

// executeLinear is the pre-heap scheduler: a full O(cores) min-scan
// per reference. Kept as the reference implementation for the
// scheduler-equivalence test and benchmark baseline (System.linearSched
// routes execute here).
func (s *System) executeLinear(budget uint64) error {
	s.beginPass(budget)
	c := &s.cores
	steps := 0
	for {
		if err := s.checkCancel(&steps); err != nil {
			return err
		}
		// Advance the core with the smallest local clock.
		next := -1
		for i := range c.time {
			if c.done[i] {
				continue
			}
			if next < 0 || c.time[i] < c.time[next] {
				next = i
			}
		}
		if next < 0 {
			return nil
		}
		s.step(next)
		if c.instr[next] >= c.budget[next] {
			c.done[next] = true
		}
	}
}

// step executes one reference on core i: the instruction gap, address
// translation (with demand paging), the cache hierarchy and, on an LLC
// miss, the memory system.
func (s *System) step(i int) {
	c := &s.cores
	if s.phaseOn {
		s.phaseChurn(i)
	}
	var p uint64
	var write bool
	if c.pendingValid[i] {
		// Replay the reference that faulted last time, now that the
		// core has been rescheduled in global time order.
		p, write = c.pendingPhys[i], c.pendingWrite[i]
		c.pendingValid[i] = false
	} else {
		ref := c.stream[i].Next()
		if s.sinkOn {
			s.opts.TraceSink.Emit(i, ref)
		}
		c.instr[i] += ref.Gap
		c.time[i] += ref.Gap * s.baseCPIx1000 / 1000

		phys, stall := s.os.Translate(c.proc[i], ref.VAddr, c.time[i])
		if s.autoOn {
			s.auto.Tick(c.time[i])
		}
		if s.timelineOn {
			s.sampleTimeline(c.time[i])
		}
		if stall > 0 {
			c.time[i] += stall
			c.faultCycles[i] += stall
			c.pendingValid[i] = true
			c.pendingPhys[i] = uint64(phys)
			c.pendingWrite[i] = ref.Write
			return
		}
		p, write = uint64(phys), ref.Write
	}
	s.finishStep(i, p, write)
}

// finishStep is the walk-and-memory-system suffix of one step: the
// cache hierarchy walk followed by applyWalk. The sequential engine
// calls it from step; the parallel sequencer calls it when committing a
// fault event whose page was mapped with no stall (the step then
// continues exactly as it would have sequentially).
func (s *System) finishStep(i int, p uint64, write bool) {
	var walkStall uint64
	var llcMiss bool
	var victims []hier.Victim
	if s.inlineWalk {
		walkStall, llcMiss, victims = s.walkInline(i, p, write, s.cores.time[i])
	} else {
		walkStall, llcMiss, victims = s.hier.Access(i, p, write, s.cores.time[i])
	}
	s.applyWalk(i, p, walkStall, llcMiss, victims)
}

// applyWalk charges a finished walk to core i and the memory system:
// spilled writebacks reserve device occupancy, the walk stall advances
// the core, and an LLC miss pays the controller's (MLP-divided)
// latency. It is the shared-state tail of every step — the parallel
// sequencer commits it for worker-parked walks.
func (s *System) applyWalk(i int, p uint64, walkStall uint64, llcMiss bool, victims []hier.Victim) {
	c := &s.cores
	// Dirty victims that spilled past the LLC reach the memory system
	// at the walk time they were evicted; they reserve device occupancy
	// but charge the core nothing (see the internal/hier package
	// comment for why writebacks are modelled as free).
	for k := range victims {
		s.ctrl.Access(victims[k].Now, addr.Phys(victims[k].Addr), true)
	}
	c.time[i] += walkStall
	if !llcMiss {
		return
	}

	c.llcMisses[i]++
	res := s.ctrl.Access(c.time[i], addr.Phys(p), false)
	lat := res.Done - c.time[i]
	// An out-of-order core overlaps up to MaxMLP misses; the effective
	// stall per miss is the latency divided by the attainable overlap.
	stallCycles := lat / uint64(s.cfg.CPU.MaxMLP)
	c.time[i] += stallCycles
	c.memStall[i] += stallCycles
}

// phaseChurn models §III-B's time-varying memory demand: at each phase
// boundary the core alternately maps and frees a transient buffer just
// past its footprint, issuing ISA-Alloc/ISA-Free through the OS and
// letting Chameleon's segment groups switch modes mid-run.
// Callers gate on System.phaseOn, so the options are known non-zero.
func (s *System) phaseChurn(i int) {
	c := &s.cores
	if c.phaseNext[i] == 0 {
		c.phaseNext[i] = c.instr[i] + s.opts.PhaseEveryInstructions
		return
	}
	if c.instr[i] < c.phaseNext[i] {
		return
	}
	c.phaseNext[i] += s.opts.PhaseEveryInstructions
	base := c.stream[i].Profile().FootprintBytes
	if c.phaseHeld[i] {
		s.os.FreeRange(c.proc[i], base, s.opts.PhaseAllocBytes, c.time[i])
	} else {
		s.os.Map(c.proc[i], base, s.opts.PhaseAllocBytes, c.time[i])
	}
	c.phaseHeld[i] = !c.phaseHeld[i]
}

// walkInline is the pre-pipeline cache walk: the hand-rolled L1→L2→L3
// sequence the simulator used before internal/hier, restated over the
// hierarchy's own cache instances with the same signature as
// hier.Access. It is kept as the reference implementation for
// TestHierarchyEquivalence (System.inlineWalk routes step here) and the
// walk benchmarks, and it assumes the default three-level
// private/private/shared shape.
func (s *System) walkInline(coreID int, p uint64, write bool, now uint64) (stall uint64, llcMiss bool, victims []hier.Victim) {
	l1 := s.hier.Cache(0, coreID)
	l2 := s.hier.Cache(1, coreID)
	l3 := s.hier.Cache(2, coreID)
	s.wbScratch = s.wbScratch[:0]
	if hit, v, hv := l1.Access(p, write); hit {
		return 0, false, s.wbScratch
	} else if hv && v.Dirty {
		if h2, v2, hv2 := l2.Access(v.Addr, true); !h2 && hv2 && v2.Dirty {
			if h3, v3, hv3 := l3.Access(v2.Addr, true); !h3 && hv3 && v3.Dirty {
				s.wbScratch = append(s.wbScratch, hier.Victim{Addr: v3.Addr, Now: now})
			}
		}
	}
	stall = s.cfg.CacheLevels[1].LatencyCycles
	if hit, v, hv := l2.Access(p, false); hit {
		return stall, false, s.wbScratch
	} else if hv && v.Dirty {
		if h3, v3, hv3 := l3.Access(v.Addr, true); !h3 && hv3 && v3.Dirty {
			s.wbScratch = append(s.wbScratch, hier.Victim{Addr: v3.Addr, Now: now + stall})
		}
	}
	stall = s.cfg.CacheLevels[2].LatencyCycles
	if hit, v, hv := l3.Access(p, false); hit {
		return stall, false, s.wbScratch
	} else if hv && v.Dirty {
		s.wbScratch = append(s.wbScratch, hier.Victim{Addr: v.Addr, Now: now + stall})
	}
	return stall, true, s.wbScratch
}

func (s *System) collect(start, instr0, faults0 []uint64) *Result {
	r := &Result{
		Policy:   s.ctrl.Name(),
		Workload: s.runName,
		Ctrl:     s.ctrl.Stats(),
		OS:       s.os.Stats(),
	}
	if s.fast != nil {
		r.Fast = s.fast.Stats()
	}
	if s.slow != nil {
		r.Slow = s.slow.Stats()
	}
	for i := 0; i < s.hier.NumLevels(); i++ {
		r.Levels = append(r.Levels, LevelResult{Level: s.hier.LevelName(i), Stats: s.hier.LevelStats(i)})
	}
	logSum := 0.0
	var faultCycles, totalCycles uint64
	c := &s.cores
	for i := 0; i < c.n(); i++ {
		instr := c.instr[i] - instr0[i]
		cycles := c.time[i] - start[i]
		cr := CoreResult{
			Workload:     c.stream[i].Profile().Name,
			Instructions: instr,
			Cycles:       cycles,
			LLCMisses:    c.llcMisses[i],
			FaultCycles:  c.faultCycles[i] - faults0[i],
		}
		if cycles > 0 {
			cr.IPC = float64(instr) / float64(cycles)
		}
		if instr > 0 {
			cr.MPKI = float64(c.llcMisses[i]) / (float64(instr) / 1000)
		}
		r.Cores = append(r.Cores, cr)
		if cr.IPC > 0 {
			logSum += math.Log(cr.IPC)
		}
		faultCycles += cr.FaultCycles
		totalCycles += cycles
		if c.time[i] > r.MaxCycles {
			r.MaxCycles = c.time[i]
		}
	}
	if n := len(r.Cores); n > 0 {
		r.GeoMeanIPC = math.Exp(logSum / float64(n))
	}
	r.StackedHitRate = r.Ctrl.HitRate()
	r.AMAT = r.Ctrl.AMAT()
	if md, ok := s.ctrl.(policy.ModeDistribution); ok {
		r.CacheModeFraction = md.CacheModeFraction()
	}
	if totalCycles > 0 {
		r.CPUUtilization = 1 - float64(faultCycles)/float64(totalCycles)
	}
	if s.auto != nil {
		r.NUMATimeline = s.auto.Timeline()
	}
	r.Timeline = s.timeline
	if s.par != nil && !s.linearSched && !s.inlineWalk {
		r.Engine = EngineParallel
	} else {
		r.Engine = EngineSequential
		r.FallbackReason = s.fallback
	}
	s.collectTiers(r)
	return r
}

// collectTiers fills the per-tier result namespaces: demand split,
// occupancy of each tier's OS home range (when the whole stack is
// OS-visible), energy per the tier's power profile, bandwidth
// utilisation, and the raw device snapshot.
func (s *System) collectTiers(r *Result) {
	var tierAcc []uint64
	if ta, ok := s.ctrl.(policy.TierAccounting); ok {
		tierAcc = ta.TierAccesses()
	}
	var stackBytes uint64
	for _, t := range s.tiers {
		stackBytes += t.Capacity()
	}
	osSeesStack := s.ctrl.OSVisibleBytes() == stackBytes
	var base uint64
	for i, t := range s.tiers {
		tr := TierResult{
			Tier:          t.Name(),
			Kind:          t.Kind,
			CapacityBytes: t.Capacity(),
			EnergyNJ:      t.Energy(r.MaxCycles).TotalNJ(),
			Utilization:   t.Dev.BusyFraction(r.MaxCycles),
			Device:        t.Dev.Snapshot(),
		}
		switch {
		case tierAcc != nil && i < len(tierAcc):
			tr.DemandAccesses = tierAcc[i]
		case i == 0:
			tr.DemandAccesses = r.Ctrl.FastHits
		case i == 1:
			tr.DemandAccesses = r.Ctrl.Accesses - r.Ctrl.FastHits
		}
		if osSeesStack && t.Capacity() > 0 {
			resident := s.os.ResidentBytesIn(base, base+t.Capacity())
			tr.Occupancy = float64(resident) / float64(t.Capacity())
		}
		base += t.Capacity()
		r.Tiers = append(r.Tiers, tr)
	}
}

package sim

import (
	"context"
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

// BenchmarkStep measures the end-to-end per-reference cost of the
// simulation loop on the default three-level hierarchy — translation,
// the cache walk, and the memory system. It is the regression gate for
// the composable hierarchy pipeline: the ns/op here must not regress
// beyond noise against the pre-pipeline inline walk (BENCH_hier.json
// records the before/after pair).
//
// The seq64/parN sub-benchmarks are the parallel engine's gate
// (BENCH_parallel.json): a 64-core machine stepping the measured
// execute pass on the sequential engine versus 2/4/8 worker threads.
// Construction, prefaulting and a warm pass run outside the timer, so
// allocs/op reports the steady-state loop (0 for seq64, pinned by
// TestStepLoopDoesNotAllocate) and ns/op the pure step throughput.
func BenchmarkStep(b *testing.B) {
	b.Run("pipeline", func(b *testing.B) { benchStep(b, false) })
	b.Run("inline", func(b *testing.B) { benchStep(b, true) })
	b.Run("seq64", func(b *testing.B) { benchStep64(b, 1, 0) })
	b.Run("par2", func(b *testing.B) { benchStep64(b, 2, 0) })
	b.Run("par4", func(b *testing.B) { benchStep64(b, 4, 0) })
	b.Run("par8", func(b *testing.B) { benchStep64(b, 8, 0) })
	// The server-shaped run: chamd attaches a timeline to every sim
	// job, so this is the configuration the service actually executes.
	b.Run("par8timeline", func(b *testing.B) { benchStep64(b, 8, 10_000) })
}

// benchStep64 steps a 64-core machine through one measured execute pass
// per op. The workload is miniGhost shrunk until run-ahead translation
// is provably stable for 64 processes (the parallel engine's stable
// mode); its low LLC-MPKI keeps most steps core-local, which is the
// regime the paper's rate-mode experiments spend their time in. A
// non-zero epochCycles turns on timeline sampling (sequencer-side
// epoch sampling plus the workers' epoch-crossing parks).
func benchStep64(b *testing.B, threads int, epochCycles uint64) {
	const scale = 512
	cfg := config.Default(scale)
	cfg.CPU.Cores = 64
	prof, err := workload.ByName("miniGhost")
	if err != nil {
		b.Fatal(err)
	}
	prof = prof.Scale(8 * scale)
	b.ReportAllocs()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		sys, err := New(Options{
			Config:              cfg,
			Policy:              PolicyChameleonOpt,
			Workload:            prof,
			Seed:                7,
			Threads:             threads,
			TimelineEpochCycles: epochCycles,
		})
		if err != nil {
			b.Fatal(err)
		}
		if threads > 1 && !sys.ParallelEnabled() {
			b.Fatal("parallel engine not enabled")
		}
		sys.ran = true
		sys.runCtx = context.Background()
		if epochCycles > 0 {
			// Run seeds the first epoch boundary before the measured
			// loop; this bench drives execute directly, so seed it here.
			sys.nextEpoch.Store(epochCycles)
		}
		if err := sys.prefault(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := sys.execute(20_000); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sys.execute(100_000); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}
}

func benchStep(b *testing.B, inline bool) {
	const scale = 512
	cfg := config.Default(scale)
	prof, err := workload.ByName("bwaves")
	if err != nil {
		b.Fatal(err)
	}
	prof = prof.Scale(scale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := New(Options{
			Config:   cfg,
			Policy:   PolicyChameleonOpt,
			Workload: prof,
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.inlineWalk = inline
		if _, err := sys.Run(20_000); err != nil {
			b.Fatal(err)
		}
	}
}

package sim

import (
	"testing"

	"chameleon/internal/config"
	"chameleon/internal/workload"
)

// BenchmarkStep measures the end-to-end per-reference cost of the
// simulation loop on the default three-level hierarchy — translation,
// the cache walk, and the memory system. It is the regression gate for
// the composable hierarchy pipeline: the ns/op here must not regress
// beyond noise against the pre-pipeline inline walk (BENCH_hier.json
// records the before/after pair).
func BenchmarkStep(b *testing.B) {
	b.Run("pipeline", func(b *testing.B) { benchStep(b, false) })
	b.Run("inline", func(b *testing.B) { benchStep(b, true) })
}

func benchStep(b *testing.B, inline bool) {
	const scale = 512
	cfg := config.Default(scale)
	prof, err := workload.ByName("bwaves")
	if err != nil {
		b.Fatal(err)
	}
	prof = prof.Scale(scale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := New(Options{
			Config:   cfg,
			Policy:   PolicyChameleonOpt,
			Workload: prof,
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.inlineWalk = inline
		if _, err := sys.Run(20_000); err != nil {
			b.Fatal(err)
		}
	}
}

package osmodel

import (
	"testing"

	"chameleon/internal/addr"
)

// gaCfg builds a group-aware OS over an 8 MB + 40 MB space with 2 KB
// segments and 4 KB pages (each page spans 2 segments).
func gaCfg(t *testing.T) (Config, *addr.Space) {
	t.Helper()
	sp, err := addr.NewSpace(1<<23, 5<<23, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		TotalBytes:      sp.TotalBytes(),
		FastBytes:       0,
		PageBytes:       4096,
		SegBytes:        2048,
		PageFaultCycles: 100_000,
		Alloc:           AllocGroupAware,
		Seed:            3,
		Space:           sp,
	}, sp
}

func TestGroupAwareRequiresSpace(t *testing.T) {
	cfg, _ := gaCfg(t)
	cfg.Space = nil
	if _, err := New(cfg, nil); err == nil {
		t.Error("AllocGroupAware without Space should fail")
	}
}

func TestGroupAwareSpaceMismatch(t *testing.T) {
	cfg, _ := gaCfg(t)
	cfg.TotalBytes += cfg.PageBytes
	if _, err := New(cfg, nil); err == nil {
		t.Error("mismatched Space/TotalBytes should fail")
	}
}

// TestGroupAwareKeepsMoreGroupsCacheCapable is the point of §VI-G: at
// the same footprint, group-aware placement leaves more segment groups
// with a free segment than uniform placement.
func TestGroupAwareKeepsMoreGroupsCacheCapable(t *testing.T) {
	capable := func(alloc AllocPolicy) float64 {
		cfg, sp := gaCfg(t)
		cfg.Alloc = alloc
		o, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := o.NewProcess()
		// Allocate 85% of memory.
		pages := cfg.TotalBytes / cfg.PageBytes * 85 / 100
		for i := uint64(0); i < pages; i++ {
			o.Translate(p, i*cfg.PageBytes, 0)
		}
		// Count groups with >= 1 free way by replaying the frame map.
		tr := newGroupTracker(sp, cfg.PageBytes)
		for f := uint32(0); uint64(f) < cfg.TotalBytes/cfg.PageBytes; f++ {
			if o.meta[f].proc >= 0 {
				tr.allocate(f, cfg.PageBytes)
			}
		}
		return float64(tr.cacheCapableGroups()) / float64(sp.Groups())
	}
	shuffled := capable(AllocShuffled)
	aware := capable(AllocGroupAware)
	t.Logf("cache-capable groups at 85%% footprint: shuffled %.3f, group-aware %.3f", shuffled, aware)
	if aware <= shuffled {
		t.Errorf("group-aware placement (%.3f) should beat uniform (%.3f)", aware, shuffled)
	}
}

func TestGroupAwareTrackerConsistency(t *testing.T) {
	cfg, sp := gaCfg(t)
	o, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := o.NewProcess()
	// Allocate and free a few times; the tracker must return to the
	// all-free state.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 100; i++ {
			o.Translate(p, i*cfg.PageBytes, 0)
		}
		o.FreeAll(p, 0)
	}
	if got := o.CacheCapableGroups(); got != sp.Groups() {
		t.Errorf("after freeing everything, %d/%d groups capable", got, sp.Groups())
	}
}

func TestCacheCapableGroupsZeroWithoutTracker(t *testing.T) {
	cfg := baseCfg()
	o := testOS(t, cfg, nil)
	if o.CacheCapableGroups() != 0 {
		t.Error("non-group-aware OS should report 0")
	}
}

package osmodel

import (
	"testing"

	"chameleon/internal/rng"
)

func autoCfg(threshold float64) AutoNUMAConfig {
	return AutoNUMAConfig{EpochCycles: 1000, Threshold: threshold, ScanPages: 64}
}

// TestAutoNUMAMigratesHotPages: pages placed off-chip that receive most
// accesses migrate to the stacked node, raising the hit rate.
func TestAutoNUMAMigratesHotPages(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocSequential
	o := testOS(t, cfg, nil)
	a := o.EnableAutoNUMA(autoCfg(0.9))
	p := o.NewProcess()

	// Fill the fast node with cold pages, then place hot pages off-chip.
	fastPages := cfg.FastBytes / cfg.PageBytes
	for i := uint64(0); i < fastPages; i++ {
		o.Translate(p, i*cfg.PageBytes, 0)
	}
	hotStart := fastPages
	for i := uint64(0); i < 8; i++ {
		o.Translate(p, (hotStart+i)*cfg.PageBytes, 0)
	}
	// Free some fast-node pages so migration has a destination.
	for i := uint64(0); i < 16; i++ {
		o.FreeRange(p, i*cfg.PageBytes, cfg.PageBytes, 0)
	}
	// Hammer the hot (off-chip) pages across epochs.
	now := uint64(0)
	for e := 0; e < 20; e++ {
		for r := 0; r < 50; r++ {
			for i := uint64(0); i < 8; i++ {
				o.Translate(p, (hotStart+i)*cfg.PageBytes, now)
			}
		}
		now += 1000
		a.Tick(now)
	}
	if o.Stats().Migrations == 0 {
		t.Fatal("no pages migrated")
	}
	// The hot pages should now live on the fast node.
	onFast := 0
	for i := uint64(0); i < 8; i++ {
		phys, _ := o.Translate(p, (hotStart+i)*cfg.PageBytes, now)
		if uint64(phys) < cfg.FastBytes {
			onFast++
		}
	}
	if onFast < 6 {
		t.Errorf("only %d/8 hot pages migrated to the fast node", onFast)
	}
	if len(a.Timeline()) == 0 {
		t.Error("no epoch records")
	}
}

// TestAutoNUMAENOMEM: with the fast node full, migrations fail (the
// paper's -ENOMEM behaviour behind Figure 2c's decay).
func TestAutoNUMAENOMEM(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocFirstTouch
	o := testOS(t, cfg, nil)
	a := o.EnableAutoNUMA(autoCfg(0.9))
	p := o.NewProcess()
	pages := cfg.TotalBytes / cfg.PageBytes
	for i := uint64(0); i < pages; i++ {
		o.Translate(p, i*cfg.PageBytes, 0)
	}
	// Hammer off-chip pages; the fast node has no free frames.
	fastPages := cfg.FastBytes / cfg.PageBytes
	now := uint64(0)
	for e := 0; e < 5; e++ {
		for r := 0; r < 100; r++ {
			o.Translate(p, (fastPages+uint64(r%8))*cfg.PageBytes, now)
		}
		now += 1000
		a.Tick(now)
	}
	if o.Stats().Migrations != 0 {
		t.Error("migration succeeded with a full fast node")
	}
	if o.Stats().MigrateFails == 0 {
		t.Error("-ENOMEM failures not recorded")
	}
}

// TestAutoNUMAThresholdGate: with a low threshold and a mostly-local
// access pattern, no migration is triggered.
func TestAutoNUMAThresholdGate(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocFirstTouch
	o := testOS(t, cfg, nil)
	a := o.EnableAutoNUMA(autoCfg(0.7)) // trigger only if remote > 30%
	p := o.NewProcess()
	fastPages := cfg.FastBytes / cfg.PageBytes
	for i := uint64(0); i <= fastPages; i++ {
		o.Translate(p, i*cfg.PageBytes, 0)
	}
	// 90% local, 10% remote accesses.
	r := rng.New(1)
	now := uint64(0)
	for e := 0; e < 10; e++ {
		for i := 0; i < 100; i++ {
			if r.Intn(10) == 0 {
				o.Translate(p, fastPages*cfg.PageBytes, now)
			} else {
				o.Translate(p, uint64(r.Intn(int(fastPages)))*cfg.PageBytes, now)
			}
		}
		now += 1000
		a.Tick(now)
	}
	if o.Stats().Migrations != 0 {
		t.Errorf("migrated %d pages below the remote-ratio trigger", o.Stats().Migrations)
	}
}

func TestAutoNUMATimelineHitRate(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocFirstTouch
	o := testOS(t, cfg, nil)
	a := o.EnableAutoNUMA(autoCfg(0.9))
	p := o.NewProcess()
	o.Translate(p, 0, 0) // fast-node page
	a.Tick(1000)
	tl := a.Timeline()
	if len(tl) != 1 {
		t.Fatalf("timeline length = %d", len(tl))
	}
	if tl[0].HitRate != 1 {
		t.Errorf("epoch hit rate = %v, want 1", tl[0].HitRate)
	}
}

func TestAutoNUMADefaults(t *testing.T) {
	o := testOS(t, baseCfg(), nil)
	a := o.EnableAutoNUMA(AutoNUMAConfig{Threshold: 0.9})
	if a.cfg.EpochCycles == 0 || a.cfg.ScanPages == 0 {
		t.Error("defaults not applied")
	}
}

package osmodel

import (
	"testing"
	"testing/quick"

	"chameleon/internal/addr"
)

// recorder captures ISA notifications.
type recorder struct {
	allocs []addr.Seg
	frees  []addr.Seg
}

func (r *recorder) ISAAlloc(now uint64, seg addr.Seg) { r.allocs = append(r.allocs, seg) }
func (r *recorder) ISAFree(now uint64, seg addr.Seg)  { r.frees = append(r.frees, seg) }

func testOS(t *testing.T, cfg Config, n Notifier) *OS {
	t.Helper()
	o, err := New(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func baseCfg() Config {
	return Config{
		TotalBytes:      1 << 20, // 256 pages
		FastBytes:       256 << 10,
		PageBytes:       4096,
		SegBytes:        2048,
		PageFaultCycles: 100_000,
		Alloc:           AllocSequential,
		Seed:            1,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.PageBytes = 0 },
		func(c *Config) { c.PageBytes = 3000 },
		func(c *Config) { c.TotalBytes = 5000 },
		func(c *Config) { c.FastBytes = c.TotalBytes + c.PageBytes },
		func(c *Config) { c.SegBytes = 8192 }, // larger than a page
	}
	for i, mut := range bad {
		c := baseCfg()
		mut(&c)
		if _, err := New(c, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDemandPagingLifecycle(t *testing.T) {
	o := testOS(t, baseCfg(), nil)
	p := o.NewProcess()
	free0 := o.FreeBytes()

	phys, stall := o.Translate(p, 0, 0)
	if stall != 0 {
		t.Errorf("first touch with free memory stalled %d", stall)
	}
	if o.FreeBytes() != free0-4096 {
		t.Error("allocation did not consume a frame")
	}
	// Same page again: same frame, no fault.
	phys2, _ := o.Translate(p, 100, 0)
	if uint64(phys2) != uint64(phys)+100 {
		t.Errorf("offsets broken: %d vs %d", phys2, phys)
	}
	if o.Stats().MinorFaults != 1 {
		t.Errorf("minor faults = %d, want 1", o.Stats().MinorFaults)
	}

	o.FreeRange(p, 0, 4096, 0)
	if o.FreeBytes() != free0 {
		t.Error("free did not return the frame")
	}
	if p.resident != 0 {
		t.Error("resident count wrong after free")
	}
}

func TestSequentialFirstTouchUsesFastNodeFirst(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocFirstTouch
	o := testOS(t, cfg, nil)
	p := o.NewProcess()
	// Touch exactly as many pages as the fast node holds.
	fastPages := cfg.FastBytes / cfg.PageBytes
	for i := uint64(0); i < fastPages; i++ {
		phys, _ := o.Translate(p, i*cfg.PageBytes, 0)
		if uint64(phys) >= cfg.FastBytes {
			t.Fatalf("page %d landed off-chip while fast node had space", i)
		}
	}
	// The next touch must land off-chip.
	phys, _ := o.Translate(p, fastPages*cfg.PageBytes, 0)
	if uint64(phys) < cfg.FastBytes {
		t.Error("allocation should spill to the slow node when fast is full")
	}
	if o.FastFreeBytes() != 0 {
		t.Errorf("fast free = %d, want 0", o.FastFreeBytes())
	}
}

func TestShuffledAllocationSpreads(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocShuffled
	o := testOS(t, cfg, nil)
	p := o.NewProcess()
	fastHits := 0
	const touches = 128
	for i := uint64(0); i < touches; i++ {
		phys, _ := o.Translate(p, i*cfg.PageBytes, 0)
		if uint64(phys) < cfg.FastBytes {
			fastHits++
		}
	}
	// Fast node is 1/4 of memory; with uniform placement expect ~32.
	if fastHits < 12 || fastHits > 60 {
		t.Errorf("shuffled placement put %d/%d pages on the fast node, want ~32", fastHits, touches)
	}
}

func TestMajorFaultOnExhaustion(t *testing.T) {
	cfg := baseCfg()
	o := testOS(t, cfg, nil)
	p := o.NewProcess()
	pages := cfg.TotalBytes / cfg.PageBytes
	for i := uint64(0); i < pages; i++ {
		o.Translate(p, i*cfg.PageBytes, 0)
	}
	if o.Stats().MajorFaults != 0 {
		t.Fatal("no majors expected while memory lasts")
	}
	_, stall := o.Translate(p, pages*cfg.PageBytes, 0)
	if stall != cfg.PageFaultCycles {
		t.Errorf("stall = %d, want %d", stall, cfg.PageFaultCycles)
	}
	st := o.Stats()
	if st.MajorFaults != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The evicted page faults again when touched.
	evicted := -1
	for i := uint64(0); i < pages; i++ {
		if p.table[i] == noFrame {
			evicted = int(i)
			break
		}
	}
	if evicted < 0 {
		t.Fatal("no page was evicted")
	}
	if _, stall := o.Translate(p, uint64(evicted)*cfg.PageBytes, 0); stall == 0 {
		t.Error("touching the evicted page should major-fault")
	}
}

func TestClockSecondChance(t *testing.T) {
	cfg := baseCfg()
	o := testOS(t, cfg, nil)
	p := o.NewProcess()
	pages := cfg.TotalBytes / cfg.PageBytes
	for i := uint64(0); i < pages; i++ {
		o.Translate(p, i*cfg.PageBytes, 0)
	}
	// Re-touch page 0 so its reference bit is set... (all ref bits are
	// set from the initial touch). One full CLOCK sweep clears them and
	// evicts the first candidate; page 0 must survive a second touch
	// before the next eviction.
	o.Translate(p, pages*cfg.PageBytes, 0) // evicts someone
	o.Translate(p, 0, 0)                   // page 0: ref set (or refault)
	before := o.Stats().Evictions
	o.Translate(p, (pages+1)*cfg.PageBytes, 0)
	if o.Stats().Evictions != before+1 {
		t.Error("second exhaustion should evict exactly one more page")
	}
}

func TestISANotificationsPerSegment(t *testing.T) {
	rec := &recorder{}
	o := testOS(t, baseCfg(), rec)
	p := o.NewProcess()
	o.Translate(p, 0, 0)
	// 4 KB page / 2 KB segments = 2 ISA-Alloc calls (Algorithm 1).
	if len(rec.allocs) != 2 {
		t.Fatalf("ISA-Alloc calls = %d, want 2", len(rec.allocs))
	}
	if rec.allocs[0] == rec.allocs[1] {
		t.Error("segment numbers must differ")
	}
	o.FreeAll(p, 0)
	if len(rec.frees) != 2 {
		t.Errorf("ISA-Free calls = %d, want 2", len(rec.frees))
	}
}

func TestEvictionDoesNotChurnISA(t *testing.T) {
	rec := &recorder{}
	cfg := baseCfg()
	o := testOS(t, cfg, rec)
	p := o.NewProcess()
	pages := cfg.TotalBytes / cfg.PageBytes
	for i := uint64(0); i <= pages; i++ { // one past capacity
		o.Translate(p, i*cfg.PageBytes, 0)
	}
	if len(rec.frees) != 0 {
		t.Error("eviction reuse must not issue ISA-Free")
	}
	wantAllocs := int(pages) * 2 // only fresh frames notify
	if len(rec.allocs) != wantAllocs {
		t.Errorf("ISA-Alloc calls = %d, want %d", len(rec.allocs), wantAllocs)
	}
}

func TestMapEager(t *testing.T) {
	o := testOS(t, baseCfg(), nil)
	p := o.NewProcess()
	if majors := o.Map(p, 0, 64*4096, 0); majors != 0 {
		t.Errorf("majors = %d", majors)
	}
	if p.ResidentBytes(4096) != 64*4096 {
		t.Errorf("resident = %d", p.ResidentBytes(4096))
	}
}

func TestStackedHitRateAccounting(t *testing.T) {
	cfg := baseCfg()
	cfg.Alloc = AllocFirstTouch
	o := testOS(t, cfg, nil)
	p := o.NewProcess()
	o.Translate(p, 0, 0) // lands on fast node
	o.Translate(p, 0, 0)
	if hr := o.StackedHitRate(); hr != 1 {
		t.Errorf("hit rate = %v, want 1", hr)
	}
	o.ResetStats()
	if o.StackedHitRate() != 0 {
		t.Error("hit rate not reset")
	}
}

func TestMultiProcessIsolation(t *testing.T) {
	o := testOS(t, baseCfg(), nil)
	a, b := o.NewProcess(), o.NewProcess()
	pa, _ := o.Translate(a, 0, 0)
	pb, _ := o.Translate(b, 0, 0)
	if pa == pb {
		t.Error("two processes shared a frame for private pages")
	}
}

// TestFreeBytesConservationProperty: after any sequence of touches and
// frees, free + resident bytes equals the total capacity.
func TestFreeBytesConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := baseCfg()
		cfg.Alloc = AllocShuffled
		o, err := New(cfg, nil)
		if err != nil {
			return false
		}
		p := o.NewProcess()
		pages := cfg.TotalBytes / cfg.PageBytes
		for _, op := range ops {
			page := uint64(op) % (pages - 1) // stay within capacity
			if op%3 == 0 {
				o.FreeRange(p, page*cfg.PageBytes, cfg.PageBytes, 0)
			} else {
				o.Translate(p, page*cfg.PageBytes, 0)
			}
		}
		return o.FreeBytes()+p.ResidentBytes(cfg.PageBytes) == cfg.TotalBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAllocPolicyString(t *testing.T) {
	for p, want := range map[AllocPolicy]string{
		AllocShuffled:   "shuffled",
		AllocFirstTouch: "first-touch",
		AllocSequential: "sequential",
		AllocInterleave: "interleave",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestBufferCacheResize(t *testing.T) {
	rec := &recorder{}
	o := testOS(t, baseCfg(), rec)
	bc := o.NewBufferCache()
	free0 := o.FreeBytes()

	bc.Resize(64<<10, 0) // grow to 64 KB
	if bc.Bytes() != 64<<10 {
		t.Errorf("size = %d", bc.Bytes())
	}
	if o.FreeBytes() != free0-(64<<10) {
		t.Error("growth did not consume frames")
	}
	allocs := len(rec.allocs)
	if allocs != 16*2 { // 16 pages x 2 segments
		t.Errorf("ISA-Allocs = %d, want 32", allocs)
	}

	bc.Resize(16<<10, 0) // shrink
	if o.FreeBytes() != free0-(16<<10) {
		t.Error("shrink did not return frames")
	}
	if len(rec.frees) != 12*2 { // 12 pages freed
		t.Errorf("ISA-Frees = %d, want 24", len(rec.frees))
	}

	bc.Resize(0, 0)
	if o.FreeBytes() != free0 {
		t.Error("emptying the cache must return all frames")
	}
}

func TestBufferCacheRoundsToPages(t *testing.T) {
	o := testOS(t, baseCfg(), nil)
	bc := o.NewBufferCache()
	bc.Resize(5000, 0) // rounds up to 2 pages
	if bc.Bytes() != 8192 {
		t.Errorf("size = %d, want 8192", bc.Bytes())
	}
}

package osmodel

import "sort"

// AutoNUMAConfig parameterises the Linux automatic NUMA balancing
// model (§II-B2, §III-A2 of the paper).
type AutoNUMAConfig struct {
	// EpochCycles is the numa_balancing_scan_period expressed in CPU
	// cycles (the paper uses 10 M-cycle epochs).
	EpochCycles uint64
	// Threshold is the numa_period_threshold (0.7 / 0.8 / 0.9). Higher
	// thresholds migrate misplaced pages more aggressively: migration
	// is triggered while the remote access ratio exceeds 1-Threshold.
	Threshold float64
	// ScanPages bounds how many misplaced pages can migrate per epoch.
	ScanPages int
	// HintFaultEvery and HintFaultCycles model the cost of AutoNUMA's
	// sampling: the balancer poisons page-table entries, so roughly one
	// in HintFaultEvery accesses takes a minor "NUMA hint fault" of
	// HintFaultCycles to classify the access (§II-B2). Defaults: one in
	// 2048 accesses, 2000 cycles.
	HintFaultEvery  uint64
	HintFaultCycles uint64
}

// EpochRecord is one point of the Figure 2c timeline.
type EpochRecord struct {
	Epoch      int
	Migrations int
	Failed     int     // -ENOMEM migration failures
	HitRate    float64 // cumulative stacked hit rate at epoch end
}

// AutoNUMA is the epoch-based page-migration engine.
type AutoNUMA struct {
	cfg       AutoNUMAConfig
	os        *OS
	nextEpoch uint64
	epoch     int
	period    uint64 // current (adaptive) scan period

	localAcc  uint64 // accesses to the stacked node this epoch
	remoteAcc uint64
	counts    map[uint32]uint32 // off-chip frame -> accesses this epoch
	sampleCnt uint64            // accesses since the last hint fault

	timeline []EpochRecord
}

// EnableAutoNUMA attaches an AutoNUMA engine to the OS. Call Tick
// periodically with the current cycle to run epoch processing.
func (o *OS) EnableAutoNUMA(cfg AutoNUMAConfig) *AutoNUMA {
	if cfg.EpochCycles == 0 {
		cfg.EpochCycles = 10_000_000
	}
	if cfg.ScanPages == 0 {
		cfg.ScanPages = 4096
	}
	if cfg.HintFaultEvery == 0 {
		cfg.HintFaultEvery = 2048
	}
	if cfg.HintFaultCycles == 0 {
		cfg.HintFaultCycles = 2000
	}
	a := &AutoNUMA{
		cfg:       cfg,
		os:        o,
		nextEpoch: cfg.EpochCycles,
		period:    cfg.EpochCycles,
		counts:    make(map[uint32]uint32),
	}
	o.auto = a
	return a
}

// record is called by OS.Translate for every access. The returned
// stall is the NUMA hint-fault cost when this access hit a poisoned
// page-table entry.
func (a *AutoNUMA) record(frame uint32, onFast bool) (stall uint64) {
	if onFast {
		a.localAcc++
	} else {
		a.remoteAcc++
		a.counts[frame]++
	}
	a.sampleCnt++
	if a.sampleCnt >= a.cfg.HintFaultEvery {
		a.sampleCnt = 0
		a.os.stats.HintFaults++
		return a.cfg.HintFaultCycles
	}
	return 0
}

// Timeline returns the per-epoch migration/hit-rate records.
func (a *AutoNUMA) Timeline() []EpochRecord { return a.timeline }

// ResetWindow discards the current epoch's access samples. The
// simulator calls it after prefaulting so that the one-time
// initialisation sweep does not masquerade as hot traffic in the first
// scan epoch.
func (a *AutoNUMA) ResetWindow() {
	a.localAcc, a.remoteAcc = 0, 0
	clear(a.counts)
}

// Tick runs any epochs that have elapsed up to the given cycle.
func (a *AutoNUMA) Tick(now uint64) {
	for now >= a.nextEpoch {
		a.runEpoch(a.nextEpoch)
		a.nextEpoch += a.period
	}
}

// runEpoch migrates the hottest misplaced (off-chip) pages to the
// stacked node while the remote-access ratio exceeds the configured
// trigger, bounded by the scan budget and by free stacked frames
// (migration fails with -ENOMEM when the node is full — the behaviour
// behind the hit-rate decay in Figure 2c).
func (a *AutoNUMA) runEpoch(now uint64) {
	a.epoch++
	rec := EpochRecord{Epoch: a.epoch}

	total := a.localAcc + a.remoteAcc
	remoteRatio := 0.0
	if total > 0 {
		remoteRatio = float64(a.remoteAcc) / float64(total)
	}
	// Adaptive scan period (§II-B2): while the remote ratio exceeds the
	// threshold's trigger the balancer scans more and more frequently
	// (down to 1/8 of the base period); once placement looks good the
	// period backs off (up to 4x the base). A higher
	// numa_period_threshold therefore keeps migrating at remote ratios
	// where a lower one has already gone quiet — the reason the 90%
	// threshold reaches higher hit rates in Figure 2b.
	triggered := remoteRatio > 1-a.cfg.Threshold
	if triggered {
		if a.period > a.cfg.EpochCycles/8 {
			a.period /= 2
		}
	} else if a.period < a.cfg.EpochCycles*4 {
		a.period *= 2
	}
	if triggered && len(a.counts) > 0 {
		// Hottest first.
		frames := make([]uint32, 0, len(a.counts))
		for f := range a.counts {
			frames = append(frames, f)
		}
		sort.Slice(frames, func(i, j int) bool {
			ci, cj := a.counts[frames[i]], a.counts[frames[j]]
			if ci != cj {
				return ci > cj
			}
			return frames[i] < frames[j]
		})
		budget := a.cfg.ScanPages
		for _, f := range frames {
			if budget == 0 {
				break
			}
			if a.os.meta[f].proc < 0 {
				continue // freed since it was counted
			}
			if len(a.os.free[0]) == 0 {
				rec.Failed++
				a.os.stats.MigrateFails++
				break
			}
			a.migrate(f, now)
			rec.Migrations++
			budget--
		}
	}

	rec.HitRate = a.os.StackedHitRate()
	a.timeline = append(a.timeline, rec)
	a.localAcc, a.remoteAcc = 0, 0
	clear(a.counts)
}

// migrate moves one off-chip frame's page to a free stacked frame.
func (a *AutoNUMA) migrate(from uint32, now uint64) {
	o := a.os
	l := o.free[0]
	to := l[len(l)-1]
	o.free[0] = l[:len(l)-1]

	m := o.meta[from]
	p := o.procs[m.proc]
	p.table[m.vpage] = to
	o.meta[to] = frameMeta{proc: m.proc, vpage: m.vpage, ref: true}
	o.meta[from].proc = -1
	o.free[o.nodeOf(from)] = append(o.free[o.nodeOf(from)], from)
	o.stats.Migrations++
	// ISA notifications: in an OS-managed NUMA system there is no
	// hardware remapping, so no notifier is attached; if one is, keep
	// its allocation view coherent.
	o.notifyAlloc(now, to)
	o.notifyFree(now, from)
}

// Package osmodel implements the operating-system half of the
// Chameleon co-design: physical frame management over the OS-visible
// address space, per-process demand paging with page faults to an SSD,
// explicit reclamation, and the ISA-Alloc/ISA-Free notifications of
// Algorithms 1 and 2 of the paper. It also implements the two OS-based
// NUMA placement policies the paper compares against (first-touch
// allocation and AutoNUMA migration).
package osmodel

import (
	"fmt"
	"sync/atomic"

	"chameleon/internal/addr"
	"chameleon/internal/rng"
	"chameleon/internal/stats"
)

// Notifier receives the ISA-Alloc/ISA-Free instructions the OS issues
// per segment (Algorithms 1 and 2). Memory-system controllers implement
// it.
type Notifier interface {
	ISAAlloc(now uint64, seg addr.Seg)
	ISAFree(now uint64, seg addr.Seg)
}

// AllocPolicy selects the order in which free frames are handed out.
type AllocPolicy int

// Frame allocation policies.
const (
	// AllocShuffled models a long-running buddy allocator: frames are
	// handed out in pseudo-random order across the whole space. This
	// is the default for hardware-managed memory systems (the OS sees
	// a single node).
	AllocShuffled AllocPolicy = iota
	// AllocFirstTouch is the NUMA-aware local/first-touch policy:
	// stacked-node frames are exhausted before off-chip frames.
	AllocFirstTouch
	// AllocSequential hands out frames in ascending address order.
	AllocSequential
	// AllocInterleave alternates between the nodes while both have
	// free frames.
	AllocInterleave
	// AllocSlowFirst exhausts the off-chip node before touching the
	// stacked node. This is how a kernel whose CPUs are associated with
	// the large node behaves, and it is the allocation order under
	// which AutoNUMA's migration race (Figure 2c) can play out: the
	// stacked node keeps free frames until the footprint nears the
	// total capacity.
	AllocSlowFirst
	// AllocGroupAware implements the paper's §VI-G proposal: the OS
	// tracks segment-group occupancy and places pages so that as many
	// groups as possible keep a free segment (and thus stay usable as
	// Chameleon cache). Requires Config.Space.
	AllocGroupAware
)

func (p AllocPolicy) String() string {
	switch p {
	case AllocShuffled:
		return "shuffled"
	case AllocFirstTouch:
		return "first-touch"
	case AllocSequential:
		return "sequential"
	case AllocInterleave:
		return "interleave"
	case AllocSlowFirst:
		return "slow-first"
	case AllocGroupAware:
		return "group-aware"
	}
	return fmt.Sprintf("AllocPolicy(%d)", int(p))
}

// Config parameterises the OS model.
type Config struct {
	TotalBytes      uint64 // OS-visible physical capacity
	FastBytes       uint64 // portion of the space on the stacked node (0 if none)
	PageBytes       uint64 // page size (4 KB or a 2 MB THP)
	SegBytes        uint64 // hardware segment size; 0 disables ISA notifications
	PageFaultCycles uint64 // major-fault (SSD) stall
	Alloc           AllocPolicy
	Seed            uint64
	// NodeBytes carves the space into N NUMA nodes (ordered near to
	// far, summing to TotalBytes) so the allocator can place across an
	// arbitrary tier stack. Nil derives the classic two-node split from
	// FastBytes: [FastBytes, TotalBytes-FastBytes].
	NodeBytes []uint64
	// Space is the segment-group geometry, required by AllocGroupAware.
	Space *addr.Space
}

// Stats aggregates OS activity.
type Stats struct {
	MinorFaults  uint64 // first-touch mappings backed by a free frame
	MajorFaults  uint64 // faults that had to evict to the SSD
	Evictions    uint64
	FreedPages   uint64
	FaultCycles  uint64 // total cycles stalled on major faults
	Migrations   uint64 // AutoNUMA page migrations
	MigrateFails uint64 // AutoNUMA -ENOMEM failures
	HintFaults   uint64 // AutoNUMA sampling (PTE-poison) faults
}

// Snapshot flattens the stats into the unified metric shape.
func (s Stats) Snapshot() stats.Snapshot {
	return stats.Snapshot{
		"minor_faults":  float64(s.MinorFaults),
		"major_faults":  float64(s.MajorFaults),
		"evictions":     float64(s.Evictions),
		"freed_pages":   float64(s.FreedPages),
		"fault_cycles":  float64(s.FaultCycles),
		"migrations":    float64(s.Migrations),
		"migrate_fails": float64(s.MigrateFails),
		"hint_faults":   float64(s.HintFaults),
	}
}

const noFrame = ^uint32(0)

type frameMeta struct {
	proc  int32 // -1 = free
	vpage uint32
	ref   bool
}

// Process is a simulated address space.
type Process struct {
	id       int
	table    []uint32 // vpage -> frame (noFrame when unmapped)
	resident uint64   // mapped pages
}

// ID returns the process identifier.
func (p *Process) ID() int { return p.id }

// ResidentBytes returns the process's resident set size.
func (p *Process) ResidentBytes(pageBytes uint64) uint64 { return p.resident * pageBytes }

// OS is the operating-system model.
type OS struct {
	cfg        Config
	frames     uint64   // total frames
	fastFrames uint64   // frames on the first (stacked) node
	nodeStart  []uint64 // frame index where each node begins, plus a final sentinel
	free       [][]uint32
	meta       []frameMeta
	procs      []*Process
	hand       uint64 // CLOCK hand
	notifier   Notifier
	rnd        *rng.RNG
	inext      int // interleave cursor
	stats      Stats
	auto       *AutoNUMA
	groups     *groupTracker // non-nil for AllocGroupAware

	// access counters for stacked-node hit-rate reporting
	fastTouches  uint64
	totalTouches uint64

	// pageGen is the page-table generation: it advances on every
	// eviction, the only mutation that can invalidate another process's
	// established translation. Lock-free readers (the parallel engine's
	// run-ahead path) sample it around TranslateMappedQuiet, seqlock
	// style, to detect a concurrent eviction; lastVictim records the
	// frame the most recent eviction reclaimed so the committer can test
	// run-ahead translations against it.
	pageGen    atomic.Uint64
	lastVictim uint32
}

// New builds the OS model. notifier may be nil (no hardware
// co-design).
func New(cfg Config, notifier Notifier) (*OS, error) {
	if cfg.PageBytes == 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		return nil, fmt.Errorf("osmodel: page size must be a power of two, got %d", cfg.PageBytes)
	}
	if cfg.TotalBytes == 0 || cfg.TotalBytes%cfg.PageBytes != 0 {
		return nil, fmt.Errorf("osmodel: capacity %d must be a non-zero multiple of the page size", cfg.TotalBytes)
	}
	if cfg.FastBytes%cfg.PageBytes != 0 || cfg.FastBytes > cfg.TotalBytes {
		return nil, fmt.Errorf("osmodel: fast capacity %d invalid", cfg.FastBytes)
	}
	nodeBytes := cfg.NodeBytes
	if len(nodeBytes) == 0 {
		nodeBytes = []uint64{cfg.FastBytes, cfg.TotalBytes - cfg.FastBytes}
	} else {
		var sum uint64
		for i, nb := range nodeBytes {
			if nb%cfg.PageBytes != 0 {
				return nil, fmt.Errorf("osmodel: node %d capacity %d not a multiple of the page size", i, nb)
			}
			sum += nb
		}
		if sum != cfg.TotalBytes {
			return nil, fmt.Errorf("osmodel: node capacities sum to %d, capacity is %d", sum, cfg.TotalBytes)
		}
	}
	if cfg.SegBytes != 0 && cfg.SegBytes > cfg.PageBytes {
		return nil, fmt.Errorf("osmodel: segment size %d exceeds page size %d", cfg.SegBytes, cfg.PageBytes)
	}
	if cfg.Alloc == AllocGroupAware {
		if cfg.Space == nil {
			return nil, fmt.Errorf("osmodel: AllocGroupAware requires the segment-group geometry (Config.Space)")
		}
		if cfg.Space.TotalBytes() != cfg.TotalBytes {
			return nil, fmt.Errorf("osmodel: Space covers %d bytes, capacity is %d", cfg.Space.TotalBytes(), cfg.TotalBytes)
		}
		if cfg.PageBytes%cfg.Space.SegBytes != 0 {
			return nil, fmt.Errorf("osmodel: page size %d not a multiple of the segment size %d", cfg.PageBytes, cfg.Space.SegBytes)
		}
	}
	o := &OS{
		cfg:      cfg,
		frames:   cfg.TotalBytes / cfg.PageBytes,
		notifier: notifier,
		rnd:      rng.New(cfg.Seed),
	}
	o.nodeStart = make([]uint64, len(nodeBytes)+1)
	for i, nb := range nodeBytes {
		o.nodeStart[i+1] = o.nodeStart[i] + nb/cfg.PageBytes
	}
	o.fastFrames = o.nodeStart[1]
	o.meta = make([]frameMeta, o.frames)
	for i := range o.meta {
		o.meta[i].proc = -1
	}
	// Free lists are stacks; push in descending order so that
	// sequential allocation pops ascending addresses.
	o.free = make([][]uint32, len(nodeBytes))
	for n := range o.free {
		lo, hi := o.nodeStart[n], o.nodeStart[n+1]
		l := make([]uint32, 0, hi-lo)
		for f := int64(hi) - 1; f >= int64(lo); f-- {
			l = append(l, uint32(f))
		}
		o.free[n] = l
	}
	if cfg.Alloc == AllocShuffled {
		for _, l := range o.free {
			l := l
			o.rnd.Shuffle(len(l), func(i, j int) { l[i], l[j] = l[j], l[i] })
		}
	}
	if cfg.Alloc == AllocGroupAware {
		o.groups = newGroupTracker(cfg.Space, cfg.PageBytes)
	}
	return o, nil
}

// Stats returns a copy of the accumulated statistics.
func (o *OS) Stats() Stats { return o.stats }

// Name implements stats.Source.
func (o *OS) Name() string { return "os" }

// Snapshot implements stats.Source.
func (o *OS) Snapshot() stats.Snapshot { return o.stats.Snapshot() }

// ResetStats clears the statistics and hit-rate counters (mappings and
// free lists are preserved).
func (o *OS) ResetStats() {
	o.stats = Stats{}
	o.fastTouches, o.totalTouches = 0, 0
}

// Config returns the OS configuration.
func (o *OS) Config() Config { return o.cfg }

// NewProcess creates an address space.
func (o *OS) NewProcess() *Process {
	p := &Process{id: len(o.procs)}
	o.procs = append(o.procs, p)
	return p
}

// FreeBytes returns the total unallocated physical memory.
func (o *OS) FreeBytes() uint64 {
	var n int
	for _, l := range o.free {
		n += len(l)
	}
	return uint64(n) * o.cfg.PageBytes
}

// FastFreeBytes returns unallocated memory on the stacked node.
func (o *OS) FastFreeBytes() uint64 {
	return uint64(len(o.free[0])) * o.cfg.PageBytes
}

// Nodes returns the number of NUMA nodes the space is carved into.
func (o *OS) Nodes() int { return len(o.free) }

// NodeFreeBytes returns unallocated memory on node n.
func (o *OS) NodeFreeBytes(n int) uint64 {
	if n < 0 || n >= len(o.free) {
		return 0
	}
	return uint64(len(o.free[n])) * o.cfg.PageBytes
}

// nodeOf returns the node holding a frame.
func (o *OS) nodeOf(frame uint32) int {
	for n := 1; n < len(o.nodeStart); n++ {
		if uint64(frame) < o.nodeStart[n] {
			return n - 1
		}
	}
	return len(o.free) - 1
}

// ResidentBytesIn returns how much of the physical range [lo, hi) is
// currently mapped — the occupancy metric per-tier reporting uses. It
// scans frame metadata, so callers should treat it as an end-of-run
// accounting call, not a hot-path one.
func (o *OS) ResidentBytesIn(lo, hi uint64) uint64 {
	page := o.cfg.PageBytes
	first := lo / page
	last := min((hi+page-1)/page, o.frames)
	var n uint64
	for f := first; f < last; f++ {
		if o.meta[f].proc >= 0 {
			n++
		}
	}
	return n * page
}

// StackedHitRate returns the fraction of translated accesses that
// landed on the stacked node.
func (o *OS) StackedHitRate() float64 {
	if o.totalTouches == 0 {
		return 0
	}
	return float64(o.fastTouches) / float64(o.totalTouches)
}

// pickNode chooses which node to allocate from, per the policy.
func (o *OS) pickNode() int {
	// With zero or one node holding free frames the policy has no
	// choice to make — and, critically, the RNG-backed policies must
	// consume no draw (the two-node engine behaved this way, and the
	// deterministic-equivalence gate holds us to it).
	total, nonempty, first := 0, 0, -1
	for i, l := range o.free {
		if len(l) > 0 {
			total += len(l)
			nonempty++
			if first < 0 {
				first = i
			}
		}
	}
	if nonempty <= 1 {
		return first // -1 when every node is full
	}
	switch o.cfg.Alloc {
	case AllocFirstTouch, AllocSequential:
		return first
	case AllocSlowFirst:
		for i := len(o.free) - 1; i >= 0; i-- {
			if len(o.free[i]) > 0 {
				return i
			}
		}
	case AllocInterleave:
		for range o.free {
			o.inext = (o.inext + 1) % len(o.free)
			if len(o.free[o.inext]) > 0 {
				return o.inext
			}
		}
	default: // AllocShuffled: weight by free count => uniform over frames
		k := o.rnd.Uint64n(uint64(total))
		for i, l := range o.free {
			if k < uint64(len(l)) {
				return i
			}
			k -= uint64(len(l))
		}
	}
	return -1
}

// allocFrame pops a free frame, or evicts a victim when memory is
// exhausted. It returns the frame and whether the allocation required
// an eviction (a major fault for the toucher).
func (o *OS) allocFrame(now uint64) (uint32, bool) {
	if o.groups != nil && o.FreeBytes() > 0 {
		f := o.allocGroupAware()
		o.groups.allocate(f, o.cfg.PageBytes)
		o.notifyAlloc(now, f)
		return f, false
	}
	node := o.pickNode()
	if node >= 0 {
		l := o.free[node]
		f := l[len(l)-1]
		o.free[node] = l[:len(l)-1]
		o.notifyAlloc(now, f)
		return f, false
	}
	return o.evict(), true
}

// CacheCapableGroups returns, under AllocGroupAware, how many segment
// groups still have a free segment (0 otherwise).
func (o *OS) CacheCapableGroups() uint32 {
	if o.groups == nil {
		return 0
	}
	return o.groups.cacheCapableGroups()
}

// evict runs the CLOCK algorithm to pick and unmap a victim frame.
// The frame remains allocated (it is immediately reused), so no ISA
// notifications are issued.
func (o *OS) evict() uint32 {
	for sweep := uint64(0); sweep < 2*o.frames+1; sweep++ {
		f := o.hand
		o.hand = (o.hand + 1) % o.frames
		m := &o.meta[f]
		if m.proc < 0 {
			continue
		}
		if m.ref {
			m.ref = false
			continue
		}
		p := o.procs[m.proc]
		p.table[m.vpage] = noFrame
		p.resident--
		m.proc = -1
		o.stats.Evictions++
		o.lastVictim = uint32(f)
		o.pageGen.Add(1)
		return uint32(f)
	}
	panic("osmodel: evict found no resident frame")
}

func (o *OS) notifyAlloc(now uint64, frame uint32) {
	if o.notifier == nil || o.cfg.SegBytes == 0 {
		return
	}
	base := uint64(frame) * o.cfg.PageBytes
	for off := uint64(0); off < o.cfg.PageBytes; off += o.cfg.SegBytes {
		o.notifier.ISAAlloc(now, addr.Seg((base+off)/o.cfg.SegBytes))
	}
}

func (o *OS) notifyFree(now uint64, frame uint32) {
	if o.notifier == nil || o.cfg.SegBytes == 0 {
		return
	}
	base := uint64(frame) * o.cfg.PageBytes
	for off := uint64(0); off < o.cfg.PageBytes; off += o.cfg.SegBytes {
		o.notifier.ISAFree(now, addr.Seg((base+off)/o.cfg.SegBytes))
	}
}

// Translate maps a virtual address to its OS physical address,
// demand-paging on first touch. stall is the page-fault penalty (0,
// or PageFaultCycles when the fault had to evict to the SSD).
func (o *OS) Translate(p *Process, vaddr uint64, now uint64) (phys addr.Phys, stall uint64) {
	vpage := vaddr / o.cfg.PageBytes
	for uint64(len(p.table)) <= vpage {
		p.table = append(p.table, noFrame)
	}
	frame := p.table[vpage]
	if frame == noFrame {
		var evicted bool
		frame, evicted = o.allocFrame(now)
		if evicted {
			o.stats.MajorFaults++
			o.stats.FaultCycles += o.cfg.PageFaultCycles
			stall = o.cfg.PageFaultCycles
		} else {
			o.stats.MinorFaults++
		}
		m := &o.meta[frame]
		m.proc = int32(p.id)
		m.vpage = uint32(vpage)
		p.table[vpage] = frame
		p.resident++
	}
	m := &o.meta[frame]
	m.ref = true
	onFast := uint64(frame) < o.fastFrames
	o.totalTouches++
	if onFast {
		o.fastTouches++
	}
	if o.auto != nil {
		stall += o.auto.record(frame, onFast)
	}
	return addr.Phys(uint64(frame)*o.cfg.PageBytes + vaddr%o.cfg.PageBytes), stall
}

// TranslateMapped is the lock-free read path of Translate for pages
// that are already resident: it resolves the mapping, marks the frame
// referenced, and reports whether the frame sits on the stacked node —
// but it never grows the page table, never allocates or evicts a frame,
// and never touches the OS-wide access counters or the AutoNUMA engine
// (callers accumulate touches per core and merge them with AddTouches).
// ok is false when the page is unmapped; the caller must then route the
// access through the full Translate fault path.
//
// Concurrency contract (the parallel engine's run-ahead path): distinct
// goroutines may call TranslateMapped for distinct processes while a
// single committer goroutine runs Translate, PROVIDED no evictions can
// occur (evictions are the only cross-process page-table mutation).
// Under that no-eviction guarantee a process's table is written only at
// its own core's commits, each frame's meta is written only by its
// owning process, and this read path is data-race-free.
func (o *OS) TranslateMapped(p *Process, vaddr uint64) (phys addr.Phys, onFast, ok bool) {
	vpage := vaddr / o.cfg.PageBytes
	if vpage >= uint64(len(p.table)) {
		return 0, false, false
	}
	frame := p.table[vpage]
	if frame == noFrame {
		return 0, false, false
	}
	o.meta[frame].ref = true
	return addr.Phys(uint64(frame)*o.cfg.PageBytes + vaddr%o.cfg.PageBytes), uint64(frame) < o.fastFrames, true
}

// TranslateMappedQuiet is TranslateMapped for callers that must not
// mutate any shared state at all: it resolves the mapping and returns
// the backing frame but does not set the frame's CLOCK reference bit.
// The parallel engine's eviction-safe mode uses it so that reference
// bits — which steer CLOCK victim selection — can be logged per core
// and replayed by the sequencer in commit order (via MarkReferenced),
// keeping eviction decisions bit-identical to the sequential engine
// even while cores run ahead out of order.
//
// Concurrency contract: distinct goroutines may call it for distinct
// processes concurrently with a committer running Translate, provided
// the committer fences those goroutines out (quiesces them) around any
// Translate that evicts; PageGen exposes the eviction generation the
// readers validate, seqlock style.
func (o *OS) TranslateMappedQuiet(p *Process, vaddr uint64) (phys addr.Phys, frame uint32, onFast, ok bool) {
	vpage := vaddr / o.cfg.PageBytes
	if vpage >= uint64(len(p.table)) {
		return 0, 0, false, false
	}
	frame = p.table[vpage]
	if frame == noFrame {
		return 0, 0, false, false
	}
	return addr.Phys(uint64(frame)*o.cfg.PageBytes + vaddr%o.cfg.PageBytes), frame, uint64(frame) < o.fastFrames, true
}

// MarkReferenced sets a frame's CLOCK reference bit. It is the
// sequencer-side replay of the bits TranslateMappedQuiet deliberately
// did not set; applying the logged bits in commit order reproduces the
// sequential engine's CLOCK state exactly.
func (o *OS) MarkReferenced(frame uint32) { o.meta[frame].ref = true }

// PageGen returns the page-table generation counter. It advances on
// every eviction, so a reader that observes the same generation before
// and after a lock-free translation knows no eviction raced with it.
func (o *OS) PageGen() uint64 { return o.pageGen.Load() }

// LastEvictedFrame returns the frame reclaimed by the most recent
// eviction. Meaningful only when the caller observed PageGen advance.
func (o *OS) LastEvictedFrame() uint32 { return o.lastVictim }

// AddTouches merges access counts accumulated outside Translate (the
// per-core tallies of TranslateMapped callers) into the stacked-node
// hit-rate counters. Order-independent, so merging per-core sums at the
// end of a pass reproduces sequential Translate counting exactly.
func (o *OS) AddTouches(total, fast uint64) {
	o.totalTouches += total
	o.fastTouches += fast
}

// Map eagerly maps [vaddr, vaddr+bytes) (used by OS-level capacity
// experiments that do not need per-access timing). It returns the
// number of major faults incurred.
func (o *OS) Map(p *Process, vaddr, bytes uint64, now uint64) (majors uint64) {
	end := vaddr + bytes
	for va := vaddr &^ (o.cfg.PageBytes - 1); va < end; va += o.cfg.PageBytes {
		if _, stall := o.Translate(p, va, now); stall > 0 {
			majors++
		}
	}
	return majors
}

// FreeRange unmaps and frees [vaddr, vaddr+bytes), returning frames to
// their node's free list and issuing ISA-Free notifications
// (Algorithm 2).
func (o *OS) FreeRange(p *Process, vaddr, bytes uint64, now uint64) {
	end := vaddr + bytes
	for va := vaddr &^ (o.cfg.PageBytes - 1); va < end; va += o.cfg.PageBytes {
		vpage := va / o.cfg.PageBytes
		if vpage >= uint64(len(p.table)) {
			continue
		}
		frame := p.table[vpage]
		if frame == noFrame {
			continue
		}
		p.table[vpage] = noFrame
		p.resident--
		o.meta[frame].proc = -1
		node := o.nodeOf(frame)
		o.free[node] = append(o.free[node], frame)
		if o.groups != nil {
			o.groups.release(frame, o.cfg.PageBytes)
		}
		o.stats.FreedPages++
		o.notifyFree(now, frame)
	}
}

// FreeAll releases every mapping of the process.
func (o *OS) FreeAll(p *Process, now uint64) {
	o.FreeRange(p, 0, uint64(len(p.table))*o.cfg.PageBytes, now)
}

// BufferCache models the OS page cache of §V-D3: the kernel grows and
// shrinks a pool of file-cache pages over time, and those allocations
// issue ISA-Alloc/ISA-Free exactly like application pages, so the
// Chameleon hardware never confiscates buffer-cache space for its own
// cache mode. It is backed by a dedicated address space.
type BufferCache struct {
	os    *OS
	proc  *Process
	bytes uint64
}

// NewBufferCache creates an empty buffer cache.
func (o *OS) NewBufferCache() *BufferCache {
	return &BufferCache{os: o, proc: o.NewProcess()}
}

// Bytes returns the cache's current size.
func (b *BufferCache) Bytes() uint64 { return b.bytes }

// Resize grows or shrinks the buffer cache to target bytes, mapping or
// reclaiming pages (and issuing the corresponding ISA notifications).
// It returns the number of major faults incurred while growing.
func (b *BufferCache) Resize(target uint64, now uint64) (majors uint64) {
	page := b.os.cfg.PageBytes
	target = (target + page - 1) / page * page
	switch {
	case target > b.bytes:
		majors = b.os.Map(b.proc, b.bytes, target-b.bytes, now)
	case target < b.bytes:
		b.os.FreeRange(b.proc, target, b.bytes-target, now)
	}
	b.bytes = target
	return majors
}

package osmodel

import "chameleon/internal/addr"

// Group-aware allocation implements the paper's §VI-G future-work
// proposal: expose the segment-group structure to the OS so the
// allocator can place pages to maximise the number of groups that keep
// at least one free segment — i.e. the number of groups Chameleon-Opt
// can run in cache mode. The allocator tracks free-way counts per
// group and, on each allocation, samples a few candidate frames and
// picks the one whose groups have the most free ways to spare
// (power-of-k-choices keeps the cost O(1) per allocation).

// groupTracker maintains per-group free-way counts for group-aware
// placement.
type groupTracker struct {
	space    *addr.Space
	freeWays []uint16 // per group: unallocated ways
	segsPer  uint64   // segments per page
}

func newGroupTracker(space *addr.Space, pageBytes uint64) *groupTracker {
	t := &groupTracker{
		space:    space,
		freeWays: make([]uint16, space.Groups()),
		segsPer:  pageBytes / space.SegBytes,
	}
	for g := range t.freeWays {
		t.freeWays[g] = uint16(space.Ways())
	}
	return t
}

// groupsOf iterates the groups covered by a frame's segments.
func (t *groupTracker) groupsOf(frame uint32, pageBytes uint64, fn func(addr.Group)) {
	base := uint64(frame) * pageBytes
	for off := uint64(0); off < pageBytes; off += t.space.SegBytes {
		g, _ := t.space.GroupOf(t.space.SegOf(addr.Phys(base + off)))
		fn(g)
	}
}

// score rates a candidate frame: the minimum post-allocation free-way
// count across the groups it touches. Higher is better — allocating
// from a group with many free ways never costs a cache-capable group,
// while taking a group's last free way (score 0) does.
func (t *groupTracker) score(frame uint32, pageBytes uint64) int {
	best := int(^uint(0) >> 1)
	t.groupsOf(frame, pageBytes, func(g addr.Group) {
		if v := int(t.freeWays[g]) - 1; v < best {
			best = v
		}
	})
	return best
}

func (t *groupTracker) allocate(frame uint32, pageBytes uint64) {
	t.groupsOf(frame, pageBytes, func(g addr.Group) {
		if t.freeWays[g] > 0 {
			t.freeWays[g]--
		}
	})
}

func (t *groupTracker) release(frame uint32, pageBytes uint64) {
	t.groupsOf(frame, pageBytes, func(g addr.Group) {
		if int(t.freeWays[g]) < t.space.Ways() {
			t.freeWays[g]++
		}
	})
}

// CacheCapableGroups returns how many groups still have a free way —
// the upper bound on Chameleon-Opt's cache-mode groups.
func (t *groupTracker) cacheCapableGroups() (n uint32) {
	for _, f := range t.freeWays {
		if f > 0 {
			n++
		}
	}
	return n
}

// groupAwareSamples is the number of candidate frames examined per
// allocation.
const groupAwareSamples = 8

// allocGroupAware picks a frame by sampling candidates from the free
// lists and maximising the group-tracker score. The caller guarantees
// at least one free frame exists.
func (o *OS) allocGroupAware() uint32 {
	total := 0
	for _, l := range o.free {
		total += len(l)
	}
	bestList, bestIdx, bestScore := -1, -1, -1
	for s := 0; s < groupAwareSamples; s++ {
		// Index into the concatenation of the node free lists — uniform
		// over free frames, and draw-for-draw identical to the two-node
		// engine's fast/slow split.
		idx := int(o.rnd.Uint64n(uint64(total)))
		list := 0
		for idx >= len(o.free[list]) {
			idx -= len(o.free[list])
			list++
		}
		frame := o.free[list][idx]
		if sc := o.groups.score(frame, o.cfg.PageBytes); sc > bestScore {
			bestList, bestIdx, bestScore = list, idx, sc
		}
	}
	l := o.free[bestList]
	frame := l[bestIdx]
	l[bestIdx] = l[len(l)-1]
	o.free[bestList] = l[:len(l)-1]
	return frame
}

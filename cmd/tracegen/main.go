// Command tracegen dumps a synthetic memory-reference trace for one of
// the Table II workload profiles, for inspection or for feeding other
// simulators. Each output line is "<gap> <vaddr-hex> <R|W>".
//
// Usage:
//
//	tracegen -workload mcf -n 1000 [-scale 256] [-seed 1] [-stats]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"chameleon"
)

func main() {
	var (
		wlName = flag.String("workload", "bwaves", "Table II workload name")
		n      = flag.Uint64("n", 1000, "number of references to emit")
		scale  = flag.Uint64("scale", 256, "footprint scale divisor")
		seed   = flag.Uint64("seed", 1, "random seed")
		stats  = flag.Bool("stats", false, "print summary statistics instead of the trace")
	)
	flag.Parse()
	if err := run(*wlName, *n, *scale, *seed, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(wlName string, n, scale, seed uint64, statsOnly bool) error {
	prof, err := chameleon.Workload(wlName)
	if err != nil {
		return err
	}
	prof = prof.Scale(scale)
	st, err := chameleon.NewTraceStream(prof, seed)
	if err != nil {
		return err
	}
	if statsOnly {
		var instr, writes, maxAddr uint64
		for i := uint64(0); i < n; i++ {
			r := st.Next()
			instr += r.Gap
			if r.Write {
				writes++
			}
			if r.VAddr > maxAddr {
				maxAddr = r.VAddr
			}
		}
		fmt.Printf("workload      %s (scale %d)\n", prof.Name, scale)
		fmt.Printf("references    %d over %d instructions (%.1f refs/KI)\n", n, instr, float64(n)/float64(instr)*1000)
		fmt.Printf("write share   %.1f%%\n", float64(writes)/float64(n)*100)
		fmt.Printf("max address   %#x (footprint %#x)\n", maxAddr, prof.FootprintBytes)
		return nil
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := uint64(0); i < n; i++ {
		r := st.Next()
		rw := 'R'
		if r.Write {
			rw = 'W'
		}
		fmt.Fprintf(w, "%d %#x %c\n", r.Gap, r.VAddr, rw)
	}
	return nil
}

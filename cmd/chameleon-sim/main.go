// Command chameleon-sim runs a single heterogeneous-memory simulation
// and prints its statistics.
//
// Usage:
//
//	chameleon-sim -policy chameleon-opt -workload bwaves [-scale 256]
//	              [-instr 500000] [-warmup 4000000] [-ratio 5] [-seed 42]
//	              [-baseline-gb 20] [-autonuma 0.9] [-config machine.json]
//	              [-threads 8]
//
// -config overlays a JSON configuration document on the scaled default
// machine; use a "CacheLevels" array to run a different cache hierarchy
// (2-level, 4-level, ...) — see README.md for examples.
//
// -list prints the registered policies (with their descriptor flags)
// and the workload catalogue, then exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"chameleon"
	"chameleon/internal/config"
	"chameleon/internal/osmodel"
	"chameleon/internal/policy"
	"chameleon/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "chameleon-opt",
			"memory-system design ("+strings.Join(chameleon.Policies(), ", ")+")")
		wlName     = flag.String("workload", "bwaves", "Table II workload name")
		scale      = flag.Uint64("scale", 256, "capacity scale divisor (1 = full-size 4+20 GB)")
		instr      = flag.Uint64("instr", 500_000, "measured instructions per core")
		warmup     = flag.Uint64("warmup", 4_000_000, "warm-up instructions per core")
		ratio      = flag.Int("ratio", 0, "override the stacked:off-chip ratio (3, 5 or 7)")
		seed       = flag.Uint64("seed", 42, "random seed")
		baselineGB = flag.Uint64("baseline-gb", 24, "flat-baseline capacity in (unscaled) GB")
		autonuma   = flag.Float64("autonuma", 0, "enable AutoNUMA at this threshold (numa-flat only)")
		energy     = flag.Bool("energy", false, "also report DRAM energy and bandwidth utilisation")
		mix        = flag.String("mix", "", "comma-separated workloads, one per core round-robin (overrides -workload)")
		groupAware = flag.Bool("group-aware", false, "use the group-aware OS allocator (paper SVI-G)")
		counters   = flag.Bool("counters", false, "dump every simulation counter (the unified stats snapshot)")
		configPath = flag.String("config", "", "JSON config overlay (e.g. a CacheLevels hierarchy) applied to the scaled default")
		record     = flag.String("record", "", "tee the run's reference stream to this binary trace file (replay with -workload replay:<file>)")
		threads    = flag.Int("threads", 1, "worker threads for the parallel engine (results are identical at any count)")
		list       = flag.Bool("list", false, "print the registered policies (with their descriptors) and workload names, then exit")
	)
	flag.Parse()

	if *list {
		printCatalogue()
		return
	}

	if err := run(runCfg{
		policyName: *policyName, wlName: *wlName, scale: *scale,
		instr: *instr, warmup: *warmup, ratio: *ratio, seed: *seed,
		baselineGB: *baselineGB, autonuma: *autonuma,
		energy: *energy, mix: *mix, groupAware: *groupAware,
		counters: *counters, configPath: *configPath, record: *record,
		threads: *threads,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "chameleon-sim:", err)
		os.Exit(1)
	}
}

// printCatalogue lists every registered memory-system design with its
// descriptor flags, then the workload catalogue — the same axes a DSE
// sweep enumerates (see chameleon-dse).
func printCatalogue() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "POLICY\tTIERS\tISA\tBASELINE\tOS-MANAGED")
	for _, name := range policy.Names() {
		d, err := policy.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(tw, "%s\t>=%d\t%s\t%s\t%s\n", name, d.RequiredTiers(),
			yn(d.NeedsISA), yn(d.RequiresBaseline), yn(d.OSManaged))
	}
	tw.Flush()
	fmt.Printf("\nworkloads: %s\n", strings.Join(workload.Names(), ", "))
	fmt.Println("          (or replay:<file>.ctrace to replay a recorded trace)")
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

type runCfg struct {
	policyName, wlName   string
	scale, instr, warmup uint64
	ratio                int
	seed, baselineGB     uint64
	autonuma             float64
	energy               bool
	mix                  string
	groupAware           bool
	counters             bool
	configPath           string
	record               string
	threads              int
}

func run(rc runCfg) error {
	// Any registered design name is accepted; chameleon.New reports
	// unknown names with the full valid set.
	pk := chameleon.Policy(rc.policyName)
	var err error
	cfg := chameleon.DefaultConfig(rc.scale)
	if rc.configPath != "" {
		// The overlay decodes onto the scaled default, so a document may
		// name only the fields it changes (a CacheLevels stack, a legacy
		// L2 resize, DRAM timings, ...).
		b, err := os.ReadFile(rc.configPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &cfg); err != nil {
			return fmt.Errorf("%s: %w", rc.configPath, err)
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("%s: %w", rc.configPath, err)
		}
	}
	if rc.ratio != 0 {
		if cfg, err = cfg.WithRatio(rc.ratio); err != nil {
			return err
		}
	}
	opts := chameleon.Options{
		Config:             cfg,
		Policy:             pk,
		Seed:               rc.seed,
		WarmupInstructions: rc.warmup,
		Threads:            rc.threads,
	}
	// "replay:<file>.ctrace" replays a recorded trace; catalogue names
	// attach the scaled synthetic profile.
	if err := chameleon.UseWorkload(&opts, rc.wlName, rc.scale); err != nil {
		return err
	}
	if rc.mix != "" {
		for _, name := range strings.Split(rc.mix, ",") {
			p, err := chameleon.Workload(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Mix = append(opts.Mix, p.Scale(rc.scale))
		}
	}
	if chameleon.PolicyNeedsBaseline(rc.policyName) {
		opts.BaselineBytes = rc.baselineGB * config.GB / rc.scale
	}
	if rc.autonuma > 0 {
		opts.AutoNUMA = &osmodel.AutoNUMAConfig{EpochCycles: 10_000_000, Threshold: rc.autonuma, ScanPages: 4096}
	}
	if rc.groupAware {
		ga := chameleon.AllocGroupAware
		opts.Alloc = &ga
	}
	var rec *chameleon.TraceWriter
	var recFile *os.File
	if rc.record != "" {
		// Tee every per-core reference the run consumes (warm-up
		// included) into a binary trace; the file replays this exact run
		// via -workload replay:<file>.
		if recFile, err = os.Create(rc.record); err != nil {
			return err
		}
		defer recFile.Close()
		rec = chameleon.NewTraceWriter(recFile)
		rec.Meta = fmt.Sprintf("policy=%s seed=%d scale=%d instr=%d warmup=%d",
			rc.policyName, rc.seed, rc.scale, rc.instr, rc.warmup)
		opts.TraceSink = rec
	}
	sys, err := chameleon.New(opts)
	if err != nil {
		return err
	}
	res, err := sys.Run(rc.instr)
	if err != nil {
		return err
	}
	if rec != nil {
		// Close flushes the footer; a write failure anywhere in the run
		// surfaces here.
		if err := rec.Close(); err != nil {
			return err
		}
		if err := recFile.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("policy            %s\n", res.Policy)
	if res.FallbackReason != "" {
		fmt.Printf("engine            %s (fallback: %s)\n", res.Engine, res.FallbackReason)
	} else {
		fmt.Printf("engine            %s\n", res.Engine)
	}
	fmt.Printf("workload          %s (x%d cores)\n", res.Workload, len(res.Cores))
	fmt.Printf("geomean IPC       %.4f\n", res.GeoMeanIPC)
	fmt.Printf("stacked hit rate  %.2f%%\n", res.StackedHitRate*100)
	fmt.Printf("avg mem latency   %.1f cycles\n", res.AMAT)
	for _, lv := range res.Levels {
		fmt.Printf("%-18s%d accesses, %.2f%% miss rate, %d writebacks\n",
			strings.ToLower(lv.Level)+" cache", lv.Accesses, lv.MissRate()*100, lv.Writebacks)
	}
	fmt.Printf("cache-mode groups %.2f%%\n", res.CacheModeFraction*100)
	fmt.Printf("CPU utilisation   %.2f%%\n", res.CPUUtilization*100)
	fmt.Printf("segment swaps     %d (%.1f MB moved)\n", res.Ctrl.Swaps, float64(res.Ctrl.SwapBytes)/float64(config.MB))
	fmt.Printf("cache fills       %d, dirty writebacks %d\n", res.Ctrl.Fills, res.Ctrl.Writebacks)
	fmt.Printf("ISA alloc/free    %d / %d (proactive moves %d, cleared %d)\n",
		res.Ctrl.ISAAllocs, res.Ctrl.ISAFrees, res.Ctrl.ProactiveMoves, res.Ctrl.ClearedSegments)
	fmt.Printf("page faults       %d major, %d minor (%d evictions)\n",
		res.OS.MajorFaults, res.OS.MinorFaults, res.OS.Evictions)
	for _, tr := range res.Tiers {
		d := tr.Device
		label := fmt.Sprintf("%s (%s)", tr.Tier, tr.Kind)
		line := fmt.Sprintf("%-18s%.0f reads, %.0f writes, %.1f%% occupied",
			label, d["reads"], d["writes"], tr.Occupancy*100)
		switch tr.Kind {
		case config.TierDRAM:
			line += fmt.Sprintf(", %.1f%% row hits", rowHitPct(d["row_hits"], d["reads"]+d["writes"]))
		case config.TierNVM:
			line += fmt.Sprintf(", wear max %.0f writes/block (%.0f worn)", d["max_wear"], d["worn_blocks"])
		case config.TierCXL:
			line += fmt.Sprintf(", %.0f link waits", d["link_waits"])
		}
		fmt.Println(line)
	}
	if len(res.NUMATimeline) > 0 {
		fmt.Printf("autonuma          %d epochs, %d migrations, %d failures\n",
			len(res.NUMATimeline), res.OS.Migrations, res.OS.MigrateFails)
	}
	if rc.energy {
		seconds := float64(res.MaxCycles) / cfg.CPU.FreqHz
		for i, t := range sys.Tiers() {
			e := sys.TierEnergy(i, res.MaxCycles)
			fmt.Printf("%-18s%.2f mJ (%.0f mW avg), %.1f%% bus utilisation\n",
				t.Name()+" energy", e.TotalNJ()/1e6, e.AveragePowerMW(seconds),
				t.Dev.BusyFraction(res.MaxCycles)*100)
		}
	}
	fmt.Println("\nper-core results:")
	for i, c := range res.Cores {
		fmt.Printf("  core %2d: IPC %.4f  MPKI %6.2f  fault cycles %d\n", i, c.IPC, c.MPKI, c.FaultCycles)
	}
	if rc.counters {
		snap := res.Snapshot()
		fmt.Println("\ncounters:")
		for _, k := range snap.Keys() {
			fmt.Printf("  %-28s %g\n", k, snap[k])
		}
	}
	return nil
}

func rowHitPct(hits, total float64) float64 {
	if total == 0 {
		return 0
	}
	return hits / total * 100
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunThreeTierOverlay drives the CLI's run path with a memory_tiers
// overlay: a stacked DRAM + off-chip DRAM + NVM machine under the
// three-tier hwc policy must simulate and report without error.
func TestRunThreeTierOverlay(t *testing.T) {
	overlay := `{"memory_tiers": [
		{"DRAM": {"Name": "stacked", "CapacityBytes": 2097152, "Channels": 2, "RanksPerChan": 2,
			"BanksPerRank": 8, "BusFreqHz": 1.6e9, "BusWidthBits": 128, "RowBytes": 2048,
			"TCAS": 11, "TRCD": 11, "TRP": 11, "TRAS": 28, "TRFCNanos": 138, "TREFINanos": 7800}},
		{"DRAM": {"Name": "offchip", "CapacityBytes": 8388608, "Channels": 2, "RanksPerChan": 2,
			"BanksPerRank": 8, "BusFreqHz": 0.8e9, "BusWidthBits": 64, "RowBytes": 2048,
			"TCAS": 11, "TRCD": 11, "TRP": 11, "TRAS": 28, "TRFCNanos": 160, "TREFINanos": 7800}},
		{"NVM": {"Name": "pmem", "CapacityBytes": 33554432, "ReadLatencyNanos": 300,
			"WriteLatencyNanos": 1000, "ReadBandwidth": 8e9, "WriteBandwidth": 3e9}}
	]}`
	path := filepath.Join(t.TempDir(), "tiers.json")
	if err := os.WriteFile(path, []byte(overlay), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(runCfg{
		policyName: "hwc", wlName: "bwaves", scale: 1024,
		instr: 20_000, warmup: 50_000, seed: 7,
		configPath: path, energy: true, counters: true, threads: 1,
	})
	if err != nil {
		t.Fatalf("three-tier CLI run: %v", err)
	}

	// The legacy Fast/Slow overlay keeps working through the same flag.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"Fast": {"CapacityBytes": 4194304}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(runCfg{
		policyName: "chameleon-opt", wlName: "bwaves", scale: 1024,
		instr: 10_000, warmup: 10_000, seed: 7, configPath: legacy, threads: 1,
	})
	if err != nil {
		t.Fatalf("legacy overlay CLI run: %v", err)
	}
}

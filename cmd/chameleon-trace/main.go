// Command chameleon-trace records, inspects and verifies binary
// memory-reference traces (the internal/memtrace ".ctrace" format).
//
// Usage:
//
//	chameleon-trace record -o run.ctrace -policy chameleon -workload bwaves
//	                       [-mix a,b] [-scale 256] [-instr 500000]
//	                       [-warmup 4000000] [-seed 42] [-baseline-gb 24]
//	chameleon-trace info   run.ctrace   (header + one-pass summary)
//	chameleon-trace stats  run.ctrace   (alias of info)
//	chameleon-trace verify run.ctrace   (decode everything, check every CRC)
//
// A recorded file replays as a first-class workload anywhere a workload
// name is accepted: chameleon-sim -workload replay:run.ctrace, a server
// JobSpec trace_path, or chameleon.UseWorkload. Replaying a recording
// under the options it was captured with reproduces the original
// sim.Result exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chameleon"
	"chameleon/internal/config"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "record":
		err = record(os.Args[2:])
	case "info", "stats":
		err = info(os.Args[2:], cmd)
	case "verify":
		err = verify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "chameleon-trace: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chameleon-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `chameleon-trace records, inspects and verifies binary reference traces.

Subcommands:
  record  run a workload under a policy and write its trace
  info    print the header and a one-pass summary (alias: stats)
  verify  decode the whole file, checking every block CRC

Run "chameleon-trace <subcommand> -h" for flags.
`)
}

// record runs one simulation with a trace sink attached and writes the
// capture to -o.
func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out        = fs.String("o", "", "output trace file (required)")
		policyName = fs.String("policy", "chameleon",
			"memory-system design ("+strings.Join(chameleon.Policies(), ", ")+")")
		wlName     = fs.String("workload", "bwaves", "workload name (Table II profile or replay:<file>.ctrace)")
		mix        = fs.String("mix", "", "comma-separated workloads, one per core round-robin (overrides -workload)")
		scale      = fs.Uint64("scale", 256, "capacity scale divisor (1 = full-size 4+20 GB)")
		instr      = fs.Uint64("instr", 500_000, "measured instructions per core")
		warmup     = fs.Uint64("warmup", 4_000_000, "warm-up instructions per core (also recorded)")
		seed       = fs.Uint64("seed", 42, "random seed")
		baselineGB = fs.Uint64("baseline-gb", 24, "flat-baseline capacity in (unscaled) GB")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -o <file> is required")
	}
	opts := chameleon.Options{
		Config:             chameleon.DefaultConfig(*scale),
		Policy:             chameleon.Policy(*policyName),
		Seed:               *seed,
		WarmupInstructions: *warmup,
	}
	if err := chameleon.UseWorkload(&opts, *wlName, *scale); err != nil {
		return err
	}
	if *mix != "" {
		for _, name := range strings.Split(*mix, ",") {
			p, err := chameleon.Workload(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Mix = append(opts.Mix, p.Scale(*scale))
		}
	}
	if chameleon.PolicyNeedsBaseline(*policyName) {
		opts.BaselineBytes = *baselineGB * config.GB / *scale
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	w := chameleon.NewTraceWriter(f)
	w.Meta = fmt.Sprintf("policy=%s seed=%d scale=%d instr=%d warmup=%d",
		*policyName, *seed, *scale, *instr, *warmup)
	opts.TraceSink = w

	sys, err := chameleon.New(opts)
	if err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	res, err := sys.Run(*instr)
	if err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}

	counts := w.Counts()
	var total uint64
	for _, n := range counts {
		total += n
	}
	fmt.Printf("recorded          %s\n", *out)
	fmt.Printf("run               %s under %s (x%d cores)\n", res.Workload, res.Policy, len(counts))
	fmt.Printf("references        %d (%.2f bytes/ref on disk)\n", total, float64(st.Size())/float64(max(total, 1)))
	fmt.Printf("file size         %s\n", sizeStr(st.Size()))
	for i, n := range counts {
		fmt.Printf("  core %2d: %d refs\n", i, n)
	}
	fmt.Printf("replay with       -workload replay:%s\n", *out)
	return nil
}

// info prints the header and the one-pass validating summary.
func info(args []string, cmd string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := onePath(fs, cmd)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := chameleon.TraceStat(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}

	fmt.Printf("file              %s (%s, %d blocks)\n", path, sizeStr(st.Size()), sum.Blocks)
	fmt.Printf("format version    %d\n", sum.Header.Version)
	fmt.Printf("run               %s (x%d cores)\n", sum.Header.RunName, len(sum.Header.Cores))
	if sum.Header.Meta != "" {
		fmt.Printf("metadata          %s\n", sum.Header.Meta)
	}
	fmt.Printf("references        %d (%.1f%% writes, %.2f bytes/ref)\n",
		sum.Refs, sum.WriteFraction()*100, float64(st.Size())/float64(max(sum.Refs, 1)))
	fmt.Printf("instructions      %d spanned by reference gaps\n", sum.Instructions)
	fmt.Printf("touched           %s (densest core's address span)\n", sizeStr(int64(sum.TouchedBytes)))
	fmt.Println("\nper-core streams:")
	for i, c := range sum.PerCore {
		fmt.Printf("  core %2d: %-12s %10d refs  %5.1f%% writes  footprint %s\n",
			i, c.Workload, c.Refs, pct(c.Writes, c.Refs), sizeStr(int64(c.FootprintBytes)))
	}
	return nil
}

// verify decodes the whole file — every block, every CRC, the footer
// totals — and reports either a clean bill or the failing block.
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := onePath(fs, "verify")
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := chameleon.TraceStat(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: ok — %d blocks, %d references across %d cores, all CRCs valid\n",
		path, sum.Blocks, sum.Refs, len(sum.Header.Cores))
	return nil
}

// onePath extracts the single positional trace-file argument.
func onePath(fs *flag.FlagSet, cmd string) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("%s: want exactly one trace file argument, got %d", cmd, fs.NArg())
	}
	return fs.Arg(0), nil
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

// sizeStr renders a byte count with a binary unit.
func sizeStr(n int64) string {
	switch {
	case n >= int64(config.GB):
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(config.GB))
	case n >= int64(config.MB):
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(config.MB))
	case n >= int64(config.KB):
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(config.KB))
	}
	return fmt.Sprintf("%d B", n)
}

// Command chameleon-dse answers design questions: it expands, runs,
// and summarizes declarative design-space sweeps over the simulator's
// pluggable axes (policy, workload, stacked ratio, capacity scale,
// seed, cache hierarchy, memory-tier stack), extracting the Pareto
// front over configurable objectives.
//
// Usage:
//
//	chameleon-dse expand -spec sweep.json            # list the cells a sweep expands to
//	chameleon-dse run    -spec sweep.json [-json]    # evaluate in-process, print the front
//	chameleon-dse run    -spec sweep.json -server http://host:8080   # submit as a chamd dse job
//	chameleon-dse front  -result result.json         # re-print a saved sweep result's front
//
// The spec file is a JSON dse.Spec ("-" reads stdin; omitted entirely
// sweeps the default axes). Empty axes take defaults: the paper's
// standard policies, all Table II workloads, one default
// ratio/scale/seed. Objectives default to IPC up, total memory
// capacity down, total memory energy down.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"chameleon"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "expand":
		err = cmdExpand(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "front":
		err = cmdFront(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "chameleon-dse: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chameleon-dse:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  chameleon-dse expand -spec sweep.json [-json]
  chameleon-dse run    -spec sweep.json [-instr N] [-warmup N] [-par N] [-threads N] [-json]
  chameleon-dse run    -spec sweep.json -server URL [-timeout 30m]
  chameleon-dse front  -result result.json [-json]
`)
}

// loadSpec reads a dse.Spec from path ("-" = stdin, "" = empty spec).
func loadSpec(path string) (chameleon.DSESpec, error) {
	var spec chameleon.DSESpec
	if path == "" {
		return spec, nil
	}
	var (
		b   []byte
		err error
	)
	if path == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(path)
	}
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return spec, fmt.Errorf("parse %s: %w", path, err)
	}
	return spec, nil
}

func cmdExpand(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ExitOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file (- = stdin, empty = all defaults)")
	asJSON := fs.Bool("json", false, "emit the cell list as JSON")
	_ = fs.Parse(args)

	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	cells, err := spec.Expand()
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cells)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tPOLICY\tWORKLOAD\tRATIO\tSCALE\tSEED\tCACHE\tTIERS")
	for _, c := range cells {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%s\t%s\n",
			c.Index, c.Policy, c.Workload, orDefault(c.Ratio), c.Scale, c.Seed,
			variantName(c.CacheVariant), variantName(c.TierVariant))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("%d cells\n", len(cells))
	return nil
}

func orDefault(ratio int) string {
	if ratio == 0 {
		return "default"
	}
	return fmt.Sprintf("%d", ratio)
}

func variantName(v int) string {
	if v < 0 {
		return "default"
	}
	return fmt.Sprintf("variant[%d]", v)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "sweep spec JSON file (- = stdin, empty = all defaults)")
		scale    = fs.Uint64("scale", 0, "default capacity-scale divisor when the spec sweeps no scales")
		instr    = fs.Uint64("instr", 50_000, "measured instructions per core, per cell")
		warmup   = fs.Uint64("warmup", 500_000, "warm-up instructions per core, per cell")
		seed     = fs.Uint64("seed", 0, "default seed when the spec sweeps no seeds")
		par      = fs.Int("par", 0, "concurrently evaluated cells (0 = GOMAXPROCS)")
		threads  = fs.Int("threads", 1, "worker threads per cell simulation")
		asJSON   = fs.Bool("json", false, "emit the full sweep result as JSON")
		srv      = fs.String("server", "", "submit to this chamd base URL instead of running in-process")
		timeout  = fs.Duration("timeout", 30*time.Minute, "overall deadline")
	)
	_ = fs.Parse(args)

	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	var res *chameleon.DSEResult
	if *srv != "" {
		res, err = runRemote(ctx, *srv, spec, *scale, *instr, *warmup, *seed, *par, *threads)
	} else {
		o := chameleon.ExperimentOptions{
			Scale: *scale, Instructions: *instr, Warmup: *warmup, Seed: *seed,
			Parallelism: *par, Threads: *threads,
			Progress: func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			},
		}
		res, err = chameleon.RunDSE(ctx, o, spec)
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	printResult(res)
	return nil
}

// runRemote submits the sweep as a chamd dse job and waits for it.
func runRemote(ctx context.Context, base string, spec chameleon.DSESpec,
	scale, instr, warmup, seed uint64, par, threads int) (*chameleon.DSEResult, error) {
	c := chameleon.NewClient(base)
	st, err := c.Submit(ctx, chameleon.JobSpec{
		Kind: chameleon.JobKindDSE, DSE: &spec,
		Scale: scale, Instructions: instr, Warmup: warmup, Seed: seed,
		Parallelism: par, Threads: threads,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "job %s submitted\n", st.ID)
	fin, err := c.Wait(ctx, st.ID, 500*time.Millisecond)
	if err != nil {
		return nil, err
	}
	if fin.State != chameleon.JobDone {
		return nil, fmt.Errorf("job %s ended %s: %s", fin.ID, fin.State, fin.Error)
	}
	return c.DSEResult(ctx, st.ID)
}

func cmdFront(args []string) error {
	fs := flag.NewFlagSet("front", flag.ExitOnError)
	resultPath := fs.String("result", "-", "sweep result JSON file (- = stdin)")
	asJSON := fs.Bool("json", false, "emit only the front points as JSON")
	_ = fs.Parse(args)

	var (
		b   []byte
		err error
	)
	if *resultPath == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(*resultPath)
	}
	if err != nil {
		return err
	}
	var res chameleon.DSEResult
	if err := json.Unmarshal(b, &res); err != nil {
		return fmt.Errorf("parse %s: %w", *resultPath, err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Front)
	}
	printResult(&res)
	return nil
}

// printResult renders the sweep accounting and its Pareto front as a
// table, objective columns in spec order.
func printResult(res *chameleon.DSEResult) {
	fmt.Printf("cells: %d total, %d evaluated (%d cached), %d pruned, %d dominated, %d on the front\n",
		res.TotalCells, res.Evaluated, res.Cached, res.Pruned, res.Dominated, len(res.Front))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "CELL\tPOLICY\tWORKLOAD\tRATIO\tSCALE\tSEED")
	for _, o := range res.Objectives {
		fmt.Fprintf(tw, "\t%s (%s)", o.Key, o.Sense)
	}
	fmt.Fprintln(tw)
	front := append([]chameleon.DSEPoint(nil), res.Front...)
	sort.SliceStable(front, func(i, k int) bool { return front[i].Cell.Index < front[k].Cell.Index })
	for _, p := range front {
		c := p.Cell
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d", c.Index, c.Policy, c.Workload, orDefault(c.Ratio), c.Scale, c.Seed)
		for _, v := range p.Values {
			fmt.Fprintf(tw, "\t%.4g", v)
		}
		fmt.Fprintln(tw)
	}
	_ = tw.Flush()
}

// Command experiments regenerates the tables and figures of the
// CHAMELEON paper's evaluation.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig2a|fig2b|fig2c|fig3|fig4|fig5|
//	             fig15|fig16|fig17|fig18|fig19|fig20|fig21|fig22|fig23|overhead]
//	            [-scale N] [-instr N] [-warmup N] [-workloads a,b,c] [-csv]
//
// Results are printed as aligned tables (or CSV with -csv). Scale 1 is
// the paper's full-size 4 GB + 20 GB machine; the default scale of 256
// finishes the whole suite in a few minutes on one core.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"chameleon/internal/experiments"
	"chameleon/internal/sim"
	"chameleon/internal/stats"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (all, table1, table2, fig2a..fig23, overhead)")
		scale     = flag.Uint64("scale", 256, "capacity scale divisor (1 = full size)")
		instr     = flag.Uint64("instr", 500_000, "measured instructions per core")
		warmup    = flag.Uint64("warmup", 4_000_000, "fast-forward warm-up instructions per core")
		seed      = flag.Uint64("seed", 42, "random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (default GOMAXPROCS)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir    = flag.String("out", "", "also write each result as a CSV file into this directory")
	)
	flag.Parse()

	o := experiments.Options{
		Scale:        *scale,
		Instructions: *instr,
		Warmup:       *warmup,
		Seed:         *seed,
		Parallelism:  *parallel,
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}
	o = o.Defaults()

	if err := run(*exp, o, *csv, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// writeCSV stores one result table under dir as <slug>.csv.
func writeCSV(dir, name string, t *stats.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.SplitN(name, ":", 2)[0]
	slug = strings.ToLower(strings.ReplaceAll(strings.TrimSpace(slug), " ", "_"))
	return os.WriteFile(filepath.Join(dir, slug+".csv"), []byte(t.CSV()), 0o644)
}

func run(exp string, o experiments.Options, csv bool, outDir string) error {
	emit := func(name string, t *stats.Table) {
		fmt.Printf("== %s ==\n", name)
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		fmt.Println()
		if err := writeCSV(outDir, name, t); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing csv:", err)
		}
	}
	want := func(name string) bool { return exp == "all" || exp == name }

	var matrix *experiments.Matrix
	needMatrix := false
	for _, n := range []string{"table2", "fig2a", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig22"} {
		if want(n) {
			needMatrix = true
		}
	}
	if needMatrix {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running policy x workload matrix (scale %d, %d workloads)...\n", o.Scale, len(o.Workloads))
		var err error
		matrix, err = experiments.RunMatrix(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "matrix done in %s\n", time.Since(start).Round(time.Second))
	}

	if want("table1") {
		emit("Table I: simulated configuration", experiments.Table1(o))
	}
	if want("table2") {
		emit("Table II: workload characteristics (measured)", experiments.Table2(matrix))
	}
	if want("fig2a") {
		emit("Figure 2a: first-touch NUMA allocator stacked-DRAM hit rate", experiments.Fig2a(matrix))
	}
	var autoRes map[float64]map[string]*sim.Result
	if want("fig2b") || want("fig20") {
		fmt.Fprintln(os.Stderr, "running AutoNUMA threshold sweep...")
		r, err := experiments.RunAutoNUMA(o, []float64{0.7, 0.8, 0.9})
		if err != nil {
			return err
		}
		autoRes = r
	}
	if want("fig2b") {
		emit("Figure 2b: AutoNUMA stacked-DRAM hit rates", experiments.Fig2b(o, autoRes))
	}
	if want("fig2c") {
		t, err := experiments.Fig2c(o)
		if err != nil {
			return err
		}
		emit("Figure 2c: cloverleaf AutoNUMA timeline (90% threshold)", t)
	}
	if want("fig3") {
		t, err := experiments.Fig3(o)
		if err != nil {
			return err
		}
		emit("Figure 3: free memory over the workload sequence", t)
	}
	if want("fig4") {
		t, err := experiments.Fig4(o)
		if err != nil {
			return err
		}
		emit("Figure 4: execution-time improvement vs capacity", t)
	}
	if want("fig5") {
		t, err := experiments.Fig5(o)
		if err != nil {
			return err
		}
		emit("Figure 5: page faults and CPU utilisation vs capacity", t)
	}
	if want("fig15") {
		emit("Figure 15: stacked-DRAM hit rate", experiments.Fig15(matrix))
	}
	if want("fig16") {
		emit("Figure 16: cache-mode segment-group share", experiments.Fig16(matrix))
	}
	if want("fig17") {
		emit("Figure 17: segment swaps normalised to PoM", experiments.Fig17(matrix))
	}
	if want("fig18") {
		emit("Figure 18: IPC normalised to the 20 GB baseline", experiments.Fig18(matrix))
	}
	if want("fig19") {
		emit("Figure 19: average memory access latency (cycles)", experiments.Fig19(matrix))
	}
	if want("fig20") {
		emit("Figure 20: IPC vs OS-based placement", experiments.Fig20(matrix, autoRes))
	}
	if want("fig21") {
		t, err := experiments.Fig21(o)
		if err != nil {
			return err
		}
		emit("Figure 21: cache-mode share vs capacity ratio (Chameleon-Opt)", t)
	}
	if want("fig22") {
		emit("Figure 22: Polymorphic Memory comparison", experiments.Fig22(matrix))
	}
	if want("fig23") {
		t, err := experiments.Fig23(o)
		if err != nil {
			return err
		}
		emit("Figure 23: sensitivity IPC at 1:3 and 1:7 ratios", t)
	}
	if want("overhead") {
		emit("Section VI-F: ISA-Alloc/ISA-Free overhead analysis", experiments.Overhead())
	}
	return nil
}

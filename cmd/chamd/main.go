// Command chamd serves the chameleon simulator as a long-running
// service: an HTTP JSON API over a bounded worker pool with a
// content-addressed result cache and expvar metrics.
//
// Usage:
//
//	chamd [-addr :8080] [-workers N] [-queue-depth 256]
//	      [-job-timeout 10m] [-cache-entries 1024]
//	      [-shutdown-grace 30s]
//
// Endpoints:
//
//	POST   /v1/jobs           submit a sim or matrix job
//	GET    /v1/jobs           list jobs
//	GET    /v1/jobs/{id}      status + live progress
//	GET    /v1/jobs/{id}/result  result JSON
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/workloads      workload catalogue
//	GET    /healthz           liveness
//	GET    /debug/vars        metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued
// jobs are canceled, and in-flight simulations get -shutdown-grace to
// finish before their run contexts are cut.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chameleon/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		depth   = flag.Int("queue-depth", 256, "bounded job-queue depth")
		timeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline")
		cacheN  = flag.Int("cache-entries", 1024, "result-cache capacity")
		grace   = flag.Duration("shutdown-grace", 30*time.Second, "drain budget for in-flight jobs")
	)
	flag.Parse()

	if err := run(*addr, server.Options{
		Workers:        *workers,
		QueueDepth:     *depth,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheN,
	}, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "chamd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts server.Options, grace time.Duration) error {
	srv := server.New(opts)
	srv.Metrics().PublishExpvar()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("chamd: serving on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("chamd: %s, draining (grace %s)", sig, grace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Stop accepting connections first, then drain the job pool.
	httpErr := httpSrv.Shutdown(ctx)
	drainErr := srv.Shutdown(ctx)
	if drainErr != nil {
		log.Printf("chamd: drain cut short: %v", drainErr)
	}
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	log.Printf("chamd: stopped")
	return nil
}

// Command chamd serves the chameleon simulator as a long-running
// service: an HTTP JSON API over a bounded worker pool with a
// content-addressed result cache and expvar metrics. Several chamd
// processes become a cluster with -peers: gossip membership, job
// routing over a consistent-hash ring, a cluster-wide result cache,
// and work stealing between nodes.
//
// Usage:
//
//	chamd [-addr :8080] [-workers N] [-queue-depth 256]
//	      [-job-timeout 10m] [-cache-entries 1024] [-cache-bytes 268435456]
//	      [-shutdown-grace 30s]
//	      [-node-id ID] [-cluster-addr http://host:8080]
//	      [-peers http://host1:8080,http://host2:8080]
//	      [-gossip-interval 1s] [-suspicion-timeout 5s]
//
// Endpoints:
//
//	POST   /v1/jobs           submit a sim or matrix job
//	GET    /v1/jobs           list jobs
//	GET    /v1/jobs/{id}      status + live progress
//	GET    /v1/jobs/{id}/result  result JSON
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/workloads      workload catalogue
//	GET    /healthz           liveness
//	GET    /debug/vars        metrics
//	/v1/cluster/*             peer protocol (clustered nodes only)
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued
// jobs are canceled, and in-flight simulations get -shutdown-grace to
// finish before their run contexts are cut.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chameleon/internal/cluster"
	"chameleon/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		depth   = flag.Int("queue-depth", 256, "bounded job-queue depth")
		timeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline")
		cacheN  = flag.Int("cache-entries", 1024, "result-cache capacity (entries)")
		cacheB  = flag.Int64("cache-bytes", 256<<20, "result-cache capacity (payload bytes; <0 = unbounded)")
		grace   = flag.Duration("shutdown-grace", 30*time.Second, "drain budget for in-flight jobs")

		nodeID    = flag.String("node-id", "", "cluster node name (default: host:port of -addr)")
		clAddr    = flag.String("cluster-addr", "", "base URL peers reach this node at (default: http://<addr>)")
		peers     = flag.String("peers", "", "comma-separated peer base URLs; non-empty enables clustering")
		gossipInt = flag.Duration("gossip-interval", time.Second, "gossip exchange period")
		suspicion = flag.Duration("suspicion-timeout", 5*time.Second, "time before an unresponsive node is declared dead")
	)
	flag.Parse()

	opts := server.Options{
		Workers:        *workers,
		QueueDepth:     *depth,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheN,
		CacheBytes:     *cacheB,
	}

	var cl *cluster.Cluster
	if *peers != "" || *nodeID != "" || *clAddr != "" {
		selfAddr := *clAddr
		if selfAddr == "" {
			selfAddr = "http://" + advertised(*addr)
		}
		id := *nodeID
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(selfAddr, "https://"), "http://")
		}
		var seeds []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				seeds = append(seeds, strings.TrimRight(p, "/"))
			}
		}
		cl = cluster.New(cluster.Config{
			NodeID:           id,
			Addr:             strings.TrimRight(selfAddr, "/"),
			Peers:            seeds,
			GossipInterval:   *gossipInt,
			SuspicionTimeout: *suspicion,
			Logf:             log.Printf,
		})
		opts.Cluster = cl
		log.Printf("chamd: clustering as %s (%s), %d seed peer(s)", id, selfAddr, len(seeds))
	}

	if err := run(*addr, opts, cl, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "chamd:", err)
		os.Exit(1)
	}
}

// advertised turns a listen address into something peers can dial:
// ":8080" has no host, so fall back to the machine's hostname.
func advertised(listen string) string {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if h, err := os.Hostname(); err == nil {
			host = h
		} else {
			host = "localhost"
		}
	}
	return net.JoinHostPort(host, port)
}

func run(addr string, opts server.Options, cl *cluster.Cluster, grace time.Duration) error {
	srv := server.New(opts)
	srv.Metrics().PublishExpvar()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("chamd: serving on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	if cl != nil {
		cl.Start()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		if cl != nil {
			cl.Stop()
		}
		return err
	case sig := <-sigCh:
		log.Printf("chamd: %s, draining (grace %s)", sig, grace)
	}

	if cl != nil {
		cl.Stop() // stop gossiping first: peers will route around us
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Stop accepting connections first, then drain the job pool.
	httpErr := httpSrv.Shutdown(ctx)
	drainErr := srv.Shutdown(ctx)
	if drainErr != nil {
		log.Printf("chamd: drain cut short: %v", drainErr)
	}
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	log.Printf("chamd: stopped")
	return nil
}

// Package chameleon is a simulation library reproducing "CHAMELEON: A
// Dynamically Reconfigurable Heterogeneous Memory System" (Kotra et
// al., MICRO 2018).
//
// It models a single-socket heterogeneous memory system — a
// high-bandwidth stacked DRAM next to a larger off-chip DRAM — and the
// full space of management designs the paper evaluates:
//
//   - flat DDR baselines and OS-managed NUMA placement (first-touch,
//     AutoNUMA migration),
//   - a latency-optimised DRAM cache (Alloy),
//   - hardware-managed Part-of-Memory (PoM) with segment-restricted
//     remapping and competing-counter swaps,
//   - Polymorphic Memory, and
//   - the paper's contributions: Chameleon and Chameleon-Opt, which use
//     ISA-Alloc/ISA-Free notifications from the OS to switch segment
//     groups dynamically between PoM mode and cache mode.
//
// # Quick start
//
//	cfg := chameleon.DefaultConfig(256) // Table I, scaled down 256x
//	prof, _ := chameleon.Workload("bwaves")
//	sys, _ := chameleon.New(chameleon.Options{
//		Config:   cfg,
//		Policy:   chameleon.PolicyChameleonOpt,
//		Workload: prof.Scale(256),
//		Seed:     1,
//	})
//	res, _ := sys.Run(1_000_000)
//	fmt.Printf("IPC %.3f, stacked hit rate %.1f%%\n",
//		res.GeoMeanIPC, res.StackedHitRate*100)
//
// The experiment drivers in this package regenerate every table and
// figure of the paper's evaluation; see EXPERIMENTS.md for the
// paper-vs-measured record.
package chameleon

import (
	"context"
	"io"

	"chameleon/internal/config"
	"chameleon/internal/dram"
	"chameleon/internal/dse"
	"chameleon/internal/experiments"
	"chameleon/internal/memtrace"
	"chameleon/internal/osmodel"
	"chameleon/internal/policy"
	"chameleon/internal/server"
	"chameleon/internal/sim"
	"chameleon/internal/trace"
	"chameleon/internal/workload"
)

// Config is the simulated machine configuration (Table I).
type Config = config.Config

// CacheLevelConfig describes one level of the cache hierarchy; order
// Config.CacheLevels from the core outward to shape the stack the
// simulator builds (any depth, private or shared per level).
type CacheLevelConfig = config.CacheLevelConfig

// MemTierConfig describes one tier of the memory stack; order
// Config.MemoryTiers from the nearest (fastest) tier outward. Each
// tier is a DRAM, NVM or CXL device with an optional power profile.
type MemTierConfig = config.MemTierConfig

// NVMConfig describes a byte-addressable non-volatile memory device
// with asymmetric read/write latency and write-endurance accounting.
type NVMConfig = config.NVMConfig

// CXLConfig describes a CXL-attached far-memory device behind a
// serial link with its own latency and bandwidth.
type CXLConfig = config.CXLConfig

// PowerConfig is a memory device's energy profile.
type PowerConfig = config.PowerConfig

// Memory-tier kinds for MemTierConfig.Kind.
const (
	TierDRAM = config.TierDRAM
	TierNVM  = config.TierNVM
	TierCXL  = config.TierCXL
)

// DefaultNVM returns a representative NVM device config (Optane-class
// latencies and endurance) of the given capacity.
func DefaultNVM(capacityBytes uint64) NVMConfig { return config.DefaultNVM(capacityBytes) }

// DefaultCXL returns a representative CXL memory expander config of
// the given capacity.
func DefaultCXL(capacityBytes uint64) CXLConfig { return config.DefaultCXL(capacityBytes) }

// DefaultConfig returns the paper's Table I configuration with
// capacities (and outer cache-level sizes) divided by scale. Scale 1 is
// the full-size 4 GB + 20 GB machine.
func DefaultConfig(scale uint64) Config { return config.Default(scale) }

// Byte-size helpers re-exported for configuration arithmetic.
const (
	KB = config.KB
	MB = config.MB
	GB = config.GB
)

// Policy selects a memory-system design.
type Policy = sim.PolicyKind

// The designs of the paper's evaluation.
const (
	// PolicyFlat is a DDR-only baseline (set Options.BaselineBytes).
	PolicyFlat = sim.PolicyFlat
	// PolicyNUMAFlat exposes both memories to the OS with no hardware
	// remapping (first-touch placement; add AutoNUMA for migration).
	PolicyNUMAFlat = sim.PolicyNUMAFlat
	// PolicyAlloy is the latency-optimised direct-mapped DRAM cache.
	PolicyAlloy = sim.PolicyAlloy
	// PolicyPoM is the hardware-managed Part-of-Memory baseline.
	PolicyPoM = sim.PolicyPoM
	// PolicyCAMEO is the 64 B congruence-group PoM variant.
	PolicyCAMEO = sim.PolicyCAMEO
	// PolicyPolymorphic is the Chung et al. comparison point.
	PolicyPolymorphic = sim.PolicyPolymorphic
	// PolicyChameleon is the paper's basic co-design.
	PolicyChameleon = sim.PolicyChameleon
	// PolicyChameleonOpt adds proactive segment remapping.
	PolicyChameleonOpt = sim.PolicyChameleonOpt
)

// Policies lists every registered memory-system design name, sorted.
// Any of them is a valid Options.Policy; designs registered by client
// code (policy.Register) appear here too.
func Policies() []string { return policy.Names() }

// PolicyNeedsBaseline reports whether the named design is a flat DDR
// baseline that requires Options.BaselineBytes. Unknown names return
// false; New reports the authoritative error.
func PolicyNeedsBaseline(name string) bool {
	d, err := policy.Lookup(name)
	return err == nil && d.RequiresBaseline
}

// PolicyRequiredTiers returns the minimum number of memory tiers the
// named design drives (2 for the paper's fast/slow pair; tiering
// policies such as "hwc" need 3). Unknown names return 2.
func PolicyRequiredTiers(name string) int {
	d, err := policy.Lookup(name)
	if err != nil {
		return 2
	}
	return d.RequiredTiers()
}

// Options configure one simulation run.
type Options = sim.Options

// System is a constructed simulation.
type System = sim.System

// Result is the outcome of a run.
type Result = sim.Result

// CoreResult is one core's share of a Result.
type CoreResult = sim.CoreResult

// LevelResult is one cache level's aggregated statistics in a Result
// (Result.Levels, ordered from the core outward).
type LevelResult = sim.LevelResult

// TierResult is one memory tier's aggregated statistics in a Result
// (Result.Tiers, ordered nearest first).
type TierResult = sim.TierResult

// TimelinePoint is one sample of the optional run timeline (set
// Options.TimelineEpochCycles).
type TimelinePoint = sim.TimelinePoint

// EnergyReport breaks a DRAM device's energy into components.
type EnergyReport = dram.EnergyReport

// New builds a simulation.
func New(opts Options) (*System, error) { return sim.New(opts) }

// Profile is a synthetic application profile.
type Profile = trace.Profile

// Workload returns one of the Table II application profiles by name
// (at full, unscaled footprint — call Scale to match a scaled Config).
func Workload(name string) (Profile, error) { return workload.ByName(name) }

// Ref is one synthetic memory reference.
type Ref = trace.Ref

// TraceStream generates a reproducible reference stream for a profile.
type TraceStream = trace.Stream

// NewTraceStream builds a reference-stream generator; distinct seeds
// give independent rate-mode copies.
func NewTraceStream(p Profile, seed uint64) (*TraceStream, error) {
	return trace.NewStream(p, seed)
}

// Workloads lists the Table II profile names.
func Workloads() []string { return workload.Names() }

// Binary trace capture & replay (internal/memtrace). Any run is
// recordable by attaching a TraceWriter to Options.TraceSink; the
// resulting file replays as a first-class workload via UseWorkload
// ("replay:<file>.ctrace") and reproduces the recorded run bit for bit
// under the same options. See cmd/chameleon-trace for the tooling.
type (
	// TraceWriter streams references into the versioned binary trace
	// format; it implements the Options.TraceSink interface.
	TraceWriter = memtrace.Writer
	// RecordedTrace is a loaded, fully validated trace recording.
	RecordedTrace = memtrace.Trace
	// TraceHeader is a recording's decoded header.
	TraceHeader = memtrace.Header
	// TraceSummary aggregates a recording (refs, writes, footprint).
	TraceSummary = memtrace.Summary
	// RefSource is a per-core reference stream (synthetic generator or
	// trace replay) consumed by the simulator.
	RefSource = trace.Source
	// RefSink observes per-core references as a run consumes them.
	RefSink = trace.Sink
)

// NewTraceWriter wraps w in a binary trace encoder. Attach it to
// Options.TraceSink, run the simulation, then Close it.
func NewTraceWriter(w io.Writer) *TraceWriter { return memtrace.NewWriter(w) }

// LoadTrace reads and fully validates a recorded trace file.
func LoadTrace(path string) (*RecordedTrace, error) { return memtrace.LoadFile(path) }

// ParseTrace validates an in-memory recording.
func ParseTrace(data []byte) (*RecordedTrace, error) { return memtrace.Parse(data) }

// TraceStat summarises a recording in one validating pass.
func TraceStat(r io.Reader) (TraceSummary, error) { return memtrace.Stat(r) }

// UseWorkload resolves a workload name into opts: a Table II profile
// name attaches the synthetic profile scaled by scale, and a
// "replay:<file>.ctrace" name loads the recording and attaches its
// per-core replay sources (replay footprints are already concrete, so
// scale does not apply). Unknown names report the full catalogue.
func UseWorkload(opts *Options, name string, scale uint64) error {
	r, err := workload.Resolve(name)
	if err != nil {
		return err
	}
	if r.Trace != nil {
		srcs, err := r.Trace.Sources()
		if err != nil {
			return err
		}
		opts.Sources = srcs
		opts.Workload = r.Profile
		return nil
	}
	opts.Workload = r.Profile.Scale(scale)
	return nil
}

// AllocPolicy selects the OS frame-allocation order.
type AllocPolicy = osmodel.AllocPolicy

// OS frame-allocation policies.
const (
	AllocShuffled   = osmodel.AllocShuffled
	AllocFirstTouch = osmodel.AllocFirstTouch
	AllocSequential = osmodel.AllocSequential
	AllocInterleave = osmodel.AllocInterleave
	AllocSlowFirst  = osmodel.AllocSlowFirst
	// AllocGroupAware implements the paper's §VI-G proposal: the OS
	// places pages to maximise segment groups that keep a free segment.
	AllocGroupAware = osmodel.AllocGroupAware
)

// AutoNUMAConfig parameterises the Linux AutoNUMA model.
type AutoNUMAConfig = osmodel.AutoNUMAConfig

// ExperimentOptions scale and bound the per-figure experiment drivers.
type ExperimentOptions = experiments.Options

// Matrix is one simulation result per (policy, workload) pair, shared
// by the main evaluation figures.
type Matrix = experiments.Matrix

// RunMatrix executes every evaluation policy on every selected
// workload.
func RunMatrix(o ExperimentOptions) (*Matrix, error) { return experiments.RunMatrix(o) }

// RunMatrixContext is RunMatrix with cancellation: the context is
// threaded into every cell's simulation.
func RunMatrixContext(ctx context.Context, o ExperimentOptions) (*Matrix, error) {
	return experiments.RunMatrixContext(ctx, o)
}

// Design-space exploration (internal/dse, cmd/chameleon-dse). A
// DSESpec declares a sweep over the simulator's pluggable axes; the
// runner evaluates its cross product with bounded concurrency,
// optional dominance pruning, and extracts the Pareto front over the
// configured objectives.
type (
	// DSESpec is a declarative design-space sweep.
	DSESpec = dse.Spec
	// DSEObjective names one optimisation axis (snapshot key + sense).
	DSEObjective = dse.Objective
	// DSECell is one expanded configuration of a sweep.
	DSECell = dse.Cell
	// DSEPoint is one evaluated cell with its objective vector and
	// provenance.
	DSEPoint = dse.Point
	// DSEResult is a sweep's outcome: Pareto front, evaluated points,
	// and cell accounting.
	DSEResult = dse.Result
)

// Objective senses and derived objective keys for DSESpec.Objectives.
const (
	DSESenseMax         = dse.SenseMax
	DSESenseMin         = dse.SenseMin
	DSETotalCapacityKey = dse.KeyTotalCapacity
	DSETotalEnergyKey   = dse.KeyTotalEnergy
)

// DefaultDSEObjectives is the paper-shaped front: IPC up, provisioned
// capacity down, memory energy down.
func DefaultDSEObjectives() []DSEObjective { return dse.DefaultObjectives() }

// RunDSE executes a design-space sweep in-process and returns its
// Pareto front. ExperimentOptions seed any sweep axis the spec leaves
// empty; submit a KindDSE JobSpec to a Server instead to key every
// cell into the content-addressed result cache.
func RunDSE(ctx context.Context, o ExperimentOptions, spec DSESpec) (*DSEResult, error) {
	return experiments.RunDSE(ctx, o, spec)
}

// Simulation-as-a-service (cmd/chamd). Server hosts the simulator
// behind an HTTP JSON API with a bounded worker pool, per-job
// deadlines, a content-addressed result cache and expvar metrics;
// Client talks to one.
type (
	// Server is the embeddable simulation service.
	Server = server.Server
	// ServerOptions sizes a Server's pool, queue, cache and default
	// job deadline.
	ServerOptions = server.Options
	// JobSpec is the wire-format description of one job.
	JobSpec = server.JobSpec
	// JobStatus is a job's status snapshot (state, progress, timings).
	JobStatus = server.JobStatus
	// JobState is a job's lifecycle state ("queued" ... "done").
	JobState = server.JobState
	// Job is a submitted unit of work owned by a Server.
	Job = server.Job
	// Client is a Go client for a chamd server.
	Client = server.Client
)

// Job lifecycle states. Remote and claimed occur only on clustered
// servers: a remote job was forwarded to its ring owner and is
// mirrored locally; a claimed job was stolen off the queue by an idle
// peer.
const (
	JobQueued   = server.StateQueued
	JobRunning  = server.StateRunning
	JobRemote   = server.StateRemote
	JobClaimed  = server.StateClaimed
	JobDone     = server.StateDone
	JobFailed   = server.StateFailed
	JobCanceled = server.StateCanceled
)

// Job kinds for JobSpec.Kind.
const (
	JobKindSim    = server.KindSim
	JobKindMatrix = server.KindMatrix
	JobKindDSE    = server.KindDSE
)

// NewServer builds and starts an embeddable simulation service; serve
// its Handler() over HTTP, or submit jobs in-process with Submit.
func NewServer(o ServerOptions) *Server { return server.New(o) }

// NewClient targets a running chamd server's base URL.
func NewClient(baseURL string) *Client { return server.NewClient(baseURL) }

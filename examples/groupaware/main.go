// Groupaware: the paper's §VI-G future-work proposal, implemented. The
// segment-restricted remapping table means a group can only serve as a
// Chameleon cache while one of *its own* segments is free — free space
// stranded in the wrong groups is wasted. If the OS is taught the
// group geometry (this repo's AllocGroupAware policy), it can spread
// allocations so that as many groups as possible keep one free
// segment, raising Chameleon-Opt's cache-mode share at the same memory
// footprint.
package main

import (
	"fmt"
	"log"

	"chameleon"
)

func main() {
	const scale = 256
	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("bwaves")
	if err != nil {
		log.Fatal(err)
	}
	prof = prof.Scale(scale)

	fmt.Println("footprint%   allocator     cache-mode%   hit-rate%   IPC")
	for _, pct := range []uint64{70, 85, 95} {
		for _, alloc := range []chameleon.AllocPolicy{chameleon.AllocShuffled, chameleon.AllocGroupAware} {
			p := prof
			p.FootprintBytes = cfg.TotalCapacity() * pct / 100 / 12
			a := alloc
			sys, err := chameleon.New(chameleon.Options{
				Config:             cfg,
				Policy:             chameleon.PolicyChameleonOpt,
				Workload:           p,
				Alloc:              &a,
				Seed:               5,
				WarmupInstructions: 1_500_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Run(200_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%9d%%   %-11s   %10.1f%%   %8.1f%%   %.3f\n",
				pct, a, res.CacheModeFraction*100, res.StackedHitRate*100, res.GeoMeanIPC)
		}
	}
	fmt.Println("\nGroup-aware placement strands less free space in already-full")
	fmt.Println("segment groups, so more groups can serve as hardware cache.")
}

// Capacity: the paper's Figures 4/5 in miniature — the same workload on
// flat machines from 16 GB to 28 GB (scaled). Undersized memory
// thrashes the SSD (page faults, poor CPU utilisation); once the
// footprint fits, performance saturates. This is why losing OS-visible
// capacity to a DRAM cache is expensive for large workloads, and why
// Chameleon keeps PoM capacity when memory is tight.
package main

import (
	"fmt"
	"log"
	"math"

	"chameleon"
)

func main() {
	const scale = 256
	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("GemsFDTD") // 22.56 GB footprint
	if err != nil {
		log.Fatal(err)
	}
	prof = prof.Scale(scale)

	fmt.Println("capacity   major-faults   cpu-util%   cycles(geomean)   speedup-vs-16GB")
	var base float64
	for _, gb := range []uint64{16, 18, 20, 22, 24, 26, 28} {
		sys, err := chameleon.New(chameleon.Options{
			Config:        cfg,
			Policy:        chameleon.PolicyFlat,
			BaselineBytes: gb * chameleon.GB / scale,
			Workload:      prof,
			Seed:          3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(200_000)
		if err != nil {
			log.Fatal(err)
		}
		// Geometric-mean execution time across the 12 copies (the
		// paper's equation 1 uses the same aggregation).
		logSum := 0.0
		for _, c := range res.Cores {
			logSum += math.Log(float64(c.Cycles))
		}
		cycles := math.Exp(logSum / float64(len(res.Cores)))
		if gb == 16 {
			base = cycles
		}
		fmt.Printf("%5d GB   %12d   %8.1f%%   %15.0f   %14.2fx\n",
			gb, res.OS.MajorFaults, res.CPUUtilization*100, cycles, base/cycles)
	}
}

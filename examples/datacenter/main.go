// Datacenter: the paper's motivating scenario (§III-B) — memory demand
// in a consolidated machine varies over time, so a static cache/PoM
// split is always wrong for someone. This example sweeps the resident
// footprint from half the machine to slightly over the off-chip
// capacity and shows how Chameleon-Opt's segment groups follow the
// free space: plenty of free memory => most groups serve as a
// hardware-managed cache; memory pressure => groups switch to PoM mode
// and the full capacity stays OS-visible (no page faults until the
// footprint truly exceeds the machine).
package main

import (
	"fmt"
	"log"

	"chameleon"
)

func main() {
	const scale = 256
	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("cloverleaf")
	if err != nil {
		log.Fatal(err)
	}
	prof = prof.Scale(scale)
	total := cfg.TotalCapacity()

	fmt.Println("footprint%   cache-mode%   hit-rate%   IPC     major-faults")
	for _, pct := range []uint64{50, 65, 80, 90, 96, 105} {
		p := prof
		p.FootprintBytes = total * pct / 100 / 12 // per process, 12 copies
		sys, err := chameleon.New(chameleon.Options{
			Config:             cfg,
			Policy:             chameleon.PolicyChameleonOpt,
			Workload:           p,
			Seed:               7,
			WarmupInstructions: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(300_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d%%   %10.1f%%   %8.1f%%   %.3f   %d\n",
			pct, res.CacheModeFraction*100, res.StackedHitRate*100,
			res.GeoMeanIPC, res.OS.MajorFaults)
	}
	fmt.Println("\nLow footprints leave segment groups in cache mode (free space")
	fmt.Println("used opportunistically); high footprints flip them to PoM mode,")
	fmt.Println("keeping the full 24 GB OS-visible and deferring page faults.")
}

// Policycompare: Figure 18 in miniature — every memory-system design on
// one high-footprint workload, normalised to the 20 GB DDR3 baseline.
// Expected shape (the paper's): the 24 GB baseline beats 20 GB (no page
// faults), Alloy beats the baselines but loses capacity, PoM beats
// Alloy, and Chameleon / Chameleon-Opt come out on top.
package main

import (
	"fmt"
	"log"

	"chameleon"
)

func main() {
	const scale = 256
	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("leslie3d")
	if err != nil {
		log.Fatal(err)
	}
	prof = prof.Scale(scale)

	// The cache stack comes from the config, not hard-wired names: any
	// hierarchy set in cfg.CacheLevels is what every design runs behind.
	fmt.Print("cache hierarchy: ")
	for i, lv := range cfg.CacheLevels {
		if i > 0 {
			fmt.Print(" -> ")
		}
		scope := "private"
		if lv.Shared {
			scope = "shared"
		}
		fmt.Printf("%s %dKB/%dw %s", lv.Name, lv.SizeBytes/int(chameleon.KB), lv.Ways, scope)
	}
	fmt.Println()

	// So is the memory stack: designs run against whatever tiers the
	// config declares, and a design that needs a deeper stack (hwc's
	// hot/warm/cold tiering) gets an NVM tier appended.
	fmt.Print("memory tiers:    ")
	for i, tier := range cfg.MemoryTiers {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Printf("%s (%s, %dMB)", tier.Name(), tier.ResolvedKind(),
			tier.CapacityBytes()/chameleon.MB)
	}
	fmt.Println()

	type entry struct {
		name     string
		policy   chameleon.Policy
		baseline uint64 // GB for flat systems
	}
	// The registry is the catalogue: every registered design runs, with
	// flat baselines expanded to the paper's 20 GB and 24 GB capacities.
	// The 20 GB DDR3 baseline is pinned first as the normalisation base.
	entries := []entry{{"baseline 20GB DDR3", chameleon.PolicyFlat, 20}}
	for _, name := range chameleon.Policies() {
		if chameleon.PolicyNeedsBaseline(name) {
			if name == string(chameleon.PolicyFlat) {
				entries = append(entries, entry{"baseline 24GB DDR3", chameleon.PolicyFlat, 24})
			} else {
				entries = append(entries, entry{name, chameleon.Policy(name), 24})
			}
			continue
		}
		entries = append(entries, entry{name, chameleon.Policy(name), 0})
	}

	var base float64
	fmt.Println("design                 IPC      norm    hit%    swaps   faults")
	for _, e := range entries {
		runCfg := cfg
		for runCfg.NumTiers() < chameleon.PolicyRequiredTiers(string(e.policy)) {
			runCfg = runCfg.WithNVMTier(32 * chameleon.GB / scale)
		}
		opts := chameleon.Options{
			Config:             runCfg,
			Policy:             e.policy,
			Workload:           prof,
			Seed:               11,
			WarmupInstructions: 2_000_000,
		}
		if e.baseline != 0 {
			opts.BaselineBytes = e.baseline * chameleon.GB / scale
		}
		sys, err := chameleon.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(400_000)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.GeoMeanIPC
		}
		fmt.Printf("%-20s  %.4f   %.3f   %5.1f   %5d   %d\n",
			e.name, res.GeoMeanIPC, res.GeoMeanIPC/base,
			res.StackedHitRate*100, res.Ctrl.Swaps, res.OS.MajorFaults)
	}
}

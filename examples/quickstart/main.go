// Quickstart: simulate one Table II workload on the Chameleon-Opt
// memory system and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"chameleon"
)

func main() {
	const scale = 256 // shrink the 4 GB + 20 GB machine 256x

	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("bwaves")
	if err != nil {
		log.Fatal(err)
	}

	sys, err := chameleon.New(chameleon.Options{
		Config:             cfg,
		Policy:             chameleon.PolicyChameleonOpt,
		Workload:           prof.Scale(scale),
		Seed:               1,
		WarmupInstructions: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Run(500_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:          %s on %d cores\n", res.Workload, len(res.Cores))
	fmt.Printf("geomean IPC:       %.3f\n", res.GeoMeanIPC)
	fmt.Printf("stacked hit rate:  %.1f%%\n", res.StackedHitRate*100)
	fmt.Printf("cache-mode groups: %.1f%%\n", res.CacheModeFraction*100)
	fmt.Printf("segment swaps:     %d\n", res.Ctrl.Swaps)
	fmt.Printf("avg mem latency:   %.0f cycles\n", res.AMAT)
}

// Dynamic: the co-design reacting *during* execution. Each core
// periodically allocates and frees a transient buffer (the §III-B
// allocation churn), so ISA-Alloc/ISA-Free arrive mid-run and segment
// groups flip between PoM and cache mode while the workload executes.
// The timeline shows the cache-mode share breathing with the churn —
// the behaviour a statically partitioned system (KNL's boot-time
// hybrid modes, §II-C3) cannot express.
package main

import (
	"fmt"
	"log"

	"chameleon"
)

func main() {
	const scale = 256
	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("hpccg")
	if err != nil {
		log.Fatal(err)
	}
	prof = prof.Scale(scale)
	// Leave headroom so the churn has free space to take and return.
	prof.FootprintBytes = cfg.TotalCapacity() * 70 / 100 / 12

	sys, err := chameleon.New(chameleon.Options{
		Config:                 cfg,
		Policy:                 chameleon.PolicyChameleonOpt,
		Workload:               prof,
		Seed:                   2,
		WarmupInstructions:     1_000_000,
		TimelineEpochCycles:    200_000,
		PhaseAllocBytes:        cfg.TotalCapacity() / 48, // 2% of memory per core
		PhaseEveryInstructions: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(1_200_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ISA-Alloc/ISA-Free during the measured run: %d / %d\n",
		res.Ctrl.ISAAllocs, res.Ctrl.ISAFrees)
	fmt.Printf("proactive segment moves: %d, cleared segments: %d\n\n",
		res.Ctrl.ProactiveMoves, res.Ctrl.ClearedSegments)
	fmt.Println("cycle        cache-mode%   cum-hit%")
	for _, p := range res.Timeline {
		bar := int(p.CacheModeFraction * 40)
		fmt.Printf("%11d   %9.1f%%   %7.1f%%  %s\n",
			p.Cycle, p.CacheModeFraction*100, p.StackedHitRate*100, bars(bar))
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

package chameleon_test

import (
	"fmt"
	"log"

	"chameleon"
)

// Example runs the smallest useful simulation: one Table II workload on
// the Chameleon-Opt memory system, on a machine scaled down 512x.
func Example() {
	const scale = 512
	cfg := chameleon.DefaultConfig(scale)
	prof, err := chameleon.Workload("miniFE")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := chameleon.New(chameleon.Options{
		Config:   cfg,
		Policy:   chameleon.PolicyChameleonOpt,
		Workload: prof.Scale(scale),
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Policy, res.Workload, len(res.Cores), "cores")
	// Output: chameleon-opt miniFE 12 cores
}

// ExampleWorkloads lists the Table II application profiles.
func ExampleWorkloads() {
	names := chameleon.Workloads()
	fmt.Println(len(names), "workloads, first:", names[0])
	// Output: 14 workloads, first: GemsFDTD
}

// ExampleNewTraceStream shows raw access to the synthetic reference
// streams that drive the simulator.
func ExampleNewTraceStream() {
	prof, err := chameleon.Workload("stream")
	if err != nil {
		log.Fatal(err)
	}
	st, err := chameleon.NewTraceStream(prof.Scale(512), 7)
	if err != nil {
		log.Fatal(err)
	}
	r := st.Next()
	fmt.Println(r.Gap > 0, r.VAddr < prof.FootprintBytes)
	// Output: true true
}

// ExampleConfig_WithRatio reproduces the paper's capacity-ratio
// sensitivity setup (§VI-E): same total memory, different
// stacked:off-chip splits.
func ExampleConfig_WithRatio() {
	cfg := chameleon.DefaultConfig(1)
	for _, ratio := range []int{3, 5, 7} {
		c, err := cfg.WithRatio(ratio)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("1:%d -> %d GB + %d GB\n", ratio,
			c.TierCapacity(0)/chameleon.GB, c.TierCapacity(1)/chameleon.GB)
	}
	// Output:
	// 1:3 -> 6 GB + 18 GB
	// 1:5 -> 4 GB + 20 GB
	// 1:7 -> 3 GB + 21 GB
}

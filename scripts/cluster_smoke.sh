#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of a 3-node chamd cluster.
#
# Brings up three chamd processes gossiping with each other, then
# checks the three cluster-level guarantees a deployment relies on:
#
#   1. membership converges to 3 nodes on every peer;
#   2. a result computed via node A is served from the cluster cache
#      when the same spec is submitted via node B (cached: true, no
#      second simulation);
#   3. killing node C mid-queue loses no jobs — everything submitted
#      through node A still reaches state "done" on the survivors.
#
# Needs: bash, curl, go. No jq — parsing is grep-based on the API's
# stable pretty-printed JSON.
set -euo pipefail

PORT_A=18081
PORT_B=18082
PORT_C=18083
A="http://127.0.0.1:$PORT_A"
B="http://127.0.0.1:$PORT_B"
C="http://127.0.0.1:$PORT_C"
BIN="${TMPDIR:-/tmp}/chamd-smoke"
LOGDIR="$(mktemp -d)"

cleanup() {
  kill "${PID_A:-}" "${PID_B:-}" "${PID_C:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- node A log ---" >&2; tail -20 "$LOGDIR/a.log" >&2 || true
  echo "--- node B log ---" >&2; tail -20 "$LOGDIR/b.log" >&2 || true
  echo "--- node C log ---" >&2; tail -20 "$LOGDIR/c.log" >&2 || true
  exit 1
}

echo "== building chamd"
go build -o "$BIN" ./cmd/chamd

start_node() { # id port peers logname
  "$BIN" -addr "127.0.0.1:$2" -workers 2 \
    -node-id "$1" -cluster-addr "http://127.0.0.1:$2" -peers "$3" \
    -gossip-interval 100ms -suspicion-timeout 1s \
    >"$LOGDIR/$4.log" 2>&1 &
}

echo "== starting 3 nodes"
start_node node-a "$PORT_A" "" a;        PID_A=$!
start_node node-b "$PORT_B" "$A" b;      PID_B=$!
start_node node-c "$PORT_C" "$A" c;      PID_C=$!

wait_members() { # url count
  for _ in $(seq 1 100); do
    n="$(curl -sf "$1/v1/cluster/members" 2>/dev/null |
      grep -o '"id"' | wc -l)" || n=0
    [ "$n" -ge "$2" ] && return 0
    sleep 0.1
  done
  return 1
}

for url in "$A" "$B" "$C"; do
  wait_members "$url" 3 || fail "membership did not reach 3 nodes on $url"
done
echo "ok: membership converged on all 3 nodes"

spec() { # seed instructions
  printf '{"kind":"sim","policy":"chameleon-opt","workload":"bwaves","scale":1024,"instructions":%d,"warmup":1,"seed":%d}' "$2" "$1"
}

submit() { # url body -> job id
  curl -sf -X POST -H 'Content-Type: application/json' -d "$2" "$1/v1/jobs" |
    grep -o '"id": "[^"]*"' | head -1 | sed 's/.*: "//; s/"//'
}

wait_done() { # url id timeout_iters
  for _ in $(seq 1 "$3"); do
    st="$(curl -sf "$1/v1/jobs/$2" | grep -o '"state": "[^"]*"' | head -1)"
    case "$st" in
      *done*) return 0 ;;
      *failed* | *canceled*) return 1 ;;
    esac
    sleep 0.1
  done
  return 1
}

echo "== cache check: compute via A, hit via B"
SPEC="$(spec 7 5000)"
JOB_A="$(submit "$A" "$SPEC")"
[ -n "$JOB_A" ] || fail "submit via A returned no job id"
wait_done "$A" "$JOB_A" 300 || fail "job via A did not complete"

JOB_B="$(submit "$B" "$SPEC")"
[ -n "$JOB_B" ] || fail "re-submit via B returned no job id"
wait_done "$B" "$JOB_B" 300 || fail "job via B did not complete"
curl -sf "$B/v1/jobs/$JOB_B" | grep -q '"cached": true' ||
  fail "second submission via B was not served from the cluster cache"
echo "ok: B served the result cached (no second simulation)"

echo "== dse check: sweep shards across the ring, cells reused on resubmit"
# 4-cell design sweep (2 policies x 1 workload x 2 seeds). The ring
# routes each cell to its owner; a resubmission with different
# objectives has a new sweep hash but identical cell hashes, so every
# cell must come back from the cluster result cache.
dse_spec() { # objectives-json
  printf '{"kind":"dse","scale":1024,"instructions":5000,"warmup":1,"dse":{"policies":["chameleon-opt","alloy"],"workloads":["bwaves"],"seeds":[5,6],"objectives":%s}}' "$1"
}
DSE_1="$(dse_spec '[{"key":"ipc_geomean","sense":"max"},{"key":"total_energy_nj","sense":"min"}]')"
DSE_2="$(dse_spec '[{"key":"ipc_geomean","sense":"max"},{"key":"amat_cycles","sense":"min"}]')"

JOB_D1="$(submit "$A" "$DSE_1")"
[ -n "$JOB_D1" ] || fail "dse submit via A returned no job id"
wait_done "$A" "$JOB_D1" 600 || fail "dse job via A did not complete"
curl -sf "$A/v1/jobs/$JOB_D1/result" | grep -q '"total_cells":4' ||
  fail "dse job did not evaluate 4 cells"

JOB_D2="$(submit "$B" "$DSE_2")"
[ -n "$JOB_D2" ] || fail "dse re-submit via B returned no job id"
wait_done "$B" "$JOB_D2" 600 || fail "second dse job via B did not complete"
curl -sf "$B/v1/jobs/$JOB_D2/result" | grep -q '"cached":4' ||
  fail "second dse sweep did not serve all 4 cells from the cluster cache"
echo "ok: dse sweep ran; changed-objectives resubmit reused every cell"

echo "== failover check: kill node C with jobs in flight"
JOBS=()
for seed in 101 102 103 104 105 106 107 108; do
  JOBS+=("$(submit "$A" "$(spec "$seed" 200000)")")
done
kill -9 "$PID_C"
echo "   killed node C ($PID_C); waiting for survivors to finish all ${#JOBS[@]} jobs"

for id in "${JOBS[@]}"; do
  wait_done "$A" "$id" 600 || fail "job $id was lost after node C died"
done
echo "ok: all ${#JOBS[@]} jobs completed despite the node death"

# The survivors must agree the cluster is down to 2 alive members.
for url in "$A" "$B"; do
  ok=0
  for _ in $(seq 1 50); do
    if curl -sf "$url/debug/vars" | grep -qE '"members_alive": ?2'; then
      ok=1
      break
    fi
    sleep 0.1
  done
  [ "$ok" -eq 1 ] || fail "$url did not reconverge to 2 alive members"
done
echo "ok: membership reconverged to the 2 survivors"

echo "PASS: cluster smoke"

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design decisions DESIGN.md calls
// out. Each benchmark runs the corresponding experiment driver on a
// scaled machine with a representative workload subset and reports the
// figure's headline metric(s) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// produces a compact reproduction of the evaluation. The full,
// all-workload versions of the same experiments are produced by
// cmd/experiments.
package chameleon_test

import (
	"testing"

	"chameleon"
	"chameleon/internal/experiments"
)

// benchOpts are sized so that one iteration of each benchmark stays in
// the low seconds on a single core.
func benchOpts(workloads ...string) experiments.Options {
	if len(workloads) == 0 {
		workloads = []string{"bwaves"}
	}
	return experiments.Options{
		Scale:        256,
		Instructions: 200_000,
		Warmup:       1_500_000,
		Seed:         42,
		Workloads:    workloads,
	}.Defaults()
}

// benchMatrix runs the policy x workload matrix once per iteration.
func benchMatrix(b *testing.B, o experiments.Options) *experiments.Matrix {
	b.Helper()
	var m *experiments.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = experiments.RunMatrix(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkTable2(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	res := m.Results[chameleon.PolicyFlat]["bwaves"]
	var mpki float64
	for _, c := range res.Cores {
		mpki += c.MPKI
	}
	b.ReportMetric(mpki/float64(len(res.Cores)), "LLC-MPKI")
}

func BenchmarkFig2a(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	b.ReportMetric(m.Results[chameleon.PolicyNUMAFlat]["bwaves"].StackedHitRate*100, "hit%")
}

func BenchmarkFig2b(b *testing.B) {
	o := benchOpts("bwaves")
	for i := 0; i < b.N; i++ {
		auto, err := experiments.RunAutoNUMA(o, []float64{0.9})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(auto[0.9]["bwaves"].StackedHitRate*100, "autonuma-hit%")
	}
}

func BenchmarkFig2c(b *testing.B) {
	o := benchOpts("cloverleaf")
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2c(o)
		if err != nil {
			b.Fatal(err)
		}
		_ = t.String()
	}
}

func BenchmarkFig3(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	o := benchOpts("GemsFDTD")
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
		_ = t.String()
	}
}

func BenchmarkFig5(b *testing.B) {
	o := benchOpts("GemsFDTD")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	_ = experiments.Fig15(m).String()
	b.ReportMetric(m.Results[chameleon.PolicyPoM]["bwaves"].StackedHitRate*100, "pom-hit%")
	b.ReportMetric(m.Results[chameleon.PolicyChameleonOpt]["bwaves"].StackedHitRate*100, "opt-hit%")
}

func BenchmarkFig16(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	_ = experiments.Fig16(m).String()
	b.ReportMetric(m.Results[chameleon.PolicyChameleon]["bwaves"].CacheModeFraction*100, "cham-cache%")
	b.ReportMetric(m.Results[chameleon.PolicyChameleonOpt]["bwaves"].CacheModeFraction*100, "opt-cache%")
}

func BenchmarkFig17(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	_ = experiments.Fig17(m).String()
	base := float64(m.Results[chameleon.PolicyPoM]["bwaves"].Ctrl.Swaps)
	if base > 0 {
		b.ReportMetric(float64(m.Results[chameleon.PolicyChameleonOpt]["bwaves"].Ctrl.Swaps)/base, "opt-swaps/pom")
	}
}

func BenchmarkFig18(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	_ = experiments.Fig18(m).String()
	base := m.Results[chameleon.PolicyPoM]["bwaves"].GeoMeanIPC
	b.ReportMetric(m.Results[chameleon.PolicyChameleonOpt]["bwaves"].GeoMeanIPC/base, "opt-ipc/pom")
}

func BenchmarkFig19(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	_ = experiments.Fig19(m).String()
	b.ReportMetric(m.Results[chameleon.PolicyChameleonOpt]["bwaves"].AMAT, "opt-amat-cycles")
}

func BenchmarkFig20(b *testing.B) {
	o := benchOpts("bwaves")
	var m *experiments.Matrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = experiments.RunMatrix(o)
		if err != nil {
			b.Fatal(err)
		}
		auto, err := experiments.RunAutoNUMA(o, []float64{0.7, 0.8, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.Fig20(m, auto).String()
	}
	base := m.Results[chameleon.PolicyNUMAFlat]["bwaves"].GeoMeanIPC
	b.ReportMetric(m.Results[chameleon.PolicyChameleonOpt]["bwaves"].GeoMeanIPC/base, "opt-ipc/first-touch")
}

func BenchmarkFig21(b *testing.B) {
	o := benchOpts("bwaves")
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig21(o)
		if err != nil {
			b.Fatal(err)
		}
		_ = t.String()
	}
}

func BenchmarkFig22(b *testing.B) {
	o := benchOpts("bwaves")
	m := benchMatrix(b, o)
	_ = experiments.Fig22(m).String()
	base := m.Results[chameleon.PolicyPolymorphic]["bwaves"].GeoMeanIPC
	b.ReportMetric(m.Results[chameleon.PolicyChameleon]["bwaves"].GeoMeanIPC/base, "cham-ipc/polymorphic")
}

func BenchmarkFig23(b *testing.B) {
	o := benchOpts("bwaves")
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig23(o)
		if err != nil {
			b.Fatal(err)
		}
		_ = t.String()
	}
}

func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Overhead().String()
	}
	b.ReportMetric(experiments.PaperOverheadParams().OverheadPercent(), "overhead%")
}

// --- ablations of DESIGN.md's design decisions -------------------------

// runPolicy is the common single-run helper for the ablations.
func runPolicy(b *testing.B, cfg chameleon.Config, pk chameleon.Policy, wl string) *chameleon.Result {
	b.Helper()
	prof, err := chameleon.Workload(wl)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := chameleon.New(chameleon.Options{
		Config:             cfg,
		Policy:             pk,
		Workload:           prof.Scale(cfg.Scale),
		Seed:               42,
		WarmupInstructions: 1_500_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run(200_000)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationSwapThreshold sweeps the PoM competing-counter
// threshold: low thresholds swap streaming segments (bandwidth bloat),
// very high thresholds never promote hot data.
func BenchmarkAblationSwapThreshold(b *testing.B) {
	for _, th := range []int{4, 8, 16, 48, 96} {
		b.Run("th"+itoa(th), func(b *testing.B) {
			cfg := chameleon.DefaultConfig(256)
			cfg.MemSys.SwapThreshold = th
			var res *chameleon.Result
			for i := 0; i < b.N; i++ {
				res = runPolicy(b, cfg, chameleon.PolicyPoM, "bwaves")
			}
			b.ReportMetric(res.StackedHitRate*100, "hit%")
			b.ReportMetric(float64(res.Ctrl.Swaps), "swaps")
			b.ReportMetric(res.GeoMeanIPC, "ipc")
		})
	}
}

// BenchmarkAblationSRTCache compares an idealised SRAM remapping table
// (0 = no miss modelling) against realistic on-die SRT cache sizes.
func BenchmarkAblationSRTCache(b *testing.B) {
	for _, entries := range []int{0, 1024, 32768} {
		b.Run("entries"+itoa(entries), func(b *testing.B) {
			cfg := chameleon.DefaultConfig(256)
			cfg.MemSys.SRTCacheEntries = entries
			var res *chameleon.Result
			for i := 0; i < b.N; i++ {
				res = runPolicy(b, cfg, chameleon.PolicyChameleonOpt, "bwaves")
			}
			b.ReportMetric(res.AMAT, "amat-cycles")
			b.ReportMetric(res.GeoMeanIPC, "ipc")
		})
	}
}

// BenchmarkAblationSegmentSize contrasts the 2 KB segments of PoM [25]
// with CAMEO's 64 B congruence groups (the paper's §VI-G discussion):
// small segments cut swap bandwidth but lose spatial locality.
func BenchmarkAblationSegmentSize(b *testing.B) {
	for _, pk := range []chameleon.Policy{chameleon.PolicyPoM, chameleon.PolicyCAMEO} {
		b.Run(pk.String(), func(b *testing.B) {
			cfg := chameleon.DefaultConfig(256)
			var res *chameleon.Result
			for i := 0; i < b.N; i++ {
				res = runPolicy(b, cfg, pk, "bwaves")
			}
			b.ReportMetric(res.StackedHitRate*100, "hit%")
			b.ReportMetric(float64(res.Ctrl.SwapBytes)/1e6, "swap-MB")
			b.ReportMetric(res.GeoMeanIPC, "ipc")
		})
	}
}

// BenchmarkAblationClearing measures the cost of the security clearing
// on cache<->PoM transitions (§V-D2).
func BenchmarkAblationClearing(b *testing.B) {
	for _, clearing := range []bool{false, true} {
		name := "off"
		if clearing {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := chameleon.DefaultConfig(256)
			cfg.MemSys.ClearOnModeSwitch = clearing
			var res *chameleon.Result
			for i := 0; i < b.N; i++ {
				res = runPolicy(b, cfg, chameleon.PolicyChameleonOpt, "bwaves")
			}
			b.ReportMetric(res.GeoMeanIPC, "ipc")
			b.ReportMetric(float64(res.Ctrl.ClearedSegments), "cleared")
		})
	}
}

// BenchmarkRawSimulatorThroughput measures simulator speed itself
// (simulated instructions per second of wall clock).
func BenchmarkRawSimulatorThroughput(b *testing.B) {
	cfg := chameleon.DefaultConfig(256)
	prof, err := chameleon.Workload("bwaves")
	if err != nil {
		b.Fatal(err)
	}
	const instr = 200_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := chameleon.New(chameleon.Options{
			Config:   cfg,
			Policy:   chameleon.PolicyChameleonOpt,
			Workload: prof.Scale(256),
			Seed:     uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(instr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(instr*12*b.N)/b.Elapsed().Seconds(), "sim-instr/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationGroupAwareAlloc measures the §VI-G extension: OS
// page placement that maximises cache-capable segment groups, against
// the default uniform (buddy-like) placement.
func BenchmarkAblationGroupAwareAlloc(b *testing.B) {
	for _, alloc := range []chameleon.AllocPolicy{chameleon.AllocShuffled, chameleon.AllocGroupAware} {
		alloc := alloc
		b.Run(alloc.String(), func(b *testing.B) {
			prof, err := chameleon.Workload("bwaves")
			if err != nil {
				b.Fatal(err)
			}
			cfg := chameleon.DefaultConfig(256)
			prof = prof.Scale(256)
			prof.FootprintBytes = cfg.TotalCapacity() * 85 / 100 / 12
			var res *chameleon.Result
			for i := 0; i < b.N; i++ {
				a := alloc
				sys, err := chameleon.New(chameleon.Options{
					Config:             cfg,
					Policy:             chameleon.PolicyChameleonOpt,
					Workload:           prof,
					Alloc:              &a,
					Seed:               42,
					WarmupInstructions: 1_500_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res, err = sys.Run(200_000); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CacheModeFraction*100, "cache-mode%")
			b.ReportMetric(res.StackedHitRate*100, "hit%")
			b.ReportMetric(res.GeoMeanIPC, "ipc")
		})
	}
}

// BenchmarkAblationTHP compares 4 KB and 2 MB (THP) OS pages: THP cuts
// page-management work but coarsens the allocation granularity the
// ISA-Alloc/ISA-Free co-design sees.
func BenchmarkAblationTHP(b *testing.B) {
	for _, thp := range []bool{false, true} {
		name := "4KB"
		if thp {
			name = "2MB-THP"
		}
		b.Run(name, func(b *testing.B) {
			prof, err := chameleon.Workload("bwaves")
			if err != nil {
				b.Fatal(err)
			}
			var res *chameleon.Result
			for i := 0; i < b.N; i++ {
				sys, err := chameleon.New(chameleon.Options{
					Config:             chameleon.DefaultConfig(256),
					Policy:             chameleon.PolicyChameleonOpt,
					Workload:           prof.Scale(256),
					UseTHP:             thp,
					Seed:               42,
					WarmupInstructions: 1_500_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res, err = sys.Run(200_000); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CacheModeFraction*100, "cache-mode%")
			b.ReportMetric(res.GeoMeanIPC, "ipc")
		})
	}
}
